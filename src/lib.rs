#![warn(missing_docs)]

//! # specrt
//!
//! Facade crate for the `specrt` workspace: a full-system reproduction of
//! *"Hardware for Speculative Run-Time Parallelization in Distributed
//! Shared-Memory Multiprocessors"* (Zhang, Rauchwerger & Torrellas,
//! HPCA 1998).
//!
//! This crate re-exports the public API of [`specrt_core`] and the underlying
//! subsystem crates so that applications can depend on a single crate:
//!
//! * [`engine`] — discrete-event simulation engine,
//! * [`ir`] — the mini compiler IR loop bodies are written in,
//! * [`mem`] — NUMA memory system,
//! * [`cache`] — two-level caches and access-bit arrays,
//! * [`spec`] — the paper's speculation protocols (the contribution),
//! * [`proto`] — directory-based cache coherence,
//! * [`lrpd`] — the software LRPD baseline,
//! * [`machine`] — processors, synchronization, schedulers, scenarios,
//! * [`workloads`] — synthetic stand-ins for the paper's four loops,
//! * [`check`] — differential fuzzing and interleaving conformance harness.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! system inventory.

pub use specrt_core::*;

pub use specrt_cache as cache;
pub use specrt_check as check;
pub use specrt_engine as engine;
pub use specrt_ir as ir;
pub use specrt_lrpd as lrpd;
pub use specrt_machine as machine;
pub use specrt_mem as mem;
pub use specrt_net as net;
pub use specrt_proto as proto;
pub use specrt_spec as spec;
pub use specrt_workloads as workloads;
