//! The paper's Figure 2 worked example, end to end.
//!
//! ```text
//! do i = 1, 5
//!     z = A(K(i))
//!     if (B1(i)) A(L(i)) = z + C(i)
//! enddo
//! K = [1,2,3,4,1]   L = [2,2,4,4,2]   B1 = [T,F,T,F,T]
//! ```
//!
//! The figure shows the shadow-array contents after marking
//! (`A_w = 0101`, `A_r = 1111`, `A_np = 1111`, `Atw = 3`, `Atm = 2`) and
//! concludes the test fails. We reproduce the shadow state with the pure
//! LRPD reference, then run the same loop through the full simulated
//! machine under both the software and the hardware schemes.
//!
//! Run with: `cargo run --release --example lrpd_figure2`

use specrt::ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
use specrt::lrpd::{LrpdOutcome, LrpdShadow};
use specrt::machine::{ArrayDecl, LoopSpec, ScheduleKind};
use specrt::mem::ElemSize;
use specrt::spec::{IterationNumbering, ProtocolKind, TestPlan};
use specrt::{ParallelizationStrategy, SpeculativeRuntime};

const K: [u64; 5] = [1, 2, 3, 4, 1];
const L: [u64; 5] = [2, 2, 4, 4, 2];
const B1: [bool; 5] = [true, false, true, false, true];

fn main() {
    // --- Pure algorithm: reproduce the figure's shadow arrays. ---
    let mut sh = LrpdShadow::new(5);
    for i in 0..5u64 {
        let iter = i + 1;
        sh.mark_read(K[i as usize], iter);
        if B1[i as usize] {
            sh.mark_write(L[i as usize], iter);
        }
    }
    println!("shadow arrays after marking (elements 1..4):");
    let bits = |f: &dyn Fn(u64) -> bool| -> String {
        (1..=4).map(|e| if f(e) { '1' } else { '0' }).collect()
    };
    println!("  A_w  = {}", bits(&|e| sh.a_w(e)));
    println!("  A_r  = {}", bits(&|e| sh.a_r(e)));
    println!("  A_np = {}", bits(&|e| sh.a_np(e)));
    println!("  Atw  = {}   Atm = {}", sh.atw(), sh.atm());
    let verdict = sh.analyze(true);
    println!("analysis: {verdict:?}");
    assert!(matches!(verdict, LrpdOutcome::NotParallel(_)));

    // --- Full machine: the same loop under SW and HW schemes. ---
    let a = ArrayId(0);
    let karr = ArrayId(1);
    let larr = ArrayId(2);
    let barr = ArrayId(3);
    let carr = ArrayId(4);
    let mut b = ProgramBuilder::new();
    let ki = b.load(karr, Operand::Iter);
    let z = b.load(a, Operand::Reg(ki));
    let cond = b.load(barr, Operand::Iter);
    let skip = b.label();
    b.bz(Operand::Reg(cond), skip);
    let li = b.load(larr, Operand::Iter);
    let ci = b.load(carr, Operand::Iter);
    let sum = b.binop(BinOp::FAdd, Operand::Reg(z), Operand::Reg(ci));
    b.store(a, Operand::Reg(li), Operand::Reg(sum));
    b.bind(skip);
    let body = b.build().unwrap();

    let mut plan = TestPlan::new();
    plan.set(a, ProtocolKind::NonPriv);
    let spec = LoopSpec {
        name: "figure2".into(),
        body,
        iters: 5,
        arrays: vec![
            ArrayDecl::with_init(
                a,
                ElemSize::W8,
                (0..5).map(|i| Scalar::Float(i as f64)).collect(),
            ),
            ArrayDecl::with_init(
                karr,
                ElemSize::W8,
                K.iter().map(|&v| Scalar::Int(v as i64)).collect(),
            ),
            ArrayDecl::with_init(
                larr,
                ElemSize::W8,
                L.iter().map(|&v| Scalar::Int(v as i64)).collect(),
            ),
            ArrayDecl::with_init(
                barr,
                ElemSize::W8,
                B1.iter().map(|&v| Scalar::Int(v as i64)).collect(),
            ),
            ArrayDecl::with_init(
                carr,
                ElemSize::W8,
                (0..5).map(|i| Scalar::Float(10.0 + i as f64)).collect(),
            ),
        ],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Static,
        live_after: vec![a],
        stamp_window: None,
    };

    let runtime = SpeculativeRuntime::new(4);
    let serial = runtime.run(&spec, ParallelizationStrategy::Serial);
    let sw = runtime.run(&spec, ParallelizationStrategy::SoftwareIterationWise);
    let hw = runtime.run(&spec, ParallelizationStrategy::Hardware);
    println!("\nfull machine:");
    println!(
        "  SW verdict: passed={:?} ({})",
        sw.passed,
        sw.failure.as_deref().unwrap_or("-")
    );
    println!(
        "  HW verdict: passed={:?} ({})",
        hw.passed,
        hw.failure.as_deref().unwrap_or("-")
    );
    assert_eq!(sw.passed, Some(false));
    assert_eq!(hw.passed, Some(false));
    for r in [&sw, &hw] {
        assert!(r.final_image.same_contents(&serial.final_image, &[a]));
    }
    println!("  both schemes rejected the loop and recovered to the serial state ✓");
}
