//! Irregular scatter-update: a sparse-solver-style kernel compared under
//! every strategy.
//!
//! This is the class of loop the paper's introduction motivates (SPICE,
//! DYNA-3D, GAUSSIAN, …): each iteration updates a row of a state vector
//! through an input-dependent index list, with real numeric work per
//! element. We run it Serial / Unchecked (Ideal) / Software-LRPD /
//! Hardware and print the paper-style comparison: speedups and
//! Busy/Sync/Mem breakdowns.
//!
//! Run with: `cargo run --release --example irregular_scatter`

use specrt::ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
use specrt::machine::{ArrayDecl, LoopSpec, ScheduleKind};
use specrt::mem::ElemSize;
use specrt::report::{f2, Table};
use specrt::spec::{IterationNumbering, ProtocolKind, TestPlan};
use specrt::{ParallelizationStrategy, SpeculativeRuntime};

fn build_loop(n: u64, row: u64) -> LoopSpec {
    let state = ArrayId(0); // scattered state vector (under test)
    let rows = ArrayId(1); // row start per iteration (input-dependent)
    let coef = ArrayId(2); // read-only coefficients

    let mut b = ProgramBuilder::new();
    let base = b.load(rows, Operand::Iter);
    let j = b.mov(Operand::ImmI(0));
    let top = b.label();
    let done = b.label();
    b.bind(top);
    let c = b.binop(BinOp::CmpLt, Operand::Reg(j), Operand::ImmI(row as i64));
    b.bz(Operand::Reg(c), done);
    let idx = b.binop(BinOp::Add, Operand::Reg(base), Operand::Reg(j));
    let v = b.load(state, Operand::Reg(idx));
    let cj = b.binop(BinOp::And, Operand::Reg(j), Operand::ImmI(63));
    let cv = b.load(coef, Operand::Reg(cj));
    let v2 = b.binop(BinOp::FMul, Operand::Reg(v), Operand::Reg(cv));
    let v3 = b.binop(BinOp::FAdd, Operand::Reg(v2), Operand::ImmF(0.01));
    b.compute(4); // stencil arithmetic
    b.store(state, Operand::Reg(idx), Operand::Reg(v3));
    b.binop_into(j, BinOp::Add, Operand::Reg(j), Operand::ImmI(1));
    b.jmp(top);
    b.bind(done);
    let body = b.build().expect("body verifies");

    // Rows are disjoint (a matrix coloring the compiler cannot prove).
    let mut order: Vec<u64> = (0..n).collect();
    // Simple deterministic shuffle.
    for i in (1..order.len()).rev() {
        order.swap(i, (i * 7919) % (i + 1));
    }
    let rows_init: Vec<Scalar> = order
        .iter()
        .map(|&r| Scalar::Int((r * row) as i64))
        .collect();

    let mut plan = TestPlan::new();
    plan.set(state, ProtocolKind::NonPriv);
    LoopSpec {
        name: "irregular-scatter".into(),
        body,
        iters: n,
        arrays: vec![
            ArrayDecl::with_init(
                state,
                ElemSize::W8,
                (0..n * row)
                    .map(|i| Scalar::Float(i as f64 * 1e-3))
                    .collect(),
            ),
            ArrayDecl::with_init(rows, ElemSize::W8, rows_init),
            ArrayDecl::with_init(
                coef,
                ElemSize::W8,
                (0..64)
                    .map(|i| Scalar::Float(1.0 + i as f64 * 1e-2))
                    .collect(),
            ),
        ],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Static,
        live_after: vec![state],
        stamp_window: None,
    }
}

fn main() {
    let spec = build_loop(64, 48);
    let runtime = SpeculativeRuntime::new(16);

    let mut table = Table::new(vec![
        "strategy", "cycles", "speedup", "busy", "sync", "mem", "verdict",
    ]);
    let serial = runtime.run(&spec, ParallelizationStrategy::Serial);
    for (label, strategy) in [
        ("Serial", ParallelizationStrategy::Serial),
        ("Ideal", ParallelizationStrategy::Unchecked),
        (
            "SW (proc-wise)",
            ParallelizationStrategy::SoftwareProcessorWise,
        ),
        ("HW", ParallelizationStrategy::Hardware),
    ] {
        let r = runtime.run(&spec, strategy);
        table.row(vec![
            label.into(),
            r.total_cycles.raw().to_string(),
            f2(r.speedup_over(&serial)),
            r.breakdown.busy.raw().to_string(),
            r.breakdown.sync.raw().to_string(),
            r.breakdown.mem.raw().to_string(),
            match r.passed {
                Some(true) => "parallel".into(),
                Some(false) => "serialized".into(),
                None => "-".to_string(),
            },
        ]);
        assert!(
            r.final_image
                .same_contents(&serial.final_image, &[ArrayId(0)]),
            "{label}: result mismatch"
        );
    }
    println!("{}", table.render());
    println!("all strategies produce bit-identical final state ✓");
}
