//! Privatization with read-in and copy-out (paper §2.2.3 / §3.3).
//!
//! A molecular-dynamics-style accumulation: early iterations only *read* a
//! parameter table, later iterations *overwrite* parts of it, and the table
//! is live after the loop. That pattern (Figure 3 of the paper) defeats the
//! basic privatization test but passes the hardware privatization protocol
//! with **read-in** (private copies lazily initialized from the shared
//! array) and **copy-out** (last writer merged back at loop end).
//!
//! Run with: `cargo run --release --example privatized_workspace`

use specrt::ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
use specrt::machine::{ArrayDecl, LoopSpec, ScheduleKind};
use specrt::mem::ElemSize;
use specrt::spec::{IterationNumbering, ProtocolKind, TestPlan};
use specrt::{ParallelizationStrategy, SpeculativeRuntime};

fn main() {
    const N: u64 = 96; // iterations
    const TAB: u64 = 32; // parameter table size
    let table = ArrayId(0);
    let out = ArrayId(1);

    // Iterations 0..N/2 read table[i % TAB]; iterations N/2..N first write
    // then read their slot. Reads therefore never follow a write from an
    // earlier iteration: MaxR1st <= MinW holds and the loop is parallel
    // with read-in/copy-out.
    let mut b = ProgramBuilder::new();
    let slot = b.binop(BinOp::Rem, Operand::Iter, Operand::ImmI(TAB as i64));
    let is_late = b.binop(BinOp::CmpLe, Operand::ImmI((N / 2) as i64), Operand::Iter);
    let read_only = b.label();
    let end = b.label();
    b.bnz(Operand::Reg(is_late), read_only);
    // Early iteration: consume the original table value.
    let v = b.load(table, Operand::Reg(slot));
    let r = b.binop(BinOp::FMul, Operand::Reg(v), Operand::ImmF(2.0));
    b.store(out, Operand::Iter, Operand::Reg(r));
    b.jmp(end);
    b.bind(read_only);
    // Late iteration: refresh its slot, then use the refreshed value.
    let nv = b.binop(BinOp::FAdd, Operand::Iter, Operand::ImmF(0.5));
    b.store(table, Operand::Reg(slot), Operand::Reg(nv));
    let v2 = b.load(table, Operand::Reg(slot));
    b.store(out, Operand::Iter, Operand::Reg(v2));
    b.bind(end);
    b.compute(40);
    let body = b.build().expect("body verifies");

    let mut plan = TestPlan::new();
    plan.set(
        table,
        ProtocolKind::Priv {
            read_in: true,
            copy_out: true,
        },
    );

    let spec = LoopSpec {
        name: "privatized-workspace".into(),
        body,
        iters: N,
        arrays: vec![
            ArrayDecl::with_init(
                table,
                ElemSize::W8,
                (0..TAB).map(|i| Scalar::Float(100.0 + i as f64)).collect(),
            ),
            ArrayDecl::zeroed(out, N, ElemSize::W8),
        ],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Static,
        live_after: vec![table, out],
        stamp_window: None,
    };

    let runtime = SpeculativeRuntime::new(8);
    let serial = runtime.run(&spec, ParallelizationStrategy::Serial);
    let hw = runtime.run(&spec, ParallelizationStrategy::Hardware);

    println!("privatization verdict: passed = {:?}", hw.passed);
    println!(
        "serial {} vs HW {} → speedup {:.2}x",
        serial.total_cycles,
        hw.total_cycles,
        hw.speedup_over(&serial)
    );
    println!("read-ins performed: {}", hw.stats.get("priv_read_ins"));
    assert_eq!(hw.passed, Some(true), "loop must pass with read-in support");
    assert!(
        hw.final_image
            .same_contents(&serial.final_image, &[table, out]),
        "copy-out must reconstruct the serially-final table"
    );
    println!("copy-out reconstructed the live table exactly ✓");

    // The same loop *without* read-in support fails the basic privatization
    // test: early reads would consume uninitialized private copies, so the
    // compiler must request the full protocol.
    let mut basic = spec.clone();
    basic.plan.set(table, ProtocolKind::NonPriv);
    let basic_run = runtime.run(&basic, ParallelizationStrategy::Hardware);
    println!(
        "same loop under the non-privatization test: passed = {:?} ({})",
        basic_run.passed,
        basic_run.failure.as_deref().unwrap_or("-")
    );
    assert_eq!(basic_run.passed, Some(false));
    assert!(
        basic_run
            .final_image
            .same_contents(&serial.final_image, &[table, out]),
        "failed speculation must still end in the serial state"
    );
}
