//! Failure and recovery: the paper's headline latency advantage.
//!
//! A time-stepping loop carries a real flow dependence (iteration `i`
//! consumes iteration `i-8`'s result across processors). Both run-time
//! tests correctly reject it — but the hardware scheme aborts the moment
//! the coherence protocol sees the dependence, while the software scheme
//! only learns after running the whole loop (paper §6.2 / Figure 13).
//!
//! Run with: `cargo run --release --example failure_recovery`

use specrt::ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
use specrt::machine::{ArrayDecl, LoopSpec, ScheduleKind};
use specrt::mem::ElemSize;
use specrt::spec::{IterationNumbering, ProtocolKind, TestPlan};
use specrt::{ParallelizationStrategy, SpeculativeRuntime};

fn main() {
    const N: u64 = 128;
    let a = ArrayId(0);

    // A(i) = A(i-8) + 1 for i >= 8: a genuine cross-iteration flow
    // dependence with distance 8 — iterations land on different processors.
    let mut b = ProgramBuilder::new();
    let lo = b.binop(BinOp::CmpLt, Operand::Iter, Operand::ImmI(8));
    let skip = b.label();
    b.bnz(Operand::Reg(lo), skip);
    let prev = b.binop(BinOp::Sub, Operand::Iter, Operand::ImmI(8));
    let v = b.load(a, Operand::Reg(prev));
    let v2 = b.binop(BinOp::FAdd, Operand::Reg(v), Operand::ImmF(1.0));
    b.store(a, Operand::Iter, Operand::Reg(v2));
    b.bind(skip);
    b.compute(60);
    let body = b.build().expect("body verifies");

    let mut plan = TestPlan::new();
    plan.set(a, ProtocolKind::NonPriv);
    let spec = LoopSpec {
        name: "time-step".into(),
        body,
        iters: N,
        arrays: vec![ArrayDecl::with_init(
            a,
            ElemSize::W8,
            (0..N).map(|i| Scalar::Float(i as f64)).collect(),
        )],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Dynamic { block: 2 },
        live_after: vec![a],
        stamp_window: None,
    };

    let runtime = SpeculativeRuntime::new(16);
    let serial = runtime.run(&spec, ParallelizationStrategy::Serial);
    let hw = runtime.run(&spec, ParallelizationStrategy::Hardware);
    let sw = runtime.run(&spec, ParallelizationStrategy::SoftwareIterationWise);

    println!("serial reference: {}", serial.total_cycles);
    println!(
        "HW: detected '{}' after {} of {} iterations → total {} ({:.2}x serial)",
        hw.failure.as_deref().unwrap_or("?"),
        hw.iterations,
        N,
        hw.total_cycles,
        hw.total_cycles.raw() as f64 / serial.total_cycles.raw() as f64
    );
    println!(
        "SW: detected '{}' after {} of {} iterations → total {} ({:.2}x serial)",
        sw.failure.as_deref().unwrap_or("?"),
        sw.iterations,
        N,
        sw.total_cycles,
        sw.total_cycles.raw() as f64 / serial.total_cycles.raw() as f64
    );

    assert_eq!(hw.passed, Some(false));
    assert_eq!(sw.passed, Some(false));
    assert!(hw.iterations < N, "HW aborts mid-loop");
    assert_eq!(sw.iterations, N, "SW must finish the loop before it knows");
    assert!(
        hw.total_cycles < sw.total_cycles,
        "early detection is cheaper"
    );
    for r in [&hw, &sw] {
        assert!(
            r.final_image.same_contents(&serial.final_image, &[a]),
            "restore + serial re-execution must reproduce the serial state"
        );
    }
    println!("both schemes recovered to the exact serial state ✓");
}
