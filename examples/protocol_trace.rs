//! Watch the hardware protocol work, access by access.
//!
//! This example drives the memory-system layer (`specrt::proto`) directly —
//! no loop executor — replaying the access pattern of the paper's Figure 2
//! loop on two processors with event tracing enabled. The printed trace
//! shows the coherence traffic, the access-bit messages the
//! non-privatization protocol adds, and the exact moment the speculation
//! FAILs: iteration 4 (on processor 1) reads element 4, which iteration 3
//! (on processor 0) wrote — the first of Figure 2's cross-iteration
//! dependences to cross a processor boundary.
//!
//! Run with: `cargo run --release --example protocol_trace`

use specrt::engine::Cycles;
use specrt::ir::ArrayId;
use specrt::mem::{ElemSize, PlacementPolicy, ProcId};
use specrt::proto::{MemSystem, MemSystemConfig};
use specrt::spec::{IterationNumbering, ProtocolKind, TestPlan};

const A: ArrayId = ArrayId(0);

fn main() {
    let mut ms = MemSystem::new(MemSystemConfig {
        procs: 2,
        ..MemSystemConfig::default()
    });
    ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
    let mut plan = TestPlan::new();
    plan.set(A, ProtocolKind::NonPriv);
    ms.configure_loop(plan, IterationNumbering::iteration_wise());
    ms.enable_event_trace(64);

    // Figure 2: K = [1,2,3,4,1], L = [2,2,4,4,2], B1 = [T,F,T,F,T].
    // Iterations 1..=3 run on cpu0, 4..=5 on cpu1 (static chunking).
    let k = [1u64, 2, 3, 4, 1];
    let l = [2u64, 2, 4, 4, 2];
    let b1 = [true, false, true, false, true];

    println!("access pattern of Figure 2 under the non-privatization protocol:\n");
    let mut now = Cycles(0);
    for i in 0..5 {
        let proc = ProcId(if i < 3 { 0 } else { 1 });
        // z = A(K(i))
        let out = ms.read(proc, A, k[i], now);
        now = out.complete_at + Cycles(40);
        // if (B1(i)) A(L(i)) = z + C(i)
        if b1[i] {
            let out = ms.write(proc, A, l[i], now);
            now = out.complete_at + Cycles(40);
        }
        if ms.failure().is_some() {
            break;
        }
    }
    ms.drain_all_messages();

    for ev in ms.take_event_trace() {
        println!("{ev}");
    }
    match ms.failure() {
        Some((reason, at)) => {
            println!("\nspeculation FAILED at {at}: {reason}");
            println!("(the machine would now abort, restore, and re-execute serially)");
        }
        None => println!("\nspeculation passed"),
    }
    assert!(ms.failure().is_some(), "Figure 2's loop is not parallel");
}
