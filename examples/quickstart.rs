//! Quickstart: speculatively parallelize a loop the compiler cannot
//! analyze.
//!
//! The loop is the paper's motivating pattern (Figure 1-c): an array
//! updated through an input-dependent index array,
//!
//! ```text
//! do i = 1, n
//!     A(K(i)) = A(K(i)) * 1.5 + 1.0
//! enddo
//! ```
//!
//! Whether this is parallel depends entirely on the contents of `K`. We run
//! it under the paper's hardware scheme on a simulated 8-processor CC-NUMA
//! machine: the cache-coherence protocol extensions test for cross-iteration
//! dependences while the loop runs.
//!
//! Run with: `cargo run --release --example quickstart`

use specrt::ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
use specrt::machine::{ArrayDecl, LoopSpec, ScheduleKind};
use specrt::mem::ElemSize;
use specrt::spec::{IterationNumbering, ProtocolKind, TestPlan};
use specrt::{ParallelizationStrategy, SpeculativeRuntime};

fn main() {
    const N: u64 = 256;
    let a = ArrayId(0);
    let k = ArrayId(1);

    // The loop body, in the runtime's mini-IR (one iteration).
    let mut b = ProgramBuilder::new();
    let idx = b.load(k, Operand::Iter); // idx = K(i)
    let v = b.load(a, Operand::Reg(idx)); // v = A(idx)
    let v2 = b.binop(BinOp::FMul, Operand::Reg(v), Operand::ImmF(1.5));
    let v3 = b.binop(BinOp::FAdd, Operand::Reg(v2), Operand::ImmF(1.0));
    b.store(a, Operand::Reg(idx), Operand::Reg(v3)); // A(idx) = v*1.5 + 1
    b.compute(50); // the rest of the iteration's work
    let body = b.build().expect("body verifies");

    // Input data: K happens to be a permutation, so the loop is parallel —
    // but only the run-time test can know that.
    let k_init: Vec<Scalar> = (0..N).map(|i| Scalar::Int(((i * 13) % N) as i64)).collect();
    let a_init: Vec<Scalar> = (0..N).map(|i| Scalar::Float(i as f64)).collect();

    // Put A under the non-privatization test.
    let mut plan = TestPlan::new();
    plan.set(a, ProtocolKind::NonPriv);

    let spec = LoopSpec {
        name: "quickstart".into(),
        body,
        iters: N,
        arrays: vec![
            ArrayDecl::with_init(a, ElemSize::W8, a_init),
            ArrayDecl::with_init(k, ElemSize::W8, k_init),
        ],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Static,
        live_after: vec![a],
        stamp_window: None,
    };

    let runtime = SpeculativeRuntime::new(8);
    let serial = runtime.run(&spec, ParallelizationStrategy::Serial);
    let hw = runtime.run(&spec, ParallelizationStrategy::Hardware);

    println!("loop: {} iterations on {} processors", N, runtime.procs());
    println!("serial execution: {}", serial.total_cycles);
    println!(
        "speculative (HW): {}  → speedup {:.2}x",
        hw.total_cycles,
        hw.speedup_over(&serial)
    );
    println!(
        "run-time test verdict: {}",
        if hw.passed == Some(true) {
            "parallel (speculation kept)"
        } else {
            "not parallel (re-executed serially)"
        }
    );
    assert!(
        hw.final_image.same_contents(&serial.final_image, &[a]),
        "speculative result must equal serial"
    );
    println!("final array contents verified against serial execution ✓");
}
