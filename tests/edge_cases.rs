//! Edge-case integration tests: degenerate loop shapes the runtime must
//! handle gracefully.

use specrt::ir::{ArrayId, Operand, ProgramBuilder, Scalar};
use specrt::machine::{run_scenario, ArrayDecl, LoopSpec, Scenario, ScheduleKind, SwVariant};
use specrt::mem::ElemSize;
use specrt::spec::{IterationNumbering, ProtocolKind, TestPlan};

const A: ArrayId = ArrayId(0);

fn base_spec(iters: u64, body_builder: impl FnOnce(&mut ProgramBuilder)) -> LoopSpec {
    let mut b = ProgramBuilder::new();
    body_builder(&mut b);
    let mut plan = TestPlan::new();
    plan.set(A, ProtocolKind::NonPriv);
    LoopSpec {
        name: "edge".into(),
        body: b.build().unwrap(),
        iters,
        arrays: vec![ArrayDecl::with_init(
            A,
            ElemSize::W8,
            (0..64).map(|i| Scalar::Float(i as f64)).collect(),
        )],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Static,
        live_after: vec![A],
        stamp_window: None,
    }
}

#[test]
fn single_iteration_loop() {
    let spec = base_spec(1, |b| {
        b.store(A, Operand::Iter, Operand::ImmF(42.0));
    });
    for scenario in [
        Scenario::Serial,
        Scenario::Hw,
        Scenario::Sw(SwVariant::IterationWise),
        Scenario::Sw(SwVariant::ProcessorWise),
    ] {
        let r = run_scenario(&spec, scenario, 8);
        assert_ne!(
            r.passed,
            Some(false),
            "{scenario}: one iteration cannot conflict"
        );
        assert_eq!(r.final_image.read(A, 0), Scalar::Float(42.0), "{scenario}");
    }
}

#[test]
fn more_processors_than_iterations() {
    let spec = base_spec(3, |b| {
        b.store(A, Operand::Iter, Operand::Iter);
        b.compute(10);
    });
    let hw = run_scenario(&spec, Scenario::Hw, 16);
    assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
    assert_eq!(hw.iterations, 3);
}

#[test]
fn empty_body_loop() {
    let spec = base_spec(16, |b| {
        b.compute(5);
    });
    let hw = run_scenario(&spec, Scenario::Hw, 4);
    assert_eq!(hw.passed, Some(true), "no accesses, nothing to conflict");
    let sw = run_scenario(&spec, Scenario::Sw(SwVariant::ProcessorWise), 4);
    assert_eq!(sw.passed, Some(true));
}

#[test]
fn read_only_loop_under_test_passes_everywhere() {
    let spec = {
        let mut s = base_spec(32, |b| {
            b.load(A, Operand::Iter);
            b.compute(8);
        });
        s.live_after.clear();
        s
    };
    for scenario in [
        Scenario::Hw,
        Scenario::Sw(SwVariant::IterationWise),
        Scenario::Sw(SwVariant::ProcessorWise),
    ] {
        let r = run_scenario(&spec, scenario, 8);
        assert_eq!(r.passed, Some(true), "{scenario}: {:?}", r.failure);
    }
}

#[test]
fn every_iteration_same_element_fails_hw_quickly() {
    let spec = base_spec(64, |b| {
        let v = b.load(A, Operand::ImmI(7));
        let v2 = b.binop(specrt::ir::BinOp::FAdd, Operand::Reg(v), Operand::ImmF(1.0));
        b.store(A, Operand::ImmI(7), Operand::Reg(v2));
        b.compute(20);
    });
    let serial = run_scenario(&spec, Scenario::Serial, 8);
    let hw = run_scenario(&spec, Scenario::Hw, 8);
    assert_eq!(hw.passed, Some(false));
    assert!(hw.iterations < 64);
    assert!(hw.final_image.same_contents(&serial.final_image, &[A]));
    // The final value is 64 increments over the initial 7.0.
    assert_eq!(hw.final_image.read(A, 7), Scalar::Float(7.0 + 64.0));
}

#[test]
fn dynamic_block_one_works_on_parallel_loops() {
    let mut spec = base_spec(48, |b| {
        b.store(A, Operand::Iter, Operand::Iter);
        b.compute(15);
    });
    spec.schedule = ScheduleKind::Dynamic { block: 1 };
    let hw = run_scenario(&spec, Scenario::Hw, 8);
    assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
    assert_eq!(hw.iterations, 48);
}

#[test]
fn block_cyclic_schedule_end_to_end() {
    let mut spec = base_spec(50, |b| {
        b.store(A, Operand::Iter, Operand::Iter);
        b.compute(15);
    });
    spec.schedule = ScheduleKind::BlockCyclic { block: 3 };
    let serial = run_scenario(&spec, Scenario::Serial, 8);
    let hw = run_scenario(&spec, Scenario::Hw, 8);
    assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
    assert!(hw.final_image.same_contents(&serial.final_image, &[A]));
}

#[test]
fn zero_iteration_loop() {
    // Nothing runs: every scenario must pass trivially and leave the
    // initial image untouched. The fuzzer generator covers this shape as
    // template seed 0.
    let spec = base_spec(0, |b| {
        b.store(A, Operand::Iter, Operand::ImmF(1.0));
    });
    let serial = run_scenario(&spec, Scenario::Serial, 4);
    for scenario in [
        Scenario::Hw,
        Scenario::Sw(SwVariant::IterationWise),
        Scenario::Sw(SwVariant::ProcessorWise),
    ] {
        let r = run_scenario(&spec, scenario, 4);
        assert_ne!(r.passed, Some(false), "{scenario}: nothing ran");
        assert_eq!(r.iterations, 0, "{scenario}");
        assert!(
            r.final_image.same_contents(&serial.final_image, &[A]),
            "{scenario}: image must stay at its initial contents"
        );
    }
}

#[test]
fn all_processors_hammer_one_element() {
    // Every iteration reads and writes the same element of a one-element
    // array (fuzzer template seed 2): HW must fail, abort, and restore the
    // serial result exactly.
    let mut b = ProgramBuilder::new();
    let v = b.load(A, Operand::ImmI(0));
    let v2 = b.binop(specrt::ir::BinOp::Add, Operand::Reg(v), Operand::ImmI(1));
    b.store(A, Operand::ImmI(0), Operand::Reg(v2));
    let mut plan = TestPlan::new();
    plan.set(A, ProtocolKind::NonPriv);
    let spec = LoopSpec {
        name: "hammer".into(),
        body: b.build().unwrap(),
        iters: 8,
        arrays: vec![ArrayDecl::zeroed(A, 1, ElemSize::W8)],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Static,
        live_after: vec![A],
        stamp_window: None,
    };
    let serial = run_scenario(&spec, Scenario::Serial, 4);
    let hw = run_scenario(&spec, Scenario::Hw, 4);
    assert_eq!(hw.passed, Some(false), "cross-processor element sharing");
    assert!(hw.final_image.same_contents(&serial.final_image, &[A]));
    assert_eq!(hw.final_image.read(A, 0), Scalar::Int(8));
}

#[test]
fn write_only_loop() {
    // Disjoint writes, no reads of the array under test (fuzzer template
    // seed 3): no flow dependences, every protocol must pass.
    let spec = base_spec(32, |b| {
        b.store(A, Operand::Iter, Operand::Iter);
        b.compute(5);
    });
    let serial = run_scenario(&spec, Scenario::Serial, 8);
    for scenario in [
        Scenario::Hw,
        Scenario::Sw(SwVariant::IterationWise),
        Scenario::Sw(SwVariant::ProcessorWise),
    ] {
        let r = run_scenario(&spec, scenario, 8);
        assert_eq!(r.passed, Some(true), "{scenario}: {:?}", r.failure);
        assert!(r.final_image.same_contents(&serial.final_image, &[A]));
    }
}

#[test]
fn arrays_with_one_element() {
    // A single-element array under test, written by exactly one iteration.
    let mut b = ProgramBuilder::new();
    let c = b.binop(specrt::ir::BinOp::CmpEq, Operand::Iter, Operand::ImmI(5));
    let skip = b.label();
    b.bz(Operand::Reg(c), skip);
    b.store(A, Operand::ImmI(0), Operand::ImmF(9.0));
    b.bind(skip);
    b.compute(10);
    let mut plan = TestPlan::new();
    plan.set(A, ProtocolKind::NonPriv);
    let spec = LoopSpec {
        name: "one-elem".into(),
        body: b.build().unwrap(),
        iters: 16,
        arrays: vec![ArrayDecl::zeroed(A, 1, ElemSize::W8)],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Static,
        live_after: vec![A],
        stamp_window: None,
    };
    let hw = run_scenario(&spec, Scenario::Hw, 4);
    assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
    assert_eq!(hw.final_image.read(A, 0), Scalar::Float(9.0));
}
