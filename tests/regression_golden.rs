//! Golden-value regression tests.
//!
//! The simulator is bit-deterministic, so key scenario results can be
//! pinned exactly. These values WILL change when the machine model or the
//! workload calibration is intentionally modified — update them together
//! with `EXPERIMENTS.md` in that case. What they guard against is the
//! *unintentional* drift of a refactor that was supposed to be
//! behaviour-preserving.

use specrt::machine::{run_scenario, Scenario, SwVariant};
use specrt::workloads::{adm, ocean, track};

#[test]
fn ocean_first_invocation_is_pinned() {
    let spec = ocean::instance(0, false);
    let serial = run_scenario(&spec, Scenario::Serial, 8);
    let hw = run_scenario(&spec, Scenario::Hw, 8);
    let sw = run_scenario(&spec, Scenario::Sw(SwVariant::ProcessorWise), 8);
    // Repeating the run reproduces the exact cycle counts.
    let serial2 = run_scenario(&spec, Scenario::Serial, 8);
    assert_eq!(serial.total_cycles, serial2.total_cycles);
    // Ordering invariants that any recalibration must preserve.
    assert_eq!(hw.passed, Some(true));
    assert_eq!(sw.passed, Some(true));
    assert!(hw.total_cycles < sw.total_cycles);
    assert!(sw.total_cycles < serial.total_cycles);
    // Pinned absolute values (update deliberately, with EXPERIMENTS.md).
    insta_like("ocean serial", serial.total_cycles.raw(), 371_686);
    insta_like("ocean hw", hw.total_cycles.raw(), 151_854);
    insta_like("ocean sw", sw.total_cycles.raw(), 283_471);
}

#[test]
fn adm_first_invocation_is_pinned() {
    let spec = adm::instance(0, false);
    let serial = run_scenario(&spec, Scenario::Serial, 16);
    let hw = run_scenario(&spec, Scenario::Hw, 16);
    assert_eq!(hw.passed, Some(true));
    insta_like("adm serial", serial.total_cycles.raw(), 50_745);
    insta_like("adm hw", hw.total_cycles.raw(), 5_255);
}

#[test]
fn track_paired_instance_abort_point_is_pinned() {
    let mut spec = track::instance(3, true);
    spec.schedule = specrt::machine::ScheduleKind::Dynamic { block: 1 };
    let hw = run_scenario(&spec, Scenario::Hw, 16);
    assert_eq!(hw.passed, Some(false));
    insta_like("track abort iterations", hw.iterations, 11);
}

/// Exact comparison with a helpful failure message.
fn insta_like(what: &str, got: u64, want: u64) {
    assert_eq!(
        got, want,
        "{what}: got {got}, pinned {want} — if this change is intentional, \
         update the golden value and re-run the EXPERIMENTS.md tables"
    );
}

/// One pinned verdict-plus-image assertion per protocol variant, all over
/// the same workload: the conformance harness's "workspace" template
/// (every iteration writes element 0, then reads it back). The pattern is
/// the paper's privatizable-workspace idiom: it MUST abort under
/// non-privatization (cross-processor writes to one element) and MUST pass
/// under both privatization variants and both software stamp layouts.
mod per_protocol_variant {
    use specrt::check::{CaseSpec, ARR_A, ARR_OUT};
    use specrt::machine::{run_scenario, RunResult, Scenario, SwVariant};
    use specrt::spec::ProtocolKind;

    fn workspace() -> CaseSpec {
        // Template seed 5 of the fuzzer generator: 2 procs, 2 elements,
        // six iterations of [Write(0), Read(0)].
        CaseSpec::generate(5)
    }

    fn serial() -> RunResult {
        let case = workspace();
        run_scenario(
            &case.loop_spec(ProtocolKind::NonPriv, true),
            Scenario::Serial,
            case.procs,
        )
    }

    #[test]
    fn hw_nonpriv_aborts_and_restores_serial_image() {
        let case = workspace();
        let r = run_scenario(
            &case.loop_spec(ProtocolKind::NonPriv, true),
            Scenario::Hw,
            case.procs,
        );
        assert_eq!(r.passed, Some(false), "workspace sharing must abort");
        assert!(r
            .final_image
            .same_contents(&serial().final_image, &[ARR_A, ARR_OUT]));
    }

    #[test]
    fn hw_priv_read_in_passes_with_serial_image() {
        let case = workspace();
        let r = run_scenario(
            &case.loop_spec(
                ProtocolKind::Priv {
                    read_in: true,
                    copy_out: true,
                },
                true,
            ),
            Scenario::Hw,
            case.procs,
        );
        assert_eq!(r.passed, Some(true), "{:?}", r.failure);
        assert!(r
            .final_image
            .same_contents(&serial().final_image, &[ARR_A, ARR_OUT]));
    }

    #[test]
    fn hw_priv3_no_read_in_passes_on_live_outputs() {
        let case = workspace();
        let r = run_scenario(
            &case.loop_spec(
                ProtocolKind::Priv {
                    read_in: false,
                    copy_out: false,
                },
                false,
            ),
            Scenario::Hw,
            case.procs,
        );
        assert_eq!(r.passed, Some(true), "{:?}", r.failure);
        // The array under test is dead after the loop; only the plain
        // output array is comparable.
        assert!(r
            .final_image
            .same_contents(&serial().final_image, &[ARR_OUT]));
    }

    #[test]
    fn sw_lrpd_iteration_wise_passes_with_serial_image() {
        let case = workspace();
        let r = run_scenario(
            &case.loop_spec(
                ProtocolKind::Priv {
                    read_in: true,
                    copy_out: true,
                },
                true,
            ),
            Scenario::Sw(SwVariant::IterationWise),
            case.procs,
        );
        assert_eq!(r.passed, Some(true), "{:?}", r.failure);
        assert!(r
            .final_image
            .same_contents(&serial().final_image, &[ARR_A, ARR_OUT]));
    }

    #[test]
    fn sw_lrpd_processor_wise_passes_with_serial_image() {
        let case = workspace();
        let r = run_scenario(
            &case.loop_spec(
                ProtocolKind::Priv {
                    read_in: true,
                    copy_out: true,
                },
                true,
            ),
            Scenario::Sw(SwVariant::ProcessorWise),
            case.procs,
        );
        assert_eq!(r.passed, Some(true), "{:?}", r.failure);
        assert!(r
            .final_image
            .same_contents(&serial().final_image, &[ARR_A, ARR_OUT]));
    }
}
