//! Golden-value regression tests.
//!
//! The simulator is bit-deterministic, so key scenario results can be
//! pinned exactly. These values WILL change when the machine model or the
//! workload calibration is intentionally modified — update them together
//! with `EXPERIMENTS.md` in that case. What they guard against is the
//! *unintentional* drift of a refactor that was supposed to be
//! behaviour-preserving.

use specrt::machine::{run_scenario, Scenario, SwVariant};
use specrt::workloads::{adm, ocean, track};

#[test]
fn ocean_first_invocation_is_pinned() {
    let spec = ocean::instance(0, false);
    let serial = run_scenario(&spec, Scenario::Serial, 8);
    let hw = run_scenario(&spec, Scenario::Hw, 8);
    let sw = run_scenario(&spec, Scenario::Sw(SwVariant::ProcessorWise), 8);
    // Repeating the run reproduces the exact cycle counts.
    let serial2 = run_scenario(&spec, Scenario::Serial, 8);
    assert_eq!(serial.total_cycles, serial2.total_cycles);
    // Ordering invariants that any recalibration must preserve.
    assert_eq!(hw.passed, Some(true));
    assert_eq!(sw.passed, Some(true));
    assert!(hw.total_cycles < sw.total_cycles);
    assert!(sw.total_cycles < serial.total_cycles);
    // Pinned absolute values (update deliberately, with EXPERIMENTS.md).
    insta_like("ocean serial", serial.total_cycles.raw(), 371_686);
    insta_like("ocean hw", hw.total_cycles.raw(), 151_854);
    insta_like("ocean sw", sw.total_cycles.raw(), 283_471);
}

#[test]
fn adm_first_invocation_is_pinned() {
    let spec = adm::instance(0, false);
    let serial = run_scenario(&spec, Scenario::Serial, 16);
    let hw = run_scenario(&spec, Scenario::Hw, 16);
    assert_eq!(hw.passed, Some(true));
    insta_like("adm serial", serial.total_cycles.raw(), 50_745);
    insta_like("adm hw", hw.total_cycles.raw(), 5_255);
}

#[test]
fn track_paired_instance_abort_point_is_pinned() {
    let mut spec = track::instance(3, true);
    spec.schedule = specrt::machine::ScheduleKind::Dynamic { block: 1 };
    let hw = run_scenario(&spec, Scenario::Hw, 16);
    assert_eq!(hw.passed, Some(false));
    insta_like("track abort iterations", hw.iterations, 11);
}

/// Exact comparison with a helpful failure message.
fn insta_like(what: &str, got: u64, want: u64) {
    assert_eq!(
        got, want,
        "{what}: got {got}, pinned {want} — if this change is intentional, \
         update the golden value and re-run the EXPERIMENTS.md tables"
    );
}
