//! Integration tests for the paper's headline quantitative claims
//! (abstract, §3.4, §6), at smoke scale.

use specrt::experiments::{evaluate_all, fig11_from, fig13, state_cost_table};
use specrt::machine::{run_scenario, Scenario, SwVariant};
use specrt::spec::StateCost;
use specrt::workloads::{all_workloads, Scale};

/// "Overall, the scheme delivers a speedup of 7 for 16 processors and is
/// twice faster than a related software-only scheme." We check the shape:
/// HW speedup well above 1 on every loop, and HW comfortably ahead of SW
/// on (geometric) average.
#[test]
fn hw_speeds_up_and_beats_sw() {
    let rows = fig11_from(&evaluate_all(Scale::Smoke));
    assert_eq!(rows.len(), 4);
    let mut ratio_product = 1.0;
    for r in &rows {
        assert!(r.hw > 1.2, "{}: HW speedup {:.2} too low", r.workload, r.hw);
        assert!(r.hw > r.sw, "{}: HW must beat SW", r.workload);
        ratio_product *= r.hw / r.sw;
    }
    let geo_mean_ratio = ratio_product.powf(0.25);
    assert!(
        geo_mean_ratio > 1.5,
        "HW should be roughly twice as fast as SW on average, got {geo_mean_ratio:.2}x"
    );
}

/// §6.2: "On average for all the loops, HW takes 22% longer than Serial …
/// SW takes 58% longer than Serial." Shape: failed HW runs stay close to
/// serial; failed SW runs cost noticeably more; HW detects failure early.
#[test]
fn failure_is_cheap_for_hw_and_expensive_for_sw() {
    let rows = fig13(Scale::Smoke);
    let hw_avg: f64 = rows.iter().map(|r| r.hw.total()).sum::<f64>() / rows.len() as f64;
    let sw_avg: f64 = rows.iter().map(|r| r.sw.total()).sum::<f64>() / rows.len() as f64;
    assert!(hw_avg < 1.6, "HW failure average {hw_avg:.2} too high");
    assert!(sw_avg > hw_avg * 1.3, "SW failure must cost clearly more");
    for r in &rows {
        assert!(
            r.hw_iterations_before_abort * 4 < r.iterations.max(4),
            "{}: HW should abort in the first quarter of the loop ({} of {})",
            r.workload,
            r.hw_iterations_before_abort,
            r.iterations
        );
    }
}

/// §3.4 advantage 4: the hardware scheme needs less per-element overhead
/// state than the software scheme, at every configuration in the table.
#[test]
fn hardware_state_is_smaller() {
    for row in state_cost_table() {
        assert!(
            row.hw_dir_bits < row.sw_bits,
            "{}: {} vs {}",
            row.config,
            row.hw_dir_bits,
            row.sw_bits
        );
    }
    // The paper's running example: 16 processors, 2^16-iteration loops.
    let c = StateCost::new(16, (1 << 16) - 1);
    assert_eq!(c.stamp_bits(), 16, "2 bytes per shadow entry (§2.2.2)");
    assert_eq!(c.hw_dir_bits(false), 6, "max(2, 2+log P)");
    assert_eq!(c.hw_dir_bits(true), 32, "max(2 stamps, 2+log P)");
}

/// §5.2's Track story, end to end at smoke scale: the not-fully-parallel
/// instances fail the iteration-wise software test, pass the
/// processor-wise software test, and pass the hardware scheme under
/// small-block dynamic scheduling.
#[test]
fn track_instances_behave_as_reported() {
    let track = all_workloads(Scale::Smoke)
        .into_iter()
        .find(|w| w.name == "track")
        .unwrap();
    let paired = specrt::workloads::track::instance(3, true);
    let iw = run_scenario(&paired, Scenario::Sw(SwVariant::IterationWise), track.procs);
    assert_eq!(iw.passed, Some(false));
    let pw = run_scenario(&paired, Scenario::Sw(SwVariant::ProcessorWise), track.procs);
    assert_eq!(pw.passed, Some(true), "{:?}", pw.failure);
    let hw = run_scenario(&paired, Scenario::Hw, track.procs);
    assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
}

/// Abstract: "detects serial loops very quickly" — on the forced-failure
/// instances the hardware scheme's *total* time stays within a small factor
/// of serial even though it ran the speculation, aborted, restored, and
/// re-executed.
#[test]
fn hw_failure_total_is_bounded() {
    for w in all_workloads(Scale::Smoke) {
        let serial = run_scenario(&w.failure_instance, Scenario::Serial, w.procs);
        let hw = run_scenario(&w.failure_instance, Scenario::Hw, w.procs);
        assert_eq!(hw.passed, Some(false), "{}", w.name);
        let factor = hw.total_cycles.raw() as f64 / serial.total_cycles.raw() as f64;
        assert!(
            factor < 2.0,
            "{}: failed HW run cost {factor:.2}x serial",
            w.name
        );
    }
}

/// Every passing speculative run across all workloads produces the exact
/// serial state (the ultimate correctness bar for the whole stack).
#[test]
fn all_smoke_invocations_match_serial() {
    for w in all_workloads(Scale::Smoke) {
        for spec in &w.invocations {
            let serial = run_scenario(spec, Scenario::Serial, w.procs);
            let live: Vec<_> = spec
                .arrays
                .iter()
                .map(|a| a.id)
                .filter(|&id| {
                    !spec.plan.kind_of(id).is_privatized() || spec.live_after.contains(&id)
                })
                .collect();
            for scenario in [Scenario::Hw, Scenario::Sw(w.sw_variant)] {
                let r = run_scenario(spec, scenario, w.procs);
                assert!(
                    r.final_image.same_contents(&serial.final_image, &live),
                    "{} / {scenario}: diverged (passed {:?}, {:?})",
                    spec.name,
                    r.passed,
                    r.failure
                );
            }
        }
    }
}
