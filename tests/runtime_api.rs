//! Integration tests for the public `SpeculativeRuntime` API surface.

use specrt::machine::SwVariant;
use specrt::report::Table;
use specrt::workloads::{adm, ocean, p3m, track};
use specrt::{ParallelizationStrategy, SpeculativeRuntime};

#[test]
fn runtime_handles_every_workload_instance() {
    let rt16 = SpeculativeRuntime::new(16);
    let rt8 = SpeculativeRuntime::new(8);

    let ocean_run = rt8.run(
        &ocean::instance(0, false),
        ParallelizationStrategy::Hardware,
    );
    assert_eq!(ocean_run.passed, Some(true), "{:?}", ocean_run.failure);

    let p3m_run = rt16.run(
        &p3m::instance(120, false),
        ParallelizationStrategy::Hardware,
    );
    assert_eq!(p3m_run.passed, Some(true), "{:?}", p3m_run.failure);

    let adm_run = rt16.run(&adm::instance(1, false), ParallelizationStrategy::Hardware);
    assert_eq!(adm_run.passed, Some(true), "{:?}", adm_run.failure);

    let track_run = rt16.run(
        &track::instance(0, false),
        ParallelizationStrategy::Hardware,
    );
    assert_eq!(track_run.passed, Some(true), "{:?}", track_run.failure);
}

#[test]
fn run_all_is_consistent_with_individual_runs() {
    let spec = adm::instance(0, false);
    let rt = SpeculativeRuntime::new(8);
    let (serial, ideal, sw, hw) = rt.run_all(&spec, SwVariant::ProcessorWise);
    assert_eq!(
        serial.total_cycles,
        rt.run(&spec, ParallelizationStrategy::Serial).total_cycles
    );
    assert_eq!(
        hw.total_cycles,
        rt.run(&spec, ParallelizationStrategy::Hardware)
            .total_cycles
    );
    assert_eq!(
        sw.total_cycles,
        rt.run(&spec, ParallelizationStrategy::SoftwareProcessorWise)
            .total_cycles
    );
    assert!(ideal.total_cycles <= serial.total_cycles);
}

#[test]
fn deterministic_across_repeated_runs() {
    let spec = track::instance(1, false);
    let rt = SpeculativeRuntime::new(8);
    let a = rt.run(&spec, ParallelizationStrategy::Hardware);
    let b = rt.run(&spec, ParallelizationStrategy::Hardware);
    assert_eq!(
        a.total_cycles, b.total_cycles,
        "simulation must be deterministic"
    );
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.breakdown, b.breakdown);
}

#[test]
fn stats_expose_protocol_activity() {
    let spec = p3m::instance(100, false);
    let rt = SpeculativeRuntime::new(8);
    let hw = rt.run(&spec, ParallelizationStrategy::Hardware);
    assert!(hw.stats.get("transactions") > 0);
    assert!(hw.stats.get("priv_first_write_signals") > 0);
    let ocean_hw = rt.run(
        &ocean::instance(0, false),
        ParallelizationStrategy::Hardware,
    );
    assert!(ocean_hw.stats.get("nonpriv_first_updates") > 0);
}

#[test]
fn report_tables_render_run_results() {
    let spec = ocean::instance(2, false);
    let rt = SpeculativeRuntime::new(8);
    let serial = rt.run(&spec, ParallelizationStrategy::Serial);
    let hw = rt.run(&spec, ParallelizationStrategy::Hardware);
    let mut t = Table::new(vec!["strategy", "cycles", "speedup"]);
    t.row(vec![
        "serial".into(),
        serial.total_cycles.raw().to_string(),
        "1.00".into(),
    ]);
    t.row(vec![
        "hw".into(),
        hw.total_cycles.raw().to_string(),
        format!("{:.2}", hw.speedup_over(&serial)),
    ]);
    let s = t.render();
    assert!(s.contains("serial") && s.contains("hw"));
}
