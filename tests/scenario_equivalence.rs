//! Cross-crate integration property: for randomly generated loops —
//! parallel or not — every execution strategy ends in the exact state a
//! serial execution produces, and the hardware verdict is sound with
//! respect to the ground-truth dependence oracle. Randomness comes from
//! the in-repo deterministic [`SplitMix64`] generator.

use specrt::engine::SplitMix64;
use specrt::ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
use specrt::machine::{run_scenario, ArrayDecl, LoopSpec, Scenario, ScheduleKind, SwVariant};
use specrt::mem::ElemSize;
use specrt::spec::{IterationNumbering, ProtocolKind, TestPlan};

const A: ArrayId = ArrayId(0);
const KR: ArrayId = ArrayId(1);
const KW: ArrayId = ArrayId(2);
const WF: ArrayId = ArrayId(3);
const OUT: ArrayId = ArrayId(4);

/// Loop: v = A[KR[i]]; if WF[i] { A[KW[i]] = v + 1 }; OUT[i] = v.
/// The dependence structure is entirely in the generated index data.
fn build_spec(
    kr: Vec<i64>,
    kw: Vec<i64>,
    wf: Vec<bool>,
    elems: u64,
    schedule: ScheduleKind,
) -> LoopSpec {
    let iters = kr.len() as u64;
    let mut b = ProgramBuilder::new();
    let r = b.load(KR, Operand::Iter);
    let v = b.load(A, Operand::Reg(r));
    let f = b.load(WF, Operand::Iter);
    let skip = b.label();
    b.bz(Operand::Reg(f), skip);
    let w = b.load(KW, Operand::Iter);
    let v2 = b.binop(BinOp::FAdd, Operand::Reg(v), Operand::ImmF(1.0));
    b.store(A, Operand::Reg(w), Operand::Reg(v2));
    b.bind(skip);
    b.store(OUT, Operand::Iter, Operand::Reg(v));
    b.compute(25);
    let body = b.build().unwrap();

    let mut plan = TestPlan::new();
    plan.set(A, ProtocolKind::NonPriv);
    LoopSpec {
        name: "prop-loop".into(),
        body,
        iters,
        arrays: vec![
            ArrayDecl::with_init(
                A,
                ElemSize::W8,
                (0..elems).map(|i| Scalar::Float(i as f64)).collect(),
            ),
            ArrayDecl::with_init(KR, ElemSize::W8, kr.into_iter().map(Scalar::Int).collect()),
            ArrayDecl::with_init(KW, ElemSize::W8, kw.into_iter().map(Scalar::Int).collect()),
            ArrayDecl::with_init(
                WF,
                ElemSize::W8,
                wf.into_iter().map(|b| Scalar::Int(b as i64)).collect(),
            ),
            ArrayDecl::zeroed(OUT, iters, ElemSize::W8),
        ],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule,
        live_after: vec![A, OUT],
        stamp_window: None,
    }
}

fn random_schedule(rng: &mut SplitMix64) -> ScheduleKind {
    match rng.below(3) {
        0 => ScheduleKind::Static,
        1 => ScheduleKind::BlockCyclic {
            block: rng.range(1, 4),
        },
        _ => ScheduleKind::Dynamic {
            block: rng.range(1, 4),
        },
    }
}

fn random_indices(
    rng: &mut SplitMix64,
    bound: u64,
    lo: u64,
    hi: u64,
) -> (Vec<i64>, Vec<i64>, Vec<bool>) {
    let kr: Vec<i64> = (0..rng.range(lo, hi))
        .map(|_| rng.below(bound) as i64)
        .collect();
    let kw_seed: Vec<i64> = (0..rng.range(lo, hi))
        .map(|_| rng.below(bound) as i64)
        .collect();
    let iters = kr.len().min(kw_seed.len());
    let wf: Vec<bool> = (0..iters).map(|_| rng.chance(0.5)).collect();
    (kr[..iters].to_vec(), kw_seed[..iters].to_vec(), wf)
}

/// Every strategy's final live state equals the serial state, regardless
/// of whether the loop is parallel.
#[test]
fn all_strategies_end_in_serial_state() {
    let mut rng = SplitMix64::new(0x5ce0_0001);
    for _case in 0..24 {
        let (kr, kw, wf) = random_indices(&mut rng, 12, 4, 24);
        let schedule = random_schedule(&mut rng);
        let spec = build_spec(kr, kw, wf, 12, schedule);

        let serial = run_scenario(&spec, Scenario::Serial, 4);
        let live = [A, OUT];
        for scenario in [
            Scenario::Hw,
            Scenario::Sw(SwVariant::IterationWise),
            Scenario::Sw(SwVariant::ProcessorWise),
        ] {
            // Ideal on a non-parallel loop is undefined behaviour in the
            // paper, so it is not exercised here.
            let r = run_scenario(&spec, scenario, 4);
            assert!(
                r.final_image.same_contents(&serial.final_image, &live),
                "{scenario} diverged from serial (passed {:?}, {:?})",
                r.passed,
                r.failure
            );
        }
    }
}

/// Soundness: when the hardware scheme keeps the speculation, the loop
/// truly had no cross-processor conflict (per the schedule-independent
/// sufficient condition: read-only or single-writer-single-toucher).
#[test]
fn hw_pass_implies_no_conflict() {
    let mut rng = SplitMix64::new(0x5ce0_0002);
    for _case in 0..24 {
        let (kr, kw, wf) = random_indices(&mut rng, 10, 4, 20);
        let iters = kr.len();
        let spec = build_spec(kr.clone(), kw.clone(), wf.clone(), 10, ScheduleKind::Static);
        let hw = run_scenario(&spec, Scenario::Hw, 4);
        if hw.passed == Some(true) {
            // Derive the per-processor envelope under static chunking.
            let chunk = (iters as u64).div_ceil(4).max(1);
            let proc_of = |i: usize| (i as u64 / chunk) as u32;
            for e in 0..10i64 {
                let mut touch: std::collections::BTreeSet<u32> = Default::default();
                let mut wrote = false;
                for i in 0..iters {
                    if kr[i] == e {
                        touch.insert(proc_of(i));
                    }
                    if wf[i] && kw[i] == e {
                        touch.insert(proc_of(i));
                        wrote = true;
                    }
                }
                assert!(
                    touch.len() <= 1 || !wrote,
                    "HW passed but element {e} written and touched by {touch:?}"
                );
            }
        }
    }
}
