//! The inclusive L1/L2 direct-mapped cache hierarchy of one node.
//!
//! Geometry defaults to the paper's §5.1 machine: 32-KiB L1 and 512-KiB L2,
//! both direct-mapped with 64-byte lines (512 and 8192 line slots). The
//! hierarchy tracks, per resident line, its coherence state (clean/dirty)
//! and its access-bit [`LineTags`]; displacements return [`Victim`]s so the
//! coherence layer can write dirty data back and merge the access bits into
//! the directory (the paper's algorithm (e): "update directory using the tag
//! state of all the words of the dirty line").

use std::collections::HashMap;

use specrt_mem::LineAddr;

use crate::tags::LineTags;

/// Coherence state of a resident line, as seen by its own cache.
///
/// A DASH-like protocol needs only clean (shared) and dirty (exclusive
/// modified) states in the cache; invalid lines are simply absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Present, consistent with memory, possibly shared with other caches.
    Clean,
    /// Present and modified; this cache is the owner.
    Dirty,
}

/// Which level satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Primary-cache hit (1-cycle round trip).
    L1,
    /// Secondary-cache hit (12-cycle round trip).
    L2,
    /// Miss in both levels; a coherence transaction is required.
    Miss,
}

/// A line displaced from the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Victim {
    /// The displaced line.
    pub line: LineAddr,
    /// Whether it was dirty (requires a write-back to the home node).
    pub dirty: bool,
    /// Its access bits at displacement time (merged into the directory by
    /// the coherence layer if the line was dirty and tracked).
    pub tags: LineTags,
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// L1 line slots (32 KiB / 64 B = 512 in the paper's machine).
    pub l1_lines: usize,
    /// L2 line slots (512 KiB / 64 B = 8192 in the paper's machine).
    pub l2_lines: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1_lines: 512,
            l2_lines: 8192,
        }
    }
}

#[derive(Debug, Clone)]
struct Level {
    slots: Vec<Option<LineAddr>>,
}

impl Level {
    fn new(lines: usize) -> Self {
        Level {
            slots: vec![None; lines],
        }
    }

    fn slot_of(&self, line: LineAddr) -> usize {
        (line.0 % self.slots.len() as u64) as usize
    }

    fn occupant(&self, line: LineAddr) -> Option<LineAddr> {
        self.slots[self.slot_of(line)]
    }

    fn holds(&self, line: LineAddr) -> bool {
        self.occupant(line) == Some(line)
    }

    /// Installs `line`, returning the previous occupant if different.
    fn install(&mut self, line: LineAddr) -> Option<LineAddr> {
        let idx = self.slot_of(line);
        let prev = self.slots[idx];
        self.slots[idx] = Some(line);
        prev.filter(|&p| p != line)
    }

    fn remove(&mut self, line: LineAddr) -> bool {
        let idx = self.slot_of(line);
        if self.slots[idx] == Some(line) {
            self.slots[idx] = None;
            true
        } else {
            false
        }
    }
}

/// One node's two-level cache hierarchy with access-bit arrays.
///
/// # Examples
///
/// ```
/// use specrt_cache::{CacheConfig, CacheHierarchy, HitLevel, LineState, LineTags};
/// use specrt_mem::LineAddr;
///
/// let mut c = CacheHierarchy::new(CacheConfig::default());
/// let line = LineAddr(100);
/// assert_eq!(c.probe(line), HitLevel::Miss);
/// c.fill(line, LineState::Clean, LineTags::empty());
/// assert_eq!(c.probe(line), HitLevel::L1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Level,
    l2: Level,
    state: HashMap<LineAddr, LineState>,
    tags: HashMap<LineAddr, LineTags>,
    l1_hits: u64,
    l2_hits: u64,
    misses: u64,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < l1_lines <= l2_lines` (inclusion requires L2 to be
    /// at least as large as L1, and with direct mapping `l2_lines` must be a
    /// multiple of `l1_lines` for inclusion to be maintainable).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.l1_lines > 0, "L1 must have at least one line");
        assert!(
            config.l2_lines >= config.l1_lines,
            "inclusion requires L2 >= L1"
        );
        assert!(
            config.l2_lines.is_multiple_of(config.l1_lines),
            "direct-mapped inclusion requires l2_lines % l1_lines == 0"
        );
        CacheHierarchy {
            l1: Level::new(config.l1_lines),
            l2: Level::new(config.l2_lines),
            state: HashMap::new(),
            tags: HashMap::new(),
            l1_hits: 0,
            l2_hits: 0,
            misses: 0,
        }
    }

    /// Non-destructive lookup.
    pub fn probe(&self, line: LineAddr) -> HitLevel {
        if self.l1.holds(line) {
            HitLevel::L1
        } else if self.l2.holds(line) {
            HitLevel::L2
        } else {
            HitLevel::Miss
        }
    }

    /// Performs an access: on an L2 hit the line is promoted into L1 (the
    /// displaced L1 line stays resident in L2 by inclusion). Returns the
    /// level that satisfied the access; on `Miss` the caller must run a
    /// coherence transaction and then [`fill`](Self::fill).
    pub fn access(&mut self, line: LineAddr) -> HitLevel {
        match self.probe(line) {
            HitLevel::L1 => {
                self.l1_hits += 1;
                HitLevel::L1
            }
            HitLevel::L2 => {
                self.l2_hits += 1;
                // Promote; the L1 victim is still in L2 (inclusion), so no
                // external write-back happens here.
                if let Some(prev) = self.l1.install(line) {
                    debug_assert!(self.l2.holds(prev), "inclusion violated for {prev}");
                }
                HitLevel::L2
            }
            HitLevel::Miss => {
                self.misses += 1;
                HitLevel::Miss
            }
        }
    }

    /// Installs `line` in both levels after a coherence transaction.
    ///
    /// Returns any line displaced from L2 (a true eviction from this node);
    /// dirty victims must be written back and, if tracked, their tags merged
    /// into the directory.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident (refill without invalidate).
    pub fn fill(&mut self, line: LineAddr, state: LineState, tags: LineTags) -> Option<Victim> {
        assert!(
            self.probe(line) == HitLevel::Miss,
            "fill of resident line {line}"
        );
        let victim = self.l2.install(line).map(|v| {
            self.l1.remove(v);
            let dirty = self.state.remove(&v) == Some(LineState::Dirty);
            let tags = self.tags.remove(&v).unwrap_or_else(LineTags::empty);
            Victim {
                line: v,
                dirty,
                tags,
            }
        });
        if let Some(prev) = self.l1.install(line) {
            debug_assert!(self.l2.holds(prev) || victim.as_ref().map(|v| v.line) == Some(prev));
        }
        self.state.insert(line, state);
        self.tags.insert(line, tags);
        victim
    }

    /// Coherence state of `line`, if resident.
    pub fn state_of(&self, line: LineAddr) -> Option<LineState> {
        if self.probe(line) == HitLevel::Miss {
            None
        } else {
            self.state.get(&line).copied()
        }
    }

    /// Marks a resident line dirty (a store hit on a clean-exclusive grant
    /// or on an already-dirty line).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) {
        assert!(
            self.probe(line) != HitLevel::Miss,
            "mark_dirty on absent line {line}"
        );
        self.state.insert(line, LineState::Dirty);
    }

    /// Downgrades a dirty line to clean (after a write-back that keeps the
    /// data shared).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn mark_clean(&mut self, line: LineAddr) {
        assert!(
            self.probe(line) != HitLevel::Miss,
            "mark_clean on absent line {line}"
        );
        self.state.insert(line, LineState::Clean);
    }

    /// Removes `line` from both levels, returning its state and tags (for
    /// write-back-and-invalidate transactions).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<(LineState, LineTags)> {
        if self.probe(line) == HitLevel::Miss {
            return None;
        }
        self.l1.remove(line);
        self.l2.remove(line);
        let state = self.state.remove(&line)?;
        let tags = self.tags.remove(&line).unwrap_or_else(LineTags::empty);
        Some((state, tags))
    }

    /// Access bits of a resident line.
    pub fn tags_of(&self, line: LineAddr) -> Option<&LineTags> {
        if self.probe(line) == HitLevel::Miss {
            None
        } else {
            self.tags.get(&line)
        }
    }

    /// Mutable access bits of a resident line.
    pub fn tags_mut(&mut self, line: LineAddr) -> Option<&mut LineTags> {
        if self.probe(line) == HitLevel::Miss {
            None
        } else {
            self.tags.get_mut(&line)
        }
    }

    /// Empties the hierarchy, returning the dirty lines (the paper flushes
    /// caches after every loop invocation "to mimic real conditions", §5.2).
    pub fn flush(&mut self) -> Vec<Victim> {
        let mut victims: Vec<Victim> = Vec::new();
        let mut lines: Vec<LineAddr> = self.state.keys().copied().collect();
        lines.sort();
        for line in lines {
            // A line may be in `state` but no longer mapped (should not
            // happen, but be defensive about slot aliasing bugs).
            if self.probe(line) == HitLevel::Miss {
                continue;
            }
            let (state, tags) = self.invalidate(line).expect("resident line");
            if state == LineState::Dirty {
                victims.push(Victim {
                    line,
                    dirty: true,
                    tags,
                });
            }
        }
        self.state.clear();
        self.tags.clear();
        victims
    }

    /// Clears the per-iteration privatization bits (`Read1st`/`Write`) of
    /// every resident tracked line — the hardware's qualified reset at the
    /// start of each iteration (§4.1).
    pub fn clear_iteration_bits(&mut self) {
        for tags in self.tags.values_mut() {
            tags.clear_iteration_bits();
        }
    }

    /// Clears *all* access bits of every resident line (loop start reset).
    pub fn clear_all_access_bits(&mut self) {
        for tags in self.tags.values_mut() {
            tags.clear();
        }
    }

    /// All resident lines, in address order.
    pub fn resident(&self) -> Vec<LineAddr> {
        let mut v: Vec<LineAddr> = self.state.keys().copied().collect();
        v.sort();
        v
    }

    /// Replaces the access bits of a resident line (hardware tag reset at
    /// loop start, with the new protocol's tag geometry).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn set_tags(&mut self, line: LineAddr, tags: LineTags) {
        assert!(
            self.probe(line) != HitLevel::Miss,
            "set_tags on absent line {line}"
        );
        self.tags.insert(line, tags);
    }

    /// `(l1_hits, l2_hits, misses)` counters since construction/reset.
    pub fn hit_stats(&self) -> (u64, u64, u64) {
        (self.l1_hits, self.l2_hits, self.misses)
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.state.len()
    }

    /// Returns the hierarchy to its just-constructed state — slots empty,
    /// no line state or tags, hit counters zeroed — while keeping the slot
    /// vectors and map capacity allocated (machine reuse across requests).
    ///
    /// Clears only the occupied slots: every occupant is a `state` key
    /// (fill/displace/invalidate keep them in lockstep), so walking the
    /// resident set beats memsetting the paper-sized slot vectors
    /// (512 L1 + 8192 L2 entries) when only a handful of lines are live —
    /// which is the dominant reset cost under pooled machine reuse.
    pub fn reset(&mut self) {
        for &line in self.state.keys() {
            self.l1.remove(line);
            self.l2.remove(line);
        }
        debug_assert!(
            self.l1.slots.iter().all(Option::is_none) && self.l2.slots.iter().all(Option::is_none),
            "slot occupied by a line absent from `state`"
        );
        self.state.clear();
        self.tags.clear();
        self.l1_hits = 0;
        self.l2_hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheHierarchy {
        CacheHierarchy::new(CacheConfig {
            l1_lines: 4,
            l2_lines: 16,
        })
    }

    #[test]
    fn fill_then_hit_l1() {
        let mut c = small();
        let line = LineAddr(5);
        assert_eq!(c.access(line), HitLevel::Miss);
        c.fill(line, LineState::Clean, LineTags::empty());
        assert_eq!(c.access(line), HitLevel::L1);
        assert_eq!(c.state_of(line), Some(LineState::Clean));
        assert_eq!(c.hit_stats(), (1, 0, 1));
    }

    #[test]
    fn l1_conflict_leaves_line_in_l2() {
        let mut c = small();
        // Lines 0 and 4 conflict in a 4-line L1 but not in a 16-line L2.
        c.fill(LineAddr(0), LineState::Clean, LineTags::empty());
        c.fill(LineAddr(4), LineState::Clean, LineTags::empty());
        assert_eq!(c.probe(LineAddr(4)), HitLevel::L1);
        assert_eq!(c.probe(LineAddr(0)), HitLevel::L2);
        // Accessing 0 promotes it back, demoting 4 (still in L2).
        assert_eq!(c.access(LineAddr(0)), HitLevel::L2);
        assert_eq!(c.probe(LineAddr(0)), HitLevel::L1);
        assert_eq!(c.probe(LineAddr(4)), HitLevel::L2);
    }

    #[test]
    fn l2_conflict_evicts_clean_silently() {
        let mut c = small();
        c.fill(LineAddr(0), LineState::Clean, LineTags::empty());
        // Line 16 conflicts with 0 in the 16-line L2.
        let victim = c.fill(LineAddr(16), LineState::Clean, LineTags::empty());
        let v = victim.expect("line 0 displaced");
        assert_eq!(v.line, LineAddr(0));
        assert!(!v.dirty);
        assert_eq!(c.probe(LineAddr(0)), HitLevel::Miss);
    }

    #[test]
    fn l2_conflict_returns_dirty_victim_with_tags() {
        let mut c = small();
        let mut tags = LineTags::cleared(8);
        tags.get_mut(2).set_no_shr(true);
        c.fill(LineAddr(0), LineState::Dirty, tags);
        let v = c
            .fill(LineAddr(16), LineState::Clean, LineTags::empty())
            .expect("victim");
        assert!(v.dirty);
        assert_eq!(v.tags, tags);
    }

    #[test]
    fn invalidate_removes_and_returns_state() {
        let mut c = small();
        c.fill(LineAddr(3), LineState::Dirty, LineTags::cleared(4));
        let (state, tags) = c.invalidate(LineAddr(3)).unwrap();
        assert_eq!(state, LineState::Dirty);
        assert_eq!(tags.len(), 4);
        assert_eq!(c.probe(LineAddr(3)), HitLevel::Miss);
        assert!(c.invalidate(LineAddr(3)).is_none());
    }

    #[test]
    fn mark_dirty_and_clean() {
        let mut c = small();
        c.fill(LineAddr(1), LineState::Clean, LineTags::empty());
        c.mark_dirty(LineAddr(1));
        assert_eq!(c.state_of(LineAddr(1)), Some(LineState::Dirty));
        c.mark_clean(LineAddr(1));
        assert_eq!(c.state_of(LineAddr(1)), Some(LineState::Clean));
    }

    #[test]
    #[should_panic(expected = "mark_dirty on absent line")]
    fn mark_dirty_absent_panics() {
        small().mark_dirty(LineAddr(9));
    }

    #[test]
    #[should_panic(expected = "fill of resident line")]
    fn double_fill_panics() {
        let mut c = small();
        c.fill(LineAddr(1), LineState::Clean, LineTags::empty());
        c.fill(LineAddr(1), LineState::Clean, LineTags::empty());
    }

    #[test]
    fn flush_returns_only_dirty_lines() {
        let mut c = small();
        c.fill(LineAddr(1), LineState::Clean, LineTags::empty());
        c.fill(LineAddr(2), LineState::Dirty, LineTags::cleared(8));
        c.fill(LineAddr(3), LineState::Dirty, LineTags::empty());
        let victims = c.flush();
        let mut lines: Vec<u64> = victims.iter().map(|v| v.line.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![2, 3]);
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.probe(LineAddr(1)), HitLevel::Miss);
    }

    #[test]
    fn tag_access_and_iteration_clear() {
        let mut c = small();
        c.fill(LineAddr(1), LineState::Clean, LineTags::cleared(8));
        c.tags_mut(LineAddr(1))
            .unwrap()
            .get_mut(0)
            .set_read1st(true);
        c.tags_mut(LineAddr(1)).unwrap().get_mut(0).set_no_shr(true);
        assert!(c.tags_of(LineAddr(1)).unwrap().get(0).read1st());
        c.clear_iteration_bits();
        assert!(!c.tags_of(LineAddr(1)).unwrap().get(0).read1st());
        assert!(c.tags_of(LineAddr(1)).unwrap().get(0).no_shr());
        c.clear_all_access_bits();
        assert!(c.tags_of(LineAddr(1)).unwrap().get(0).is_clear());
    }

    #[test]
    fn untracked_lines_have_empty_tags() {
        let mut c = small();
        c.fill(LineAddr(1), LineState::Clean, LineTags::empty());
        assert!(!c.tags_of(LineAddr(1)).unwrap().is_tracked());
        assert!(c.tags_of(LineAddr(99)).is_none());
    }

    #[test]
    #[should_panic(expected = "inclusion requires L2 >= L1")]
    fn l2_smaller_than_l1_rejected() {
        CacheHierarchy::new(CacheConfig {
            l1_lines: 8,
            l2_lines: 4,
        });
    }

    #[test]
    fn default_config_matches_paper() {
        let c = CacheConfig::default();
        assert_eq!(c.l1_lines * 64, 32 * 1024);
        assert_eq!(c.l2_lines * 64, 512 * 1024);
    }
}
