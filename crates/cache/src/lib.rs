#![warn(missing_docs)]

//! # specrt-cache
//!
//! The per-node cache hierarchy of the simulated machine, including the
//! paper's **access-bit arrays**.
//!
//! Per §5.1 of the paper each processor has a 32-KiB direct-mapped on-chip
//! primary cache and a 512-KiB direct-mapped off-chip secondary cache, both
//! with 64-byte lines. §4.2 adds, next to each cache's tag array, an *access
//! bit array* holding the per-element speculation state of Figure 5, kept
//! coherent alongside the data.
//!
//! This crate models:
//!
//! * [`ElemTag`] — the single set of per-element hardware bits, with typed
//!   views for the non-privatization interpretation (`First`/`NoShr`/`ROnly`)
//!   and the privatization interpretation (`Read1st`/`Write`);
//! * [`LineTags`] — one line's worth of element tags, travelling with the
//!   line through fills, write-backs and displacements;
//! * [`CacheHierarchy`] — an inclusive L1/L2 pair with deterministic
//!   direct-mapped placement, returning displacement victims (with their
//!   access bits) so the coherence layer can merge them into the directory,
//!   exactly as the paper's algorithm (e) requires.

pub mod hierarchy;
pub mod tags;

pub use hierarchy::{CacheConfig, CacheHierarchy, HitLevel, LineState, Victim};
pub use tags::{ElemTag, FirstTag, LineTags, MAX_ELEMS_PER_LINE};
