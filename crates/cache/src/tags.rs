//! Per-element access bits stored in cache tags (paper Figure 5).
//!
//! The paper stresses that "there is a single set of hardware bits that is
//! used differently depending on the algorithm used". We model that with
//! [`ElemTag`], a single byte per element whose bits are given two typed
//! views:
//!
//! * **non-privatization** (Fig. 5-a): `First` (2 bits: NONE/OWN/OTHER in
//!   the cache — the full processor id lives only in the directory),
//!   `NoShr`, `ROnly`;
//! * **privatization** (Fig. 5-b/c): `Read1st` and `Write`, cleared at the
//!   beginning of every iteration.

use std::fmt;

/// Maximum elements per 64-byte line (4-byte elements).
pub const MAX_ELEMS_PER_LINE: usize = 16;

/// Cache-tag view of the `First` field: whether the first processor to
/// access the element is *this* cache's processor, some other processor, or
/// nobody yet. Two bits in hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FirstTag {
    /// No processor has accessed the element (that this cache knows of).
    #[default]
    None,
    /// This processor was first.
    Own,
    /// Another processor was first.
    Other,
}

impl fmt::Display for FirstTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirstTag::None => f.write_str("NONE"),
            FirstTag::Own => f.write_str("OWN"),
            FirstTag::Other => f.write_str("OTHER"),
        }
    }
}

const FIRST_MASK: u8 = 0b0000_0011;
const NOSHR_BIT: u8 = 0b0000_0100;
const RONLY_BIT: u8 = 0b0000_1000;
const READ1ST_BIT: u8 = 0b0001_0000;
const WRITE_BIT: u8 = 0b0010_0000;

/// The per-element access bits held in a cache tag entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ElemTag(u8);

impl ElemTag {
    /// A fully cleared tag (state at the beginning of a speculative loop).
    pub const CLEAR: ElemTag = ElemTag(0);

    // ----- non-privatization view -----

    /// The `First` field.
    pub fn first(self) -> FirstTag {
        match self.0 & FIRST_MASK {
            0 => FirstTag::None,
            1 => FirstTag::Own,
            _ => FirstTag::Other,
        }
    }

    /// Sets the `First` field.
    pub fn set_first(&mut self, v: FirstTag) {
        let bits = match v {
            FirstTag::None => 0,
            FirstTag::Own => 1,
            FirstTag::Other => 2,
        };
        self.0 = (self.0 & !FIRST_MASK) | bits;
    }

    /// The `NoShr` bit (the element has been written — called `tag.Priv` in
    /// the paper's Figure 6 pseudo-code, `NoShr` in Figure 4; we use the
    /// Figure 4 name throughout).
    pub fn no_shr(self) -> bool {
        self.0 & NOSHR_BIT != 0
    }

    /// Sets the `NoShr` bit.
    pub fn set_no_shr(&mut self, v: bool) {
        self.set_bit(NOSHR_BIT, v);
    }

    /// The `ROnly` bit (element known read-shared by several processors).
    pub fn r_only(self) -> bool {
        self.0 & RONLY_BIT != 0
    }

    /// Sets the `ROnly` bit.
    pub fn set_r_only(&mut self, v: bool) {
        self.set_bit(RONLY_BIT, v);
    }

    // ----- privatization view -----

    /// The `Read1st` bit: the current iteration read this element before
    /// writing it.
    pub fn read1st(self) -> bool {
        self.0 & READ1ST_BIT != 0
    }

    /// Sets the `Read1st` bit.
    pub fn set_read1st(&mut self, v: bool) {
        self.set_bit(READ1ST_BIT, v);
    }

    /// The `Write` bit: the current iteration has written this element.
    pub fn write(self) -> bool {
        self.0 & WRITE_BIT != 0
    }

    /// Sets the `Write` bit.
    pub fn set_write(&mut self, v: bool) {
        self.set_bit(WRITE_BIT, v);
    }

    /// Clears the per-iteration privatization bits (`Read1st`, `Write`).
    /// The hardware performs this with a qualified reset line at the start
    /// of each iteration (§4.1).
    pub fn clear_iteration_bits(&mut self) {
        self.0 &= !(READ1ST_BIT | WRITE_BIT);
    }

    /// Clears everything (performed at loop start with a full reset).
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Whether every bit is clear.
    pub fn is_clear(self) -> bool {
        self.0 == 0
    }

    fn set_bit(&mut self, mask: u8, v: bool) {
        if v {
            self.0 |= mask;
        } else {
            self.0 &= !mask;
        }
    }
}

impl fmt::Display for ElemTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[first={} noshr={} ronly={} r1st={} w={}]",
            self.first(),
            self.no_shr() as u8,
            self.r_only() as u8,
            self.read1st() as u8,
            self.write() as u8
        )
    }
}

/// Access bits for every element of one cache line.
///
/// Lines hold 8 or 16 elements depending on the array's element size; lines
/// of arrays that are *not* under test carry no tags (`LineTags::empty`),
/// wasting no storage — mirroring the paper's §4.1 decision to keep access
/// bits in "a dedicated memory … so we do not waste bits in the directory
/// tags for data that uses the plain cache coherence protocol".
///
/// Stored inline as a fixed `[ElemTag; MAX_ELEMS_PER_LINE]` (a line holds at
/// most 16 one-byte tags) so fills, write-backs, and merges never touch the
/// heap — tag traffic is the hottest allocation site in the access path.
#[derive(Clone, Copy, Default)]
pub struct LineTags {
    elems: [ElemTag; MAX_ELEMS_PER_LINE],
    len: u8,
}

impl LineTags {
    /// Tags for a line with `n` elements, all clear.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_ELEMS_PER_LINE`].
    pub fn cleared(n: usize) -> Self {
        assert!(
            n <= MAX_ELEMS_PER_LINE,
            "{n} elements exceed a 64-byte line"
        );
        LineTags {
            elems: [ElemTag::CLEAR; MAX_ELEMS_PER_LINE],
            len: n as u8,
        }
    }

    /// Tags for a line of a non-tested array (no state).
    pub fn empty() -> Self {
        LineTags::default()
    }

    /// Whether this line carries any speculation state.
    pub fn is_tracked(&self) -> bool {
        self.len != 0
    }

    /// Number of tagged elements.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether there are no tagged elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn as_slice(&self) -> &[ElemTag] {
        &self.elems[..self.len as usize]
    }

    /// Tag of element `i` within the line.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> ElemTag {
        self.as_slice()[i]
    }

    /// Mutable tag of element `i` within the line.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get_mut(&mut self, i: usize) -> &mut ElemTag {
        &mut self.elems[..self.len as usize][i]
    }

    /// Iterates over `(index, tag)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, ElemTag)> + '_ {
        self.as_slice().iter().copied().enumerate()
    }

    /// Clears the per-iteration bits of every element (start of iteration).
    pub fn clear_iteration_bits(&mut self) {
        for t in &mut self.elems[..self.len as usize] {
            t.clear_iteration_bits();
        }
    }

    /// Clears every bit of every element (start of loop).
    pub fn clear(&mut self) {
        for t in &mut self.elems[..self.len as usize] {
            t.clear();
        }
    }
}

impl PartialEq for LineTags {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for LineTags {}

impl fmt::Debug for LineTags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LineTags")
            .field("elems", &self.as_slice())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_field_round_trips() {
        let mut t = ElemTag::CLEAR;
        assert_eq!(t.first(), FirstTag::None);
        t.set_first(FirstTag::Own);
        assert_eq!(t.first(), FirstTag::Own);
        t.set_first(FirstTag::Other);
        assert_eq!(t.first(), FirstTag::Other);
        t.set_first(FirstTag::None);
        assert_eq!(t.first(), FirstTag::None);
    }

    #[test]
    fn flag_bits_independent() {
        let mut t = ElemTag::CLEAR;
        t.set_no_shr(true);
        t.set_r_only(true);
        t.set_read1st(true);
        t.set_write(true);
        t.set_first(FirstTag::Other);
        assert!(t.no_shr() && t.r_only() && t.read1st() && t.write());
        assert_eq!(t.first(), FirstTag::Other);
        t.set_no_shr(false);
        assert!(!t.no_shr());
        assert!(t.r_only() && t.read1st() && t.write());
        assert_eq!(t.first(), FirstTag::Other);
    }

    #[test]
    fn clear_iteration_bits_preserves_nonpriv_view() {
        let mut t = ElemTag::CLEAR;
        t.set_first(FirstTag::Own);
        t.set_no_shr(true);
        t.set_read1st(true);
        t.set_write(true);
        t.clear_iteration_bits();
        assert!(!t.read1st() && !t.write());
        assert_eq!(t.first(), FirstTag::Own);
        assert!(t.no_shr());
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = ElemTag::CLEAR;
        t.set_first(FirstTag::Own);
        t.set_write(true);
        t.clear();
        assert!(t.is_clear());
    }

    #[test]
    fn line_tags_basics() {
        let mut l = LineTags::cleared(8);
        assert!(l.is_tracked());
        assert_eq!(l.len(), 8);
        l.get_mut(3).set_write(true);
        assert!(l.get(3).write());
        assert!(!l.get(2).write());
        let set: Vec<usize> = l
            .iter()
            .filter(|(_, t)| t.write())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(set, vec![3]);
    }

    #[test]
    fn line_tags_iteration_clear() {
        let mut l = LineTags::cleared(4);
        l.get_mut(0).set_read1st(true);
        l.get_mut(1).set_no_shr(true);
        l.clear_iteration_bits();
        assert!(!l.get(0).read1st());
        assert!(l.get(1).no_shr());
        l.clear();
        assert!(l.get(1).is_clear());
    }

    #[test]
    fn empty_line_tags_track_nothing() {
        let l = LineTags::empty();
        assert!(!l.is_tracked());
        assert!(l.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceed a 64-byte line")]
    fn too_many_elements_panics() {
        LineTags::cleared(17);
    }

    #[test]
    fn display_shows_state() {
        let mut t = ElemTag::CLEAR;
        t.set_first(FirstTag::Own);
        assert!(t.to_string().contains("OWN"));
    }
}
