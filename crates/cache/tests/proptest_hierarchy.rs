//! Property tests: the inclusive two-level cache hierarchy.

use proptest::prelude::*;

use specrt_cache::{CacheConfig, CacheHierarchy, HitLevel, LineState, LineTags};
use specrt_mem::LineAddr;

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    FillClean(u64),
    FillDirty(u64),
    Invalidate(u64),
    MarkDirty(u64),
}

fn op_strategy(lines: u64) -> impl Strategy<Value = Op> {
    (0..5u8, 0..lines).prop_map(|(k, l)| match k {
        0 => Op::Access(l),
        1 => Op::FillClean(l),
        2 => Op::FillDirty(l),
        3 => Op::Invalidate(l),
        _ => Op::MarkDirty(l),
    })
}

proptest! {
    /// Inclusion invariant: after any operation sequence, every line
    /// resident in L1 is also resident in L2 (probe of L1 implies not
    /// Miss), and state/tags accessors agree with residency.
    #[test]
    fn inclusion_and_consistency_hold(
        ops in proptest::collection::vec(op_strategy(64), 0..200)
    ) {
        let mut c = CacheHierarchy::new(CacheConfig {
            l1_lines: 4,
            l2_lines: 16,
        });
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            match op {
                Op::Access(l) => {
                    let line = LineAddr(l);
                    let level = c.access(line);
                    prop_assert_eq!(level == HitLevel::Miss, !resident.contains(&l));
                }
                Op::FillClean(l) | Op::FillDirty(l) => {
                    let line = LineAddr(l);
                    if c.probe(line) != HitLevel::Miss {
                        continue; // fill of resident line is a caller bug
                    }
                    let state = if matches!(op, Op::FillDirty(_)) {
                        LineState::Dirty
                    } else {
                        LineState::Clean
                    };
                    if let Some(v) = c.fill(line, state, LineTags::empty()) {
                        prop_assert!(resident.remove(&v.line.0), "victim was resident");
                    }
                    resident.insert(l);
                }
                Op::Invalidate(l) => {
                    let line = LineAddr(l);
                    let was = c.invalidate(line);
                    prop_assert_eq!(was.is_some(), resident.remove(&l));
                }
                Op::MarkDirty(l) => {
                    let line = LineAddr(l);
                    if resident.contains(&l) {
                        c.mark_dirty(line);
                        prop_assert_eq!(c.state_of(line), Some(LineState::Dirty));
                    }
                }
            }
            // Global invariants.
            prop_assert_eq!(c.resident_lines(), resident.len());
            for &l in &resident {
                let line = LineAddr(l);
                prop_assert_ne!(c.probe(line), HitLevel::Miss, "L{} lost", l);
                prop_assert!(c.state_of(line).is_some());
                prop_assert!(c.tags_of(line).is_some());
            }
        }
        // Flush returns exactly the dirty lines.
        let dirty_before: std::collections::HashSet<u64> = resident
            .iter()
            .copied()
            .filter(|&l| c.state_of(LineAddr(l)) == Some(LineState::Dirty))
            .collect();
        let victims = c.flush();
        let flushed: std::collections::HashSet<u64> =
            victims.iter().map(|v| v.line.0).collect();
        prop_assert_eq!(flushed, dirty_before);
        prop_assert_eq!(c.resident_lines(), 0);
    }

    /// Direct-mapped conflict behaviour: filling more lines than one slot
    /// can hold evicts in a deterministic, loss-free way — the set of
    /// resident lines always matches the model.
    #[test]
    fn conflicting_fills_never_lose_lines(
        lines in proptest::collection::vec(0u64..256, 1..64)
    ) {
        let mut c = CacheHierarchy::new(CacheConfig {
            l1_lines: 2,
            l2_lines: 8,
        });
        let mut model: std::collections::HashMap<u64, u64> = Default::default(); // slot→line
        for l in lines {
            if c.probe(LineAddr(l)) != HitLevel::Miss {
                continue;
            }
            let victim = c.fill(LineAddr(l), LineState::Clean, LineTags::empty());
            let slot = l % 8;
            let expected_victim = model.insert(slot, l);
            prop_assert_eq!(victim.map(|v| v.line.0), expected_victim);
        }
        for &l in model.values() {
            prop_assert_ne!(c.probe(LineAddr(l)), HitLevel::Miss);
        }
    }
}
