//! Randomized tests: the inclusive two-level cache hierarchy, driven by
//! the in-repo deterministic [`SplitMix64`] generator.

use specrt_cache::{CacheConfig, CacheHierarchy, HitLevel, LineState, LineTags};
use specrt_engine::SplitMix64;
use specrt_mem::LineAddr;

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    FillClean(u64),
    FillDirty(u64),
    Invalidate(u64),
    MarkDirty(u64),
}

fn random_ops(rng: &mut SplitMix64, lines: u64, max_len: u64) -> Vec<Op> {
    (0..rng.below(max_len))
        .map(|_| {
            let l = rng.below(lines);
            match rng.below(5) {
                0 => Op::Access(l),
                1 => Op::FillClean(l),
                2 => Op::FillDirty(l),
                3 => Op::Invalidate(l),
                _ => Op::MarkDirty(l),
            }
        })
        .collect()
}

/// Inclusion invariant: after any operation sequence, every line resident
/// in L1 is also resident in L2 (probe of L1 implies not Miss), and
/// state/tags accessors agree with residency.
#[test]
fn inclusion_and_consistency_hold() {
    let mut rng = SplitMix64::new(0x0cac_4e01);
    for _case in 0..64 {
        let ops = random_ops(&mut rng, 64, 200);
        let mut c = CacheHierarchy::new(CacheConfig {
            l1_lines: 4,
            l2_lines: 16,
        });
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            match op {
                Op::Access(l) => {
                    let line = LineAddr(l);
                    let level = c.access(line);
                    assert_eq!(level == HitLevel::Miss, !resident.contains(&l));
                }
                Op::FillClean(l) | Op::FillDirty(l) => {
                    let line = LineAddr(l);
                    if c.probe(line) != HitLevel::Miss {
                        continue; // fill of resident line is a caller bug
                    }
                    let state = if matches!(op, Op::FillDirty(_)) {
                        LineState::Dirty
                    } else {
                        LineState::Clean
                    };
                    if let Some(v) = c.fill(line, state, LineTags::empty()) {
                        assert!(resident.remove(&v.line.0), "victim was resident");
                    }
                    resident.insert(l);
                }
                Op::Invalidate(l) => {
                    let line = LineAddr(l);
                    let was = c.invalidate(line);
                    assert_eq!(was.is_some(), resident.remove(&l));
                }
                Op::MarkDirty(l) => {
                    let line = LineAddr(l);
                    if resident.contains(&l) {
                        c.mark_dirty(line);
                        assert_eq!(c.state_of(line), Some(LineState::Dirty));
                    }
                }
            }
            // Global invariants.
            assert_eq!(c.resident_lines(), resident.len());
            for &l in &resident {
                let line = LineAddr(l);
                assert_ne!(c.probe(line), HitLevel::Miss, "L{l} lost");
                assert!(c.state_of(line).is_some());
                assert!(c.tags_of(line).is_some());
            }
        }
        // Flush returns exactly the dirty lines.
        let dirty_before: std::collections::HashSet<u64> = resident
            .iter()
            .copied()
            .filter(|&l| c.state_of(LineAddr(l)) == Some(LineState::Dirty))
            .collect();
        let victims = c.flush();
        let flushed: std::collections::HashSet<u64> = victims.iter().map(|v| v.line.0).collect();
        assert_eq!(flushed, dirty_before);
        assert_eq!(c.resident_lines(), 0);
    }
}

/// Direct-mapped conflict behaviour: filling more lines than one slot can
/// hold evicts in a deterministic, loss-free way — the set of resident
/// lines always matches the model.
#[test]
fn conflicting_fills_never_lose_lines() {
    let mut rng = SplitMix64::new(0x0cac_4e02);
    for _case in 0..128 {
        let lines: Vec<u64> = (0..rng.range(1, 64)).map(|_| rng.below(256)).collect();
        let mut c = CacheHierarchy::new(CacheConfig {
            l1_lines: 2,
            l2_lines: 8,
        });
        let mut model: std::collections::HashMap<u64, u64> = Default::default(); // slot→line
        for l in lines {
            if c.probe(LineAddr(l)) != HitLevel::Miss {
                continue;
            }
            let victim = c.fill(LineAddr(l), LineState::Clean, LineTags::empty());
            let slot = l % 8;
            let expected_victim = model.insert(slot, l);
            assert_eq!(victim.map(|v| v.line.0), expected_victim);
        }
        for &l in model.values() {
            assert_ne!(c.probe(LineAddr(l)), HitLevel::Miss);
        }
    }
}
