//! Virtual time in processor clock cycles.
//!
//! The machine modelled by the paper runs 200-MHz processors; everything in
//! the simulator is expressed in cycles of that clock. [`Cycles`] is a
//! newtype over `u64` so that simulated time cannot be confused with plain
//! counters (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) virtual time, measured in CPU clock cycles.
///
/// `Cycles` is ordered and supports saturating-free arithmetic: additions are
/// plain `u64` additions (a simulation that overflows `u64` cycles has run
/// for ~2900 years of simulated 200-MHz time, which we treat as a bug), while
/// subtraction panics in debug builds on underflow like any `u64`.
///
/// # Examples
///
/// ```
/// use specrt_engine::Cycles;
/// let start = Cycles(100);
/// let latency = Cycles(12);
/// assert_eq!(start + latency, Cycles(112));
/// assert_eq!((start + latency) - start, latency);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero instant (simulation start).
    pub const ZERO: Cycles = Cycles(0);

    /// Largest representable instant; used as the initial value of
    /// "minimum so far" trackers such as the privatization protocol's
    /// `MinW` field before any write has been observed.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// The raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is later.
    ///
    /// Useful when computing queueing delays where a resource may already be
    /// free before the request arrives.
    #[inline]
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    /// Converts a cycle count at the paper's 200-MHz clock into nanoseconds.
    ///
    /// ```
    /// use specrt_engine::Cycles;
    /// assert_eq!(Cycles(200).as_nanos_at_200mhz(), 1000);
    /// ```
    #[inline]
    pub fn as_nanos_at_200mhz(self) -> u64 {
        self.0 * 5
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: u64) -> Cycles {
        Cycles(self.0 + rhs)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Cycles {
        Cycles(v)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(10) - Cycles(4), Cycles(6));
        assert_eq!(Cycles(3) + 4, Cycles(7));
        let mut c = Cycles(1);
        c += Cycles(2);
        c += 3;
        assert_eq!(c, Cycles(6));
        c -= Cycles(1);
        assert_eq!(c, Cycles(5));
    }

    #[test]
    fn ordering_and_extrema() {
        assert!(Cycles(1) < Cycles(2));
        assert_eq!(Cycles(1).max(Cycles(2)), Cycles(2));
        assert_eq!(Cycles(1).min(Cycles(2)), Cycles(1));
        assert_eq!(Cycles::ZERO, Cycles(0));
        assert_eq!(Cycles::MAX.raw(), u64::MAX);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        assert_eq!(Cycles(3).saturating_sub(Cycles(5)), Cycles::ZERO);
        assert_eq!(Cycles(5).saturating_sub(Cycles(3)), Cycles(2));
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn conversions() {
        assert_eq!(Cycles::from(7u64), Cycles(7));
        assert_eq!(u64::from(Cycles(7)), 7u64);
        assert_eq!(Cycles(200).as_nanos_at_200mhz(), 1000);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycles(42).to_string(), "42 cyc");
    }
}
