//! Deterministic discrete-event queue.
//!
//! All asynchronous activity in the simulated machine — protocol messages
//! arriving at a directory, a processor waking up after a memory stall, a
//! barrier releasing its waiters — is an *event*: a `(time, payload)` pair.
//! Events are delivered in nondecreasing time order; ties are broken by
//! insertion order (FIFO), which makes simulations fully deterministic and,
//! importantly, models the in-order delivery of messages that the paper's
//! protocol algorithms assume ("All algorithms assume in-order delivery of
//! messages", Section 3.2).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycles;

#[derive(Debug)]
struct Entry<E> {
    time: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered, FIFO-on-ties event queue.
///
/// # Examples
///
/// ```
/// use specrt_engine::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycles(3), 'b');
/// q.push(Cycles(1), 'a');
/// q.push(Cycles(3), 'c'); // same time as 'b' → delivered after 'b'
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycles,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycles::ZERO,
        }
    }

    /// Schedules `event` for delivery at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the time of the last popped event:
    /// scheduling into the past would violate causality and indicates a bug
    /// in the component that scheduled it.
    pub fn push(&mut self, at: Cycles, event: E) {
        let _prof = specrt_prof::scope("engine.evq_push");
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` for `delay` cycles after the current time.
    pub fn push_after(&mut self, delay: Cycles, event: E) {
        self.push(self.now + delay, event);
    }

    /// Schedules a batch of events for the same delivery time in one
    /// call: one causality check and one profiling span for the whole
    /// batch, with heap space reserved up front. Relative order within
    /// the batch is preserved on ties, exactly as repeated [`Self::push`]
    /// calls would.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the time of the last popped event.
    pub fn push_batch<I: IntoIterator<Item = E>>(&mut self, at: Cycles, events: I) {
        let _prof = specrt_prof::scope("engine.evq_push");
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let events = events.into_iter();
        self.heap.reserve(events.size_hint().0);
        for event in events {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry {
                time: at,
                seq,
                event,
            });
        }
    }

    /// Schedules `event` at `at` even if earlier events have already been
    /// delivered past that time.
    ///
    /// Used by components that *drain ahead*: a directory processing a
    /// transaction delivers all messages up to the transaction's arrival
    /// time, which may lie in the future of the global clock; messages sent
    /// afterwards by other parties may legitimately carry earlier arrival
    /// times. Cross-sender ordering in that window is a genuine race; each
    /// sender's own messages remain in order because its send times are
    /// monotone.
    pub fn push_lenient(&mut self, at: Cycles, event: E) {
        let _prof = specrt_prof::scope("engine.evq_push");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, advancing the queue's notion
    /// of "now" to its timestamp (never backwards). Returns `None` when the
    /// queue is empty.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let _prof = specrt_prof::scope("engine.evq_pop");
        let entry = self.heap.pop()?;
        self.now = self.now.max(entry.time);
        Some((entry.time, entry.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.time)
    }

    /// The time of the most recently delivered event (simulation clock).
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards every pending event, keeping the clock where it is.
    ///
    /// Used when a speculative loop aborts: in-flight protocol traffic for
    /// the aborted loop is dropped and the machine restarts from a clean
    /// state at the current time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycles(30), 3);
        q.push(Cycles(10), 1);
        q.push(Cycles(20), 2);
        assert_eq!(q.pop(), Some((Cycles(10), 1)));
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
        assert_eq!(q.pop(), Some((Cycles(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycles(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(5), i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycles::ZERO);
        q.push(Cycles(7), ());
        q.pop();
        assert_eq!(q.now(), Cycles(7));
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(Cycles(10), 'a');
        q.pop();
        q.push_after(Cycles(5), 'b');
        assert_eq!(q.pop(), Some((Cycles(15), 'b')));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_events_in_the_past() {
        let mut q = EventQueue::new();
        q.push(Cycles(10), ());
        q.pop();
        q.push(Cycles(5), ());
    }

    #[test]
    fn clear_drops_pending_events() {
        let mut q = EventQueue::new();
        q.push(Cycles(10), ());
        q.push(Cycles(20), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_lenient_allows_past_events() {
        let mut q = EventQueue::new();
        q.push(Cycles(100), 'a');
        q.pop(); // now = 100
        q.push_lenient(Cycles(50), 'b'); // in the past: allowed
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Cycles(50), 'b'));
        // The clock never moves backwards.
        assert_eq!(q.now(), Cycles(100));
    }

    #[test]
    fn push_lenient_keeps_order_among_pending() {
        let mut q = EventQueue::new();
        q.push(Cycles(10), 1);
        q.pop();
        q.push_lenient(Cycles(5), 2);
        q.push_lenient(Cycles(7), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn push_batch_matches_repeated_push() {
        let mut batched = EventQueue::new();
        batched.push(Cycles(5), 100);
        batched.push_batch(Cycles(5), 0..4);
        batched.push(Cycles(5), 200);

        let mut pushed = EventQueue::new();
        pushed.push(Cycles(5), 100);
        for i in 0..4 {
            pushed.push(Cycles(5), i);
        }
        pushed.push(Cycles(5), 200);

        loop {
            let (a, b) = (batched.pop(), pushed.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn push_batch_rejects_events_in_the_past() {
        let mut q = EventQueue::new();
        q.push(Cycles(10), 0);
        q.pop();
        q.push_batch(Cycles(5), [1, 2]);
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Cycles(9), ());
        q.push(Cycles(4), ());
        assert_eq!(q.peek_time(), Some(Cycles(4)));
    }
}
