//! Occupancy-based contention modelling.
//!
//! The paper models "contention in the whole system except in the global
//! network, which is abstracted away as a constant latency" (Section 5.1).
//! We follow the same recipe: caches, directories and memory banks are
//! [`Resource`]s with a service time per operation; a request arriving while
//! the resource is busy queues behind earlier requests. The observable effect
//! is exactly the FIFO queueing delay, without simulating the internals of
//! each pipeline.

use crate::time::Cycles;

/// A single-server FIFO resource.
///
/// `acquire(now, service)` reserves the resource for `service` cycles
/// starting at `max(now, next_free)` and returns the *completion* time.
///
/// # Examples
///
/// ```
/// use specrt_engine::{Cycles, Resource};
///
/// let mut bank = Resource::new();
/// // Two back-to-back 10-cycle requests at t=0: second queues behind first.
/// assert_eq!(bank.acquire(Cycles(0), Cycles(10)), Cycles(10));
/// assert_eq!(bank.acquire(Cycles(0), Cycles(10)), Cycles(20));
/// // A request arriving after the backlog drains sees no queueing.
/// assert_eq!(bank.acquire(Cycles(100), Cycles(10)), Cycles(110));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Resource {
    next_free: Cycles,
    total_busy: Cycles,
    total_queued: Cycles,
    requests: u64,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Resource::default()
    }

    /// Reserves the resource at `now` for `service` cycles; returns the time
    /// at which the request completes (start + service).
    pub fn acquire(&mut self, now: Cycles, service: Cycles) -> Cycles {
        let start = now.max(self.next_free);
        self.total_queued += start.saturating_sub(now);
        self.next_free = start + service;
        self.total_busy += service;
        self.requests += 1;
        self.next_free
    }

    /// Time at which the resource becomes idle given current reservations.
    pub fn next_free(&self) -> Cycles {
        self.next_free
    }

    /// Total busy cycles accumulated (utilization numerator).
    pub fn total_busy(&self) -> Cycles {
        self.total_busy
    }

    /// Total cycles requests spent queued before starting service.
    pub fn total_queued(&self) -> Cycles {
        self.total_queued
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Forgets all reservations and statistics (e.g. between loop
    /// invocations, where the paper flushes caches to mimic real conditions).
    pub fn reset(&mut self) {
        *self = Resource::default();
    }
}

/// A resource with `n` independently-queued banks, selected by a key.
///
/// Used for interleaved directory/memory banks: transactions to different
/// banks proceed in parallel, transactions to the same bank serialize. The
/// per-line serialization that the paper's protocol relies on ("all
/// transactions directed to the same cache line are serialized in the
/// corresponding directory") is modelled by hashing the line address to a
/// bank and queueing within it.
#[derive(Debug, Clone)]
pub struct BankedResource {
    banks: Vec<Resource>,
}

impl BankedResource {
    /// Creates `banks` idle banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(banks: usize) -> Self {
        assert!(banks > 0, "a banked resource needs at least one bank");
        BankedResource {
            banks: vec![Resource::new(); banks],
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Reserves the bank selected by `key` (hashed modulo bank count).
    pub fn acquire(&mut self, key: u64, now: Cycles, service: Cycles) -> Cycles {
        let idx = (key % self.banks.len() as u64) as usize;
        self.banks[idx].acquire(now, service)
    }

    /// Completion time if a request keyed by `key` were issued now — without
    /// reserving. Used to probe queue depth.
    pub fn next_free(&self, key: u64) -> Cycles {
        let idx = (key % self.banks.len() as u64) as usize;
        self.banks[idx].next_free()
    }

    /// Aggregate busy cycles over all banks.
    pub fn total_busy(&self) -> Cycles {
        self.banks.iter().map(Resource::total_busy).sum()
    }

    /// Aggregate queueing cycles over all banks.
    pub fn total_queued(&self) -> Cycles {
        self.banks.iter().map(Resource::total_queued).sum()
    }

    /// Aggregate request count over all banks.
    pub fn requests(&self) -> u64 {
        self.banks.iter().map(Resource::requests).sum()
    }

    /// Resets all banks.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(Cycles(5), Cycles(3)), Cycles(8));
        assert_eq!(r.total_queued(), Cycles::ZERO);
        assert_eq!(r.requests(), 1);
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = Resource::new();
        r.acquire(Cycles(0), Cycles(10));
        let done = r.acquire(Cycles(2), Cycles(10));
        assert_eq!(done, Cycles(20));
        assert_eq!(r.total_queued(), Cycles(8)); // waited 2..10
        assert_eq!(r.total_busy(), Cycles(20));
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new();
        r.acquire(Cycles(0), Cycles(10));
        r.reset();
        assert_eq!(r.next_free(), Cycles::ZERO);
        assert_eq!(r.requests(), 0);
    }

    #[test]
    fn banks_are_independent() {
        let mut b = BankedResource::new(2);
        assert_eq!(b.acquire(0, Cycles(0), Cycles(10)), Cycles(10));
        // Different bank: no queueing.
        assert_eq!(b.acquire(1, Cycles(0), Cycles(10)), Cycles(10));
        // Same bank as first: queues.
        assert_eq!(b.acquire(2, Cycles(0), Cycles(10)), Cycles(20));
        assert_eq!(b.requests(), 3);
    }

    #[test]
    fn bank_probe_does_not_reserve() {
        let mut b = BankedResource::new(4);
        b.acquire(7, Cycles(0), Cycles(5));
        let free = b.next_free(7);
        assert_eq!(free, Cycles(5));
        assert_eq!(b.next_free(7), free, "probe must not change state");
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = BankedResource::new(0);
    }
}
