//! Simulation statistics: cycle-accounting breakdowns, counters, histograms.
//!
//! The paper's Figure 12 decomposes loop execution time into *Busy*
//! (executing instructions), *Sync* (waiting at locks and barriers) and *Mem*
//! (waiting for the memory system). [`TimeBreakdown`] is that decomposition;
//! every simulated processor owns one and the scenario driver aggregates
//! them.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::Cycles;

/// Per-processor execution-time decomposition (Busy / Sync / Mem).
///
/// # Examples
///
/// ```
/// use specrt_engine::{Cycles, TimeBreakdown};
///
/// let mut t = TimeBreakdown::default();
/// t.busy += Cycles(70);
/// t.mem += Cycles(25);
/// t.sync += Cycles(5);
/// assert_eq!(t.total(), Cycles(100));
/// assert!((t.busy_fraction() - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Cycles spent executing instructions.
    pub busy: Cycles,
    /// Cycles spent waiting at locks or barriers.
    pub sync: Cycles,
    /// Cycles spent waiting for data from the memory system.
    pub mem: Cycles,
}

impl TimeBreakdown {
    /// Creates a zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of all three categories.
    pub fn total(&self) -> Cycles {
        self.busy + self.sync + self.mem
    }

    /// Fraction of total time in `busy` (0.0 when total is zero).
    pub fn busy_fraction(&self) -> f64 {
        self.fraction(self.busy)
    }

    /// Fraction of total time in `sync` (0.0 when total is zero).
    pub fn sync_fraction(&self) -> f64 {
        self.fraction(self.sync)
    }

    /// Fraction of total time in `mem` (0.0 when total is zero).
    pub fn mem_fraction(&self) -> f64 {
        self.fraction(self.mem)
    }

    fn fraction(&self, part: Cycles) -> f64 {
        let total = self.total().raw();
        if total == 0 {
            0.0
        } else {
            part.raw() as f64 / total as f64
        }
    }

    /// Component-wise sum with another breakdown.
    pub fn merged(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            busy: self.busy + other.busy,
            sync: self.sync + other.sync,
            mem: self.mem + other.mem,
        }
    }

    /// Scales every component by `num/den` (integer rounding), used when
    /// normalizing per-invocation averages. The intermediate product is
    /// computed in `u128`: production-scale runs accumulate ≥ 2^44 cycles,
    /// which already overflows `u64` when multiplied by a `num` in the
    /// thousands.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero, or if the *scaled result itself* exceeds
    /// `u64` (a genuine overflow, not an intermediate one).
    pub fn scaled(&self, num: u64, den: u64) -> TimeBreakdown {
        assert!(den > 0, "cannot scale a breakdown by a zero denominator");
        let scale = |c: Cycles| {
            let wide = u128::from(c.raw()) * u128::from(num) / u128::from(den);
            Cycles(u64::try_from(wide).expect("scaled cycle count overflows u64"))
        };
        TimeBreakdown {
            busy: scale(self.busy),
            sync: scale(self.sync),
            mem: scale(self.mem),
        }
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "busy={} sync={} mem={} (total={})",
            self.busy.raw(),
            self.sync.raw(),
            self.mem.raw(),
            self.total().raw()
        )
    }
}

/// A simple monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A power-of-two bucketed histogram for latency-like samples.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 counts 0 and 1.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in bucket `i` (samples in `[2^i, 2^(i+1))`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Sum of all samples recorded.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) from the log-2 buckets.
    ///
    /// Walks the buckets until the cumulative count reaches `ceil(q *
    /// count)` and returns that bucket's upper bound (`2^(i+1) - 1`),
    /// clamped to the recorded maximum so outliers don't inflate the tail
    /// beyond what was seen. Zero when empty. Bucket resolution means the
    /// answer is exact only to within a factor of two — fine for the p50 /
    /// p99 service-latency lines it feeds, where order of magnitude and
    /// trend matter, not the exact microsecond.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// A named bundle of counters, keyed by static strings.
///
/// Components register protocol-level counts (messages sent, invalidations,
/// write-backs, FAIL checks, …) here so that experiments can print them
/// without each component exposing bespoke accessors.
#[derive(Debug, Clone, Default)]
pub struct StatSet {
    counters: BTreeMap<&'static str, u64>,
}

impl StatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        StatSet::default()
    }

    /// Adds `n` to the counter named `key`, creating it at zero if absent.
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Increments the counter named `key` by one.
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of `key` (zero if never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another set into this one (component-wise addition).
    pub fn merge(&mut self, other: &StatSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Clears every counter.
    pub fn reset(&mut self) {
        self.counters.clear();
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counters.is_empty() {
            return write!(f, "(no stats)");
        }
        for (k, v) in self.iter() {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_and_fractions() {
        let t = TimeBreakdown {
            busy: Cycles(50),
            sync: Cycles(25),
            mem: Cycles(25),
        };
        assert_eq!(t.total(), Cycles(100));
        assert!((t.busy_fraction() - 0.5).abs() < 1e-12);
        assert!((t.sync_fraction() - 0.25).abs() < 1e-12);
        assert!((t.mem_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        for (busy, sync, mem) in [(1, 0, 0), (3, 5, 7), (1000, 1, 999), (2, 2, 2)] {
            let t = TimeBreakdown {
                busy: Cycles(busy),
                sync: Cycles(sync),
                mem: Cycles(mem),
            };
            let sum = t.busy_fraction() + t.sync_fraction() + t.mem_fraction();
            assert!((sum - 1.0).abs() < 1e-12, "fractions sum to {sum}");
        }
    }

    #[test]
    fn breakdown_empty_fractions_are_zero() {
        let t = TimeBreakdown::default();
        assert_eq!(t.busy_fraction(), 0.0);
        assert_eq!(t.total(), Cycles::ZERO);
    }

    #[test]
    fn breakdown_merge_and_scale() {
        let a = TimeBreakdown {
            busy: Cycles(10),
            sync: Cycles(20),
            mem: Cycles(30),
        };
        let b = a.merged(&a);
        assert_eq!(b.busy, Cycles(20));
        let half = b.scaled(1, 2);
        assert_eq!(half.mem, Cycles(30));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn scale_by_zero_denominator_panics() {
        TimeBreakdown::default().scaled(1, 0);
    }

    #[test]
    fn scale_survives_production_scale_cycle_counts() {
        // ~2^45 cycles (a couple of simulated days at 200 MHz) normalized
        // over a few thousand invocations: the u64 intermediate product
        // used to wrap at num ≥ ~2^20 here.
        let t = TimeBreakdown {
            busy: Cycles(1 << 45),
            sync: Cycles((1 << 44) + 12345),
            mem: Cycles(u64::MAX / 4096),
        };
        assert_eq!(t.scaled(4096, 4096), t, "identity scaling must be exact");
        let half = t.scaled(2048, 4096);
        assert_eq!(half.busy, Cycles(1 << 44));
        assert_eq!(half.sync, Cycles(((1u64 << 44) + 12345) / 2));
        // Scaling up past u64::MAX is a real overflow and must panic…
        assert!(
            std::panic::catch_unwind(|| t.scaled(1 << 20, 1)).is_err(),
            "true overflow must not wrap silently"
        );
        // …but a large num balanced by a large den must not.
        assert_eq!(t.scaled(1 << 20, 1 << 20), t);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket(0), 2); // 0 and 1
        assert_eq!(h.bucket(1), 2); // 2 and 3
        assert_eq!(h.bucket(2), 1); // 4
        assert_eq!(h.bucket(6), 1); // 100 in [64,128)
        assert_eq!(h.max(), 100);
        assert!((h.mean() - (110.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_walk_the_buckets() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0); // empty
        for _ in 0..99 {
            h.record(10); // bucket [8,16)
        }
        h.record(1000); // bucket [512,1024)
        assert_eq!(h.quantile(0.5), 15); // within the [8,16) bucket
        assert_eq!(h.quantile(0.99), 15);
        assert_eq!(h.quantile(1.0), 1000); // upper bound clamped to max
                                           // A single sample answers every quantile with itself (clamped).
        let mut one = Histogram::new();
        one.record(5);
        assert_eq!(one.quantile(0.0), 5);
        assert_eq!(one.quantile(0.5), 5);
        assert_eq!(one.quantile(1.0), 5);
    }

    #[test]
    fn statset_accumulates_and_merges() {
        let mut s = StatSet::new();
        s.incr("inv");
        s.add("inv", 2);
        s.incr("wb");
        let mut t = StatSet::new();
        t.add("inv", 10);
        t.merge(&s);
        assert_eq!(t.get("inv"), 13);
        assert_eq!(t.get("wb"), 1);
        assert_eq!(t.get("absent"), 0);
        let names: Vec<_> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["inv", "wb"]);
    }
}
