#![warn(missing_docs)]

//! # specrt-engine
//!
//! Discrete-event simulation engine underpinning the `specrt` machine model.
//!
//! The paper's evaluation (Section 5.1) is based on execution-driven
//! simulation of a CC-NUMA multiprocessor using Tangolite. This crate is the
//! from-scratch replacement for that substrate: a deterministic
//! discrete-event core with
//!
//! * virtual [`Cycles`] time,
//! * a stable, deterministic [`EventQueue`],
//! * occupancy-based contention modelling ([`Resource`], [`BankedResource`]),
//! * per-processor cycle accounting ([`TimeBreakdown`]) in the three
//!   categories the paper reports (Busy / Sync / Mem, Figure 12),
//! * statistics counters and histograms ([`Counter`], [`Histogram`]),
//! * a dependency-free deterministic RNG ([`SplitMix64`]) for tie-breaking
//!   and synthetic jitter.
//!
//! The engine is intentionally single-threaded: simulated parallelism across
//! processors is expressed as interleaved events in virtual time, which makes
//! every experiment bit-reproducible.
//!
//! ## Example
//!
//! ```
//! use specrt_engine::{Cycles, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycles(10), "late");
//! q.push(Cycles(5), "early");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t, e), (Cycles(5), "early"));
//! ```

pub mod events;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use resource::{BankedResource, Resource};
pub use rng::SplitMix64;
pub use stats::{Counter, Histogram, StatSet, TimeBreakdown};
pub use time::Cycles;
