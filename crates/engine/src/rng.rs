//! Dependency-free deterministic pseudo-random numbers.
//!
//! The engine itself must be reproducible, so components that need jitter or
//! tie-breaking (e.g. synthetic load-imbalance profiles) use this explicit,
//! seedable SplitMix64 generator rather than ambient randomness. Workload
//! crates that want richer distributions layer `rand` on top; the engine
//! stays dependency-free.

/// SplitMix64: a tiny, high-quality, splittable 64-bit PRNG.
///
/// # Examples
///
/// ```
/// use specrt_engine::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (Lemire); bias is negligible
        // for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator (split).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SplitMix64::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(21);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle of 100 elements should move something");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(42);
        let mut child = parent.split();
        let same = (0..100)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }
}
