//! Which protocol applies to which array: the paper's address-range
//! comparator (§4.1).
//!
//! "A better approach is to have a simple address-range comparator for the
//! various arrays that decides the type of protocol to be employed based on
//! the address of the array. The compiler inserts system calls that load and
//! unload the comparator appropriately." [`TestPlan`] is that comparator's
//! contents, keyed by logical array (the physical-range lookup itself is
//! `specrt_mem::AddressMap`).

use std::collections::BTreeMap;

use specrt_ir::ArrayId;

/// Protocol assigned to one array for a speculative loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Plain cache coherence; the array is not under test (compile-time
    /// analyzable, read-only, or not accessed).
    Plain,
    /// The non-privatization algorithm (Figures 4/6/7).
    NonPriv,
    /// The privatization algorithm (Figures 8/9).
    Priv {
        /// Whether private copies are lazily initialized from the shared
        /// array (read-in). Without it, reads that precede all writes in an
        /// iteration read uninitialized private data, so the compiler only
        /// disables read-in when every read is preceded by a write.
        read_in: bool,
        /// Whether the privatized array is live after the loop and must be
        /// merged back (copy-out, last-writer wins).
        copy_out: bool,
    },
}

impl ProtocolKind {
    /// Whether the array is under test at all.
    pub fn is_under_test(self) -> bool {
        !matches!(self, ProtocolKind::Plain)
    }

    /// Whether the array is privatized.
    pub fn is_privatized(self) -> bool {
        matches!(self, ProtocolKind::Priv { .. })
    }
}

/// The per-loop assignment of protocols to arrays.
///
/// # Examples
///
/// ```
/// use specrt_ir::ArrayId;
/// use specrt_spec::{ProtocolKind, TestPlan};
///
/// let mut plan = TestPlan::new();
/// plan.set(ArrayId(0), ProtocolKind::NonPriv);
/// plan.set(ArrayId(1), ProtocolKind::Priv { read_in: false, copy_out: false });
/// assert_eq!(plan.kind_of(ArrayId(0)), ProtocolKind::NonPriv);
/// assert_eq!(plan.kind_of(ArrayId(9)), ProtocolKind::Plain); // default
/// assert_eq!(plan.arrays_under_test().count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TestPlan {
    kinds: BTreeMap<ArrayId, ProtocolKind>,
}

impl TestPlan {
    /// An empty plan: every array uses plain coherence.
    pub fn new() -> Self {
        TestPlan::default()
    }

    /// Assigns `kind` to `array`. Assigning [`ProtocolKind::Plain`] removes
    /// any previous assignment.
    pub fn set(&mut self, array: ArrayId, kind: ProtocolKind) {
        if kind == ProtocolKind::Plain {
            self.kinds.remove(&array);
        } else {
            self.kinds.insert(array, kind);
        }
    }

    /// The protocol for `array` ([`ProtocolKind::Plain`] if unassigned).
    pub fn kind_of(&self, array: ArrayId) -> ProtocolKind {
        self.kinds
            .get(&array)
            .copied()
            .unwrap_or(ProtocolKind::Plain)
    }

    /// All arrays under test, in id order.
    pub fn arrays_under_test(&self) -> impl Iterator<Item = (ArrayId, ProtocolKind)> + '_ {
        self.kinds.iter().map(|(a, k)| (*a, *k))
    }

    /// Arrays under the non-privatization test.
    pub fn nonpriv_arrays(&self) -> Vec<ArrayId> {
        self.kinds
            .iter()
            .filter(|(_, k)| matches!(k, ProtocolKind::NonPriv))
            .map(|(a, _)| *a)
            .collect()
    }

    /// Arrays under the privatization test.
    pub fn priv_arrays(&self) -> Vec<ArrayId> {
        self.kinds
            .iter()
            .filter(|(_, k)| matches!(k, ProtocolKind::Priv { .. }))
            .map(|(a, _)| *a)
            .collect()
    }

    /// Whether any array is under test.
    pub fn any_under_test(&self) -> bool {
        !self.kinds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_plain() {
        let plan = TestPlan::new();
        assert_eq!(plan.kind_of(ArrayId(0)), ProtocolKind::Plain);
        assert!(!plan.any_under_test());
    }

    #[test]
    fn set_and_classify() {
        let mut plan = TestPlan::new();
        plan.set(ArrayId(1), ProtocolKind::NonPriv);
        plan.set(
            ArrayId(2),
            ProtocolKind::Priv {
                read_in: true,
                copy_out: true,
            },
        );
        assert_eq!(plan.nonpriv_arrays(), vec![ArrayId(1)]);
        assert_eq!(plan.priv_arrays(), vec![ArrayId(2)]);
        assert!(plan.kind_of(ArrayId(2)).is_privatized());
        assert!(plan.kind_of(ArrayId(1)).is_under_test());
        assert!(!plan.kind_of(ArrayId(3)).is_under_test());
    }

    #[test]
    fn setting_plain_unassigns() {
        let mut plan = TestPlan::new();
        plan.set(ArrayId(1), ProtocolKind::NonPriv);
        plan.set(ArrayId(1), ProtocolKind::Plain);
        assert!(!plan.any_under_test());
    }

    #[test]
    fn arrays_under_test_in_id_order() {
        let mut plan = TestPlan::new();
        plan.set(ArrayId(5), ProtocolKind::NonPriv);
        plan.set(ArrayId(2), ProtocolKind::NonPriv);
        let ids: Vec<u32> = plan.arrays_under_test().map(|(a, _)| a.0).collect();
        assert_eq!(ids, vec![2, 5]);
    }
}
