//! Effective iteration numbering: iteration-wise, block-chunked, and
//! processor-wise tests (paper §2.2.3 and §4.1).
//!
//! The privatization protocol stamps elements with iteration numbers. §4.1
//! observes that grouping contiguous iterations into chunks
//! ("superiterations") shrinks the stamps, reduces read-first signals, and
//! at the extreme of one chunk per processor turns the stamps into processor
//! ids — the processor-wise test. All of these are just a change of the
//! *effective* iteration number presented to the protocol, which this module
//! encapsulates.

/// Maps global 0-based iteration numbers to effective 1-based stamps.
///
/// # Examples
///
/// ```
/// use specrt_spec::IterationNumbering;
///
/// let itw = IterationNumbering::iteration_wise();
/// assert_eq!(itw.effective(0), 1);
/// assert_eq!(itw.effective(7), 8);
///
/// let chunked = IterationNumbering::chunked(4);
/// assert_eq!(chunked.effective(0), 1);
/// assert_eq!(chunked.effective(3), 1);
/// assert_eq!(chunked.effective(4), 2);
///
/// // Processor-wise: 100 iterations on 8 processors → 13-iteration chunks.
/// let pw = IterationNumbering::processor_wise(100, 8);
/// assert_eq!(pw.effective(0), 1);
/// assert_eq!(pw.effective(99), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationNumbering {
    chunk: u64,
}

impl IterationNumbering {
    /// Every iteration gets its own stamp (the plain iteration-wise test).
    pub fn iteration_wise() -> Self {
        IterationNumbering { chunk: 1 }
    }

    /// Contiguous chunks of `chunk` iterations share a stamp (block or
    /// block-cyclic superiterations).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn chunked(chunk: u64) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        IterationNumbering { chunk }
    }

    /// One chunk per processor over `total_iters` iterations: the
    /// processor-wise test. Requires static contiguous scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is zero.
    pub fn processor_wise(total_iters: u64, procs: u32) -> Self {
        assert!(procs > 0, "need at least one processor");
        let chunk = total_iters.div_ceil(procs as u64).max(1);
        IterationNumbering { chunk }
    }

    /// Chunk size in iterations.
    pub fn chunk_size(&self) -> u64 {
        self.chunk
    }

    /// The 1-based effective stamp of global iteration `iter` (0-based).
    pub fn effective(&self, iter: u64) -> u64 {
        iter / self.chunk + 1
    }

    /// How many distinct stamps a loop of `total_iters` iterations uses.
    pub fn stamp_count(&self, total_iters: u64) -> u64 {
        total_iters.div_ceil(self.chunk)
    }

    /// Bits required per stamp field for a loop of `total_iters` iterations.
    /// "If we want to support loops of up to 2^16 iterations … we need 2
    /// bytes per element for each shadow array" (paper §2.2.2).
    pub fn stamp_bits(&self, total_iters: u64) -> u32 {
        let stamps = self.stamp_count(total_iters);
        // Stamps are 1-based; value range is 0..=stamps.
        u64::BITS - stamps.leading_zeros()
    }

    /// Whether two global iterations share an effective stamp — dependences
    /// between them become invisible to the protocol, which is exactly why a
    /// not-fully-parallel loop can pass a coarser test (paper §2.2.3,
    /// Track's 5 failing instances pass processor-wise).
    pub fn same_stamp(&self, a: u64, b: u64) -> bool {
        self.effective(a) == self.effective(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_wise_is_identity_plus_one() {
        let n = IterationNumbering::iteration_wise();
        for i in 0..10 {
            assert_eq!(n.effective(i), i + 1);
        }
        assert_eq!(n.stamp_count(100), 100);
    }

    #[test]
    fn chunked_groups_contiguous_iterations() {
        let n = IterationNumbering::chunked(3);
        assert_eq!(n.effective(0), 1);
        assert_eq!(n.effective(2), 1);
        assert_eq!(n.effective(3), 2);
        assert!(n.same_stamp(0, 2));
        assert!(!n.same_stamp(2, 3));
        assert_eq!(n.stamp_count(10), 4);
    }

    #[test]
    fn processor_wise_covers_range_with_proc_count_stamps() {
        let n = IterationNumbering::processor_wise(480, 16);
        assert_eq!(n.chunk_size(), 30);
        assert_eq!(n.stamp_count(480), 16);
        assert_eq!(n.effective(0), 1);
        assert_eq!(n.effective(479), 16);
    }

    #[test]
    fn processor_wise_uneven_division() {
        let n = IterationNumbering::processor_wise(10, 4);
        assert_eq!(n.chunk_size(), 3);
        assert!(n.stamp_count(10) <= 4);
    }

    #[test]
    fn processor_wise_more_procs_than_iters() {
        let n = IterationNumbering::processor_wise(2, 8);
        assert_eq!(n.chunk_size(), 1);
    }

    #[test]
    fn stamp_bits_shrink_with_chunking() {
        let total = 1 << 16;
        let itw = IterationNumbering::iteration_wise();
        assert_eq!(itw.stamp_bits(total), 17); // 2^16 stamps, 1-based
        let pw = IterationNumbering::processor_wise(total, 16);
        assert_eq!(pw.stamp_bits(total), 5); // 16 stamps
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        IterationNumbering::chunked(0);
    }
}
