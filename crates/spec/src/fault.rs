//! Deliberate protocol-bug injection for the conformance harness.
//!
//! The differential fuzzer in `specrt-check` needs to prove it would catch a
//! real protocol regression. This module lets a test (or `specrt-check fuzz
//! --inject <bug>`) switch on one known-wrong behaviour in the protocol
//! state machines; the fuzzer must then report an oracle disagreement and
//! shrink it to a small counterexample.
//!
//! Injection is thread-local so concurrently running tests never see each
//! other's faults, and callers are expected to reset it (`inject(None)`)
//! when done — [`Injected`] does that on drop.

use std::cell::Cell;

/// A specific, deliberately wrong protocol behaviour that can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The non-privatization write test ignores the `ROnly` bit (paper §4.2,
    /// Fig. 6 case (c)): a write by the `First` processor to an element other
    /// processors already read is wrongly allowed, so a cross-iteration
    /// anti-dependence goes undetected and the loop "passes" with a wrong
    /// outcome.
    DropROnlyCheck,
    /// The privatization shared directory loses the `MaxR1st` stamp update
    /// (paper §4.2, Fig. 8 cases (d)/(e)): read-first iterations are tested
    /// but never recorded, so a later first-write's `Curr_Iter < MaxR1st`
    /// test (Fig. 9) compares against a stale stamp and a write-before-read
    /// flow hazard goes undetected — the loop "passes" with a wrong
    /// outcome.
    DropMaxR1stUpdate,
    /// The privatization read-first test's time-stamp comparison is
    /// inverted (paper Fig. 8: `Curr_Iter > MinW` becomes `Curr_Iter <=
    /// MinW`): legal read-firsts FAIL and genuine flow dependences pass,
    /// corrupting the stamps in both directions.
    SwapTsCompare,
    /// The checkpoint plane snapshots everything *except* the functional
    /// memory image accumulated since the last window barrier — the
    /// checkpoint-restart analogue of forgetting to merge dirty-line tags:
    /// a rollback then resumes from stale array contents and the final
    /// image diverges from the serial oracle. The node-fault campaign's
    /// image check must catch this.
    CkptSkipDirtySnapshot,
}

impl FaultKind {
    /// Every injectable fault, in CLI-listing order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::DropROnlyCheck,
        FaultKind::DropMaxR1stUpdate,
        FaultKind::SwapTsCompare,
        FaultKind::CkptSkipDirtySnapshot,
    ];

    /// Parses the CLI spelling used by `specrt-check fuzz --inject <bug>`.
    pub fn parse(s: &str) -> Option<FaultKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The CLI spelling of this fault.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::DropROnlyCheck => "drop-ronly",
            FaultKind::DropMaxR1stUpdate => "drop-maxr1st",
            FaultKind::SwapTsCompare => "swap-ts-compare",
            FaultKind::CkptSkipDirtySnapshot => "ckpt-skip-dirty",
        }
    }

    /// Comma-separated list of every valid CLI spelling, for error
    /// messages.
    pub fn known_names() -> String {
        Self::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

thread_local! {
    static ACTIVE: Cell<Option<FaultKind>> = const { Cell::new(None) };
}

/// Activates `fault` (or clears any active fault with `None`) for the
/// current thread.
pub fn inject(fault: Option<FaultKind>) {
    ACTIVE.with(|a| a.set(fault));
}

/// Whether `fault` is currently injected on this thread. Protocol code
/// consults this at the exact decision point the fault subverts.
pub fn active(fault: FaultKind) -> bool {
    ACTIVE.with(|a| a.get()) == Some(fault)
}

/// The fault injected on the current thread, if any. Fan-out code (the
/// parallel fuzzer) reads this before spawning workers and re-injects it on
/// each worker thread, so `--inject` behaves identically at every `--jobs`.
pub fn current() -> Option<FaultKind> {
    ACTIVE.with(|a| a.get())
}

/// RAII guard: injects a fault on construction, restores the previously
/// active fault on drop. Restoring (rather than clearing) keeps nested
/// guards well-behaved: the parallel fuzzer creates one guard per case, and
/// with `--jobs 1` those run inline on a thread that already holds the
/// CLI's outer guard — a clearing drop would silently disarm the fault for
/// everything after the first case (including shrinking). The guard is also
/// exception-safe: a panicking assertion does not leave the fault active
/// for the next test on the same thread.
#[derive(Debug)]
pub struct Injected(Option<FaultKind>);

impl Injected {
    /// Activates `fault` until the guard is dropped.
    pub fn new(fault: FaultKind) -> Injected {
        let prev = current();
        inject(Some(fault));
        Injected(prev)
    }
}

impl Drop for Injected {
    fn drop(&mut self) {
        inject(self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        assert!(!active(FaultKind::DropROnlyCheck));
    }

    #[test]
    fn guard_scopes_injection() {
        {
            let _g = Injected::new(FaultKind::DropROnlyCheck);
            assert!(active(FaultKind::DropROnlyCheck));
        }
        assert!(!active(FaultKind::DropROnlyCheck));
    }

    #[test]
    fn current_is_thread_local_and_replicable() {
        let outer = Injected::new(FaultKind::DropROnlyCheck);
        let fault = current();
        assert_eq!(fault, Some(FaultKind::DropROnlyCheck));
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(current(), None, "workers start clean");
                let _g = fault.map(Injected::new);
                assert!(active(FaultKind::DropROnlyCheck));
            });
        });
        drop(outer);
        assert_eq!(current(), None);
    }

    #[test]
    fn nested_guard_restores_outer_injection() {
        let _outer = Injected::new(FaultKind::DropROnlyCheck);
        {
            let _inner = Injected::new(FaultKind::DropROnlyCheck);
            assert!(active(FaultKind::DropROnlyCheck));
        }
        assert!(
            active(FaultKind::DropROnlyCheck),
            "dropping a nested guard must not disarm the outer one"
        );
    }

    #[test]
    fn parse_round_trips() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.name()), Some(k));
        }
        assert_eq!(FaultKind::parse("nonsense"), None);
    }

    #[test]
    fn known_names_lists_every_fault() {
        let listed = FaultKind::known_names();
        for k in FaultKind::ALL {
            assert!(listed.contains(k.name()), "{listed:?} misses {}", k.name());
        }
    }

    #[test]
    fn injection_is_kind_specific() {
        let _g = Injected::new(FaultKind::DropMaxR1stUpdate);
        assert!(active(FaultKind::DropMaxR1stUpdate));
        assert!(!active(FaultKind::SwapTsCompare));
        assert!(!active(FaultKind::DropROnlyCheck));
    }
}
