//! The non-privatization algorithm (paper Figures 4, 6 and 7).
//!
//! Invariant enforced per element of an array under test: the element is
//! either **read-only** (arbitrarily shared) or **not shared** (accessed by
//! exactly one processor, which may read and write it freely). Any access
//! pattern outside this envelope FAILs the speculation.
//!
//! State:
//!
//! * directory (home node), per element: `First` — id of the first processor
//!   to access the element; `NoShr` — the element has been written; `ROnly`
//!   — the element has been read by more than one processor;
//! * cache tags, per element: the same bits, except `First` is summarized to
//!   NONE/OWN/OTHER (a cache only needs to know whether *it* was first).
//!
//! Tag bits are kept coherent with the directory lazily: changes made while
//! the line is **dirty** need no message (any other processor must fetch the
//! line — and the tags — from the owner); changes on clean lines send
//! `First_update` / `ROnly_update` messages, whose races the directory
//! resolves (algorithms (f)–(h)).
//!
//! One deliberate deviation from the paper's literal pseudo-code is
//! documented at [`NonPrivDirElem::on_first_update`].

use specrt_cache::{ElemTag, FirstTag};
use specrt_mem::ProcId;

use crate::fail::FailReason;

/// Directory-side per-element state for the non-privatization protocol
/// (Figure 5-a: `log(Proc)`-bit `First` + `NoShr` + `ROnly`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NonPrivDirElem {
    /// First processor to access the element, if any.
    pub first: Option<ProcId>,
    /// Set when the element has been written.
    pub no_shr: bool,
    /// Set when the element has been read by more than one processor.
    pub r_only: bool,
}

/// What a cache-side read must do after the tag check (algorithm (a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonPrivReadAction {
    /// Tag state unchanged or line dirty: no message needed.
    NoMessage,
    /// `tag.First` went NONE→OWN on a non-dirty line: notify the home.
    SendFirstUpdate,
    /// `tag.ROnly` was set on a non-dirty line: notify the home.
    SendROnlyUpdate,
}

/// What a cache-side write must do after the tag check (algorithm (c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonPrivWriteAction {
    /// The line is dirty here: write immediately; tags already updated.
    WriteNow,
    /// The line is clean: a `write_req` (upgrade) must go to the home; tags
    /// are updated when the exclusive grant returns, via
    /// [`nonpriv_complete_write`].
    NeedWriteReq,
}

/// Outcome of the directory processing a `First_update` (algorithm (f)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstUpdateOutcome {
    /// `dir.First` was NONE and now records the sender.
    Accepted,
    /// `dir.First` already recorded the sender (message crossed a path that
    /// already informed the directory); nothing to do.
    Redundant,
    /// Another processor won the race: `dir.ROnly` is now set and a
    /// `First_update_fail` must be bounced to the sender (handled at the
    /// cache by [`nonpriv_on_first_update_fail`]).
    Bounced,
}

impl NonPrivDirElem {
    /// Compact state label for tracing: `Clear`, or the set bits joined
    /// with `,` — e.g. `First(cpu1)`, `NoShr,First(cpu0)`,
    /// `ROnly,First(cpu2)`.
    pub fn state_label(&self) -> String {
        let mut parts = Vec::new();
        if self.no_shr {
            parts.push("NoShr".to_string());
        }
        if self.r_only {
            parts.push("ROnly".to_string());
        }
        if let Some(p) = self.first {
            parts.push(format!("First({p})"));
        }
        if parts.is_empty() {
            "Clear".to_string()
        } else {
            parts.join(",")
        }
    }

    /// Directory part of a read request (algorithm (b)). Call *after*
    /// merging any dirty owner's tag state via [`merge_writeback`].
    ///
    /// # Errors
    ///
    /// FAILs when the requester reads data already written by another
    /// processor.
    ///
    /// [`merge_writeback`]: Self::merge_writeback
    pub fn on_read_req(&mut self, req: ProcId) -> Result<(), FailReason> {
        if self.first != Some(req) && self.no_shr && self.first.is_some() {
            return Err(FailReason::ReadOfRemotelyWritten {
                reader: req,
                first: self.first,
            });
        }
        match self.first {
            None => self.first = Some(req),
            Some(f) if f != req && !self.r_only => self.r_only = true,
            _ => {}
        }
        Ok(())
    }

    /// Directory part of a write request (algorithm (d)). Call *after*
    /// invalidating sharers / merging the dirty owner's tag state.
    ///
    /// # Errors
    ///
    /// FAILs when another processor accessed the element first, or the
    /// element is marked read-shared.
    pub fn on_write_req(&mut self, req: ProcId) -> Result<(), FailReason> {
        let foreign_first = matches!(self.first, Some(f) if f != req);
        // The `r_only` disjunct is the check the conformance harness can
        // deliberately disable to prove the fuzzer catches protocol bugs.
        let r_only_conflict =
            self.r_only && !crate::fault::active(crate::fault::FaultKind::DropROnlyCheck);
        if foreign_first || r_only_conflict {
            return Err(FailReason::WriteConflict {
                writer: req,
                first: self.first,
                r_only: self.r_only,
            });
        }
        self.first = Some(req);
        self.no_shr = true;
        Ok(())
    }

    /// Directory receives a `First_update` from `sender` (algorithm (f)).
    ///
    /// Deviation from the paper's literal pseudo-code: when `dir.First`
    /// already equals the sender the update is treated as redundant instead
    /// of bouncing (the paper's code would set `ROnly` and bounce, which is
    /// safe but needlessly conservative; the bounce branch is annotated
    /// "race between two First_updates", i.e. intended for *different*
    /// senders).
    ///
    /// # Errors
    ///
    /// FAILs when the update races with a write that reached the directory
    /// first (`dir.NoShr` already set).
    pub fn on_first_update(&mut self, sender: ProcId) -> Result<FirstUpdateOutcome, FailReason> {
        if self.no_shr {
            return Err(FailReason::FirstUpdateRace { sender });
        }
        match self.first {
            None => {
                self.first = Some(sender);
                Ok(FirstUpdateOutcome::Accepted)
            }
            Some(f) if f == sender => Ok(FirstUpdateOutcome::Redundant),
            Some(_) => {
                self.r_only = true;
                Ok(FirstUpdateOutcome::Bounced)
            }
        }
    }

    /// Directory receives an `ROnly_update` (algorithm (h)). A race between
    /// two `ROnly_update`s needs no bounce: the second is plainly ignored.
    ///
    /// # Errors
    ///
    /// FAILs when the update races with a write (`dir.NoShr` already set).
    pub fn on_r_only_update(&mut self, sender: ProcId) -> Result<(), FailReason> {
        if self.no_shr {
            return Err(FailReason::ROnlyUpdateRace { sender });
        }
        self.r_only = true;
        Ok(())
    }

    /// Merges a dirty line's tag state into the directory (algorithm (e),
    /// and the "update dir.First, dir.Priv and dir.ROnly" steps of (b) and
    /// (d)). `owner` is the processor whose cache held the dirty line.
    ///
    /// Extension over the paper's literal pseudo-code: the merge itself
    /// checks for conflicts. A processor that holds a line dirty updates tag
    /// bits of *other elements on the line* without messaging the home, so
    /// by the time the line is written back the directory may hold a
    /// different `First` (from an update message that raced in). The merge
    /// is the first moment both views meet; if together they show an element
    /// both written and touched by two processors, the speculation FAILs
    /// here — before any other processor can consume the line, since every
    /// fetch of a dirty line performs this merge first.
    ///
    /// # Errors
    ///
    /// FAILs when the combined state leaves the read-only-or-single-
    /// processor envelope.
    pub fn merge_writeback(&mut self, tag: ElemTag, owner: ProcId) -> Result<(), FailReason> {
        let mut multi_proc = false;
        if tag.first() == FirstTag::Own {
            match self.first {
                None => self.first = Some(owner),
                Some(q) if q == owner => {}
                Some(_) => multi_proc = true,
            }
        }
        self.no_shr |= tag.no_shr();
        self.r_only |= tag.r_only();
        if multi_proc {
            if self.no_shr {
                return Err(FailReason::WriteConflict {
                    writer: owner,
                    first: self.first,
                    r_only: self.r_only,
                });
            }
            // Two distinct processors have (only) read the element.
            self.r_only = true;
        }
        if self.no_shr && self.r_only {
            return Err(FailReason::WriteConflict {
                writer: owner,
                first: self.first,
                r_only: true,
            });
        }
        Ok(())
    }

    /// Projects the directory state into the cache-tag view sent to
    /// `viewer` with a data reply ("Copy dir state to tag state for all the
    /// words in the line").
    pub fn to_tag(&self, viewer: ProcId) -> ElemTag {
        let mut t = ElemTag::CLEAR;
        t.set_first(match self.first {
            None => FirstTag::None,
            Some(p) if p == viewer => FirstTag::Own,
            Some(_) => FirstTag::Other,
        });
        t.set_no_shr(self.no_shr);
        t.set_r_only(self.r_only);
        t
    }

    /// Clears the element's state (loop start).
    pub fn clear(&mut self) {
        *self = NonPrivDirElem::default();
    }
}

/// Cache-side read of an element whose line is resident (algorithm (a)).
///
/// Mutates the tag and reports which (if any) update message must be sent to
/// the home node; no message is needed when the line is dirty, because any
/// other processor must fetch the line — tags included — from this cache.
///
/// # Errors
///
/// FAILs when the tag shows the element written by another processor
/// (`First == OTHER && NoShr`).
pub fn nonpriv_cache_read(
    tag: &mut ElemTag,
    line_dirty: bool,
    reader: ProcId,
) -> Result<NonPrivReadAction, FailReason> {
    if tag.first() == FirstTag::Other && tag.no_shr() {
        return Err(FailReason::ReadOfRemotelyWritten {
            reader,
            first: None,
        });
    }
    if tag.first() == FirstTag::None {
        tag.set_first(FirstTag::Own);
        if !line_dirty {
            return Ok(NonPrivReadAction::SendFirstUpdate);
        }
    } else if tag.first() == FirstTag::Other && !tag.r_only() {
        tag.set_r_only(true);
        if !line_dirty {
            return Ok(NonPrivReadAction::SendROnlyUpdate);
        }
    }
    Ok(NonPrivReadAction::NoMessage)
}

/// Cache-side write of an element whose line is resident (algorithm (c)).
///
/// On a dirty line the write proceeds locally and the tags are updated with
/// no directory message. On a clean line the caller must issue a `write_req`
/// and call [`nonpriv_complete_write`] once the exclusive grant arrives.
///
/// # Errors
///
/// FAILs when the element was first accessed by another processor or is
/// marked read-shared.
pub fn nonpriv_cache_write(
    tag: &mut ElemTag,
    line_dirty: bool,
    writer: ProcId,
) -> Result<NonPrivWriteAction, FailReason> {
    if tag.first() == FirstTag::Other || tag.r_only() {
        return Err(FailReason::WriteConflict {
            writer,
            first: None,
            r_only: tag.r_only(),
        });
    }
    if line_dirty {
        nonpriv_complete_write(tag);
        Ok(NonPrivWriteAction::WriteNow)
    } else {
        Ok(NonPrivWriteAction::NeedWriteReq)
    }
}

/// Applies the tag effects of a completed write: `tag.First = OWN`,
/// `tag.NoShr = 1` ("no need to tell the directory" — the write request
/// itself already updated it, or the line is dirty).
pub fn nonpriv_complete_write(tag: &mut ElemTag) {
    tag.set_first(FirstTag::Own);
    tag.set_no_shr(true);
}

/// Cache receives a `First_update_fail` bounce (algorithm (g)): this
/// processor was not first after all.
///
/// # Errors
///
/// FAILs when the processor had *already written* the element on the
/// strength of believing it was first (`tag.First == OWN && tag.NoShr`).
pub fn nonpriv_on_first_update_fail(tag: &mut ElemTag, proc: ProcId) -> Result<(), FailReason> {
    if tag.first() == FirstTag::Own && tag.no_shr() {
        return Err(FailReason::FirstUpdateFailAfterWrite { proc });
    }
    tag.set_first(FirstTag::Other);
    tag.set_r_only(true);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcId = ProcId(0);
    const P1: ProcId = ProcId(1);

    // ---- directory-level sequences (as if uncached) ----

    #[test]
    fn state_labels_follow_transitions() {
        let mut d = NonPrivDirElem::default();
        assert_eq!(d.state_label(), "Clear");
        d.on_read_req(P0).unwrap();
        assert_eq!(d.state_label(), "First(cpu0)");
        d.on_read_req(P1).unwrap();
        assert_eq!(d.state_label(), "ROnly,First(cpu0)");
        let mut w = NonPrivDirElem::default();
        w.on_write_req(P1).unwrap();
        assert_eq!(w.state_label(), "NoShr,First(cpu1)");
    }

    #[test]
    fn single_processor_read_write_passes() {
        let mut d = NonPrivDirElem::default();
        d.on_read_req(P0).unwrap();
        d.on_write_req(P0).unwrap();
        d.on_read_req(P0).unwrap();
        d.on_write_req(P0).unwrap();
        assert_eq!(d.first, Some(P0));
        assert!(d.no_shr);
        assert!(!d.r_only);
    }

    #[test]
    fn read_only_sharing_passes() {
        let mut d = NonPrivDirElem::default();
        d.on_read_req(P0).unwrap();
        d.on_read_req(P1).unwrap();
        d.on_read_req(P0).unwrap();
        assert!(d.r_only);
        assert!(!d.no_shr);
    }

    #[test]
    fn remote_read_after_write_fails() {
        let mut d = NonPrivDirElem::default();
        d.on_write_req(P0).unwrap();
        let err = d.on_read_req(P1).unwrap_err();
        assert!(matches!(err, FailReason::ReadOfRemotelyWritten { reader, .. } if reader == P1));
    }

    #[test]
    fn write_after_foreign_first_fails() {
        let mut d = NonPrivDirElem::default();
        d.on_read_req(P0).unwrap();
        let err = d.on_write_req(P1).unwrap_err();
        assert!(matches!(err, FailReason::WriteConflict { writer, .. } if writer == P1));
    }

    #[test]
    fn write_to_read_shared_element_fails_even_for_first() {
        let mut d = NonPrivDirElem::default();
        d.on_read_req(P0).unwrap();
        d.on_read_req(P1).unwrap(); // sets ROnly
        let err = d.on_write_req(P0).unwrap_err();
        assert!(matches!(
            err,
            FailReason::WriteConflict { r_only: true, .. }
        ));
    }

    #[test]
    fn two_concurrent_writes_second_fails() {
        // The paper's §3.2 race walk-through: both writes serialize at the
        // directory; the second finds NoShr set by the first.
        let mut d = NonPrivDirElem::default();
        d.on_write_req(P0).unwrap();
        assert!(d.on_write_req(P1).is_err());
    }

    // ---- update-message races (algorithms (f)-(h)) ----

    #[test]
    fn first_update_accepted_then_bounced() {
        let mut d = NonPrivDirElem::default();
        assert_eq!(d.on_first_update(P0).unwrap(), FirstUpdateOutcome::Accepted);
        assert_eq!(d.on_first_update(P1).unwrap(), FirstUpdateOutcome::Bounced);
        assert!(
            d.r_only,
            "losing a First_update race marks the element read-shared"
        );
    }

    #[test]
    fn first_update_redundant_for_same_sender() {
        let mut d = NonPrivDirElem::default();
        d.on_first_update(P0).unwrap();
        assert_eq!(
            d.on_first_update(P0).unwrap(),
            FirstUpdateOutcome::Redundant
        );
        assert!(!d.r_only);
    }

    #[test]
    fn first_update_vs_write_race_fails() {
        let mut d = NonPrivDirElem::default();
        d.on_write_req(P0).unwrap();
        let err = d.on_first_update(P1).unwrap_err();
        assert!(matches!(err, FailReason::FirstUpdateRace { sender } if sender == P1));
    }

    #[test]
    fn r_only_update_vs_write_race_fails() {
        let mut d = NonPrivDirElem::default();
        d.on_write_req(P0).unwrap();
        assert!(d.on_r_only_update(P1).is_err());
    }

    #[test]
    fn r_only_update_race_between_readers_is_benign() {
        let mut d = NonPrivDirElem::default();
        d.on_read_req(P0).unwrap();
        d.on_read_req(P1).unwrap();
        d.on_r_only_update(P0).unwrap();
        d.on_r_only_update(P1).unwrap(); // second plainly ignored
        assert!(d.r_only);
    }

    // ---- cache-tag side ----

    #[test]
    fn cache_read_first_touch_sends_first_update_when_clean() {
        let mut t = ElemTag::CLEAR;
        let action = nonpriv_cache_read(&mut t, false, P0).unwrap();
        assert_eq!(action, NonPrivReadAction::SendFirstUpdate);
        assert_eq!(t.first(), FirstTag::Own);
    }

    #[test]
    fn cache_read_first_touch_on_dirty_line_is_silent() {
        let mut t = ElemTag::CLEAR;
        let action = nonpriv_cache_read(&mut t, true, P0).unwrap();
        assert_eq!(action, NonPrivReadAction::NoMessage);
        assert_eq!(t.first(), FirstTag::Own);
    }

    #[test]
    fn cache_read_sets_r_only_when_other_was_first() {
        let mut t = ElemTag::CLEAR;
        t.set_first(FirstTag::Other);
        let action = nonpriv_cache_read(&mut t, false, P0).unwrap();
        assert_eq!(action, NonPrivReadAction::SendROnlyUpdate);
        assert!(t.r_only());
        // A second read needs no further message.
        let action = nonpriv_cache_read(&mut t, false, P0).unwrap();
        assert_eq!(action, NonPrivReadAction::NoMessage);
    }

    #[test]
    fn cache_read_of_remotely_written_fails() {
        let mut t = ElemTag::CLEAR;
        t.set_first(FirstTag::Other);
        t.set_no_shr(true);
        assert!(nonpriv_cache_read(&mut t, false, P0).is_err());
    }

    #[test]
    fn cache_write_dirty_line_proceeds_and_tags() {
        let mut t = ElemTag::CLEAR;
        let a = nonpriv_cache_write(&mut t, true, P0).unwrap();
        assert_eq!(a, NonPrivWriteAction::WriteNow);
        assert_eq!(t.first(), FirstTag::Own);
        assert!(t.no_shr());
    }

    #[test]
    fn cache_write_clean_line_needs_upgrade() {
        let mut t = ElemTag::CLEAR;
        let a = nonpriv_cache_write(&mut t, false, P0).unwrap();
        assert_eq!(a, NonPrivWriteAction::NeedWriteReq);
        // Tags are not yet updated; they are set on grant completion.
        assert_eq!(t.first(), FirstTag::None);
        nonpriv_complete_write(&mut t);
        assert_eq!(t.first(), FirstTag::Own);
        assert!(t.no_shr());
    }

    #[test]
    fn cache_write_fails_on_other_first_or_r_only() {
        let mut t = ElemTag::CLEAR;
        t.set_first(FirstTag::Other);
        assert!(nonpriv_cache_write(&mut t, false, P0).is_err());
        let mut t = ElemTag::CLEAR;
        t.set_r_only(true);
        assert!(nonpriv_cache_write(&mut t, true, P0).is_err());
    }

    #[test]
    fn first_update_fail_bounce_without_write_demotes() {
        let mut t = ElemTag::CLEAR;
        t.set_first(FirstTag::Own);
        nonpriv_on_first_update_fail(&mut t, P0).unwrap();
        assert_eq!(t.first(), FirstTag::Other);
        assert!(t.r_only());
    }

    #[test]
    fn first_update_fail_bounce_after_write_fails() {
        // "The slower processor not only read but also wrote the data before
        // knowing whether it was the First processor" (paper §3.2).
        let mut t = ElemTag::CLEAR;
        t.set_first(FirstTag::Own);
        t.set_no_shr(true);
        let err = nonpriv_on_first_update_fail(&mut t, P1).unwrap_err();
        assert!(matches!(err, FailReason::FirstUpdateFailAfterWrite { proc } if proc == P1));
    }

    // ---- dir <-> tag projection ----

    #[test]
    fn to_tag_maps_first_to_viewpoint() {
        let mut d = NonPrivDirElem::default();
        d.on_write_req(P0).unwrap();
        let own = d.to_tag(P0);
        assert_eq!(own.first(), FirstTag::Own);
        assert!(own.no_shr());
        let other = d.to_tag(P1);
        assert_eq!(other.first(), FirstTag::Other);
    }

    #[test]
    fn merge_writeback_propagates_owner_state() {
        let mut d = NonPrivDirElem::default();
        let mut t = ElemTag::CLEAR;
        // Owner read and wrote the element while the line was dirty: the
        // directory never heard about it until the write-back.
        t.set_first(FirstTag::Own);
        t.set_no_shr(true);
        d.merge_writeback(t, P1).unwrap();
        assert_eq!(d.first, Some(P1));
        assert!(d.no_shr);
        // A read by another processor now fails, as required.
        assert!(d.on_read_req(P0).is_err());
    }

    #[test]
    fn merge_writeback_of_untouched_tag_is_noop() {
        let mut d = NonPrivDirElem::default();
        d.merge_writeback(ElemTag::CLEAR, P1).unwrap();
        assert_eq!(d, NonPrivDirElem::default());
    }

    #[test]
    fn merge_writeback_detects_in_flight_read_vs_dirty_write() {
        // P0's First_update (from a read) reached the directory while P1
        // held the line dirty and wrote the element without messaging.
        let mut d = NonPrivDirElem::default();
        d.on_first_update(P0).unwrap();
        let mut t = ElemTag::CLEAR;
        t.set_first(FirstTag::Own);
        t.set_no_shr(true);
        let err = d.merge_writeback(t, P1).unwrap_err();
        assert!(matches!(err, FailReason::WriteConflict { writer, .. } if writer == P1));
    }

    #[test]
    fn merge_writeback_two_silent_readers_become_r_only() {
        // P0 read (directory knows); P1 read the same element on a line it
        // held dirty (for some other element) — silent. The merge must
        // conclude "read by two processors" without failing.
        let mut d = NonPrivDirElem::default();
        d.on_first_update(P0).unwrap();
        let mut t = ElemTag::CLEAR;
        t.set_first(FirstTag::Own); // P1 believed it was first
        d.merge_writeback(t, P1).unwrap();
        assert!(d.r_only);
        assert_eq!(d.first, Some(P0));
        // A later write by anyone now fails.
        assert!(d.on_write_req(P0).is_err());
    }

    #[test]
    fn clear_resets_dir_elem() {
        let mut d = NonPrivDirElem::default();
        d.on_write_req(P0).unwrap();
        d.clear();
        assert_eq!(d, NonPrivDirElem::default());
    }

    // ---- order-independence property of the envelope ----

    #[test]
    fn envelope_property_exhaustive_small() {
        // For every access sequence of length <= 4 over 2 processors and one
        // element (directory-serialized, uncached), the protocol passes iff
        // the element is read-only or single-processor.
        #[derive(Clone, Copy)]
        enum Acc {
            R(ProcId),
            W(ProcId),
        }
        let choices = [Acc::R(P0), Acc::W(P0), Acc::R(P1), Acc::W(P1)];
        for len in 0..=4usize {
            let mut idx = vec![0usize; len];
            loop {
                let seq: Vec<Acc> = idx.iter().map(|&i| choices[i]).collect();
                // Run protocol.
                let mut d = NonPrivDirElem::default();
                let mut failed = false;
                for a in &seq {
                    let r = match a {
                        Acc::R(p) => d.on_read_req(*p),
                        Acc::W(p) => d.on_write_req(*p),
                    };
                    if r.is_err() {
                        failed = true;
                        break;
                    }
                }
                // Oracle.
                let procs: std::collections::BTreeSet<u32> = seq
                    .iter()
                    .map(|a| match a {
                        Acc::R(p) | Acc::W(p) => p.0,
                    })
                    .collect();
                let any_write = seq.iter().any(|a| matches!(a, Acc::W(_)));
                let ok = procs.len() <= 1 || !any_write;
                assert_eq!(!failed, ok, "mismatch for sequence of length {len}");
                // Next index vector.
                let mut k = 0;
                loop {
                    if k == len {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < choices.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == len {
                    break;
                }
            }
        }
    }
}
