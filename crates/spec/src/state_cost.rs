//! Storage-cost analytics: Figure 5 and the §3.4 hardware-vs-software
//! comparison, as executable formulas.
//!
//! §3.4: "the software scheme requires, per array element, 3 time-stamps for
//! the shadow locations (if read-in is not supported) or 4 time-stamps (if
//! read-in is supported). The hardware scheme, according to Figure 5,
//! requires the maximum of 2 and 2+log(Proc) bits (if read-in is not
//! supported) or the maximum of 2 time stamps and 2+log(Proc) bits (if
//! read-in is supported)."

/// Per-element overhead-state calculator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateCost {
    /// Number of processors.
    pub procs: u32,
    /// Maximum loop iteration count to support.
    pub max_iters: u64,
}

impl StateCost {
    /// Creates a calculator.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is zero or `max_iters` is zero.
    pub fn new(procs: u32, max_iters: u64) -> Self {
        assert!(procs > 0 && max_iters > 0, "need processors and iterations");
        StateCost { procs, max_iters }
    }

    /// Bits per iteration time stamp: `ceil(log2(max_iters + 1))`
    /// (stamps are 1-based with 0 reserved for "never").
    pub fn stamp_bits(&self) -> u32 {
        u64::BITS - self.max_iters.leading_zeros()
    }

    /// Bits to name a processor: `ceil(log2(procs))`, at least 1.
    pub fn proc_bits(&self) -> u32 {
        (u32::BITS - (self.procs - 1).leading_zeros()).max(1)
    }

    /// Directory bits per element for the hardware **non-privatization**
    /// protocol (Figure 5-a): `First` (processor id) + `NoShr` + `ROnly`.
    pub fn hw_nonpriv_dir_bits(&self) -> u32 {
        self.proc_bits() + 2
    }

    /// Cache-tag bits per element for the non-privatization protocol:
    /// 2-bit `First` summary + `NoShr` + `ROnly`.
    pub fn hw_nonpriv_tag_bits(&self) -> u32 {
        4
    }

    /// Directory bits per element for the hardware **privatization**
    /// protocol *without* read-in/copy-out (Figure 5-b): just `Read1st` and
    /// `Write`.
    pub fn hw_priv_dir_bits_no_read_in(&self) -> u32 {
        2
    }

    /// Directory bits per element for the privatization protocol *with*
    /// read-in/copy-out (Figure 5-c): two iteration time stamps
    /// (`MaxR1st`/`MinW` shared side, `PMaxR1st`/`PMaxW` private side).
    pub fn hw_priv_dir_bits_read_in(&self) -> u32 {
        2 * self.stamp_bits()
    }

    /// Cache-tag bits per element for the privatization protocol:
    /// `Read1st` + `Write`.
    pub fn hw_priv_tag_bits(&self) -> u32 {
        2
    }

    /// Total hardware directory bits per element: the single shared set of
    /// bits must support both protocols, so it is the max of the two
    /// (§3.4's fourth advantage).
    pub fn hw_dir_bits(&self, read_in: bool) -> u32 {
        let priv_bits = if read_in {
            self.hw_priv_dir_bits_read_in()
        } else {
            self.hw_priv_dir_bits_no_read_in()
        };
        priv_bits.max(self.hw_nonpriv_dir_bits())
    }

    /// Hardware cache-tag bits per element (max over protocols).
    pub fn hw_tag_bits(&self) -> u32 {
        self.hw_nonpriv_tag_bits().max(self.hw_priv_tag_bits())
    }

    /// Software LRPD shadow state per element, in bits: 3 time stamps
    /// (`A_r`, `A_w`, `A_np`) without read-in support, 4 (adding
    /// `A_wmin`, §2.2.3) with it.
    pub fn sw_bits(&self, read_in: bool) -> u32 {
        let stamps = if read_in { 4 } else { 3 };
        stamps * self.stamp_bits()
    }

    /// Software processor-wise shadow state per element: the three shadow
    /// entries shrink to 1 bit each (§2.2.3).
    pub fn sw_processor_wise_bits(&self) -> u32 {
        3
    }

    /// HW-to-SW state ratio (< 1.0 means hardware needs less state).
    pub fn hw_over_sw_ratio(&self, read_in: bool) -> f64 {
        self.hw_dir_bits(read_in) as f64 / self.sw_bits(read_in) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_bits_match_paper_example() {
        // "if we want to support loops of up to 2^16 iterations … we need 2
        // bytes per element for each shadow array".
        let c = StateCost::new(16, (1 << 16) - 1);
        assert_eq!(c.stamp_bits(), 16);
        assert_eq!(c.sw_bits(false), 48); // 3 stamps * 16 bits
        assert_eq!(c.sw_bits(true), 64); // 4 stamps
    }

    #[test]
    fn proc_bits() {
        assert_eq!(StateCost::new(1, 10).proc_bits(), 1);
        assert_eq!(StateCost::new(2, 10).proc_bits(), 1);
        assert_eq!(StateCost::new(16, 10).proc_bits(), 4);
        assert_eq!(StateCost::new(17, 10).proc_bits(), 5);
    }

    #[test]
    fn hw_dir_bits_no_read_in_is_nonpriv_dominated() {
        let c = StateCost::new(16, 1 << 16);
        // max(2, 2 + log P) = 2 + 4 = 6 bits.
        assert_eq!(c.hw_dir_bits(false), 6);
    }

    #[test]
    fn hw_dir_bits_read_in_is_stamp_dominated() {
        let c = StateCost::new(16, (1 << 16) - 1);
        // max(2 * 16, 6) = 32 bits.
        assert_eq!(c.hw_dir_bits(true), 32);
    }

    #[test]
    fn hw_needs_less_state_than_sw() {
        let c = StateCost::new(16, (1 << 16) - 1);
        assert!(c.hw_over_sw_ratio(false) < 1.0);
        assert!(c.hw_over_sw_ratio(true) < 1.0);
    }

    #[test]
    fn tag_bits() {
        let c = StateCost::new(16, 100);
        assert_eq!(c.hw_tag_bits(), 4);
        assert_eq!(c.hw_priv_tag_bits(), 2);
        assert_eq!(c.sw_processor_wise_bits(), 3);
    }

    #[test]
    #[should_panic(expected = "need processors")]
    fn zero_procs_rejected() {
        StateCost::new(0, 1);
    }
}
