//! Reasons a speculative parallel execution fails.
//!
//! When any protocol handler detects a (potential) cross-iteration
//! dependence it returns one of these reasons; the machine layer then aborts
//! the parallel execution immediately — the key advantage over the software
//! scheme, which only learns of failure after the whole loop has run.

use std::fmt;

use specrt_mem::ProcId;

/// Why the hardware flagged the speculative execution as not parallel.
///
/// Variants map one-to-one onto the `FAIL` statements in the paper's
/// algorithm figures (6–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// Non-privatization, processor read (Fig. 6-a/b): the element was
    /// already written (`NoShr`) by a different processor.
    ReadOfRemotelyWritten {
        /// The reading processor.
        reader: ProcId,
        /// The processor recorded as `First`, if known at the failing site.
        first: Option<ProcId>,
    },
    /// Non-privatization, processor write (Fig. 6-c/d): the element was
    /// first accessed by a different processor, or is marked read-shared
    /// (`ROnly`).
    WriteConflict {
        /// The writing processor.
        writer: ProcId,
        /// The processor recorded as `First`, if any.
        first: Option<ProcId>,
        /// Whether the failure was due to the `ROnly` bit.
        r_only: bool,
    },
    /// Non-privatization (Fig. 7-f): a `First_update` message from a read
    /// raced with a write that reached the directory first.
    FirstUpdateRace {
        /// Sender of the losing `First_update`.
        sender: ProcId,
    },
    /// Non-privatization (Fig. 7-g): a `First_update_fail` bounce found that
    /// this processor had already written the element (read then wrote
    /// before learning it was not first).
    FirstUpdateFailAfterWrite {
        /// The processor whose speculation collapsed.
        proc: ProcId,
    },
    /// Non-privatization (Fig. 7-h): an `ROnly_update` raced with a write.
    ROnlyUpdateRace {
        /// Sender of the losing `ROnly_update`.
        sender: ProcId,
    },
    /// Privatization (Fig. 8-d/e): a read-first iteration is later than the
    /// minimum writing iteration (`Curr_Iter > MinW`).
    ReadFirstAfterWrite {
        /// The read-first iteration number (1-based effective numbering).
        iter: u64,
        /// The `MinW` stamp it collided with.
        min_w: u64,
    },
    /// Privatization (Fig. 9-i/j): a first-write iteration is earlier than
    /// the maximum read-first iteration (`Curr_Iter < MaxR1st`).
    WriteBeforeReadFirst {
        /// The writing iteration number (1-based effective numbering).
        iter: u64,
        /// The `MaxR1st` stamp it collided with.
        max_r1st: u64,
    },
    /// An exception occurred during speculative execution (e.g. divide by
    /// zero caused by stale speculative data); per §2.2 the loop must abort
    /// and re-execute serially.
    Exception,
    /// A protocol update message and every retransmission of it were lost
    /// in transit; the watchdog can no longer prove the dependence test
    /// saw all accesses, so it escalates into the paper's safety net (§3):
    /// abort, restore backups, re-execute serially.
    MessageLost {
        /// Transmissions attempted (original send plus retries).
        attempts: u32,
    },
    /// The retry watchdog exhausted its retransmission budget against a
    /// node that never answered: every message to (or from) it vanished,
    /// so the sender suspects the node itself is crashed, stalled, or
    /// partitioned away rather than the interconnect losing isolated
    /// messages. Recovery policy decides whether this means whole-loop
    /// serial re-execution or a checkpoint rollback onto the survivors.
    NodeUnreachable {
        /// The node the sender suspects (dead/paused peer, or the
        /// unreachable destination across a partition).
        node: ProcId,
    },
}

impl FailReason {
    /// Short machine-readable label, used in statistics.
    pub fn label(&self) -> &'static str {
        match self {
            FailReason::ReadOfRemotelyWritten { .. } => "read_of_remotely_written",
            FailReason::WriteConflict { .. } => "write_conflict",
            FailReason::FirstUpdateRace { .. } => "first_update_race",
            FailReason::FirstUpdateFailAfterWrite { .. } => "first_update_fail_after_write",
            FailReason::ROnlyUpdateRace { .. } => "r_only_update_race",
            FailReason::ReadFirstAfterWrite { .. } => "read_first_after_write",
            FailReason::WriteBeforeReadFirst { .. } => "write_before_read_first",
            FailReason::Exception => "exception",
            FailReason::MessageLost { .. } => "message_lost",
            FailReason::NodeUnreachable { .. } => "node_unreachable",
        }
    }

    /// The paper figure whose `FAIL` statement this reason maps onto.
    pub fn figure(&self) -> &'static str {
        match self {
            FailReason::ReadOfRemotelyWritten { .. } => "Fig. 6-b",
            FailReason::WriteConflict { .. } => "Fig. 6-d",
            FailReason::FirstUpdateRace { .. } => "Fig. 7-f",
            FailReason::FirstUpdateFailAfterWrite { .. } => "Fig. 7-g",
            FailReason::ROnlyUpdateRace { .. } => "Fig. 7-h",
            FailReason::ReadFirstAfterWrite { .. } => "Fig. 8-e",
            FailReason::WriteBeforeReadFirst { .. } => "Fig. 9-j",
            FailReason::Exception => "§2.2",
            FailReason::MessageLost { .. } => "§3",
            FailReason::NodeUnreachable { .. } => "§3",
        }
    }
}

/// The `Display` rendering is a **stable, single-line** sentence naming the
/// processors/iterations involved and the paper figure the `FAIL` comes
/// from; reports (the abort-forensics table) rely on it staying one line.
impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::ReadOfRemotelyWritten { reader, first } => write!(
                f,
                "{reader} read an element already written by {}",
                first.map_or("another processor".to_string(), |p| p.to_string())
            )?,
            FailReason::WriteConflict {
                writer,
                first,
                r_only,
            } => {
                if *r_only {
                    write!(f, "{writer} wrote an element marked read-only shared")?;
                } else {
                    write!(
                        f,
                        "{writer} wrote an element first accessed by {}",
                        first.map_or("another processor".to_string(), |p| p.to_string())
                    )?;
                }
            }
            FailReason::FirstUpdateRace { sender } => {
                write!(f, "First_update from {sender} raced with a write")?;
            }
            FailReason::FirstUpdateFailAfterWrite { proc } => {
                write!(f, "{proc} wrote before learning it was not First")?;
            }
            FailReason::ROnlyUpdateRace { sender } => {
                write!(f, "ROnly_update from {sender} raced with a write")?;
            }
            FailReason::ReadFirstAfterWrite { iter, min_w } => {
                write!(
                    f,
                    "read-first iteration {iter} follows write iteration {min_w}"
                )?;
            }
            FailReason::WriteBeforeReadFirst { iter, max_r1st } => {
                write!(
                    f,
                    "write iteration {iter} precedes read-first iteration {max_r1st}"
                )?;
            }
            FailReason::Exception => write!(f, "exception during speculative execution")?,
            FailReason::MessageLost { attempts } => {
                write!(f, "update message lost after {attempts} transmission(s)")?;
            }
            FailReason::NodeUnreachable { node } => {
                write!(f, "{node} unreachable after retransmission budget")?;
            }
        }
        write!(f, " [{}]", self.figure())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let reasons = [
            FailReason::ReadOfRemotelyWritten {
                reader: ProcId(0),
                first: None,
            },
            FailReason::WriteConflict {
                writer: ProcId(0),
                first: None,
                r_only: false,
            },
            FailReason::FirstUpdateRace { sender: ProcId(0) },
            FailReason::FirstUpdateFailAfterWrite { proc: ProcId(0) },
            FailReason::ROnlyUpdateRace { sender: ProcId(0) },
            FailReason::ReadFirstAfterWrite { iter: 2, min_w: 1 },
            FailReason::WriteBeforeReadFirst {
                iter: 1,
                max_r1st: 2,
            },
            FailReason::Exception,
            FailReason::MessageLost { attempts: 5 },
            FailReason::NodeUnreachable { node: ProcId(2) },
        ];
        let mut labels: Vec<_> = reasons.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), reasons.len());
    }

    #[test]
    fn display_mentions_parties() {
        let r = FailReason::ReadOfRemotelyWritten {
            reader: ProcId(3),
            first: Some(ProcId(1)),
        };
        let s = r.to_string();
        assert!(s.contains("cpu3") && s.contains("cpu1"));
        let w = FailReason::WriteConflict {
            writer: ProcId(2),
            first: None,
            r_only: true,
        };
        assert!(w.to_string().contains("read-only"));
    }

    #[test]
    fn display_is_single_line_with_figure_reference() {
        let reasons = [
            FailReason::ReadOfRemotelyWritten {
                reader: ProcId(0),
                first: None,
            },
            FailReason::WriteConflict {
                writer: ProcId(1),
                first: Some(ProcId(0)),
                r_only: false,
            },
            FailReason::FirstUpdateRace { sender: ProcId(2) },
            FailReason::FirstUpdateFailAfterWrite { proc: ProcId(3) },
            FailReason::ROnlyUpdateRace { sender: ProcId(0) },
            FailReason::ReadFirstAfterWrite { iter: 4, min_w: 2 },
            FailReason::WriteBeforeReadFirst {
                iter: 1,
                max_r1st: 3,
            },
            FailReason::Exception,
            FailReason::MessageLost { attempts: 3 },
            FailReason::NodeUnreachable { node: ProcId(1) },
        ];
        for r in reasons {
            let s = r.to_string();
            assert!(!s.contains('\n'), "multi-line Display: {s:?}");
            assert!(s.contains(r.figure()), "no figure ref in {s:?}");
        }
    }
}
