//! The privatization algorithm with read-in and copy-out (paper Figures 8
//! and 9).
//!
//! Each processor works on a **private copy** of the array under test. An
//! iteration that reads an element before writing it is a *read-first*
//! iteration for that element. The loop is parallel as long as, per element,
//! every read-first iteration is no later than every writing iteration:
//! the shared array's directory keeps `MaxR1st` (highest read-first
//! iteration so far) and `MinW` (lowest writing iteration so far) and FAILs
//! the moment `MaxR1st > MinW` would become true.
//!
//! To keep traffic off the shared directory, each processor's *private*
//! directory keeps `PMaxR1st`/`PMaxW` per element, and the cache tags keep
//! per-iteration `Read1st`/`Write` bits (cleared at the start of every
//! iteration) as a first-level filter.
//!
//! Iteration numbers used here are **effective, 1-based** stamps: 0 is
//! reserved for "never". Block-cyclic chunking (§4.1) and the
//! processor-wise extreme are expressed by mapping global iterations to
//! coarser effective numbers before calling in — see
//! [`crate::chunking::IterationNumbering`].

use specrt_cache::ElemTag;

use crate::fail::FailReason;
use crate::fault;

/// Sentinel for `MinW` before any write has been observed.
const NO_WRITE: u64 = u64::MAX;

/// Per-element state in the directory of the **shared** copy of an array
/// under test (Figure 5-c: two time stamps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivSharedElem {
    /// Highest read-first iteration executed so far by any processor
    /// (0 = none yet).
    pub max_r1st: u64,
    /// Lowest iteration executed so far by any processor that wrote the
    /// element (`u64::MAX` = none yet).
    pub min_w: u64,
}

impl Default for PrivSharedElem {
    fn default() -> Self {
        PrivSharedElem {
            max_r1st: 0,
            min_w: NO_WRITE,
        }
    }
}

impl PrivSharedElem {
    /// Compact stamp label for tracing, e.g. `MaxR1st=0,MinW=inf` (the
    /// clear state) or `MaxR1st=3,MinW=2`.
    pub fn state_label(&self) -> String {
        let min_w = if self.min_w == NO_WRITE {
            "inf".to_string()
        } else {
            self.min_w.to_string()
        };
        format!("MaxR1st={},MinW={min_w}", self.max_r1st)
    }

    /// Handles a read-first signal or a read-in request (algorithms (d) and
    /// (e)): both run the same test and stamp update; whether a data line is
    /// also returned is the protocol layer's business.
    ///
    /// # Errors
    ///
    /// FAILs when `iter` is later than an already-recorded writing iteration
    /// (`iter > MinW`): some earlier iteration produced a value this
    /// iteration should have consumed — a flow dependence.
    ///
    /// # Panics
    ///
    /// Panics if `iter` is 0 (stamps are 1-based).
    pub fn on_read_first(&mut self, iter: u64) -> Result<(), FailReason> {
        assert!(iter > 0, "effective iteration stamps are 1-based");
        // Injectable bug (`swap-ts-compare`): the Fig. 8 comparison runs
        // inverted, failing legal read-firsts and passing flow hazards. The
        // stamp invariant no longer holds under it, so the debug asserts
        // below are gated off while it is active — the conformance harness
        // must catch the bug through the oracle, not through an assert.
        let swapped = fault::active(fault::FaultKind::SwapTsCompare);
        let fails = if swapped {
            iter <= self.min_w
        } else {
            iter > self.min_w
        };
        if fails {
            return Err(FailReason::ReadFirstAfterWrite {
                iter,
                min_w: self.min_w,
            });
        }
        // Injectable bug (`drop-maxr1st`): the stamp update is lost, so a
        // later first-write tests against a stale `MaxR1st`.
        if fault::active(fault::FaultKind::DropMaxR1stUpdate) {
            return Ok(());
        }
        #[cfg(debug_assertions)]
        let old = self.max_r1st;
        self.max_r1st = self.max_r1st.max(iter);
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.max_r1st >= old, "MaxR1st must never decrease");
            debug_assert!(
                swapped || self.max_r1st <= self.min_w,
                "stamp invariant broken: MaxR1st={} > MinW={}",
                self.max_r1st,
                self.min_w
            );
        }
        Ok(())
    }

    /// Handles a first-write signal or a read-in-for-write request
    /// (algorithms (i) and (j)).
    ///
    /// # Errors
    ///
    /// FAILs when `iter` is earlier than an already-recorded read-first
    /// iteration (`iter < MaxR1st`): a later iteration already read the
    /// value this write would have replaced — an anti/flow hazard.
    ///
    /// # Panics
    ///
    /// Panics if `iter` is 0.
    pub fn on_first_write(&mut self, iter: u64) -> Result<(), FailReason> {
        assert!(iter > 0, "effective iteration stamps are 1-based");
        if iter < self.max_r1st {
            return Err(FailReason::WriteBeforeReadFirst {
                iter,
                max_r1st: self.max_r1st,
            });
        }
        #[cfg(debug_assertions)]
        let old = self.min_w;
        self.min_w = self.min_w.min(iter);
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.min_w <= old, "MinW must never increase");
            // An active `swap-ts-compare` injection corrupts the stamps by
            // design; see `on_read_first`.
            debug_assert!(
                fault::active(fault::FaultKind::SwapTsCompare) || self.max_r1st <= self.min_w,
                "stamp invariant broken: MaxR1st={} > MinW={}",
                self.max_r1st,
                self.min_w
            );
        }
        Ok(())
    }

    /// Whether any write has been recorded (used by copy-out).
    pub fn written(&self) -> bool {
        self.min_w != NO_WRITE
    }

    /// Clears the element's stamps (loop start, or periodic stamp-overflow
    /// resynchronization — §3.3).
    pub fn clear(&mut self) {
        *self = PrivSharedElem::default();
    }
}

/// Per-element state in the directory of one processor's **private** copy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrivPrivateElem {
    /// Highest read-first iteration executed so far *by this processor*
    /// (0 = none).
    pub pmax_r1st: u64,
    /// Highest iteration executed so far by this processor that wrote the
    /// element (0 = none).
    pub pmax_w: u64,
}

/// What the private directory decided for a read miss (algorithm (c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateReadMissOutcome {
    /// First touch of the whole line: fetch the data from the *shared*
    /// array (read-in); the shared directory must run the read-first test.
    ReadIn,
    /// A read-first iteration for this element: signal the shared
    /// directory; data comes from the private copy.
    ReadFirst,
    /// Plain refill from the private copy; no shared-directory traffic.
    Plain,
}

/// What the private directory decided for a write miss (algorithm (h)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateWriteMissOutcome {
    /// First write of this processor to the element and first touch of the
    /// line: fetch the line from the shared array (read-in for write); the
    /// shared directory must run the first-write test.
    ReadInForWrite,
    /// First write of this processor to the element (line already
    /// resident in the private copy): forward a first-write signal to the
    /// shared directory.
    NotifyShared,
    /// Not the processor's first write: handled entirely locally.
    Local,
}

impl PrivPrivateElem {
    /// Whether neither stamp is set (element untouched by this processor).
    pub fn is_untouched(&self) -> bool {
        self.pmax_r1st == 0 && self.pmax_w == 0
    }

    /// Private directory receives a read-first *signal* from its processor's
    /// cache (algorithm (b)): records the stamp. The caller must forward the
    /// signal to the shared directory unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `iter` is 0.
    pub fn on_read_first_signal(&mut self, iter: u64) {
        assert!(iter > 0, "effective iteration stamps are 1-based");
        self.pmax_r1st = self.pmax_r1st.max(iter);
    }

    /// Private directory receives a read *request* (cache miss, algorithm
    /// (c)). `line_untouched` is true when every element of the requested
    /// memory line has both stamps zero (the read-in test).
    ///
    /// # Panics
    ///
    /// Panics if `iter` is 0.
    pub fn on_read_miss(&mut self, iter: u64, line_untouched: bool) -> PrivateReadMissOutcome {
        assert!(iter > 0, "effective iteration stamps are 1-based");
        if line_untouched {
            self.pmax_r1st = iter;
            PrivateReadMissOutcome::ReadIn
        } else if self.pmax_r1st < iter && self.pmax_w < iter {
            self.pmax_r1st = iter;
            PrivateReadMissOutcome::ReadFirst
        } else {
            PrivateReadMissOutcome::Plain
        }
    }

    /// Private directory receives a first-write *signal* from its cache
    /// (algorithm (g)). Returns whether the shared directory must also be
    /// notified (only on the processor's very first write to the element).
    ///
    /// # Panics
    ///
    /// Panics if `iter` is 0.
    pub fn on_first_write_signal(&mut self, iter: u64) -> bool {
        assert!(iter > 0, "effective iteration stamps are 1-based");
        if self.pmax_w == 0 {
            self.pmax_w = iter;
            true
        } else {
            if self.pmax_w < iter {
                self.pmax_w = iter;
            }
            false
        }
    }

    /// Private directory receives a write *request* (cache miss, algorithm
    /// (h)).
    ///
    /// # Panics
    ///
    /// Panics if `iter` is 0.
    pub fn on_write_miss(&mut self, iter: u64, line_untouched: bool) -> PrivateWriteMissOutcome {
        assert!(iter > 0, "effective iteration stamps are 1-based");
        if self.pmax_w == 0 {
            let out = if line_untouched {
                PrivateWriteMissOutcome::ReadInForWrite
            } else {
                PrivateWriteMissOutcome::NotifyShared
            };
            self.pmax_w = iter;
            out
        } else {
            if self.pmax_w < iter {
                self.pmax_w = iter;
            }
            PrivateWriteMissOutcome::Local
        }
    }

    /// Clears the stamps (loop start).
    pub fn clear(&mut self) {
        *self = PrivPrivateElem::default();
    }
}

/// Outcome of a cache-resident read under the privatization protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateReadOutcome {
    /// Neither `Read1st` nor `Write` was set for this iteration: a
    /// read-first; the private directory (and from there the shared
    /// directory) must be signalled.
    ReadFirstSignal,
    /// The iteration already read or wrote the element; nothing to send.
    NoSignal,
}

/// Outcome of a cache-resident write under the privatization protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateWriteOutcome {
    /// First write of this iteration to the element: signal the private
    /// directory.
    FirstWriteSignal,
    /// The iteration already wrote the element; nothing to send.
    NoSignal,
}

/// Cache-side read hit (algorithm (a)): checks/sets the per-iteration
/// `Read1st` bit.
pub fn priv_cache_read(tag: &mut ElemTag) -> PrivateReadOutcome {
    if !tag.read1st() && !tag.write() {
        tag.set_read1st(true);
        PrivateReadOutcome::ReadFirstSignal
    } else {
        PrivateReadOutcome::NoSignal
    }
}

/// Cache-side write hit (algorithm (f)): checks/sets the per-iteration
/// `Write` bit.
pub fn priv_cache_write(tag: &mut ElemTag) -> PrivateWriteOutcome {
    if !tag.write() {
        tag.set_write(true);
        PrivateWriteOutcome::FirstWriteSignal
    } else {
        PrivateWriteOutcome::NoSignal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- shared-directory stamp tests ----

    #[test]
    fn reads_then_later_writes_pass() {
        // Figure 3 pattern: early iterations read, later iterations write.
        let mut s = PrivSharedElem::default();
        s.on_read_first(1).unwrap();
        s.on_read_first(2).unwrap();
        s.on_first_write(2).unwrap(); // same iteration as the last read-first
        s.on_first_write(5).unwrap();
        assert_eq!(s.max_r1st, 2);
        assert_eq!(s.min_w, 2);
        assert!(s.written());
    }

    #[test]
    fn stamp_labels_render_compactly() {
        let mut s = PrivSharedElem::default();
        assert_eq!(s.state_label(), "MaxR1st=0,MinW=inf");
        s.on_read_first(3).unwrap();
        s.on_first_write(4).unwrap();
        assert_eq!(s.state_label(), "MaxR1st=3,MinW=4");
    }

    #[test]
    fn read_first_after_write_fails() {
        let mut s = PrivSharedElem::default();
        s.on_first_write(3).unwrap();
        let err = s.on_read_first(5).unwrap_err();
        assert_eq!(err, FailReason::ReadFirstAfterWrite { iter: 5, min_w: 3 });
    }

    #[test]
    fn read_first_before_or_at_min_write_passes() {
        let mut s = PrivSharedElem::default();
        s.on_first_write(3).unwrap();
        s.on_read_first(3).unwrap(); // same iteration: read preceded its own write
        s.on_read_first(2).unwrap(); // earlier iteration arriving late
        assert_eq!(s.max_r1st, 3);
    }

    #[test]
    fn write_before_read_first_fails() {
        let mut s = PrivSharedElem::default();
        s.on_read_first(7).unwrap();
        let err = s.on_first_write(4).unwrap_err();
        assert_eq!(
            err,
            FailReason::WriteBeforeReadFirst {
                iter: 4,
                max_r1st: 7
            }
        );
    }

    #[test]
    fn min_w_tracks_minimum_across_processors() {
        let mut s = PrivSharedElem::default();
        s.on_first_write(9).unwrap();
        s.on_first_write(4).unwrap(); // another processor's first write
        assert_eq!(s.min_w, 4);
        assert!(s.on_read_first(5).is_err());
        // But a read-first at iteration 4 itself is fine.
        let mut s2 = PrivSharedElem::default();
        s2.on_first_write(4).unwrap();
        s2.on_read_first(4).unwrap();
    }

    #[test]
    fn write_only_pattern_passes_any_order() {
        let mut s = PrivSharedElem::default();
        for iter in [5, 2, 9, 1] {
            s.on_first_write(iter).unwrap();
        }
        assert_eq!(s.min_w, 1);
        assert_eq!(s.max_r1st, 0);
    }

    #[test]
    fn clear_resets_stamps() {
        let mut s = PrivSharedElem::default();
        s.on_first_write(1).unwrap();
        s.on_read_first(1).unwrap();
        s.clear();
        assert_eq!(s, PrivSharedElem::default());
        assert!(!s.written());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_stamp_rejected() {
        PrivSharedElem::default().on_read_first(0).unwrap();
    }

    // ---- injectable-bug behaviour (consumed by the conformance harness) ----

    #[test]
    fn drop_maxr1st_injection_loses_the_stamp_and_misses_the_hazard() {
        let _g = fault::Injected::new(fault::FaultKind::DropMaxR1stUpdate);
        let mut s = PrivSharedElem::default();
        s.on_read_first(7).unwrap();
        assert_eq!(s.max_r1st, 0, "the injected bug drops the stamp update");
        // Write iteration 4 precedes read-first iteration 7: must FAIL
        // (Fig. 9-j), but the stale stamp lets it through.
        assert!(s.on_first_write(4).is_ok());
    }

    #[test]
    fn swap_ts_compare_injection_inverts_the_read_first_test() {
        let _g = fault::Injected::new(fault::FaultKind::SwapTsCompare);
        // A perfectly legal first read-first now fails...
        let mut s = PrivSharedElem::default();
        assert!(s.on_read_first(1).is_err());
        // ...and a genuine flow hazard passes.
        let mut s2 = PrivSharedElem::default();
        s2.on_first_write(3).unwrap();
        assert!(s2.on_read_first(5).is_ok());
    }

    // ---- private-directory tests ----

    #[test]
    fn read_miss_on_untouched_line_is_read_in() {
        let mut p = PrivPrivateElem::default();
        assert!(p.is_untouched());
        assert_eq!(p.on_read_miss(3, true), PrivateReadMissOutcome::ReadIn);
        assert_eq!(p.pmax_r1st, 3);
        assert!(!p.is_untouched());
    }

    #[test]
    fn read_miss_new_iteration_is_read_first() {
        let mut p = PrivPrivateElem::default();
        p.on_read_miss(1, true);
        assert_eq!(p.on_read_miss(4, false), PrivateReadMissOutcome::ReadFirst);
        assert_eq!(p.pmax_r1st, 4);
    }

    #[test]
    fn read_miss_same_iteration_is_plain() {
        let mut p = PrivPrivateElem::default();
        p.on_read_miss(2, true);
        // Line evicted, re-read within the same iteration: already counted.
        assert_eq!(p.on_read_miss(2, false), PrivateReadMissOutcome::Plain);
    }

    #[test]
    fn read_miss_after_write_in_same_iteration_is_plain() {
        let mut p = PrivPrivateElem::default();
        p.on_write_miss(5, true);
        // Read later in iteration 5: written first, so not read-first.
        assert_eq!(p.on_read_miss(5, false), PrivateReadMissOutcome::Plain);
    }

    #[test]
    fn write_miss_first_in_loop_notifies_or_reads_in() {
        let mut p = PrivPrivateElem::default();
        assert_eq!(
            p.on_write_miss(2, true),
            PrivateWriteMissOutcome::ReadInForWrite
        );
        assert_eq!(p.pmax_w, 2);

        let mut q = PrivPrivateElem::default();
        q.on_read_first_signal(1); // line already resident via a read
        assert_eq!(
            q.on_write_miss(2, false),
            PrivateWriteMissOutcome::NotifyShared
        );
    }

    #[test]
    fn write_miss_later_iterations_local() {
        let mut p = PrivPrivateElem::default();
        p.on_write_miss(1, true);
        assert_eq!(p.on_write_miss(4, false), PrivateWriteMissOutcome::Local);
        assert_eq!(p.pmax_w, 4);
        // Same-iteration re-write after eviction also local, stamp unchanged.
        assert_eq!(p.on_write_miss(4, false), PrivateWriteMissOutcome::Local);
        assert_eq!(p.pmax_w, 4);
    }

    #[test]
    fn first_write_signal_forwards_only_once() {
        let mut p = PrivPrivateElem::default();
        assert!(p.on_first_write_signal(2));
        assert!(!p.on_first_write_signal(3));
        assert_eq!(p.pmax_w, 3);
    }

    #[test]
    fn read_first_signal_records_max() {
        let mut p = PrivPrivateElem::default();
        p.on_read_first_signal(2);
        p.on_read_first_signal(5);
        p.on_read_first_signal(3);
        assert_eq!(p.pmax_r1st, 5);
    }

    #[test]
    fn private_clear_resets() {
        let mut p = PrivPrivateElem::default();
        p.on_read_first_signal(1);
        p.clear();
        assert!(p.is_untouched());
    }

    // ---- cache-tag side ----

    #[test]
    fn cache_read_signals_once_per_iteration() {
        let mut t = ElemTag::CLEAR;
        assert_eq!(priv_cache_read(&mut t), PrivateReadOutcome::ReadFirstSignal);
        assert_eq!(priv_cache_read(&mut t), PrivateReadOutcome::NoSignal);
        t.clear_iteration_bits(); // next iteration
        assert_eq!(priv_cache_read(&mut t), PrivateReadOutcome::ReadFirstSignal);
    }

    #[test]
    fn cache_read_after_write_is_not_read_first() {
        let mut t = ElemTag::CLEAR;
        assert_eq!(
            priv_cache_write(&mut t),
            PrivateWriteOutcome::FirstWriteSignal
        );
        assert_eq!(priv_cache_read(&mut t), PrivateReadOutcome::NoSignal);
    }

    #[test]
    fn cache_write_signals_once_per_iteration() {
        let mut t = ElemTag::CLEAR;
        assert_eq!(
            priv_cache_write(&mut t),
            PrivateWriteOutcome::FirstWriteSignal
        );
        assert_eq!(priv_cache_write(&mut t), PrivateWriteOutcome::NoSignal);
        t.clear_iteration_bits();
        assert_eq!(
            priv_cache_write(&mut t),
            PrivateWriteOutcome::FirstWriteSignal
        );
    }

    // ---- end-to-end stamp property on one element ----

    #[test]
    fn stamp_test_matches_oracle_exhaustively() {
        // Enumerate all per-iteration behaviours over 4 iterations, where an
        // iteration either skips the element, reads it first, writes it
        // first, or writes-then-reads (not read-first). The protocol must
        // fail exactly when some iteration reads-first and an *earlier*
        // iteration writes.
        #[derive(Clone, Copy, PartialEq)]
        enum B {
            Skip,
            ReadFirst,
            WriteFirst,
            WriteThenRead,
        }
        let opts = [B::Skip, B::ReadFirst, B::WriteFirst, B::WriteThenRead];
        for a in opts {
            for b in opts {
                for c in opts {
                    for d in opts {
                        let seq = [a, b, c, d];
                        let mut s = PrivSharedElem::default();
                        let mut failed = false;
                        'outer: for (i, beh) in seq.iter().enumerate() {
                            let iter = i as u64 + 1;
                            let steps: &[bool] = match beh {
                                B::Skip => &[],
                                B::ReadFirst => &[true],
                                B::WriteFirst => &[false],
                                B::WriteThenRead => &[false], // read not read-first
                            };
                            for &is_read in steps {
                                let r = if is_read {
                                    s.on_read_first(iter)
                                } else {
                                    s.on_first_write(iter)
                                };
                                if r.is_err() {
                                    failed = true;
                                    break 'outer;
                                }
                            }
                        }
                        // Oracle: exists i < j with seq[i] writes and seq[j]
                        // reads-first.
                        let mut oracle_fail = false;
                        for i in 0..4 {
                            for j in (i + 1)..4 {
                                let wi = matches!(seq[i], B::WriteFirst | B::WriteThenRead);
                                let rj = seq[j] == B::ReadFirst;
                                if wi && rj {
                                    oracle_fail = true;
                                }
                            }
                        }
                        assert_eq!(failed, oracle_fail);
                    }
                }
            }
        }
    }
}
