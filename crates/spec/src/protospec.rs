//! The protocol's race-case serialization logic as a **pure transition
//! function** (ROADMAP item 5).
//!
//! Two layers:
//!
//! * the **element layer** — [`ProtocolSpec::dir_step`] (one directory
//!   element × one message → new element state × emissions) plus the
//!   cache-tag and private-directory steps. `specrt-proto`'s `MemSystem`
//!   *executes* these for its real directory/tag stores, so the simulator
//!   and the model checker run literally the same transition code; the
//!   timing, NUMA and cache-geometry concerns stay in the executor.
//! * the **system layer** — [`ProtocolSpec::step`]: a typed, hashable
//!   [`SpecState`] (directory entries, per-line tag bits, private-copy
//!   stamps, the pending message queue) over a bounded
//!   [`SpecScope`] (`lines × elems × procs`), advanced by
//!   [`SpecMessage`]s (a processor access, a message delivery, an
//!   eviction). `specrt-check`'s bounded model checker *enumerates* this
//!   function; every branch bottoms out in the same element-layer calls
//!   the simulator executes.
//!
//! Determinism: `step` is a pure function of `(state, message)` — it
//! allocates its successor state, never reads clocks or ambient
//! configuration, and its only environmental input is the thread-local
//! [`crate::fault`] injection plane (itself part of the conceptual input:
//! a deliberately-broken protocol is a *different* transition function).
//! Under a fixed injection, two evaluations agree bit-for-bit; the
//! executor double-evaluates under `debug_assertions` to enforce this.
//!
//! The per-processor iteration model of the system layer: processor `p`
//! runs exactly one speculative iteration with 1-based stamp `p + 1`, so
//! privatization stamps are ordered by processor index. Stamps are only
//! ever compared, so this loses no generality beyond bounding the
//! iteration count — the bounded-scope analogue of the paper's iteration
//! numbering.

use std::ops::Range;

use specrt_cache::ElemTag;
use specrt_mem::ProcId;

use crate::nonpriv::{
    nonpriv_cache_read, nonpriv_cache_write, nonpriv_complete_write, nonpriv_on_first_update_fail,
    FirstUpdateOutcome, NonPrivDirElem, NonPrivReadAction, NonPrivWriteAction,
};
use crate::privat::{
    priv_cache_read, priv_cache_write, PrivPrivateElem, PrivSharedElem, PrivateReadMissOutcome,
    PrivateReadOutcome, PrivateWriteMissOutcome, PrivateWriteOutcome,
};
use crate::privat3::{NoReadInOutcome, PrivNoReadInPrivate, PrivNoReadInShared};
use crate::FailReason;

// ---------------------------------------------------------------------
// Element layer: what the simulator executes
// ---------------------------------------------------------------------

/// One element's worth of shared-directory state under any protocol
/// variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirElem {
    /// Non-privatization `First`/`NoShr`/`ROnly` state (Fig. 4).
    NonPriv(NonPrivDirElem),
    /// Privatization `MaxR1st`/`MinW` stamps (Fig. 5-a).
    Priv(PrivSharedElem),
    /// Reduced no-read-in `AnyR1st`/`AnyW` bits (Fig. 5-b).
    Priv3(PrivNoReadInShared),
}

impl DirElem {
    /// The non-privatization payload.
    ///
    /// # Panics
    ///
    /// Panics if the variant is not `NonPriv`.
    pub fn unwrap_nonpriv(self) -> NonPrivDirElem {
        match self {
            DirElem::NonPriv(e) => e,
            other => panic!("expected NonPriv element, got {other:?}"),
        }
    }

    /// The privatization payload.
    ///
    /// # Panics
    ///
    /// Panics if the variant is not `Priv`.
    pub fn unwrap_priv(self) -> PrivSharedElem {
        match self {
            DirElem::Priv(e) => e,
            other => panic!("expected Priv element, got {other:?}"),
        }
    }

    /// The reduced no-read-in payload.
    ///
    /// # Panics
    ///
    /// Panics if the variant is not `Priv3`.
    pub fn unwrap_priv3(self) -> PrivNoReadInShared {
        match self {
            DirElem::Priv3(e) => e,
            other => panic!("expected Priv3 element, got {other:?}"),
        }
    }
}

/// An element-scope message arriving at the shared directory: the
/// synchronous requests carried by coherence transactions and the
/// asynchronous update/signal messages of Figs. 6–9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirEvent {
    /// A read miss's directory-side test (algorithm (b)).
    ReadReq {
        /// The requesting processor.
        from: ProcId,
    },
    /// A write miss's / upgrade's directory-side test (algorithm (d)).
    WriteReq {
        /// The requesting processor.
        from: ProcId,
    },
    /// One element of a dirty victim's tag state merging into the
    /// directory (algorithm (e)).
    Writeback {
        /// The merged cache tag.
        tag: ElemTag,
        /// The evicting owner.
        owner: ProcId,
    },
    /// A `First_update` message (algorithm (f)).
    FirstUpdate {
        /// The update's sender.
        sender: ProcId,
    },
    /// An `ROnly_update` message (algorithm (h)).
    ROnlyUpdate {
        /// The update's sender.
        sender: ProcId,
    },
    /// A read-first signal or read-in request (privatization algorithms
    /// (d)/(e); `iter` is ignored by the no-read-in variant).
    ReadFirst {
        /// 1-based effective iteration stamp.
        iter: u64,
    },
    /// A first-write signal or read-in-for-write request (privatization
    /// algorithms (i)/(j)).
    FirstWrite {
        /// 1-based effective iteration stamp.
        iter: u64,
    },
}

/// An obligation the executor must discharge after a directory step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirEmission {
    /// Bounce a `First_update_fail` back at `target` (the raced
    /// `First_update`'s sender — race case (f) begets (g)).
    SendFirstUpdateFail {
        /// The losing sender.
        target: ProcId,
    },
    /// The dependence test failed: abort the speculative execution.
    Fail(FailReason),
}

/// An element-scope event at a processor's cache tags under the
/// non-privatization protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// A hit read (algorithm (a)).
    Read {
        /// The reading processor.
        reader: ProcId,
    },
    /// A hit write (algorithm (c)).
    Write {
        /// The writing processor.
        writer: ProcId,
    },
    /// The tag update completing a granted write (end of algorithm (d)).
    CompleteWrite,
    /// A `First_update_fail` bounce arriving (algorithm (g)).
    FirstUpdateFail {
        /// The bounced processor.
        target: ProcId,
    },
}

/// What a non-privatization cache-tag step asks the executor to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEmission {
    /// Send a `First_update` for this element to its home.
    SendFirstUpdate,
    /// Send an `ROnly_update` for this element to its home.
    SendROnlyUpdate,
    /// The write needs a directory transaction (upgrade, algorithm (d)).
    NeedWriteReq,
    /// The tag-side test failed: abort.
    Fail(FailReason),
}

/// An event at one element of a **private**-copy directory
/// (privatization variant, Fig. 8 algorithms (b), (c), (g), (h)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateEvent {
    /// The cache forwarded a read-first signal (hit path).
    ReadFirstSignal {
        /// 1-based effective iteration stamp.
        iter: u64,
    },
    /// A read miss; `line_untouched` is the read-in test over the whole
    /// line.
    ReadMiss {
        /// 1-based effective iteration stamp.
        iter: u64,
        /// Whether every element of the line is still untouched.
        line_untouched: bool,
    },
    /// The cache forwarded a first-write signal (hit path).
    FirstWriteSignal {
        /// 1-based effective iteration stamp.
        iter: u64,
    },
    /// A write miss.
    WriteMiss {
        /// 1-based effective iteration stamp.
        iter: u64,
        /// Whether every element of the line is still untouched.
        line_untouched: bool,
    },
}

/// What a private-directory step obliges the executor to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateEffect {
    /// Nothing: handled entirely locally.
    None,
    /// Forward a read-first signal to the shared directory.
    SignalReadFirst,
    /// Run the shared directory's read-first test locally (read-in).
    TestReadFirst,
    /// Forward a first-write signal to the shared directory.
    SignalFirstWrite,
    /// Run the shared directory's first-write test locally
    /// (read-in-for-write).
    TestFirstWrite,
}

/// The protocol specification: a namespace for the pure element-layer
/// steps, and — when constructed over a [`SpecScope`] — the system-layer
/// transition function the bounded model checker enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// Which protocol variant the system layer models.
    pub variant: SpecVariant,
    /// The bounded scope (lines × elems × procs).
    pub scope: SpecScope,
}

impl ProtocolSpec {
    /// **The** directory transition function: one element state × one
    /// message → new element state × at most one emission. Pure: the
    /// input is taken by value and the successor returned; the executor
    /// decides where both live.
    ///
    /// # Panics
    ///
    /// Panics if the event does not apply to the element's protocol
    /// variant (e.g. a `First_update` at a privatization element) — the
    /// executor routed a message to the wrong store.
    pub fn dir_step(elem: DirElem, ev: DirEvent) -> (DirElem, Option<DirEmission>) {
        match (elem, ev) {
            (DirElem::NonPriv(mut e), DirEvent::ReadReq { from }) => {
                let em = e.on_read_req(from).err().map(DirEmission::Fail);
                (DirElem::NonPriv(e), em)
            }
            (DirElem::NonPriv(mut e), DirEvent::WriteReq { from }) => {
                let em = e.on_write_req(from).err().map(DirEmission::Fail);
                (DirElem::NonPriv(e), em)
            }
            (DirElem::NonPriv(mut e), DirEvent::Writeback { tag, owner }) => {
                let em = e.merge_writeback(tag, owner).err().map(DirEmission::Fail);
                (DirElem::NonPriv(e), em)
            }
            (DirElem::NonPriv(mut e), DirEvent::FirstUpdate { sender }) => {
                let em = match e.on_first_update(sender) {
                    Ok(FirstUpdateOutcome::Accepted) | Ok(FirstUpdateOutcome::Redundant) => None,
                    Ok(FirstUpdateOutcome::Bounced) => {
                        Some(DirEmission::SendFirstUpdateFail { target: sender })
                    }
                    Err(reason) => Some(DirEmission::Fail(reason)),
                };
                (DirElem::NonPriv(e), em)
            }
            (DirElem::NonPriv(mut e), DirEvent::ROnlyUpdate { sender }) => {
                let em = e.on_r_only_update(sender).err().map(DirEmission::Fail);
                (DirElem::NonPriv(e), em)
            }
            (DirElem::Priv(mut e), DirEvent::ReadFirst { iter }) => {
                let em = e.on_read_first(iter).err().map(DirEmission::Fail);
                (DirElem::Priv(e), em)
            }
            (DirElem::Priv(mut e), DirEvent::FirstWrite { iter }) => {
                let em = e.on_first_write(iter).err().map(DirEmission::Fail);
                (DirElem::Priv(e), em)
            }
            (DirElem::Priv3(mut e), DirEvent::ReadFirst { .. }) => {
                let em = e.on_read_first().err().map(DirEmission::Fail);
                (DirElem::Priv3(e), em)
            }
            (DirElem::Priv3(mut e), DirEvent::FirstWrite { .. }) => {
                let em = e.on_first_write().err().map(DirEmission::Fail);
                (DirElem::Priv3(e), em)
            }
            (elem, ev) => panic!("protocol spec: event {ev:?} does not apply to {elem:?}"),
        }
    }

    /// The non-privatization cache-tag transition function (algorithms
    /// (a), (c), (g) and the grant completion of (d)).
    pub fn cache_step(
        tag: ElemTag,
        dirty: bool,
        ev: CacheEvent,
    ) -> (ElemTag, Option<CacheEmission>) {
        let mut t = tag;
        let em = match ev {
            CacheEvent::Read { reader } => match nonpriv_cache_read(&mut t, dirty, reader) {
                Ok(NonPrivReadAction::NoMessage) => None,
                Ok(NonPrivReadAction::SendFirstUpdate) => Some(CacheEmission::SendFirstUpdate),
                Ok(NonPrivReadAction::SendROnlyUpdate) => Some(CacheEmission::SendROnlyUpdate),
                Err(reason) => Some(CacheEmission::Fail(reason)),
            },
            CacheEvent::Write { writer } => match nonpriv_cache_write(&mut t, dirty, writer) {
                Ok(NonPrivWriteAction::WriteNow) => None,
                Ok(NonPrivWriteAction::NeedWriteReq) => Some(CacheEmission::NeedWriteReq),
                Err(reason) => Some(CacheEmission::Fail(reason)),
            },
            CacheEvent::CompleteWrite => {
                nonpriv_complete_write(&mut t);
                None
            }
            CacheEvent::FirstUpdateFail { target } => nonpriv_on_first_update_fail(&mut t, target)
                .err()
                .map(CacheEmission::Fail),
        };
        (t, em)
    }

    /// The privatization cache-tag read step: returns the new tag and
    /// whether a read-first signal must go to the private directory.
    pub fn private_cache_read(tag: ElemTag) -> (ElemTag, bool) {
        let mut t = tag;
        let signal = priv_cache_read(&mut t) == PrivateReadOutcome::ReadFirstSignal;
        (t, signal)
    }

    /// The privatization cache-tag write step: returns the new tag and
    /// whether a first-write signal must go to the private directory.
    pub fn private_cache_write(tag: ElemTag) -> (ElemTag, bool) {
        let mut t = tag;
        let signal = priv_cache_write(&mut t) == PrivateWriteOutcome::FirstWriteSignal;
        (t, signal)
    }

    /// The private-directory transition function of the privatization
    /// variant (stamped, Fig. 8).
    pub fn private_step(
        elem: PrivPrivateElem,
        ev: PrivateEvent,
    ) -> (PrivPrivateElem, PrivateEffect) {
        let mut e = elem;
        let effect = match ev {
            PrivateEvent::ReadFirstSignal { iter } => {
                e.on_read_first_signal(iter);
                PrivateEffect::SignalReadFirst
            }
            PrivateEvent::ReadMiss {
                iter,
                line_untouched,
            } => match e.on_read_miss(iter, line_untouched) {
                PrivateReadMissOutcome::ReadIn => PrivateEffect::TestReadFirst,
                PrivateReadMissOutcome::ReadFirst => PrivateEffect::SignalReadFirst,
                PrivateReadMissOutcome::Plain => PrivateEffect::None,
            },
            PrivateEvent::FirstWriteSignal { iter } => {
                if e.on_first_write_signal(iter) {
                    PrivateEffect::SignalFirstWrite
                } else {
                    PrivateEffect::None
                }
            }
            PrivateEvent::WriteMiss {
                iter,
                line_untouched,
            } => match e.on_write_miss(iter, line_untouched) {
                PrivateWriteMissOutcome::ReadInForWrite => PrivateEffect::TestFirstWrite,
                PrivateWriteMissOutcome::NotifyShared => PrivateEffect::SignalFirstWrite,
                PrivateWriteMissOutcome::Local => PrivateEffect::None,
            },
        };
        (e, effect)
    }

    /// The private-directory transition function of the reduced
    /// no-read-in variant (Fig. 5-b bits).
    pub fn private3_step(
        elem: PrivNoReadInPrivate,
        write: bool,
    ) -> (PrivNoReadInPrivate, Result<NoReadInOutcome, FailReason>) {
        let mut e = elem;
        let r = if write { e.on_write() } else { e.on_read() };
        (e, r)
    }
}

// ---------------------------------------------------------------------
// System layer: what the model checker enumerates
// ---------------------------------------------------------------------

/// Which protocol variant the system-layer model runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpecVariant {
    /// Non-privatization (Figs. 4, 6, 7).
    NonPriv,
    /// Privatization with `MaxR1st`/`MinW` stamps and read-in (Figs. 8, 9).
    Priv,
    /// Reduced no-read-in privatization (Fig. 5-b / §4.1).
    Priv3,
}

impl SpecVariant {
    /// All variants, in canonical report order.
    pub const ALL: [SpecVariant; 3] = [SpecVariant::NonPriv, SpecVariant::Priv, SpecVariant::Priv3];

    /// The variant's CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            SpecVariant::NonPriv => "nonpriv",
            SpecVariant::Priv => "priv",
            SpecVariant::Priv3 => "priv3",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<SpecVariant> {
        SpecVariant::ALL.into_iter().find(|v| v.name() == s)
    }
}

/// Largest supported line count.
pub const MAX_LINES: u16 = 2;
/// Largest supported total element count.
pub const MAX_ELEMS: u16 = 3;
/// Largest supported processor count.
pub const MAX_PROCS: u16 = 4;

/// The bounded scope of the system-layer model: `elems` array elements
/// laid out contiguously over `lines` cache lines, accessed by `procs`
/// processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecScope {
    /// Cache lines the elements are spread over.
    pub lines: u16,
    /// Total elements under test.
    pub elems: u16,
    /// Processors (= speculative iterations).
    pub procs: u16,
}

impl SpecScope {
    /// Validates the scope, returning a human-readable rejection for
    /// unsupported combinations.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid ranges when out of range.
    pub fn validate(self) -> Result<SpecScope, String> {
        let ok = (1..=MAX_LINES).contains(&self.lines)
            && (1..=MAX_ELEMS).contains(&self.elems)
            && (1..=MAX_PROCS).contains(&self.procs)
            && self.elems >= self.lines;
        if ok {
            Ok(self)
        } else {
            Err(format!(
                "unsupported scope {}x{}x{} (lines x elems x procs); valid: lines 1-{MAX_LINES}, \
                 elems lines-{MAX_ELEMS}, procs 1-{MAX_PROCS}",
                self.lines, self.elems, self.procs
            ))
        }
    }

    /// Elements per line (the last line may hold fewer).
    fn per_line(self) -> u16 {
        self.elems.div_ceil(self.lines)
    }

    /// The line holding element `elem`.
    pub fn line_of(self, elem: u16) -> u16 {
        elem / self.per_line()
    }

    /// The elements on `line`.
    pub fn line_range(self, line: u16) -> Range<u16> {
        let start = line * self.per_line();
        let end = (start + self.per_line()).min(self.elems);
        start..end
    }

    /// Index of `proc`'s copy of `line` in [`SpecState::copies`].
    pub fn copy_index(self, proc: u16, line: u16) -> usize {
        proc as usize * self.lines as usize + line as usize
    }

    /// Index of `(proc, elem)` in [`SpecState::pdir`].
    pub fn pdir_index(self, proc: u16, elem: u16) -> usize {
        proc as usize * self.elems as usize + elem as usize
    }
}

/// A processor's cached copy of one line: per-element tags plus the
/// dirty bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineCopy {
    /// Whether the copy is dirty (exclusive).
    pub dirty: bool,
    /// Per-element tags, indexed by offset within the line.
    pub tags: Vec<ElemTag>,
}

/// One element of a processor's private-copy directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateDirElem {
    /// Stamped private directory (priv variant), plus the sticky
    /// touched mark feeding the line-granularity read-in test.
    Priv {
        /// The `PMaxR1st`/`PMaxW` stamps.
        elem: PrivPrivateElem,
        /// Whether the element was ever read in or written.
        touched: bool,
    },
    /// Reduced no-read-in bits (priv3 variant).
    Priv3(PrivNoReadInPrivate),
}

/// An in-flight asynchronous message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flight {
    /// Sending processor (for bounces: the bounce target — the home
    /// sends those, and per-processor FIFO draining never applies).
    pub src: u16,
    /// The payload.
    pub msg: FlightMsg,
}

/// Payload of an in-flight message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightMsg {
    /// Non-privatization `First_update`.
    FirstUpdate {
        /// Target element.
        elem: u16,
    },
    /// Non-privatization `ROnly_update`.
    ROnlyUpdate {
        /// Target element.
        elem: u16,
    },
    /// Non-privatization `First_update_fail` bounce.
    FirstUpdateFail {
        /// Target element.
        elem: u16,
        /// Bounced processor.
        target: u16,
    },
    /// Privatization read-first signal.
    ReadFirst {
        /// Target element.
        elem: u16,
        /// 1-based iteration stamp.
        iter: u64,
    },
    /// Privatization first-write signal.
    FirstWrite {
        /// Target element.
        elem: u16,
        /// 1-based iteration stamp.
        iter: u64,
    },
}

impl FlightMsg {
    /// The element the message is about.
    pub fn elem(self) -> u16 {
        match self {
            FlightMsg::FirstUpdate { elem }
            | FlightMsg::ROnlyUpdate { elem }
            | FlightMsg::FirstUpdateFail { elem, .. }
            | FlightMsg::ReadFirst { elem, .. }
            | FlightMsg::FirstWrite { elem, .. } => elem,
        }
    }

    /// Whether per-processor FIFO draining before a transaction applies
    /// (update/signal messages; bounces travel home → processor).
    pub fn drains(self) -> bool {
        !matches!(self, FlightMsg::FirstUpdateFail { .. })
    }
}

/// The system-layer protocol state: typed and canonically hashable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecState {
    /// Shared-directory state, one entry per element.
    pub dir: Vec<DirElem>,
    /// Cached line copies, indexed `proc * lines + line`.
    pub copies: Vec<Option<LineCopy>>,
    /// Private-directory state, indexed `proc * elems + elem`
    /// (empty under the non-privatization variant).
    pub pdir: Vec<PrivateDirElem>,
    /// In-flight messages in send order.
    pub inflight: Vec<Flight>,
    /// Whether the speculation has FAILed (absorbing).
    pub failed: bool,
}

/// A message to the system-layer transition function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecMessage {
    /// Processor `proc` performs its next access.
    Access {
        /// The accessing processor.
        proc: u16,
        /// Whether the access is a write.
        write: bool,
        /// The accessed element.
        elem: u16,
    },
    /// Deliver in-flight message `index`.
    Deliver {
        /// Index into [`SpecState::inflight`].
        index: usize,
    },
    /// Evict processor `proc`'s copy of `line`.
    Evict {
        /// The evicting processor.
        proc: u16,
        /// The displaced line.
        line: u16,
    },
}

/// Observable side effects of one system-layer step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecEmission {
    /// Race-case site `'a' + .0` was exercised (coverage accounting).
    Race(u8),
    /// The dependence test failed (the new state has `failed` set).
    Fail(FailReason),
}

impl ProtocolSpec {
    /// A system-layer spec over a validated scope.
    pub fn new(variant: SpecVariant, scope: SpecScope) -> ProtocolSpec {
        ProtocolSpec { variant, scope }
    }

    /// Processor `p`'s 1-based iteration stamp.
    pub fn stamp(proc: u16) -> u64 {
        proc as u64 + 1
    }

    /// The initial (all-clear, empty-cache) state.
    pub fn init(&self) -> SpecState {
        let elem = match self.variant {
            SpecVariant::NonPriv => DirElem::NonPriv(NonPrivDirElem::default()),
            SpecVariant::Priv => DirElem::Priv(PrivSharedElem::default()),
            SpecVariant::Priv3 => DirElem::Priv3(PrivNoReadInShared::default()),
        };
        let pdir_len = match self.variant {
            SpecVariant::NonPriv => 0,
            _ => self.scope.procs as usize * self.scope.elems as usize,
        };
        let pdir_elem = match self.variant {
            SpecVariant::Priv => PrivateDirElem::Priv {
                elem: PrivPrivateElem::default(),
                touched: false,
            },
            _ => PrivateDirElem::Priv3(PrivNoReadInPrivate::default()),
        };
        SpecState {
            dir: vec![elem; self.scope.elems as usize],
            copies: vec![None; self.scope.procs as usize * self.scope.lines as usize],
            pdir: vec![pdir_elem; pdir_len],
            inflight: Vec::new(),
            failed: false,
        }
    }

    /// **The** system-layer transition function:
    /// `step(State, Message) -> (State, Vec<Emission>)`. Pure — see the
    /// module docs for the determinism contract.
    ///
    /// # Panics
    ///
    /// Panics on a message that is not enabled in `s` (delivery index out
    /// of range, eviction of an absent copy, element out of scope).
    pub fn step(&self, s: &SpecState, m: &SpecMessage) -> (SpecState, Vec<SpecEmission>) {
        let mut next = s.clone();
        let mut em = Vec::new();
        match *m {
            SpecMessage::Access { proc, write, elem } => {
                assert!(elem < self.scope.elems, "element {elem} out of scope");
                assert!(proc < self.scope.procs, "processor {proc} out of scope");
                if !next.failed {
                    match self.variant {
                        SpecVariant::NonPriv => {
                            self.nonpriv_access(&mut next, &mut em, proc, write, elem)
                        }
                        SpecVariant::Priv => {
                            self.priv_access(&mut next, &mut em, proc, write, elem)
                        }
                        SpecVariant::Priv3 => {
                            self.priv3_access(&mut next, &mut em, proc, write, elem)
                        }
                    }
                }
            }
            SpecMessage::Deliver { index } => {
                assert!(index < next.inflight.len(), "no in-flight message {index}");
                if !next.failed {
                    self.deliver(&mut next, &mut em, index);
                }
            }
            SpecMessage::Evict { proc, line } => {
                let ci = self.scope.copy_index(proc, line);
                let copy = next.copies[ci].take().expect("evicting an absent copy");
                if !next.failed && copy.dirty && self.variant == SpecVariant::NonPriv {
                    // Dirty victims merge their tag state home (algorithm
                    // (e)); private-copy stamps are already authoritative
                    // in the private directory, so those just drop.
                    self.merge_writeback(&mut next, &mut em, &copy, proc, line);
                }
            }
        }
        (next, em)
    }

    fn fail(&self, s: &mut SpecState, em: &mut Vec<SpecEmission>, reason: FailReason) {
        s.failed = true;
        em.push(SpecEmission::Fail(reason));
    }

    /// Applies a directory step to `s.dir[elem]`, translating emissions.
    fn dir_step_at(&self, s: &mut SpecState, em: &mut Vec<SpecEmission>, elem: u16, ev: DirEvent) {
        let (next, emission) = ProtocolSpec::dir_step(s.dir[elem as usize], ev);
        s.dir[elem as usize] = next;
        match emission {
            None => {}
            Some(DirEmission::SendFirstUpdateFail { target }) => s.inflight.push(Flight {
                src: target.0 as u16,
                msg: FlightMsg::FirstUpdateFail {
                    elem,
                    target: target.0 as u16,
                },
            }),
            Some(DirEmission::Fail(reason)) => self.fail(s, em, reason),
        }
    }

    /// The dirty owner of `line`, if any.
    fn dirty_owner(&self, s: &SpecState, line: u16) -> Option<u16> {
        (0..self.scope.procs).find(|&p| {
            s.copies[self.scope.copy_index(p, line)]
                .as_ref()
                .is_some_and(|c| c.dirty)
        })
    }

    /// Merges a dirty copy of `line` into the directory (algorithm (e)).
    fn merge_writeback(
        &self,
        s: &mut SpecState,
        em: &mut Vec<SpecEmission>,
        copy: &LineCopy,
        owner: u16,
        line: u16,
    ) {
        for (off, elem) in self.scope.line_range(line).enumerate() {
            em.push(SpecEmission::Race(4)); // (e)
            self.dir_step_at(
                s,
                em,
                elem,
                DirEvent::Writeback {
                    tag: copy.tags[off],
                    owner: ProcId(owner as u32),
                },
            );
            if s.failed {
                return;
            }
        }
    }

    /// Delivers `proc`'s own in-flight update/signal messages about
    /// elements of `line` in FIFO order: the executor's
    /// `drain_before_transaction` plus the per-(src, dst) in-order
    /// network guarantee. Same-line elements share a home; messages to
    /// other homes keep racing (that nondeterminism stays explored).
    fn drain_own(&self, s: &mut SpecState, em: &mut Vec<SpecEmission>, proc: u16, line: u16) {
        while !s.failed {
            let Some(i) = s.inflight.iter().position(|f| {
                f.src == proc && f.msg.drains() && self.scope.line_of(f.msg.elem()) == line
            }) else {
                return;
            };
            self.deliver(s, em, i);
        }
    }

    /// Delivers in-flight message `i`.
    fn deliver(&self, s: &mut SpecState, em: &mut Vec<SpecEmission>, i: usize) {
        let f = s.inflight.remove(i);
        match f.msg {
            FlightMsg::FirstUpdate { elem } => {
                em.push(SpecEmission::Race(5)); // (f)
                self.dir_step_at(
                    s,
                    em,
                    elem,
                    DirEvent::FirstUpdate {
                        sender: ProcId(f.src as u32),
                    },
                );
            }
            FlightMsg::ROnlyUpdate { elem } => {
                em.push(SpecEmission::Race(7)); // (h)
                self.dir_step_at(
                    s,
                    em,
                    elem,
                    DirEvent::ROnlyUpdate {
                        sender: ProcId(f.src as u32),
                    },
                );
            }
            FlightMsg::FirstUpdateFail { elem, target } => {
                em.push(SpecEmission::Race(6)); // (g)
                let line = self.scope.line_of(elem);
                let off = (elem - self.scope.line_range(line).start) as usize;
                let ci = self.scope.copy_index(target, line);
                if let Some(copy) = &mut s.copies[ci] {
                    let (tag, emission) = ProtocolSpec::cache_step(
                        copy.tags[off],
                        copy.dirty,
                        CacheEvent::FirstUpdateFail {
                            target: ProcId(target as u32),
                        },
                    );
                    copy.tags[off] = tag;
                    if let Some(CacheEmission::Fail(reason)) = emission {
                        self.fail(s, em, reason);
                    }
                }
                // A displaced line already reconciled via its write-back
                // merge; the bounce is dropped, as in the executor.
            }
            FlightMsg::ReadFirst { elem, iter } => {
                em.push(SpecEmission::Race(3)); // (d): delivered read-first
                self.dir_step_at(s, em, elem, DirEvent::ReadFirst { iter });
            }
            FlightMsg::FirstWrite { elem, iter } => {
                em.push(SpecEmission::Race(7)); // (h): delivered first-write
                self.dir_step_at(s, em, elem, DirEvent::FirstWrite { iter });
            }
        }
    }

    /// Projects the directory's element states into `viewer`'s line tags
    /// (the data-reply projection of Fig. 6-b/d).
    fn project(&self, s: &SpecState, line: u16, viewer: u16) -> Vec<ElemTag> {
        self.scope
            .line_range(line)
            .map(|e| match s.dir[e as usize] {
                DirElem::NonPriv(d) => d.to_tag(ProcId(viewer as u32)),
                _ => unreachable!("projection is a non-privatization concept"),
            })
            .collect()
    }

    fn nonpriv_access(
        &self,
        s: &mut SpecState,
        em: &mut Vec<SpecEmission>,
        proc: u16,
        write: bool,
        elem: u16,
    ) {
        let line = self.scope.line_of(elem);
        let range = self.scope.line_range(line);
        let off = (elem - range.start) as usize;
        let ci = self.scope.copy_index(proc, line);
        let resident = s.copies[ci].is_some();
        match (resident, write) {
            (true, false) => {
                // Hit read — algorithm (a).
                em.push(SpecEmission::Race(0));
                let copy = s.copies[ci].as_mut().expect("resident");
                let (tag, emission) = ProtocolSpec::cache_step(
                    copy.tags[off],
                    copy.dirty,
                    CacheEvent::Read {
                        reader: ProcId(proc as u32),
                    },
                );
                copy.tags[off] = tag;
                match emission {
                    None => {}
                    Some(CacheEmission::SendFirstUpdate) => s.inflight.push(Flight {
                        src: proc,
                        msg: FlightMsg::FirstUpdate { elem },
                    }),
                    Some(CacheEmission::SendROnlyUpdate) => s.inflight.push(Flight {
                        src: proc,
                        msg: FlightMsg::ROnlyUpdate { elem },
                    }),
                    Some(CacheEmission::Fail(reason)) => self.fail(s, em, reason),
                    Some(CacheEmission::NeedWriteReq) => unreachable!("read emitted a write req"),
                }
            }
            (false, false) => {
                // Read miss — algorithm (b).
                em.push(SpecEmission::Race(1));
                self.drain_own(s, em, proc, line);
                if s.failed {
                    return;
                }
                if let Some(q) = self.dirty_owner(s, line) {
                    let copy = s.copies[self.scope.copy_index(q, line)]
                        .take()
                        .expect("owner resident");
                    self.merge_writeback(s, em, &copy, q, line);
                    if s.failed {
                        return;
                    }
                }
                self.dir_step_at(
                    s,
                    em,
                    elem,
                    DirEvent::ReadReq {
                        from: ProcId(proc as u32),
                    },
                );
                s.copies[ci] = Some(LineCopy {
                    dirty: false,
                    tags: self.project(s, line, proc),
                });
            }
            (true, true) => {
                // Hit write — algorithm (c), upgrading via (d) if clean.
                em.push(SpecEmission::Race(2));
                let copy = s.copies[ci].as_mut().expect("resident");
                let (tag, emission) = ProtocolSpec::cache_step(
                    copy.tags[off],
                    copy.dirty,
                    CacheEvent::Write {
                        writer: ProcId(proc as u32),
                    },
                );
                copy.tags[off] = tag;
                match emission {
                    None => {}
                    Some(CacheEmission::NeedWriteReq) => {
                        em.push(SpecEmission::Race(3));
                        self.drain_own(s, em, proc, line);
                        if s.failed {
                            return;
                        }
                        self.grant_write(s, em, proc, line, elem, off);
                    }
                    Some(CacheEmission::Fail(reason)) => self.fail(s, em, reason),
                    Some(CacheEmission::SendFirstUpdate) | Some(CacheEmission::SendROnlyUpdate) => {
                        unreachable!("write emitted an update")
                    }
                }
            }
            (false, true) => {
                // Write miss — algorithm (d).
                em.push(SpecEmission::Race(3));
                self.drain_own(s, em, proc, line);
                if s.failed {
                    return;
                }
                if let Some(q) = self.dirty_owner(s, line) {
                    let copy = s.copies[self.scope.copy_index(q, line)]
                        .take()
                        .expect("owner resident");
                    self.merge_writeback(s, em, &copy, q, line);
                    if s.failed {
                        return;
                    }
                }
                self.grant_write(s, em, proc, line, elem, off);
            }
        }
    }

    /// The directory grants a write of `elem`: invalidate the other
    /// sharers of its line, run the write test, install the projected
    /// tags with the write completion applied, dirty.
    fn grant_write(
        &self,
        s: &mut SpecState,
        em: &mut Vec<SpecEmission>,
        proc: u16,
        line: u16,
        elem: u16,
        off: usize,
    ) {
        for q in 0..self.scope.procs {
            if q != proc {
                s.copies[self.scope.copy_index(q, line)] = None;
            }
        }
        self.dir_step_at(
            s,
            em,
            elem,
            DirEvent::WriteReq {
                from: ProcId(proc as u32),
            },
        );
        let mut tags = self.project(s, line, proc);
        let (tag, _) = ProtocolSpec::cache_step(tags[off], true, CacheEvent::CompleteWrite);
        tags[off] = tag;
        s.copies[self.scope.copy_index(proc, line)] = Some(LineCopy { dirty: true, tags });
    }

    /// Whether every element of `line` is untouched in `proc`'s private
    /// copy (the read-in test).
    fn line_untouched(&self, s: &SpecState, proc: u16, line: u16) -> bool {
        self.scope
            .line_range(line)
            .all(|e| match s.pdir[self.scope.pdir_index(proc, e)] {
                PrivateDirElem::Priv { touched, .. } => !touched,
                PrivateDirElem::Priv3(_) => unreachable!("read-in test under no-read-in variant"),
            })
    }

    /// Private-line refill tags reconstructed from `proc`'s private
    /// directory stamps (so refills after an eviction do not re-signal).
    fn private_project(&self, s: &SpecState, proc: u16, line: u16) -> Vec<ElemTag> {
        let eff = ProtocolSpec::stamp(proc);
        self.scope
            .line_range(line)
            .map(|e| {
                let mut t = ElemTag::default();
                match s.pdir[self.scope.pdir_index(proc, e)] {
                    PrivateDirElem::Priv { elem, .. } => {
                        if elem.pmax_w == eff {
                            t.set_write(true);
                        }
                        if elem.pmax_r1st == eff {
                            t.set_read1st(true);
                        }
                    }
                    PrivateDirElem::Priv3(elem) => {
                        if elem.write {
                            t.set_write(true);
                        }
                        if elem.read1st {
                            t.set_read1st(true);
                        }
                    }
                }
                t
            })
            .collect()
    }

    /// Applies a stamped private-directory step at `(proc, elem)`.
    fn private_step_at(
        &self,
        s: &mut SpecState,
        proc: u16,
        elem: u16,
        ev: PrivateEvent,
    ) -> PrivateEffect {
        let pi = self.scope.pdir_index(proc, elem);
        let PrivateDirElem::Priv { elem: e, .. } = s.pdir[pi] else {
            unreachable!("stamped step under no-read-in variant")
        };
        let (e2, effect) = ProtocolSpec::private_step(e, ev);
        s.pdir[pi] = PrivateDirElem::Priv {
            elem: e2,
            touched: true,
        };
        effect
    }

    fn priv_access(
        &self,
        s: &mut SpecState,
        em: &mut Vec<SpecEmission>,
        proc: u16,
        write: bool,
        elem: u16,
    ) {
        let eff = ProtocolSpec::stamp(proc);
        let line = self.scope.line_of(elem);
        let range = self.scope.line_range(line);
        let off = (elem - range.start) as usize;
        let ci = self.scope.copy_index(proc, line);
        let resident = s.copies[ci].is_some();
        match (resident, write) {
            (true, false) => {
                // Hit read — algorithm (a): signal on first read of the
                // iteration.
                em.push(SpecEmission::Race(0));
                let copy = s.copies[ci].as_mut().expect("resident");
                let (tag, signal) = ProtocolSpec::private_cache_read(copy.tags[off]);
                copy.tags[off] = tag;
                if signal {
                    self.private_step_at(
                        s,
                        proc,
                        elem,
                        PrivateEvent::ReadFirstSignal { iter: eff },
                    );
                    s.inflight.push(Flight {
                        src: proc,
                        msg: FlightMsg::ReadFirst { elem, iter: eff },
                    });
                }
            }
            (false, false) => {
                // Read miss — algorithm (c): read-in / read-first / plain.
                em.push(SpecEmission::Race(1));
                let untouched = self.line_untouched(s, proc, line);
                let effect = self.private_step_at(
                    s,
                    proc,
                    elem,
                    PrivateEvent::ReadMiss {
                        iter: eff,
                        line_untouched: untouched,
                    },
                );
                s.copies[ci] = Some(LineCopy {
                    dirty: false,
                    tags: self.private_project(s, proc, line),
                });
                match effect {
                    PrivateEffect::TestReadFirst => {
                        em.push(SpecEmission::Race(2)); // (c): read-in test
                        self.drain_own(s, em, proc, line);
                        if s.failed {
                            return;
                        }
                        self.dir_step_at(s, em, elem, DirEvent::ReadFirst { iter: eff });
                    }
                    PrivateEffect::SignalReadFirst => s.inflight.push(Flight {
                        src: proc,
                        msg: FlightMsg::ReadFirst { elem, iter: eff },
                    }),
                    PrivateEffect::None => {}
                    _ => unreachable!("read miss emitted a write effect"),
                }
            }
            (true, true) => {
                // Hit write — algorithm (g), with a local upgrade if clean.
                em.push(SpecEmission::Race(4)); // (e): hit write
                let copy = s.copies[ci].as_mut().expect("resident");
                let (tag, signal) = ProtocolSpec::private_cache_write(copy.tags[off]);
                copy.tags[off] = tag;
                copy.dirty = true;
                if signal {
                    let effect = self.private_step_at(
                        s,
                        proc,
                        elem,
                        PrivateEvent::FirstWriteSignal { iter: eff },
                    );
                    if effect == PrivateEffect::SignalFirstWrite {
                        s.inflight.push(Flight {
                            src: proc,
                            msg: FlightMsg::FirstWrite { elem, iter: eff },
                        });
                    }
                }
            }
            (false, true) => {
                // Write miss — algorithm (h).
                em.push(SpecEmission::Race(5)); // (f): write miss
                let untouched = self.line_untouched(s, proc, line);
                let effect = self.private_step_at(
                    s,
                    proc,
                    elem,
                    PrivateEvent::WriteMiss {
                        iter: eff,
                        line_untouched: untouched,
                    },
                );
                let mut tags = self.private_project(s, proc, line);
                tags[off].set_write(true);
                s.copies[ci] = Some(LineCopy { dirty: true, tags });
                match effect {
                    PrivateEffect::TestFirstWrite => {
                        em.push(SpecEmission::Race(6)); // (g): read-in for write
                        self.drain_own(s, em, proc, line);
                        if s.failed {
                            return;
                        }
                        self.dir_step_at(s, em, elem, DirEvent::FirstWrite { iter: eff });
                    }
                    PrivateEffect::SignalFirstWrite => s.inflight.push(Flight {
                        src: proc,
                        msg: FlightMsg::FirstWrite { elem, iter: eff },
                    }),
                    PrivateEffect::None => {}
                    _ => unreachable!("write miss emitted a read effect"),
                }
            }
        }
    }

    fn priv3_access(
        &self,
        s: &mut SpecState,
        em: &mut Vec<SpecEmission>,
        proc: u16,
        write: bool,
        elem: u16,
    ) {
        let line = self.scope.line_of(elem);
        let range = self.scope.line_range(line);
        let off = (elem - range.start) as usize;
        let ci = self.scope.copy_index(proc, line);
        let resident = s.copies[ci].is_some();
        let signal = if resident {
            em.push(SpecEmission::Race(if write { 4 } else { 0 })); // (e) / (a)
            let copy = s.copies[ci].as_mut().expect("resident");
            let (tag, signal) = if write {
                ProtocolSpec::private_cache_write(copy.tags[off])
            } else {
                ProtocolSpec::private_cache_read(copy.tags[off])
            };
            copy.tags[off] = tag;
            if write {
                copy.dirty = true;
            }
            signal
        } else {
            em.push(SpecEmission::Race(if write { 5 } else { 1 })); // (f) / (b)
            let mut tags = self.private_project(s, proc, line);
            if write {
                tags[off].set_write(true);
            }
            s.copies[ci] = Some(LineCopy { dirty: write, tags });
            true // the private directory decides below
        };
        if signal {
            em.push(SpecEmission::Race(if write { 6 } else { 2 })); // (g) / (c)
            let pi = self.scope.pdir_index(proc, elem);
            let PrivateDirElem::Priv3(e) = s.pdir[pi] else {
                unreachable!("no-read-in step under stamped variant")
            };
            let (e2, r) = ProtocolSpec::private3_step(e, write);
            s.pdir[pi] = PrivateDirElem::Priv3(e2);
            match r {
                Ok(NoReadInOutcome::NotifyShared) => s.inflight.push(Flight {
                    src: proc,
                    msg: if write {
                        FlightMsg::FirstWrite { elem, iter: 1 }
                    } else {
                        FlightMsg::ReadFirst { elem, iter: 1 }
                    },
                }),
                Ok(NoReadInOutcome::Local) => {}
                Err(reason) => self.fail(s, em, reason),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope() -> SpecScope {
        SpecScope {
            lines: 1,
            elems: 2,
            procs: 2,
        }
    }

    #[test]
    fn dir_step_is_pure() {
        let e = DirElem::NonPriv(NonPrivDirElem::default());
        let ev = DirEvent::ReadReq { from: ProcId(1) };
        let a = ProtocolSpec::dir_step(e, ev);
        let b = ProtocolSpec::dir_step(e, ev);
        assert_eq!(a, b, "two evaluations must agree");
        assert_eq!(
            e.unwrap_nonpriv(),
            NonPrivDirElem::default(),
            "input moved, not mutated"
        );
    }

    #[test]
    fn first_update_race_bounces() {
        let mut e = NonPrivDirElem::default();
        e.on_first_update(ProcId(0)).unwrap();
        let (_, em) = ProtocolSpec::dir_step(
            DirElem::NonPriv(e),
            DirEvent::FirstUpdate { sender: ProcId(1) },
        );
        assert_eq!(
            em,
            Some(DirEmission::SendFirstUpdateFail { target: ProcId(1) })
        );
    }

    #[test]
    fn system_step_leaves_input_untouched() {
        let spec = ProtocolSpec::new(SpecVariant::NonPriv, scope());
        let s0 = spec.init();
        let snapshot = s0.clone();
        let (s1, _) = spec.step(
            &s0,
            &SpecMessage::Access {
                proc: 0,
                write: true,
                elem: 0,
            },
        );
        assert_eq!(s0, snapshot, "step must not mutate its input");
        assert_ne!(s1, s0, "a write access must change state");
    }

    #[test]
    fn scope_validation_rejects_out_of_range() {
        assert!(SpecScope {
            lines: 3,
            elems: 3,
            procs: 2
        }
        .validate()
        .is_err());
        assert!(SpecScope {
            lines: 2,
            elems: 1,
            procs: 2
        }
        .validate()
        .is_err());
        assert!(SpecScope {
            lines: 2,
            elems: 3,
            procs: 4
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn geometry_splits_elems_over_lines() {
        let s = SpecScope {
            lines: 2,
            elems: 3,
            procs: 2,
        };
        assert_eq!(s.line_of(0), 0);
        assert_eq!(s.line_of(1), 0);
        assert_eq!(s.line_of(2), 1);
        assert_eq!(s.line_range(0), 0..2);
        assert_eq!(s.line_range(1), 2..3);
    }
}
