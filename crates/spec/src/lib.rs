#![warn(missing_docs)]

//! # specrt-spec
//!
//! The paper's contribution: cache-coherence-protocol extensions that detect
//! cross-iteration dependences during speculative parallel loop execution.
//!
//! Two protocols are provided (paper §3):
//!
//! * [`nonpriv`] — the **non-privatization algorithm** (Figures 4, 6, 7):
//!   every element of an array under test must be read-only (`ROnly`) or
//!   accessed by a single processor (`NoShr`); any other pattern FAILs the
//!   speculation. State lives in cache tags (`First`∈{NONE,OWN,OTHER},
//!   `NoShr`, `ROnly`) and in the home directory (`First` = processor id,
//!   `NoShr`, `ROnly`), kept coherent lazily with `First_update` /
//!   `ROnly_update` messages whose races the directory resolves.
//!
//! * [`privat`] — the **privatization algorithm** (Figures 8, 9): each
//!   processor works on a private copy; the shared array's directory keeps
//!   per-element `MaxR1st` / `MinW` iteration stamps and FAILs whenever a
//!   read-first iteration is later than some writing iteration. Supports
//!   read-in and copy-out.
//!
//! The state machines here are *pure*: they mutate tag/directory element
//! state and report [`FailReason`]s, while `specrt-proto` provides message
//! timing and `specrt-machine` orchestrates loops. This separation lets
//! property tests drive the protocols through millions of interleavings
//! without a simulator in the loop.
//!
//! [`privat3`] holds the reduced no-read-in state of Figure 5-b / §4.1.
//! Also here: [`plan`] (which arrays are under which test — the paper's
//! address-range comparator of §4.1), [`chunking`] (block-cyclic
//! superiterations and the processor-wise extreme of §4.1), and
//! [`state_cost`] (the Figure 5 / §3.4 storage-cost analytics).

pub mod chunking;
pub mod fail;
pub mod fault;
pub mod nonpriv;
pub mod plan;
pub mod privat;
pub mod privat3;
pub mod protospec;
pub mod state_cost;

pub use chunking::IterationNumbering;
pub use fail::FailReason;
pub use fault::FaultKind;
pub use nonpriv::{
    nonpriv_cache_read, nonpriv_cache_write, nonpriv_complete_write, nonpriv_on_first_update_fail,
    FirstUpdateOutcome, NonPrivDirElem, NonPrivReadAction, NonPrivWriteAction,
};
pub use plan::{ProtocolKind, TestPlan};
pub use privat::{
    priv_cache_read, priv_cache_write, PrivPrivateElem, PrivSharedElem, PrivateReadMissOutcome,
    PrivateReadOutcome, PrivateWriteMissOutcome, PrivateWriteOutcome,
};
pub use privat3::{NoReadInOutcome, PrivNoReadInPrivate, PrivNoReadInShared};
pub use protospec::{
    CacheEmission, CacheEvent, DirElem, DirEmission, DirEvent, Flight, FlightMsg, LineCopy,
    PrivateDirElem, PrivateEffect, PrivateEvent, ProtocolSpec, SpecEmission, SpecMessage,
    SpecScope, SpecState, SpecVariant,
};
pub use state_cost::StateCost;
