//! The reduced, no-read-in privatization state (paper Figure 5-b and §4.1).
//!
//! When read-in and copy-out are not needed — "the large majority of
//! parallelizable loops" — the per-element directory state shrinks from two
//! iteration time stamps to a few bits:
//!
//! * private directory (§4.1): `Read1st` and `Write`, "used like the
//!   Read1st and Write fields of the cache tags … cleared at the beginning
//!   of each iteration", plus the sticky `WriteAny` bit ("set if the
//!   element has been written in any of the iterations executed so far");
//! * shared directory: two sticky bits — some iteration read-first
//!   (`AnyR1st`), some iteration wrote (`AnyW`).
//!
//! Without time stamps the ordering between a read-first and a write in
//! different iterations is unknown, so the test is **conservative**: any
//! element that is both read-first and written (in distinct iterations)
//! FAILs, even when the stamped protocol would have proven all read-firsts
//! early enough. That loses exactly the Figure-3 patterns — which need
//! read-in anyway — and nothing else; the property tests pin this down.

use crate::fail::FailReason;

/// Shared-directory per-element state: two sticky bits (Figure 5-b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrivNoReadInShared {
    /// Some iteration read the element before writing it.
    pub any_r1st: bool,
    /// Some iteration wrote the element.
    pub any_w: bool,
}

impl PrivNoReadInShared {
    /// Compact state label for tracing: `Clear`, `AnyR1st`, `AnyW` or
    /// `AnyR1st,AnyW`.
    pub fn state_label(&self) -> String {
        match (self.any_r1st, self.any_w) {
            (false, false) => "Clear".to_string(),
            (true, false) => "AnyR1st".to_string(),
            (false, true) => "AnyW".to_string(),
            (true, true) => "AnyR1st,AnyW".to_string(),
        }
    }

    /// A read-first signal arrived.
    ///
    /// # Errors
    ///
    /// FAILs if the element was already written by some iteration: with no
    /// stamps the order is unknown, so the worst case (flow dependence) is
    /// assumed.
    pub fn on_read_first(&mut self) -> Result<(), FailReason> {
        if self.any_w {
            return Err(FailReason::ReadFirstAfterWrite { iter: 0, min_w: 0 });
        }
        self.any_r1st = true;
        Ok(())
    }

    /// A first-write signal arrived.
    ///
    /// # Errors
    ///
    /// FAILs if the element was already read-first by some iteration.
    pub fn on_first_write(&mut self) -> Result<(), FailReason> {
        if self.any_r1st {
            return Err(FailReason::WriteBeforeReadFirst {
                iter: 0,
                max_r1st: 0,
            });
        }
        self.any_w = true;
        Ok(())
    }

    /// Clears the element (loop start).
    pub fn clear(&mut self) {
        *self = PrivNoReadInShared::default();
    }
}

/// Private-directory per-element state: `Read1st`/`Write` per iteration
/// plus the sticky `WriteAny` (§4.1's three-bit optimization).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrivNoReadInPrivate {
    /// This iteration read the element before writing it.
    pub read1st: bool,
    /// This iteration wrote the element.
    pub write: bool,
    /// Some iteration of this processor wrote the element.
    pub write_any: bool,
}

/// What a no-read-in private-directory access decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoReadInOutcome {
    /// Nothing to forward.
    Local,
    /// Forward a read-first / first-write signal to the shared directory.
    NotifyShared,
}

impl PrivNoReadInPrivate {
    /// Whether neither per-iteration bit nor the sticky bit is set.
    pub fn is_untouched(&self) -> bool {
        !self.read1st && !self.write && !self.write_any
    }

    /// Start of a new iteration: clears the per-iteration bits.
    pub fn clear_iteration(&mut self) {
        self.read1st = false;
        self.write = false;
    }

    /// A read by this processor.
    ///
    /// # Errors
    ///
    /// FAILs when the read is a read-first and an *earlier* iteration of
    /// this same processor wrote the element — a same-processor flow
    /// dependence across iterations, which even the stamped protocol
    /// rejects.
    pub fn on_read(&mut self) -> Result<NoReadInOutcome, FailReason> {
        if self.read1st || self.write {
            return Ok(NoReadInOutcome::Local);
        }
        // A read-first for this iteration.
        if self.write_any {
            return Err(FailReason::ReadFirstAfterWrite { iter: 0, min_w: 0 });
        }
        self.read1st = true;
        Ok(NoReadInOutcome::NotifyShared)
    }

    /// A write by this processor. Only the processor's *first* write to the
    /// element in the whole loop notifies the shared directory (mirroring
    /// the `PMaxW == 0` test of algorithm (g)).
    pub fn on_write(&mut self) -> Result<NoReadInOutcome, FailReason> {
        let first_in_loop = !self.write_any;
        self.write = true;
        self.write_any = true;
        if first_in_loop {
            Ok(NoReadInOutcome::NotifyShared)
        } else {
            Ok(NoReadInOutcome::Local)
        }
    }

    /// Clears everything (loop start).
    pub fn clear(&mut self) {
        *self = PrivNoReadInPrivate::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privat::PrivSharedElem;

    #[test]
    fn no_read_in_state_labels() {
        let mut s = PrivNoReadInShared::default();
        assert_eq!(s.state_label(), "Clear");
        s.on_read_first().unwrap();
        assert_eq!(s.state_label(), "AnyR1st");
        let mut w = PrivNoReadInShared::default();
        w.on_first_write().unwrap();
        assert_eq!(w.state_label(), "AnyW");
    }

    #[test]
    fn write_before_read_pattern_passes() {
        // The workspace pattern: every iteration writes then reads.
        let mut p = PrivNoReadInPrivate::default();
        let mut s = PrivNoReadInShared::default();
        for _iter in 0..5 {
            p.clear_iteration();
            if p.on_write().unwrap() == NoReadInOutcome::NotifyShared {
                s.on_first_write().unwrap();
            }
            assert_eq!(p.on_read().unwrap(), NoReadInOutcome::Local);
        }
        assert!(s.any_w && !s.any_r1st);
    }

    #[test]
    fn read_only_pattern_passes() {
        let mut p = PrivNoReadInPrivate::default();
        let mut s = PrivNoReadInShared::default();
        for _ in 0..3 {
            p.clear_iteration();
            if p.on_read().unwrap() == NoReadInOutcome::NotifyShared {
                s.on_read_first().unwrap();
            }
        }
        assert!(s.any_r1st && !s.any_w);
    }

    #[test]
    fn same_proc_write_then_later_read_first_fails_locally() {
        let mut p = PrivNoReadInPrivate::default();
        p.on_write().unwrap();
        p.clear_iteration();
        assert!(p.on_read().is_err());
    }

    #[test]
    fn cross_proc_mixed_read_write_fails_at_shared() {
        let mut s = PrivNoReadInShared::default();
        s.on_read_first().unwrap();
        assert!(s.on_first_write().is_err());
        let mut s2 = PrivNoReadInShared::default();
        s2.on_first_write().unwrap();
        assert!(s2.on_read_first().is_err());
    }

    #[test]
    fn conservative_wrt_stamps_on_figure3_patterns() {
        // Reads (iters 1..2) then writes (iters 3..4): the stamped protocol
        // passes (needs read-in); the reduced state must fail.
        let mut stamped = PrivSharedElem::default();
        stamped.on_read_first(1).unwrap();
        stamped.on_read_first(2).unwrap();
        stamped.on_first_write(3).unwrap();
        stamped.on_first_write(4).unwrap(); // passes

        let mut reduced = PrivNoReadInShared::default();
        reduced.on_read_first().unwrap();
        reduced.on_read_first().unwrap();
        assert!(
            reduced.on_first_write().is_err(),
            "reduced state is conservative"
        );
    }

    #[test]
    fn untouched_and_clear() {
        let mut p = PrivNoReadInPrivate::default();
        assert!(p.is_untouched());
        p.on_write().unwrap();
        assert!(!p.is_untouched());
        p.clear_iteration();
        assert!(!p.is_untouched(), "WriteAny is sticky across iterations");
        p.clear();
        assert!(p.is_untouched());
        let mut s = PrivNoReadInShared::default();
        s.on_first_write().unwrap();
        s.clear();
        assert_eq!(s, PrivNoReadInShared::default());
    }

    #[test]
    fn exhaustive_agreement_with_stamps_when_not_mixed() {
        // For every per-iteration behaviour sequence of length 4 executed by
        // ONE processor, the reduced protocol fails iff the stamped protocol
        // fails OR the element is both read-first and written (the
        // conservative extension).
        #[derive(Clone, Copy, PartialEq)]
        enum B {
            Skip,
            ReadFirst,
            WriteFirst,
        }
        let opts = [B::Skip, B::ReadFirst, B::WriteFirst];
        for a in opts {
            for b in opts {
                for c in opts {
                    for d in opts {
                        let seq = [a, b, c, d];
                        // Stamped.
                        let mut st = PrivSharedElem::default();
                        let mut st_fail = false;
                        for (i, beh) in seq.iter().enumerate() {
                            let iter = i as u64 + 1;
                            let r = match beh {
                                B::Skip => Ok(()),
                                B::ReadFirst => st.on_read_first(iter),
                                B::WriteFirst => st.on_first_write(iter),
                            };
                            if r.is_err() {
                                st_fail = true;
                                break;
                            }
                        }
                        // Reduced.
                        let mut rd = PrivNoReadInShared::default();
                        let mut rd_fail = false;
                        for beh in seq.iter() {
                            let r = match beh {
                                B::Skip => Ok(()),
                                B::ReadFirst => rd.on_read_first(),
                                B::WriteFirst => rd.on_first_write(),
                            };
                            if r.is_err() {
                                rd_fail = true;
                                break;
                            }
                        }
                        let mixed = seq.contains(&B::ReadFirst) && seq.contains(&B::WriteFirst);
                        assert_eq!(rd_fail, mixed, "reduced = mixed-use detector");
                        if st_fail {
                            assert!(rd_fail, "reduced must be conservative wrt stamps");
                        }
                    }
                }
            }
        }
    }
}
