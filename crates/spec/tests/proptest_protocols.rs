//! Property tests: the speculation protocols against ground-truth oracles.
//!
//! The non-privatization protocol must pass exactly the access patterns
//! inside its envelope (every element read-only or single-processor), and
//! the privatization stamps must fail exactly when some element's
//! read-first iteration follows a writing iteration.

use proptest::prelude::*;

use specrt_mem::ProcId;
use specrt_spec::{NonPrivDirElem, PrivPrivateElem, PrivSharedElem};

#[derive(Debug, Clone, Copy)]
struct Access {
    proc: u8,
    elem: u8,
    write: bool,
}

fn access_strategy(procs: u8, elems: u8) -> impl Strategy<Value = Access> {
    (0..procs, 0..elems, any::<bool>()).prop_map(|(proc, elem, write)| Access { proc, elem, write })
}

proptest! {
    /// Directory-serialized non-privatization protocol == the
    /// read-only-or-single-processor envelope, for every element
    /// independently.
    #[test]
    fn nonpriv_matches_envelope(
        accesses in proptest::collection::vec(access_strategy(4, 6), 0..60)
    ) {
        let mut dirs = [NonPrivDirElem::default(); 6];
        let mut failed = [false; 6];
        for a in &accesses {
            let d = &mut dirs[a.elem as usize];
            if failed[a.elem as usize] {
                continue;
            }
            let r = if a.write {
                d.on_write_req(ProcId(a.proc as u32))
            } else {
                d.on_read_req(ProcId(a.proc as u32))
            };
            if r.is_err() {
                failed[a.elem as usize] = true;
            }
        }
        for e in 0..6u8 {
            let touching: std::collections::BTreeSet<u8> = accesses
                .iter()
                .filter(|a| a.elem == e)
                .map(|a| a.proc)
                .collect();
            let any_write = accesses.iter().any(|a| a.elem == e && a.write);
            let envelope_ok = touching.len() <= 1 || !any_write;
            prop_assert_eq!(
                !failed[e as usize],
                envelope_ok,
                "element {} (touching {:?}, write {})",
                e,
                touching,
                any_write
            );
        }
    }

    /// The privatization stamps fail exactly iff max(read-first iteration)
    /// > min(write iteration), independent of signal arrival order within
    /// each processor's monotone sequence.
    #[test]
    fn priv_stamps_match_minmax_rule(
        // (iteration, is_read_first) events; iterations 1..=40.
        events in proptest::collection::vec((1u64..=40, any::<bool>()), 0..40)
    ) {
        let mut shared = PrivSharedElem::default();
        let mut failed = false;
        for &(iter, is_read) in &events {
            if failed {
                break;
            }
            let r = if is_read {
                shared.on_read_first(iter)
            } else {
                shared.on_first_write(iter)
            };
            failed |= r.is_err();
        }
        // Oracle on the *prefix processed so far* would be order-dependent;
        // over the full set, failure must equal the min/max rule on the
        // processed prefix. Re-derive: the protocol fails at the first
        // event where the rule is violated, so overall failure == rule
        // violated at some prefix == rule violated on the full set
        // (max/min are monotone).
        let reads: Vec<u64> = events.iter().filter(|e| e.1).map(|e| e.0).collect();
        let writes: Vec<u64> = events.iter().filter(|e| !e.1).map(|e| e.0).collect();
        let max_rf = reads.iter().max().copied().unwrap_or(0);
        let min_w = writes.iter().min().copied().unwrap_or(u64::MAX);
        prop_assert_eq!(failed, max_rf > min_w);
    }

    /// Private-directory stamps: `is_untouched` holds until the first
    /// event, and `pmax` fields track maxima under monotone per-processor
    /// iteration sequences.
    #[test]
    fn private_stamps_track_maxima(
        mut iters in proptest::collection::vec((1u64..=30, any::<bool>()), 1..30)
    ) {
        // Per-processor iteration sequences are nondecreasing.
        iters.sort_by_key(|e| e.0);
        let mut p = PrivPrivateElem::default();
        prop_assert!(p.is_untouched());
        let mut max_w = 0u64;
        let mut max_rf = 0u64;
        for &(iter, is_read) in &iters {
            if is_read {
                // A read is read-first iff neither stamp reached this
                // iteration yet.
                if p.pmax_r1st < iter && p.pmax_w < iter {
                    p.on_read_first_signal(iter);
                    max_rf = max_rf.max(iter);
                }
            } else {
                p.on_first_write_signal(iter);
                max_w = max_w.max(iter);
            }
        }
        prop_assert_eq!(p.pmax_w, max_w);
        prop_assert_eq!(p.pmax_r1st, max_rf);
        prop_assert!(!p.is_untouched());
    }

    /// Tag round trip: directory state projected to a tag and merged back
    /// never loses the written/shared bits.
    #[test]
    fn dir_tag_projection_round_trip(
        writes in proptest::collection::vec(0u32..4, 0..3),
        reads in proptest::collection::vec(0u32..4, 0..3),
    ) {
        let mut d = NonPrivDirElem::default();
        for &p in &reads {
            if d.on_read_req(ProcId(p)).is_err() {
                return Ok(());
            }
        }
        for &p in &writes {
            if d.on_write_req(ProcId(p)).is_err() {
                return Ok(());
            }
        }
        let viewer = ProcId(0);
        let tag = d.to_tag(viewer);
        prop_assert_eq!(tag.no_shr(), d.no_shr);
        prop_assert_eq!(tag.r_only(), d.r_only);
        // Merging the projection back from its owner is a no-op on the
        // envelope decision.
        let before = d;
        let merge = d.merge_writeback(tag, viewer);
        if before.first == Some(viewer) || before.first.is_none() {
            prop_assert!(merge.is_ok());
            prop_assert_eq!(d.no_shr, before.no_shr);
            prop_assert_eq!(d.r_only | before.r_only, d.r_only);
        }
    }
}
