//! Randomized tests: the speculation protocols against ground-truth
//! oracles, driven by the in-repo deterministic [`SplitMix64`] generator.
//!
//! The non-privatization protocol must pass exactly the access patterns
//! inside its envelope (every element read-only or single-processor), and
//! the privatization stamps must fail exactly when some element's
//! read-first iteration follows a writing iteration.

use specrt_engine::SplitMix64;
use specrt_mem::ProcId;
use specrt_spec::{NonPrivDirElem, PrivPrivateElem, PrivSharedElem};

#[derive(Debug, Clone, Copy)]
struct Access {
    proc: u8,
    elem: u8,
    write: bool,
}

fn random_accesses(rng: &mut SplitMix64, procs: u8, elems: u8, max_len: u64) -> Vec<Access> {
    (0..rng.below(max_len))
        .map(|_| Access {
            proc: rng.below(procs as u64) as u8,
            elem: rng.below(elems as u64) as u8,
            write: rng.chance(0.5),
        })
        .collect()
}

/// Directory-serialized non-privatization protocol == the
/// read-only-or-single-processor envelope, for every element
/// independently.
#[test]
fn nonpriv_matches_envelope() {
    let mut rng = SplitMix64::new(0x5eed_0001);
    for _case in 0..256 {
        let accesses = random_accesses(&mut rng, 4, 6, 60);
        let mut dirs = [NonPrivDirElem::default(); 6];
        let mut failed = [false; 6];
        for a in &accesses {
            let d = &mut dirs[a.elem as usize];
            if failed[a.elem as usize] {
                continue;
            }
            let r = if a.write {
                d.on_write_req(ProcId(a.proc as u32))
            } else {
                d.on_read_req(ProcId(a.proc as u32))
            };
            if r.is_err() {
                failed[a.elem as usize] = true;
            }
        }
        for e in 0..6u8 {
            let touching: std::collections::BTreeSet<u8> = accesses
                .iter()
                .filter(|a| a.elem == e)
                .map(|a| a.proc)
                .collect();
            let any_write = accesses.iter().any(|a| a.elem == e && a.write);
            let envelope_ok = touching.len() <= 1 || !any_write;
            assert_eq!(
                !failed[e as usize], envelope_ok,
                "element {e} (touching {touching:?}, write {any_write}, accesses {accesses:?})"
            );
        }
    }
}

/// The privatization stamps fail exactly iff max(read-first iteration)
/// exceeds min(write iteration), independent of signal arrival order
/// within each processor's monotone sequence.
#[test]
fn priv_stamps_match_minmax_rule() {
    let mut rng = SplitMix64::new(0x5eed_0002);
    for _case in 0..512 {
        // (iteration, is_read_first) events; iterations 1..=40.
        let events: Vec<(u64, bool)> = (0..rng.below(40))
            .map(|_| (rng.range(1, 41), rng.chance(0.5)))
            .collect();
        let mut shared = PrivSharedElem::default();
        let mut failed = false;
        for &(iter, is_read) in &events {
            if failed {
                break;
            }
            let r = if is_read {
                shared.on_read_first(iter)
            } else {
                shared.on_first_write(iter)
            };
            failed |= r.is_err();
        }
        // The protocol fails at the first event where the min/max rule is
        // violated, and max/min are monotone over the prefix, so overall
        // failure == rule violated on the full set.
        let max_rf = events
            .iter()
            .filter(|e| e.1)
            .map(|e| e.0)
            .max()
            .unwrap_or(0);
        let min_w = events
            .iter()
            .filter(|e| !e.1)
            .map(|e| e.0)
            .min()
            .unwrap_or(u64::MAX);
        assert_eq!(failed, max_rf > min_w, "events {events:?}");
    }
}

/// Private-directory stamps: `is_untouched` holds until the first event,
/// and `pmax` fields track maxima under monotone per-processor iteration
/// sequences.
#[test]
fn private_stamps_track_maxima() {
    let mut rng = SplitMix64::new(0x5eed_0003);
    for _case in 0..512 {
        let mut iters: Vec<(u64, bool)> = (0..rng.range(1, 30))
            .map(|_| (rng.range(1, 31), rng.chance(0.5)))
            .collect();
        // Per-processor iteration sequences are nondecreasing.
        iters.sort_by_key(|e| e.0);
        let mut p = PrivPrivateElem::default();
        assert!(p.is_untouched());
        let mut max_w = 0u64;
        let mut max_rf = 0u64;
        for &(iter, is_read) in &iters {
            if is_read {
                // A read is read-first iff neither stamp reached this
                // iteration yet.
                if p.pmax_r1st < iter && p.pmax_w < iter {
                    p.on_read_first_signal(iter);
                    max_rf = max_rf.max(iter);
                }
            } else {
                p.on_first_write_signal(iter);
                max_w = max_w.max(iter);
            }
        }
        assert_eq!(p.pmax_w, max_w);
        assert_eq!(p.pmax_r1st, max_rf);
        assert!(!p.is_untouched());
    }
}

/// Tag round trip: directory state projected to a tag and merged back
/// never loses the written/shared bits.
#[test]
fn dir_tag_projection_round_trip() {
    let mut rng = SplitMix64::new(0x5eed_0004);
    'case: for _case in 0..512 {
        let reads: Vec<u32> = (0..rng.below(3)).map(|_| rng.below(4) as u32).collect();
        let writes: Vec<u32> = (0..rng.below(3)).map(|_| rng.below(4) as u32).collect();
        let mut d = NonPrivDirElem::default();
        for &p in &reads {
            if d.on_read_req(ProcId(p)).is_err() {
                continue 'case;
            }
        }
        for &p in &writes {
            if d.on_write_req(ProcId(p)).is_err() {
                continue 'case;
            }
        }
        let viewer = ProcId(0);
        let tag = d.to_tag(viewer);
        assert_eq!(tag.no_shr(), d.no_shr);
        assert_eq!(tag.r_only(), d.r_only);
        // Merging the projection back from its owner is a no-op on the
        // envelope decision.
        let before = d;
        let merge = d.merge_writeback(tag, viewer);
        if before.first == Some(viewer) || before.first.is_none() {
            assert!(merge.is_ok());
            assert_eq!(d.no_shr, before.no_shr);
            assert_eq!(d.r_only | before.r_only, d.r_only);
        }
    }
}
