//! Property tests: address-map round trips and NUMA placement.

use proptest::prelude::*;

use specrt_ir::ArrayId;
use specrt_mem::{ElemSize, NumaAllocator, PlacementPolicy};

proptest! {
    /// Forward addressing and reverse lookup are inverses for every
    /// element of every allocated array, and homes are valid nodes.
    #[test]
    fn locate_inverts_addr_of(
        lens in proptest::collection::vec(1u64..300, 1..8),
        nodes in 1u32..9,
    ) {
        let mut numa = NumaAllocator::new(nodes);
        let mut layouts = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let elem = if i % 2 == 0 { ElemSize::W8 } else { ElemSize::W4 };
            let policy = if i % 3 == 0 {
                PlacementPolicy::Local(specrt_mem::NodeId(i as u32 % nodes))
            } else {
                PlacementPolicy::RoundRobin
            };
            layouts.push(numa.alloc_array(ArrayId(i as u32), len, elem, policy));
        }
        for l in &layouts {
            for idx in [0, l.len / 2, l.len - 1] {
                let addr = l.addr_of(idx);
                prop_assert_eq!(numa.address_map().locate(addr), Some((l.id, idx)));
                let home = numa.home_of(addr);
                prop_assert!(home.0 < nodes);
            }
        }
    }

    /// Lines never span two arrays (page-aligned allocation), so per-line
    /// tag state always belongs to exactly one array.
    #[test]
    fn lines_do_not_span_arrays(
        lens in proptest::collection::vec(1u64..200, 2..6),
    ) {
        let mut numa = NumaAllocator::new(4);
        for (i, &len) in lens.iter().enumerate() {
            numa.alloc_array(ArrayId(i as u32), len, ElemSize::W8, PlacementPolicy::RoundRobin);
        }
        let map = numa.address_map();
        for l in map.iter() {
            let first_line = l.base.line();
            let last_line = l.addr_of(l.len - 1).line();
            for line in first_line.0..=last_line.0 {
                let owner = map.locate(specrt_mem::LineAddr(line).base());
                if let Some((arr, _)) = owner {
                    prop_assert_eq!(arr, l.id, "line {} claimed by two arrays", line);
                }
            }
        }
    }

    /// Round-robin placement spreads consecutive pages across nodes.
    #[test]
    fn round_robin_covers_all_nodes(nodes in 2u32..9) {
        let mut numa = NumaAllocator::new(nodes);
        // One multi-page array: 4096 W8 elements = 8 pages.
        let l = numa.alloc_array(ArrayId(0), 4096, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut seen = std::collections::BTreeSet::new();
        for page in 0..8u64 {
            seen.insert(numa.home_of(l.base.offset(page * 4096)).0);
        }
        prop_assert_eq!(seen.len() as u32, nodes.min(8));
    }
}
