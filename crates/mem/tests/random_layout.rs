//! Randomized tests: address-map round trips and NUMA placement, driven
//! by the in-repo deterministic [`SplitMix64`] generator.

use specrt_engine::SplitMix64;
use specrt_ir::ArrayId;
use specrt_mem::{ElemSize, NumaAllocator, PlacementPolicy};

/// Forward addressing and reverse lookup are inverses for every element of
/// every allocated array, and homes are valid nodes.
#[test]
fn locate_inverts_addr_of() {
    let mut rng = SplitMix64::new(0x1a40_0001);
    for _case in 0..128 {
        let lens: Vec<u64> = (0..rng.range(1, 8)).map(|_| rng.range(1, 300)).collect();
        let nodes = rng.range(1, 9) as u32;
        let mut numa = NumaAllocator::new(nodes);
        let mut layouts = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let elem = if i % 2 == 0 {
                ElemSize::W8
            } else {
                ElemSize::W4
            };
            let policy = if i % 3 == 0 {
                PlacementPolicy::Local(specrt_mem::NodeId(i as u32 % nodes))
            } else {
                PlacementPolicy::RoundRobin
            };
            layouts.push(numa.alloc_array(ArrayId(i as u32), len, elem, policy));
        }
        for l in &layouts {
            for idx in [0, l.len / 2, l.len - 1] {
                let addr = l.addr_of(idx);
                assert_eq!(numa.address_map().locate(addr), Some((l.id, idx)));
                let home = numa.home_of(addr);
                assert!(home.0 < nodes);
            }
        }
    }
}

/// Lines never span two arrays (page-aligned allocation), so per-line tag
/// state always belongs to exactly one array.
#[test]
fn lines_do_not_span_arrays() {
    let mut rng = SplitMix64::new(0x1a40_0002);
    for _case in 0..128 {
        let lens: Vec<u64> = (0..rng.range(2, 6)).map(|_| rng.range(1, 200)).collect();
        let mut numa = NumaAllocator::new(4);
        for (i, &len) in lens.iter().enumerate() {
            numa.alloc_array(
                ArrayId(i as u32),
                len,
                ElemSize::W8,
                PlacementPolicy::RoundRobin,
            );
        }
        let map = numa.address_map();
        for l in map.iter() {
            let first_line = l.base.line();
            let last_line = l.addr_of(l.len - 1).line();
            for line in first_line.0..=last_line.0 {
                let owner = map.locate(specrt_mem::LineAddr(line).base());
                if let Some((arr, _)) = owner {
                    assert_eq!(arr, l.id, "line {line} claimed by two arrays");
                }
            }
        }
    }
}

/// Round-robin placement spreads consecutive pages across nodes.
#[test]
fn round_robin_covers_all_nodes() {
    for nodes in 2u32..9 {
        let mut numa = NumaAllocator::new(nodes);
        // One multi-page array: 4096 W8 elements = 8 pages.
        let l = numa.alloc_array(ArrayId(0), 4096, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut seen = std::collections::BTreeSet::new();
        for page in 0..8u64 {
            seen.insert(numa.home_of(l.base.offset(page * 4096)).0);
        }
        assert_eq!(seen.len() as u32, nodes.min(8));
    }
}
