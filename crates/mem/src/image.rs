//! The functional memory image: current value of every array element, plus
//! the backup/restore machinery speculative execution needs.
//!
//! Before a loop is executed speculatively, "we need to save the state of
//! the arrays that will be modified in the loop" (paper §2.2.1). On failure
//! "we restore the arrays from their backups and re-start serial execution".
//! [`MemoryImage::snapshot`] and [`MemoryImage::restore`] implement exactly
//! that; the *cost* of the copies is charged separately by the machine layer
//! (backup/restore are simulated as memory-to-memory copy loops).

use std::collections::HashMap;

use specrt_ir::{ArrayId, MemOracle, Scalar};

/// Values of every registered array.
///
/// This is the *functional* state of the simulated machine. Timing
/// (caches, directories, NUMA latencies) is modelled separately; values are
/// applied in program order per processor, which is sound for the workloads
/// the system runs (see DESIGN.md §3).
#[derive(Debug, Clone, Default)]
pub struct MemoryImage {
    arrays: HashMap<ArrayId, Vec<Scalar>>,
}

/// A saved copy of selected arrays, produced by [`MemoryImage::snapshot`].
#[derive(Debug, Clone)]
pub struct ArrayBackup {
    saved: Vec<(ArrayId, Vec<Scalar>)>,
}

impl ArrayBackup {
    /// Ids of the arrays captured, in snapshot order.
    pub fn arrays(&self) -> impl Iterator<Item = ArrayId> + '_ {
        self.saved.iter().map(|(id, _)| *id)
    }

    /// Total number of elements captured (proportional to backup cost).
    pub fn element_count(&self) -> u64 {
        self.saved.iter().map(|(_, v)| v.len() as u64).sum()
    }
}

impl MemoryImage {
    /// Creates an empty image.
    pub fn new() -> Self {
        MemoryImage::default()
    }

    /// Registers an array of `len` elements, zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered.
    pub fn register(&mut self, id: ArrayId, len: u64) {
        let prev = self.arrays.insert(id, vec![Scalar::ZERO; len as usize]);
        assert!(prev.is_none(), "array {id} registered twice in image");
    }

    /// Registers an array with explicit initial contents.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered.
    pub fn register_with(&mut self, id: ArrayId, values: Vec<Scalar>) {
        let prev = self.arrays.insert(id, values);
        assert!(prev.is_none(), "array {id} registered twice in image");
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: ArrayId) -> bool {
        self.arrays.contains_key(&id)
    }

    /// Length of array `id`.
    ///
    /// # Panics
    ///
    /// Panics if unregistered.
    pub fn len_of(&self, id: ArrayId) -> u64 {
        self.arr(id).len() as u64
    }

    fn arr(&self, id: ArrayId) -> &Vec<Scalar> {
        self.arrays
            .get(&id)
            .unwrap_or_else(|| panic!("array {id} not registered in image"))
    }

    fn arr_mut(&mut self, id: ArrayId) -> &mut Vec<Scalar> {
        self.arrays
            .get_mut(&id)
            .unwrap_or_else(|| panic!("array {id} not registered in image"))
    }

    /// Reads element `idx` of `id`.
    ///
    /// # Panics
    ///
    /// Panics if unregistered or out of bounds.
    pub fn read(&self, id: ArrayId, idx: u64) -> Scalar {
        self.arr(id)[idx as usize]
    }

    /// Writes element `idx` of `id`.
    ///
    /// # Panics
    ///
    /// Panics if unregistered or out of bounds.
    pub fn write(&mut self, id: ArrayId, idx: u64, v: Scalar) {
        self.arr_mut(id)[idx as usize] = v;
    }

    /// A full copy of array `id`'s contents.
    pub fn contents(&self, id: ArrayId) -> Vec<Scalar> {
        self.arr(id).clone()
    }

    /// Overwrites array `id`'s contents.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn set_contents(&mut self, id: ArrayId, values: Vec<Scalar>) {
        let arr = self.arr_mut(id);
        assert_eq!(arr.len(), values.len(), "length mismatch for {id}");
        *arr = values;
    }

    /// Captures the current contents of `ids` for later [`restore`].
    ///
    /// [`restore`]: Self::restore
    pub fn snapshot(&self, ids: &[ArrayId]) -> ArrayBackup {
        ArrayBackup {
            saved: ids.iter().map(|&id| (id, self.arr(id).clone())).collect(),
        }
    }

    /// Restores every array captured in `backup` to its snapshot contents.
    pub fn restore(&mut self, backup: &ArrayBackup) {
        for (id, values) in &backup.saved {
            let arr = self.arr_mut(*id);
            assert_eq!(arr.len(), values.len(), "backup length mismatch for {id}");
            arr.clone_from(values);
        }
    }

    /// Whether two images hold identical contents for `ids` (used by tests
    /// that compare speculative and serial executions).
    pub fn same_contents(&self, other: &MemoryImage, ids: &[ArrayId]) -> bool {
        ids.iter().all(|&id| self.arr(id) == other.arr(id))
    }

    /// Ids of all registered arrays, in unspecified order.
    pub fn array_ids(&self) -> Vec<ArrayId> {
        let mut v: Vec<_> = self.arrays.keys().copied().collect();
        v.sort();
        v
    }
}

impl MemOracle for MemoryImage {
    fn read(&mut self, arr: ArrayId, idx: u64) -> Scalar {
        MemoryImage::read(self, arr, idx)
    }

    fn write(&mut self, arr: ArrayId, idx: u64, value: Scalar) {
        MemoryImage::write(self, arr, idx, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_read_write() {
        let mut m = MemoryImage::new();
        m.register(ArrayId(0), 4);
        assert_eq!(m.read(ArrayId(0), 0), Scalar::ZERO);
        m.write(ArrayId(0), 2, Scalar::Float(1.5));
        assert_eq!(m.read(ArrayId(0), 2), Scalar::Float(1.5));
        assert_eq!(m.len_of(ArrayId(0)), 4);
        assert!(m.contains(ArrayId(0)));
        assert!(!m.contains(ArrayId(1)));
    }

    #[test]
    fn register_with_contents() {
        let mut m = MemoryImage::new();
        m.register_with(ArrayId(1), vec![Scalar::Int(1), Scalar::Int(2)]);
        assert_eq!(m.read(ArrayId(1), 1), Scalar::Int(2));
        assert_eq!(m.contents(ArrayId(1)), vec![Scalar::Int(1), Scalar::Int(2)]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut m = MemoryImage::new();
        m.register(ArrayId(0), 1);
        m.register(ArrayId(0), 1);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_read_panics() {
        MemoryImage::new().read(ArrayId(0), 0);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut m = MemoryImage::new();
        m.register(ArrayId(0), 3);
        m.register(ArrayId(1), 2);
        m.write(ArrayId(0), 0, Scalar::Int(10));
        let backup = m.snapshot(&[ArrayId(0)]);
        assert_eq!(backup.element_count(), 3);
        assert_eq!(backup.arrays().collect::<Vec<_>>(), vec![ArrayId(0)]);

        // Corrupt both arrays; restore only fixes the captured one.
        m.write(ArrayId(0), 0, Scalar::Int(-1));
        m.write(ArrayId(1), 0, Scalar::Int(-1));
        m.restore(&backup);
        assert_eq!(m.read(ArrayId(0), 0), Scalar::Int(10));
        assert_eq!(m.read(ArrayId(1), 0), Scalar::Int(-1));
    }

    #[test]
    fn same_contents_compares_selected_arrays() {
        let mut a = MemoryImage::new();
        let mut b = MemoryImage::new();
        for m in [&mut a, &mut b] {
            m.register(ArrayId(0), 2);
            m.register(ArrayId(1), 2);
        }
        a.write(ArrayId(1), 0, Scalar::Int(5));
        assert!(a.same_contents(&b, &[ArrayId(0)]));
        assert!(!a.same_contents(&b, &[ArrayId(0), ArrayId(1)]));
    }

    #[test]
    fn set_contents_replaces() {
        let mut m = MemoryImage::new();
        m.register(ArrayId(0), 2);
        m.set_contents(ArrayId(0), vec![Scalar::Int(1), Scalar::Int(2)]);
        assert_eq!(m.read(ArrayId(0), 1), Scalar::Int(2));
    }

    #[test]
    fn array_ids_sorted() {
        let mut m = MemoryImage::new();
        m.register(ArrayId(5), 1);
        m.register(ArrayId(1), 1);
        assert_eq!(m.array_ids(), vec![ArrayId(1), ArrayId(5)]);
    }

    #[test]
    fn mem_oracle_impl_delegates() {
        let mut m = MemoryImage::new();
        m.register(ArrayId(0), 1);
        let oracle: &mut dyn MemOracle = &mut m;
        oracle.write(ArrayId(0), 0, Scalar::Int(9));
        assert_eq!(oracle.read(ArrayId(0), 0), Scalar::Int(9));
    }
}
