#![warn(missing_docs)]

//! # specrt-mem
//!
//! The NUMA memory system of the simulated CC-NUMA multiprocessor.
//!
//! Responsibilities:
//!
//! * a flat **physical address space** carved into 64-byte cache lines and
//!   4-KiB pages ([`addr`]);
//! * **page placement**: "the pages of workload data are allocated
//!   round-robin across the different memory modules" (paper §5.2), plus
//!   node-local placement for private copies and shadow arrays ([`numa`]);
//! * **array layouts**: each logical [`ArrayId`] maps to a contiguous
//!   physical extent with a 4- or 8-byte element size; the reverse map from
//!   a physical address to `(array, element)` is what the paper's directory
//!   *translation table* performs in hardware (§4.2) ([`layout`]);
//! * the **functional memory image**: current scalar value of every array
//!   element, with snapshot/restore used for speculative backup ([`image`]).
//!
//! [`ArrayId`]: specrt_ir::ArrayId

pub mod addr;
pub mod image;
pub mod layout;
pub mod numa;

pub use addr::{LineAddr, NodeId, PAddr, PageAddr, ProcId, LINE_BYTES, PAGE_BYTES};
pub use image::{ArrayBackup, MemoryImage};
pub use layout::{AddressMap, ArrayLayout, ElemSize};
pub use numa::{NumaAllocator, PlacementPolicy};
