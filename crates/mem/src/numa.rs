//! NUMA page placement.
//!
//! Global memory is distributed across nodes; the *home* of a page is the
//! node whose memory module holds it (and whose directory slice tracks its
//! lines). The paper allocates workload pages round-robin (§5.2), while
//! private copies of arrays under test and the software scheme's private
//! shadow arrays are placed in the local memory of the owning processor.

use std::collections::BTreeMap;

use specrt_ir::ArrayId;

use crate::addr::{NodeId, PAddr, PageAddr, PAGE_BYTES};
use crate::layout::{AddressMap, ArrayLayout, ElemSize};

/// Where the pages of an allocation should live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Spread pages round-robin across all nodes, starting from the
    /// allocator's rotating cursor (the paper's policy for shared data).
    RoundRobin,
    /// Put every page on one node (private copies, shadow arrays, and the
    /// `Serial` scenario where "all the data is allocated in the memory
    /// local to the processor", §6).
    Local(NodeId),
}

/// Bump allocator for the simulated physical address space with page→home
/// bookkeeping.
///
/// # Examples
///
/// ```
/// use specrt_ir::ArrayId;
/// use specrt_mem::{ElemSize, NumaAllocator, PlacementPolicy};
///
/// let mut numa = NumaAllocator::new(4);
/// let layout = numa.alloc_array(ArrayId(0), 1000, ElemSize::W8,
///                               PlacementPolicy::RoundRobin);
/// assert_eq!(layout.len, 1000);
/// // 8000 bytes = 2 pages, homed on nodes 0 and 1.
/// ```
#[derive(Debug, Clone)]
pub struct NumaAllocator {
    nodes: u32,
    next_page: u64,
    rr_cursor: u32,
    homes: BTreeMap<PageAddr, NodeId>,
    map: AddressMap,
}

impl NumaAllocator {
    /// Creates an allocator for a machine with `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: u32) -> Self {
        assert!(nodes > 0, "a machine needs at least one node");
        NumaAllocator {
            nodes,
            // Leave page 0 unused so that PAddr(0) is never a valid array
            // address; helps catch uninitialized-address bugs.
            next_page: 1,
            rr_cursor: 0,
            homes: BTreeMap::new(),
            map: AddressMap::new(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Allocates and registers an array of `len` elements of size `elem`.
    ///
    /// The allocation is page-aligned: arrays never share pages, so a page's
    /// home placement applies to exactly one array. Returns the layout (also
    /// queryable later via [`address_map`](Self::address_map)).
    pub fn alloc_array(
        &mut self,
        id: ArrayId,
        len: u64,
        elem: ElemSize,
        policy: PlacementPolicy,
    ) -> ArrayLayout {
        let bytes = (len * elem.bytes()).max(1);
        let pages = bytes.div_ceil(PAGE_BYTES);
        let first_page = self.next_page;
        self.next_page += pages;
        for p in 0..pages {
            let page = PageAddr(first_page + p);
            let home = match policy {
                PlacementPolicy::RoundRobin => {
                    let n = NodeId(self.rr_cursor);
                    self.rr_cursor = (self.rr_cursor + 1) % self.nodes;
                    n
                }
                PlacementPolicy::Local(node) => {
                    assert!(node.0 < self.nodes, "placement on nonexistent {node}");
                    node
                }
            };
            self.homes.insert(page, home);
        }
        let layout = ArrayLayout {
            id,
            base: PageAddr(first_page).base(),
            len,
            elem,
        };
        self.map.insert(layout);
        layout
    }

    /// Returns the allocator to its just-constructed state — page cursor
    /// back at 1, round-robin cursor at node 0, no pages homed, no arrays
    /// registered — keeping map capacity. Part of the machine-reuse path:
    /// a pooled [`crate::MemoryImage`]-backed machine re-allocates its
    /// arrays from scratch on every lease, so placements and addresses
    /// replay exactly as on a fresh allocator.
    pub fn reset(&mut self) {
        self.next_page = 1;
        self.rr_cursor = 0;
        self.homes.clear();
        self.map.clear();
    }

    /// The home node of the page containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was never allocated.
    pub fn home_of(&self, addr: PAddr) -> NodeId {
        *self
            .homes
            .get(&addr.page())
            .unwrap_or_else(|| panic!("address {addr} not allocated"))
    }

    /// The registered address map (forward and reverse array lookup).
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Total pages allocated so far (excluding the reserved page 0).
    pub fn pages_allocated(&self) -> u64 {
        self.next_page - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_pages() {
        let mut numa = NumaAllocator::new(4);
        // 3 pages worth of 8-byte elements: 1536 elements = 12288 bytes.
        let l = numa.alloc_array(ArrayId(0), 1536, ElemSize::W8, PlacementPolicy::RoundRobin);
        assert_eq!(numa.home_of(l.addr_of(0)), NodeId(0));
        assert_eq!(numa.home_of(l.addr_of(512)), NodeId(1)); // second page
        assert_eq!(numa.home_of(l.addr_of(1024)), NodeId(2)); // third page
                                                              // Next allocation continues the rotation at node 3.
        let l2 = numa.alloc_array(ArrayId(1), 10, ElemSize::W4, PlacementPolicy::RoundRobin);
        assert_eq!(numa.home_of(l2.addr_of(0)), NodeId(3));
    }

    #[test]
    fn local_placement_pins_pages() {
        let mut numa = NumaAllocator::new(4);
        let l = numa.alloc_array(
            ArrayId(0),
            5000,
            ElemSize::W8,
            PlacementPolicy::Local(NodeId(2)),
        );
        for idx in [0u64, 1000, 4999] {
            assert_eq!(numa.home_of(l.addr_of(idx)), NodeId(2));
        }
    }

    #[test]
    fn arrays_do_not_share_pages() {
        let mut numa = NumaAllocator::new(2);
        let a = numa.alloc_array(ArrayId(0), 1, ElemSize::W4, PlacementPolicy::RoundRobin);
        let b = numa.alloc_array(ArrayId(1), 1, ElemSize::W4, PlacementPolicy::RoundRobin);
        assert_ne!(a.base.page(), b.base.page());
    }

    #[test]
    fn page_zero_reserved() {
        let mut numa = NumaAllocator::new(2);
        let a = numa.alloc_array(ArrayId(0), 1, ElemSize::W4, PlacementPolicy::RoundRobin);
        assert!(a.base.0 >= PAGE_BYTES);
    }

    #[test]
    fn address_map_is_registered() {
        let mut numa = NumaAllocator::new(2);
        let l = numa.alloc_array(ArrayId(7), 100, ElemSize::W8, PlacementPolicy::RoundRobin);
        assert_eq!(
            numa.address_map().locate(l.addr_of(42)),
            Some((ArrayId(7), 42))
        );
        assert_eq!(numa.pages_allocated(), 1);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn unallocated_home_panics() {
        NumaAllocator::new(2).home_of(PAddr(123456789));
    }

    #[test]
    #[should_panic(expected = "nonexistent")]
    fn local_placement_validates_node() {
        let mut numa = NumaAllocator::new(2);
        numa.alloc_array(
            ArrayId(0),
            1,
            ElemSize::W4,
            PlacementPolicy::Local(NodeId(9)),
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        NumaAllocator::new(0);
    }

    #[test]
    fn zero_length_array_still_allocates_a_page() {
        let mut numa = NumaAllocator::new(2);
        let l = numa.alloc_array(ArrayId(0), 0, ElemSize::W8, PlacementPolicy::RoundRobin);
        assert_eq!(l.len, 0);
        assert_eq!(numa.pages_allocated(), 1);
    }
}
