//! Array layouts and the physical-address ⇄ element map.
//!
//! The paper's directory hardware contains a *translation table* loaded "at
//! the beginning of the program with information about the arrays under test
//! allocated in the memory of that node: its physical address boundaries,
//! its data type, and a pointer to the beginning of its access bits"
//! (§4.2). [`AddressMap`] is the software model of exactly that table, plus
//! the forward map used when loop bodies index arrays.

use std::collections::BTreeMap;
use std::fmt;

use specrt_ir::ArrayId;

use crate::addr::{LineAddr, PAddr, LINE_BYTES};

/// Element size of an array: the paper's workloads use 4-byte and 8-byte
/// elements ("the array elements are 4 bytes" / "8 bytes", §5.2), and access
/// bits are kept **per element**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemSize {
    /// 4-byte elements (single-precision / 32-bit integers).
    W4,
    /// 8-byte elements (double-precision / 64-bit integers).
    W8,
}

impl ElemSize {
    /// Size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            ElemSize::W4 => 4,
            ElemSize::W8 => 8,
        }
    }

    /// Elements per 64-byte cache line.
    #[inline]
    pub fn per_line(self) -> u64 {
        LINE_BYTES / self.bytes()
    }
}

impl fmt::Display for ElemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// The physical placement of one logical array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayLayout {
    /// The logical array this layout describes.
    pub id: ArrayId,
    /// First byte of the array (line-aligned by the allocator).
    pub base: PAddr,
    /// Number of elements.
    pub len: u64,
    /// Element size.
    pub elem: ElemSize,
}

impl ArrayLayout {
    /// Physical address of element `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds — a functional-simulation bug, since
    /// IR execution validates indices against array lengths first.
    #[inline]
    pub fn addr_of(&self, idx: u64) -> PAddr {
        assert!(idx < self.len, "index {idx} out of bounds for {}", self.id);
        self.base.offset(idx * self.elem.bytes())
    }

    /// One past the last byte.
    #[inline]
    pub fn end(&self) -> PAddr {
        self.base.offset(self.len * self.elem.bytes())
    }

    /// Total size in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.len * self.elem.bytes()
    }

    /// Whether `addr` falls inside the array.
    #[inline]
    pub fn contains(&self, addr: PAddr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Element index containing `addr`, if inside the array.
    #[inline]
    pub fn elem_at(&self, addr: PAddr) -> Option<u64> {
        if self.contains(addr) {
            Some((addr.0 - self.base.0) / self.elem.bytes())
        } else {
            None
        }
    }

    /// The range of element indices that share the cache line `line`, if the
    /// line overlaps the array. Used when a whole line's access bits travel
    /// with a coherence transaction.
    pub fn elems_on_line(&self, line: LineAddr) -> Option<std::ops::Range<u64>> {
        let lo = line.base();
        let hi = lo.offset(LINE_BYTES);
        if hi <= self.base || lo >= self.end() {
            return None;
        }
        let first = if lo <= self.base {
            0
        } else {
            (lo.0 - self.base.0) / self.elem.bytes()
        };
        let last = ((hi.0.min(self.end().0)) - self.base.0).div_ceil(self.elem.bytes());
        Some(first..last)
    }

    /// Number of cache lines the array spans.
    pub fn line_count(&self) -> u64 {
        if self.len == 0 {
            return 0;
        }
        self.end().offset(LINE_BYTES - 1).line().0 - self.base.line().0
    }
}

/// Registry of all array layouts: forward (`ArrayId` → layout) and reverse
/// (`PAddr` → array + element) lookup.
///
/// The reverse lookup is the software model of the paper's directory
/// translation table.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    layouts: BTreeMap<ArrayId, ArrayLayout>,
    // base address -> id, for binary-search reverse lookup.
    by_base: BTreeMap<u64, ArrayId>,
}

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        AddressMap::default()
    }

    /// Registers a layout.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered or the extent overlaps an
    /// existing array — allocation bugs we want to fail fast on.
    pub fn insert(&mut self, layout: ArrayLayout) {
        assert!(
            !self.layouts.contains_key(&layout.id),
            "array {} registered twice",
            layout.id
        );
        if let Some((_, prev_id)) = self.by_base.range(..=layout.base.0).next_back() {
            let prev = self.layouts[prev_id];
            assert!(
                prev.end() <= layout.base || layout.len == 0,
                "array {} overlaps {}",
                layout.id,
                prev.id
            );
        }
        if let Some((_, next_id)) = self.by_base.range(layout.base.0 + 1..).next() {
            let next = self.layouts[next_id];
            assert!(
                layout.end() <= next.base,
                "array {} overlaps {}",
                layout.id,
                next.id
            );
        }
        self.by_base.insert(layout.base.0, layout.id);
        self.layouts.insert(layout.id, layout);
    }

    /// Layout of `id`, if registered.
    pub fn get(&self, id: ArrayId) -> Option<&ArrayLayout> {
        self.layouts.get(&id)
    }

    /// Layout of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never registered.
    pub fn layout(&self, id: ArrayId) -> &ArrayLayout {
        self.get(id)
            .unwrap_or_else(|| panic!("array {id} not registered"))
    }

    /// Reverse lookup: which array and element does `addr` belong to?
    pub fn locate(&self, addr: PAddr) -> Option<(ArrayId, u64)> {
        let (_, id) = self.by_base.range(..=addr.0).next_back()?;
        let layout = self.layouts[id];
        layout.elem_at(addr).map(|e| (*id, e))
    }

    /// Iterates over all registered layouts in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ArrayLayout> + '_ {
        self.layouts.values()
    }

    /// Number of registered arrays.
    pub fn len(&self) -> usize {
        self.layouts.len()
    }

    /// Whether no arrays are registered.
    pub fn is_empty(&self) -> bool {
        self.layouts.is_empty()
    }

    /// Forgets every registration (allocator reuse across requests).
    pub fn clear(&mut self) {
        self.layouts.clear();
        self.by_base.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(id: u32, base: u64, len: u64, elem: ElemSize) -> ArrayLayout {
        ArrayLayout {
            id: ArrayId(id),
            base: PAddr(base),
            len,
            elem,
        }
    }

    #[test]
    fn elem_sizes() {
        assert_eq!(ElemSize::W4.bytes(), 4);
        assert_eq!(ElemSize::W8.bytes(), 8);
        assert_eq!(ElemSize::W4.per_line(), 16);
        assert_eq!(ElemSize::W8.per_line(), 8);
    }

    #[test]
    fn addressing_forward_and_back() {
        let l = layout(0, 4096, 100, ElemSize::W8);
        assert_eq!(l.addr_of(0), PAddr(4096));
        assert_eq!(l.addr_of(3), PAddr(4096 + 24));
        assert_eq!(l.elem_at(PAddr(4096 + 24)), Some(3));
        assert_eq!(l.elem_at(PAddr(4096 + 27)), Some(3)); // mid-element
        assert_eq!(l.elem_at(PAddr(4095)), None);
        assert_eq!(l.elem_at(l.end()), None);
        assert_eq!(l.bytes(), 800);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn addr_of_out_of_bounds_panics() {
        layout(0, 0, 10, ElemSize::W4).addr_of(10);
    }

    #[test]
    fn elems_on_line_full_and_partial() {
        // Array of 8-byte elements starting mid-line is impossible via the
        // allocator, but base 4096 is line-aligned; line 64 covers elems 0..8.
        let l = layout(0, 4096, 20, ElemSize::W8);
        assert_eq!(l.elems_on_line(PAddr(4096).line()), Some(0..8));
        assert_eq!(l.elems_on_line(PAddr(4096 + 64).line()), Some(8..16));
        // Third line only partially covered (elements 16..20).
        assert_eq!(l.elems_on_line(PAddr(4096 + 128).line()), Some(16..20));
        // Unrelated line.
        assert_eq!(l.elems_on_line(PAddr(0).line()), None);
    }

    #[test]
    fn line_count_rounds_up() {
        assert_eq!(layout(0, 4096, 8, ElemSize::W8).line_count(), 1);
        assert_eq!(layout(0, 4096, 9, ElemSize::W8).line_count(), 2);
        assert_eq!(layout(0, 4096, 0, ElemSize::W8).line_count(), 0);
    }

    #[test]
    fn map_locates_addresses() {
        let mut m = AddressMap::new();
        m.insert(layout(0, 0, 16, ElemSize::W4)); // bytes 0..64
        m.insert(layout(1, 64, 8, ElemSize::W8)); // bytes 64..128
        assert_eq!(m.locate(PAddr(4)), Some((ArrayId(0), 1)));
        assert_eq!(m.locate(PAddr(64)), Some((ArrayId(1), 0)));
        assert_eq!(m.locate(PAddr(127)), Some((ArrayId(1), 7)));
        assert_eq!(m.locate(PAddr(128)), None);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_id_panics() {
        let mut m = AddressMap::new();
        m.insert(layout(0, 0, 4, ElemSize::W4));
        m.insert(layout(0, 4096, 4, ElemSize::W4));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_panics() {
        let mut m = AddressMap::new();
        m.insert(layout(0, 0, 16, ElemSize::W8)); // 0..128
        m.insert(layout(1, 64, 4, ElemSize::W4));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_from_below_panics() {
        let mut m = AddressMap::new();
        m.insert(layout(0, 4096, 16, ElemSize::W8));
        m.insert(layout(1, 4000, 100, ElemSize::W8)); // runs into array 0
    }

    #[test]
    fn layout_accessor_panics_on_missing() {
        let m = AddressMap::new();
        assert!(m.get(ArrayId(9)).is_none());
        let r = std::panic::catch_unwind(|| m.layout(ArrayId(9)));
        assert!(r.is_err());
    }
}
