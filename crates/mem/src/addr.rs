//! Physical addresses, cache lines, pages, and machine-entity ids.

use std::fmt;

/// Bytes per cache line (both cache levels use 64-byte lines, paper §5.1).
pub const LINE_BYTES: u64 = 64;

/// Bytes per page (placement granularity for NUMA allocation).
pub const PAGE_BYTES: u64 = 4096;

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(pub u64);

impl PAddr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The page containing this address.
    #[inline]
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }

    /// Byte offset within the line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// Adds a byte displacement.
    #[inline]
    pub fn offset(self, bytes: u64) -> PAddr {
        PAddr(self.0 + bytes)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A cache-line number (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// First byte address of the line.
    #[inline]
    pub fn base(self) -> PAddr {
        PAddr(self.0 * LINE_BYTES)
    }

    /// The page containing this line.
    #[inline]
    pub fn page(self) -> PageAddr {
        self.base().page()
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A page number (byte address divided by [`PAGE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(pub u64);

impl PageAddr {
    /// First byte address of the page.
    #[inline]
    pub fn base(self) -> PAddr {
        PAddr(self.0 * PAGE_BYTES)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

/// A NUMA node id. Each node holds one processor, its caches, a slice of
/// global memory, and the corresponding slice of the directory (paper §5.1:
/// "each node has part of the global memory and the corresponding section of
/// the directory").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A processor id. The modelled machine is one processor per node, so
/// `ProcId(i)` lives on `NodeId(i)`; the two types are kept distinct so that
/// directory code cannot accidentally treat a sharer id as a home node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The node this processor resides on (one processor per node).
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_extraction() {
        let a = PAddr(4096 + 64 * 3 + 17);
        assert_eq!(a.line(), LineAddr((4096 + 192) / 64));
        assert_eq!(a.page(), PageAddr(1));
        assert_eq!(a.line_offset(), 17);
    }

    #[test]
    fn line_base_round_trips() {
        let l = PAddr(1000).line();
        assert_eq!(l.base().line(), l);
        assert_eq!(l.base().line_offset(), 0);
    }

    #[test]
    fn page_of_line_matches_page_of_addr() {
        let a = PAddr(3 * PAGE_BYTES + 100);
        assert_eq!(a.line().page(), a.page());
        assert_eq!(a.page().base(), PAddr(3 * PAGE_BYTES));
    }

    #[test]
    fn offsets_accumulate() {
        assert_eq!(PAddr(10).offset(22), PAddr(32));
    }

    #[test]
    fn proc_maps_to_same_numbered_node() {
        assert_eq!(ProcId(5).node(), NodeId(5));
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(PAddr(255).to_string(), "0xff");
        assert!(LineAddr(4).to_string().starts_with('L'));
        assert!(PageAddr(4).to_string().starts_with('P'));
        assert_eq!(NodeId(2).to_string(), "node2");
        assert_eq!(ProcId(2).to_string(), "cpu2");
    }
}
