//! A persistent worker pool with two priority lanes and a bounded queue.
//!
//! [`crate::par_map`] is fork-join: it spins workers up for one call and
//! tears them down after. A long-running server cannot afford that — it
//! needs threads that outlive any single request, a queue that *rejects*
//! work when full (backpressure beats unbounded memory growth), and a way
//! to keep short interactive queries responsive while a batch sweep is
//! queued behind them. [`WorkerPool`] provides exactly that:
//!
//! * two FIFO lanes — [`Lane::Interactive`] is always drained before
//!   [`Lane::Batch`]; within a lane, submission order is preserved;
//! * each lane is bounded at `queue_depth`; a full lane fails the submit
//!   with [`QueueFull`] immediately (the caller turns that into a `busy`
//!   response — nothing blocks, nothing buffers unboundedly);
//! * a panicking job is caught and counted; the worker survives. The
//!   submitter observes the panic through whatever channel the job was
//!   going to answer on (a dropped sender), keeping one poisoned request
//!   from taking the whole service down.
//!
//! Dropping the pool shuts it down: queued-but-unstarted jobs are
//! abandoned, workers finish their current job and exit, and the drop
//! joins them all.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Scheduling class of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Latency-sensitive: drained strictly before any batch work.
    Interactive,
    /// Throughput work: runs when no interactive job is queued.
    Batch,
}

impl Lane {
    /// Stable lower-case name (wire protocol + metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Batch => "batch",
        }
    }

    /// Parses [`Lane::name`] back. Unknown strings are `None`.
    pub fn parse(s: &str) -> Option<Lane> {
        match s {
            "interactive" => Some(Lane::Interactive),
            "batch" => Some(Lane::Batch),
            _ => None,
        }
    }
}

/// Submission failed because the lane's queue is at capacity. Contains the
/// rejected lane; the job itself is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull(pub Lane);

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} queue full", self.0.name())
    }
}

impl std::error::Error for QueueFull {}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queues {
    interactive: VecDeque<Job>,
    batch: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queues: Mutex<Queues>,
    /// Signals workers: a job arrived or shutdown began.
    ready: Condvar,
    depth: usize,
    executed: AtomicU64,
    panicked: AtomicU64,
}

/// The persistent two-lane pool. See the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least 1) sharing two lanes bounded at
    /// `queue_depth` jobs each (at least 1).
    pub fn new(workers: usize, queue_depth: usize) -> WorkerPool {
        let workers = workers.max(1);
        let depth = queue_depth.max(1);
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            depth,
            executed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("specrt-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Enqueues `job` on `lane`. Returns [`QueueFull`] without blocking if
    /// the lane is at capacity or the pool is shutting down.
    pub fn submit<F>(&self, lane: Lane, job: F) -> Result<(), QueueFull>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut q = self.shared.queues.lock().expect("pool lock");
        if q.shutdown {
            return Err(QueueFull(lane));
        }
        let queue = match lane {
            Lane::Interactive => &mut q.interactive,
            Lane::Batch => &mut q.batch,
        };
        if queue.len() >= self.shared.depth {
            return Err(QueueFull(lane));
        }
        queue.push_back(Box::new(job));
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Current `(interactive, batch)` queue depths (queued, not running).
    pub fn queue_depths(&self) -> (usize, usize) {
        let q = self.shared.queues.lock().expect("pool lock");
        (q.interactive.len(), q.batch.len())
    }

    /// Per-lane capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.depth
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs completed (including panicked ones) since construction.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Jobs that panicked (worker survived) since construction.
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queues.lock().expect("pool lock");
            q.shutdown = true;
            // Unstarted work is abandoned; in-flight responses surface the
            // shutdown to their submitters via dropped channels.
            q.interactive.clear();
            q.batch.clear();
        }
        self.shared.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queues.lock().expect("pool lock");
            loop {
                if let Some(job) = q.interactive.pop_front() {
                    break job;
                }
                if let Some(job) = q.batch.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.ready.wait(q).expect("pool wait");
            }
        };
        let _prof = specrt_prof::scope("pool.job");
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
        }
        shared.executed.fetch_add(1, Ordering::Relaxed);
        specrt_prof::flush_thread();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn lane_names_round_trip() {
        for lane in [Lane::Interactive, Lane::Batch] {
            assert_eq!(Lane::parse(lane.name()), Some(lane));
        }
        assert_eq!(Lane::parse("bulk"), None);
    }

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..6u32 {
            let tx = tx.clone();
            pool.submit(Lane::Batch, move || tx.send(i).unwrap())
                .unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(pool.executed(), 6);
        assert_eq!(pool.panicked(), 0);
    }

    #[test]
    fn full_lane_rejects_without_blocking() {
        let pool = WorkerPool::new(1, 2);
        // Wedge the single worker so queued jobs stay queued.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(Lane::Interactive, move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap(); // worker is now wedged
        pool.submit(Lane::Batch, || {}).unwrap();
        pool.submit(Lane::Batch, || {}).unwrap();
        assert_eq!(pool.submit(Lane::Batch, || {}), Err(QueueFull(Lane::Batch)));
        // The other lane still has room.
        pool.submit(Lane::Interactive, || {}).unwrap();
        assert_eq!(pool.queue_depths(), (1, 2));
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn interactive_preempts_queued_batch_work() {
        let pool = WorkerPool::new(1, 8);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(Lane::Batch, move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();
        // Queue batch first, interactive second; the single worker must
        // still run the interactive job first.
        let (order_tx, order_rx) = mpsc::channel();
        let t1 = order_tx.clone();
        pool.submit(Lane::Batch, move || t1.send("batch").unwrap())
            .unwrap();
        let t2 = order_tx.clone();
        pool.submit(Lane::Interactive, move || t2.send("interactive").unwrap())
            .unwrap();
        drop(order_tx);
        gate_tx.send(()).unwrap();
        assert_eq!(order_rx.recv().unwrap(), "interactive");
        assert_eq!(order_rx.recv().unwrap(), "batch");
    }

    #[test]
    fn panicking_job_leaves_worker_alive() {
        let pool = WorkerPool::new(1, 8);
        pool.submit(Lane::Batch, || panic!("job bug")).unwrap();
        let (tx, rx) = mpsc::channel();
        pool.submit(Lane::Batch, move || tx.send(7u32).unwrap())
            .unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(7));
        assert_eq!(pool.panicked(), 1);
    }

    #[test]
    fn drop_joins_and_abandons_queued_work() {
        let pool = WorkerPool::new(1, 8);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(Lane::Batch, move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();
        let (tx, rx) = mpsc::channel::<u32>();
        pool.submit(Lane::Batch, move || tx.send(1).unwrap())
            .unwrap();
        gate_tx.send(()).unwrap();
        drop(pool); // must not hang; the queued job may or may not run
                    // Either the job ran before shutdown cleared the queue, or its
                    // sender was dropped: both resolve the channel promptly.
        let _ = rx.recv_timeout(Duration::from_secs(10));
    }
}
