#![warn(missing_docs)]

//! # specrt-par
//!
//! A zero-dependency, deterministic fork-join primitive for the workloads
//! this repository is full of: *many independent, deterministic simulation
//! cases* (fuzz cases, interleaving scripts, experiment grid points) whose
//! results must come back **in input order** no matter how many worker
//! threads ran them.
//!
//! The design is a chunked work queue over [`std::thread::scope`]:
//!
//! * the caller hands over a slice of items and a `Fn(index, &item) -> R`;
//! * `jobs` scoped workers claim chunks of indices from one shared atomic
//!   cursor (dynamic load balancing — a slow case does not stall the rest
//!   of its chunk-mates' workers);
//! * each worker keeps its `(index, result)` pairs locally — no locks on
//!   the result path — and the caller reassembles them into a `Vec<R>`
//!   indexed exactly like the input.
//!
//! **Determinism guarantee:** for a pure `f`, `par_map(j, items, f)`
//! returns the same `Vec<R>` for every `j ≥ 1`, including `j = 1` which
//! runs inline without spawning. Thread scheduling only decides *who*
//! computes an item, never *which* items are computed or how results are
//! ordered. Anything order-dependent (stat merging, failure reporting) must
//! therefore happen in the caller, on the returned in-order vector — which
//! is what `specrt-check` and `specrt-core` do.
//!
//! Worker panics propagate to the caller with their original payload, so
//! `should_panic` tests and assertion failures inside cases behave exactly
//! as they do single-threaded.
//!
//! No rayon, no crossbeam: builds are offline and the std scoped-thread
//! pool is ~60 lines.
//!
//! ## Observability
//!
//! Each worker is labelled `worker-N` for `specrt-prof` and wraps its
//! lifecycle in host-profile spans — `par.worker` (whole lifetime),
//! `par.claim` (queue operations) and `par.case` (running one item) — so
//! an opt-in `--profile` run yields a per-worker timeline and utilization
//! fractions. [`par_map_telemetry`] additionally returns a
//! [`PoolTelemetry`] of pure *counts* (workers, chunk claims, per-worker
//! items). The count of items, workers and chunk claims is deterministic;
//! *which* worker claimed an item is scheduling-dependent, which is why
//! telemetry rides the opt-in profile channel and never the gated
//! deterministic outputs.

pub mod pool;

pub use pool::{Lane, QueueFull, WorkerPool};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// The worker count "auto" resolves to: the host's available parallelism
/// (falling back to 1 where it cannot be queried).
pub fn default_jobs() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `--jobs` CLI value: a positive integer, or `0` meaning "auto"
/// ([`default_jobs`]). Returns `None` for non-numeric input.
pub fn parse_jobs(s: &str) -> Option<usize> {
    match s.parse::<usize>().ok()? {
        0 => Some(default_jobs()),
        n => Some(n),
    }
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning results
/// in item order. `jobs <= 1` (or a single item) runs inline on the calling
/// thread — the `-j1` reference execution.
///
/// `f` receives `(index, &item)` so callers can label work or index into
/// sibling arrays without cloning context into every item.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_chunked(jobs, 1, items, f)
}

/// [`par_map`] with an explicit claim granularity: workers grab `chunk`
/// consecutive indices per queue operation. Larger chunks amortize the
/// (already tiny) atomic claim for very cheap items; `chunk = 1` maximizes
/// load balance for coarse items like whole simulation runs.
///
/// # Panics
///
/// Panics if `chunk == 0`; re-raises the first worker panic otherwise.
pub fn par_map_chunked<T, R, F>(jobs: usize, chunk: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_telemetry(jobs, chunk, items, f).0
}

/// Worker-pool counters from one [`par_map_telemetry`] run.
///
/// `workers`, `chunk`, `items` and `chunks` are deterministic functions of
/// the call arguments. `claimed` (items run per worker) depends on thread
/// scheduling when `workers > 1`, so it belongs to the opt-in profile /
/// metrics channel, never to gated deterministic outputs. Its *sum* is
/// always `items`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolTelemetry {
    /// Worker threads actually used, after clamping `jobs` to the work
    /// available (`1` means the pool ran inline on the calling thread).
    pub workers: usize,
    /// Claim granularity: consecutive indices grabbed per queue operation.
    pub chunk: usize,
    /// Total items mapped.
    pub items: usize,
    /// Queue operations that found work: `ceil(items / chunk)`.
    pub chunks: usize,
    /// Items executed by each worker, indexed by worker id
    /// (`claimed.len() == workers`; sums to `items`).
    pub claimed: Vec<u64>,
}

impl PoolTelemetry {
    /// Load imbalance as `max(claimed) - min(claimed)`; `0` for a perfectly
    /// even split (and always `0` when `workers <= 1`).
    pub fn imbalance(&self) -> u64 {
        match (self.claimed.iter().max(), self.claimed.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }
}

/// [`par_map_chunked`] that also returns [`PoolTelemetry`] counters and
/// instruments workers with `specrt-prof` spans (`par.worker`, `par.claim`,
/// `par.case`) under per-worker `worker-N` labels.
///
/// The result vector is bit-for-bit identical to [`par_map_chunked`] for
/// any pure `f`; only the telemetry side channel differs across `jobs`.
///
/// # Panics
///
/// Panics if `chunk == 0`; re-raises the first worker panic otherwise.
pub fn par_map_telemetry<T, R, F>(
    jobs: usize,
    chunk: usize,
    items: &[T],
    f: F,
) -> (Vec<R>, PoolTelemetry)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let jobs = jobs.clamp(1, items.len().div_ceil(chunk).max(1));
    let telemetry = |claimed: Vec<u64>| PoolTelemetry {
        workers: jobs,
        chunk,
        items: items.len(),
        chunks: items.len().div_ceil(chunk),
        claimed,
    };
    if jobs <= 1 {
        let _worker = specrt_prof::scope("par.worker");
        let out = items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let _case = specrt_prof::scope("par.case");
                f(i, t)
            })
            .collect();
        return (out, telemetry(vec![items.len() as u64]));
    }
    let next = AtomicUsize::new(0);
    let next = &next;
    let f = &f;
    let parts: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                s.spawn(move || {
                    specrt_prof::set_thread_label(&format!("worker-{w}"));
                    let out = {
                        let _worker = specrt_prof::scope("par.worker");
                        let mut out = Vec::new();
                        loop {
                            let start = {
                                let _claim = specrt_prof::scope("par.claim");
                                next.fetch_add(chunk, Ordering::Relaxed)
                            };
                            if start >= items.len() {
                                break;
                            }
                            let end = (start + chunk).min(items.len());
                            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                let _case = specrt_prof::scope("par.case");
                                out.push((i, f(i, item)));
                            }
                        }
                        out
                    };
                    // Scoped joins can beat TLS destructors; flush by hand so
                    // this worker's spans reach the next take_report().
                    specrt_prof::flush_thread();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let claimed: Vec<u64> = parts.iter().map(|p| p.len() as u64).collect();
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in parts.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    let out = slots
        .into_iter()
        .map(|r| r.expect("work queue claims every index exactly once"))
        .collect();
    (out, telemetry(claimed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_one_runs_inline() {
        let items: Vec<u64> = (0..10).collect();
        let got = par_map(1, &items, |i, &x| x * 2 + i as u64);
        let want: Vec<u64> = (0..10).map(|x| x * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn results_come_back_in_input_order_for_any_job_count() {
        // Uneven work per item so fast items finish out of order.
        let items: Vec<u64> = (0..97).collect();
        let work = |_: usize, &x: &u64| {
            let mut acc = x;
            for _ in 0..(x % 13) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        };
        let serial = par_map(1, &items, work);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(par_map(jobs, &items, work), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn chunked_claims_cover_everything() {
        let items: Vec<usize> = (0..41).collect();
        for chunk in [1, 2, 7, 40, 41, 100] {
            let got = par_map_chunked(4, chunk, &items, |i, &x| i + x);
            let want: Vec<usize> = (0..41).map(|x| 2 * x).collect();
            assert_eq!(got, want, "chunk={chunk}");
        }
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(16, &items, |_, &x| x + 1), vec![2, 3, 4]);
        assert_eq!(par_map(16, &[] as &[u32], |_, &x| x), Vec::<u32>::new());
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..20).collect();
        let r = std::panic::catch_unwind(|| {
            par_map(4, &items, |_, &x| {
                assert!(x != 13, "unlucky item");
                x
            })
        });
        assert!(r.is_err(), "panic must reach the caller");
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        par_map_chunked(2, 0, &[1], |_, &x: &i32| x);
    }

    #[test]
    fn parse_jobs_spellings() {
        assert_eq!(parse_jobs("3"), Some(3));
        assert_eq!(parse_jobs("0"), Some(default_jobs()));
        assert_eq!(parse_jobs("auto"), None);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn telemetry_counts_are_consistent() {
        let items: Vec<u64> = (0..53).collect();
        for (jobs, chunk) in [(1, 1), (4, 1), (4, 7), (3, 20), (64, 1)] {
            let (got, t) = par_map_telemetry(jobs, chunk, &items, |i, &x| x + i as u64);
            let want: Vec<u64> = (0..53).map(|x| 2 * x).collect();
            assert_eq!(got, want, "jobs={jobs} chunk={chunk}");
            assert_eq!(t.chunk, chunk);
            assert_eq!(t.items, items.len());
            assert_eq!(t.chunks, items.len().div_ceil(chunk));
            assert!(t.workers >= 1 && t.workers <= jobs.max(1));
            assert_eq!(t.claimed.len(), t.workers);
            assert_eq!(
                t.claimed.iter().sum::<u64>(),
                items.len() as u64,
                "every item claimed exactly once (jobs={jobs} chunk={chunk})"
            );
        }
    }

    #[test]
    fn telemetry_inline_path_claims_everything_on_one_worker() {
        let items = [1u32, 2, 3];
        let (_, t) = par_map_telemetry(1, 1, &items, |_, &x| x);
        assert_eq!(t.workers, 1);
        assert_eq!(t.claimed, vec![3]);
        assert_eq!(t.imbalance(), 0);
        let (_, empty) = par_map_telemetry(8, 1, &[] as &[u32], |_, &x| x);
        assert_eq!(empty.workers, 1);
        assert_eq!(empty.claimed, vec![0]);
        assert_eq!(empty.chunks, 0);
    }
}
