#![warn(missing_docs)]

//! # specrt-ir
//!
//! A miniature register IR for loop bodies.
//!
//! The paper's workloads are Fortran loops compiled by Polaris; the software
//! LRPD baseline works by having the compiler *insert marking instructions*
//! around every access to an array under test (Section 2.2.4). To reproduce
//! that faithfully we represent each loop body as a small program in this IR:
//!
//! * the simulated processors interpret IR instructions one per cycle (plus
//!   memory latency for loads/stores), so instruction overhead is modelled
//!   exactly like the paper models it;
//! * the LRPD instrumentation in `specrt-lrpd` is a *real IR-to-IR pass*
//!   that inserts shadow-array marking code, exactly mirroring what Polaris
//!   emits.
//!
//! The IR is deliberately tiny: scalar registers holding [`Scalar`] values,
//! loads/stores indexed into named arrays, ALU ops, and forward/backward
//! branches within the body of one iteration.
//!
//! ## Example
//!
//! Build `A[K[i]] = A[K[i]] + 1.0` — the classic subscripted-subscript
//! pattern from Figure 1(c) of the paper:
//!
//! ```
//! use specrt_ir::{ArrayId, BinOp, Operand, ProgramBuilder};
//!
//! let a = ArrayId(0);
//! let k = ArrayId(1);
//! let mut b = ProgramBuilder::new();
//! let idx = b.load(k, Operand::Iter);            // idx = K[i]
//! let v = b.load(a, Operand::Reg(idx));          // v = A[idx]
//! let v2 = b.binop(BinOp::FAdd, Operand::Reg(v), Operand::ImmF(1.0));
//! b.store(a, Operand::Reg(idx), Operand::Reg(v2)); // A[idx] = v + 1.0
//! let prog = b.build().expect("valid program");
//! assert_eq!(prog.len(), 4);
//! ```

pub mod exec;
pub mod instr;
pub mod program;
pub mod scalar;

pub use exec::{
    execute_iteration, trace_iteration, AccessKind, ExecError, MapMemory, MemOracle, TraceEntry,
};
pub use instr::{ArrayId, BinOp, Instr, Operand, Reg};
pub use program::{Program, ProgramBuilder, VerifyError};
pub use scalar::Scalar;
