//! Instruction set of the mini IR.

use std::fmt;

use crate::scalar::Scalar;

/// A virtual register index.
///
/// Programs may use up to 256 registers; the builder allocates them
/// sequentially. One IR instruction retires per processor cycle, so register
/// pressure does not affect timing — registers exist to thread data flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A logical array name.
///
/// The machine layer maps each `ArrayId` to a physical allocation (and, for
/// privatized arrays under test, to per-processor private copies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Value of a register.
    Reg(Reg),
    /// Integer immediate.
    ImmI(i64),
    /// Float immediate.
    ImmF(f64),
    /// The current *global* iteration number, 0-based. This is how loop
    /// bodies address `K(i)`-style index arrays, and how the LRPD marking
    /// code obtains the iteration stamp to write into shadow arrays.
    Iter,
    /// The executing processor's id (0-based). Used by processor-wise
    /// instrumentation and privatized-array addressing.
    ProcId,
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::ImmI(v) => write!(f, "#{v}"),
            Operand::ImmF(v) => write!(f, "#{v}f"),
            Operand::Iter => write!(f, "%iter"),
            Operand::ProcId => write!(f, "%proc"),
        }
    }
}

/// Binary ALU operations.
///
/// Integer ops (`Add`..`CmpNe`) require integer operands; float ops
/// (`FAdd`..`FDiv`) coerce integers. Comparison results are integer 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (truncating). Division by zero is an execution error.
    Div,
    /// Integer remainder. Remainder by zero is an execution error.
    Rem,
    /// Integer minimum.
    Min,
    /// Integer maximum.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (`a << (b & 63)`).
    Shl,
    /// Logical shift right (`(a as u64) >> (b & 63)`).
    Shr,
    /// Equality comparison → 0/1.
    CmpEq,
    /// Less-than comparison → 0/1.
    CmpLt,
    /// Less-or-equal comparison → 0/1.
    CmpLe,
    /// Inequality comparison → 0/1.
    CmpNe,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
}

impl BinOp {
    /// Applies the operation to two scalars.
    ///
    /// Returns `None` for integer division/remainder by zero (the machine
    /// turns this into a speculative-execution exception, which — per
    /// Section 2.2 — aborts the speculative loop and restarts it serially).
    pub fn apply(self, a: Scalar, b: Scalar) -> Option<Scalar> {
        use BinOp::*;
        Some(match self {
            Add => Scalar::Int(a.as_int().wrapping_add(b.as_int())),
            Sub => Scalar::Int(a.as_int().wrapping_sub(b.as_int())),
            Mul => Scalar::Int(a.as_int().wrapping_mul(b.as_int())),
            Div => {
                let d = b.as_int();
                if d == 0 {
                    return None;
                }
                Scalar::Int(a.as_int().wrapping_div(d))
            }
            Rem => {
                let d = b.as_int();
                if d == 0 {
                    return None;
                }
                Scalar::Int(a.as_int().wrapping_rem(d))
            }
            Min => Scalar::Int(a.as_int().min(b.as_int())),
            Max => Scalar::Int(a.as_int().max(b.as_int())),
            And => Scalar::Int(a.as_int() & b.as_int()),
            Or => Scalar::Int(a.as_int() | b.as_int()),
            Xor => Scalar::Int(a.as_int() ^ b.as_int()),
            Shl => Scalar::Int(a.as_int().wrapping_shl(b.as_int() as u32 & 63)),
            Shr => Scalar::Int(((a.as_int() as u64) >> (b.as_int() as u32 & 63)) as i64),
            CmpEq => Scalar::Int((a.as_int() == b.as_int()) as i64),
            CmpLt => Scalar::Int((a.as_int() < b.as_int()) as i64),
            CmpLe => Scalar::Int((a.as_int() <= b.as_int()) as i64),
            CmpNe => Scalar::Int((a.as_int() != b.as_int()) as i64),
            FAdd => Scalar::Float(a.as_float() + b.as_float()),
            FSub => Scalar::Float(a.as_float() - b.as_float()),
            FMul => Scalar::Float(a.as_float() * b.as_float()),
            FDiv => Scalar::Float(a.as_float() / b.as_float()),
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::CmpEq => "cmpeq",
            BinOp::CmpLt => "cmplt",
            BinOp::CmpLe => "cmple",
            BinOp::CmpNe => "cmpne",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        };
        f.write_str(s)
    }
}

/// One IR instruction.
///
/// Each instruction costs one busy cycle on the simulated processor, except
/// [`Instr::Compute`], which costs `n` cycles and stands for a block of pure
/// ALU work whose individual instructions we don't care to enumerate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// `n` cycles of pure computation (no memory traffic).
    Compute(u32),
    /// `dst = arr[idx]` — a memory load. `idx` must evaluate to a
    /// non-negative integer inside the array's bounds.
    Load {
        /// Destination register.
        dst: Reg,
        /// Array read from.
        arr: ArrayId,
        /// Element index.
        idx: Operand,
    },
    /// `arr[idx] = src` — a memory store.
    Store {
        /// Array written to.
        arr: ArrayId,
        /// Element index.
        idx: Operand,
        /// Value stored.
        src: Operand,
    },
    /// `dst = src` — register/immediate move.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op(a, b)`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Branch to absolute instruction index `target` if `cond` is zero.
    Bz {
        /// Condition operand.
        cond: Operand,
        /// Absolute target PC within the program.
        target: usize,
    },
    /// Branch to absolute instruction index `target` if `cond` is nonzero.
    Bnz {
        /// Condition operand.
        cond: Operand,
        /// Absolute target PC within the program.
        target: usize,
    },
    /// Unconditional branch.
    Jmp {
        /// Absolute target PC within the program.
        target: usize,
    },
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Compute(n) => write!(f, "compute {n}"),
            Instr::Load { dst, arr, idx } => write!(f, "{dst} = load {arr}[{idx}]"),
            Instr::Store { arr, idx, src } => write!(f, "store {arr}[{idx}] = {src}"),
            Instr::Mov { dst, src } => write!(f, "{dst} = {src}"),
            Instr::Bin { op, dst, a, b } => write!(f, "{dst} = {op} {a}, {b}"),
            Instr::Bz { cond, target } => write!(f, "bz {cond} -> {target}"),
            Instr::Bnz { cond, target } => write!(f, "bnz {cond} -> {target}"),
            Instr::Jmp { target } => write!(f, "jmp -> {target}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops() {
        assert_eq!(
            BinOp::Add.apply(Scalar::Int(2), Scalar::Int(3)),
            Some(Scalar::Int(5))
        );
        assert_eq!(
            BinOp::Rem.apply(Scalar::Int(7), Scalar::Int(3)),
            Some(Scalar::Int(1))
        );
        assert_eq!(
            BinOp::Min.apply(Scalar::Int(7), Scalar::Int(3)),
            Some(Scalar::Int(3))
        );
        assert_eq!(
            BinOp::Max.apply(Scalar::Int(7), Scalar::Int(3)),
            Some(Scalar::Int(7))
        );
    }

    #[test]
    fn shifts() {
        assert_eq!(
            BinOp::Shl.apply(Scalar::Int(1), Scalar::Int(6)),
            Some(Scalar::Int(64))
        );
        assert_eq!(
            BinOp::Shr.apply(Scalar::Int(640), Scalar::Int(6)),
            Some(Scalar::Int(10))
        );
        // Logical right shift of a negative value.
        assert_eq!(
            BinOp::Shr.apply(Scalar::Int(-1), Scalar::Int(63)),
            Some(Scalar::Int(1))
        );
    }

    #[test]
    fn comparisons_yield_01() {
        assert_eq!(
            BinOp::CmpLt.apply(Scalar::Int(1), Scalar::Int(2)),
            Some(Scalar::Int(1))
        );
        assert_eq!(
            BinOp::CmpEq.apply(Scalar::Int(1), Scalar::Int(2)),
            Some(Scalar::Int(0))
        );
        assert_eq!(
            BinOp::CmpNe.apply(Scalar::Int(1), Scalar::Int(2)),
            Some(Scalar::Int(1))
        );
        assert_eq!(
            BinOp::CmpLe.apply(Scalar::Int(2), Scalar::Int(2)),
            Some(Scalar::Int(1))
        );
    }

    #[test]
    fn float_ops_coerce_ints() {
        assert_eq!(
            BinOp::FAdd.apply(Scalar::Int(1), Scalar::Float(0.5)),
            Some(Scalar::Float(1.5))
        );
        assert_eq!(
            BinOp::FMul.apply(Scalar::Float(2.0), Scalar::Int(3)),
            Some(Scalar::Float(6.0))
        );
    }

    #[test]
    fn division_by_zero_is_none() {
        assert_eq!(BinOp::Div.apply(Scalar::Int(1), Scalar::Int(0)), None);
        assert_eq!(BinOp::Rem.apply(Scalar::Int(1), Scalar::Int(0)), None);
    }

    #[test]
    fn wrapping_semantics() {
        assert_eq!(
            BinOp::Add.apply(Scalar::Int(i64::MAX), Scalar::Int(1)),
            Some(Scalar::Int(i64::MIN))
        );
    }

    #[test]
    fn display_forms() {
        let i = Instr::Load {
            dst: Reg(1),
            arr: ArrayId(0),
            idx: Operand::Iter,
        };
        assert_eq!(i.to_string(), "r1 = load A0[%iter]");
        let s = Instr::Store {
            arr: ArrayId(2),
            idx: Operand::Reg(Reg(3)),
            src: Operand::ImmF(1.0),
        };
        assert_eq!(s.to_string(), "store A2[r3] = #1f");
        assert_eq!(
            Instr::Bz {
                cond: Operand::Reg(Reg(0)),
                target: 7
            }
            .to_string(),
            "bz r0 -> 7"
        );
    }
}
