//! Functional (untimed) execution of IR programs.
//!
//! The timed interpreter lives in `specrt-machine`; this module provides the
//! *functional* semantics used by
//!
//! * the machine layer itself (values are applied functionally, timing is
//!   modelled separately — see DESIGN.md §3),
//! * the dependence **oracle**: property tests trace every iteration's
//!   accesses and compute ground-truth cross-iteration dependences to check
//!   the LRPD test and the hardware protocols against,
//! * pure algorithm tests for `specrt-lrpd`.

use std::fmt;

use crate::instr::{ArrayId, Instr, Operand, Reg};
use crate::program::Program;
use crate::scalar::Scalar;

/// Abstract memory that functional execution runs against.
///
/// Implementations decide where values live: a plain `HashMap` for tests, the
/// global memory image plus per-processor private copies in the machine
/// layer, or a tracing wrapper for the dependence oracle.
pub trait MemOracle {
    /// Reads element `idx` of array `arr`.
    fn read(&mut self, arr: ArrayId, idx: u64) -> Scalar;
    /// Writes element `idx` of array `arr`.
    fn write(&mut self, arr: ArrayId, idx: u64, value: Scalar);
}

/// Errors raised during functional execution.
///
/// In the full system these become *speculative execution exceptions*: per
/// Section 2.2 of the paper, an exception during speculative parallel
/// execution aborts the loop, restores state, and re-executes serially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Integer division or remainder by zero.
    DivideByZero {
        /// PC of the faulting instruction.
        pc: usize,
    },
    /// An array index evaluated to a negative integer or a float.
    BadIndex {
        /// PC of the faulting instruction.
        pc: usize,
    },
    /// The per-iteration step budget was exhausted (runaway branch loop).
    StepLimit {
        /// The budget that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DivideByZero { pc } => write!(f, "integer divide by zero at pc {pc}"),
            ExecError::BadIndex { pc } => write!(f, "bad array index at pc {pc}"),
            ExecError::StepLimit { limit } => write!(f, "exceeded step limit of {limit}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Default per-iteration dynamic step budget.
pub const DEFAULT_STEP_LIMIT: usize = 1_000_000;

/// Whether a traced access read or wrote memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One memory access observed while tracing an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Array accessed.
    pub arr: ArrayId,
    /// Element index.
    pub idx: u64,
    /// Read or write.
    pub kind: AccessKind,
}

struct Frame {
    regs: Vec<Scalar>,
    iter: u64,
    proc: u32,
}

impl Frame {
    fn eval(&self, op: Operand) -> Scalar {
        match op {
            Operand::Reg(Reg(r)) => self.regs[r as usize],
            Operand::ImmI(v) => Scalar::Int(v),
            Operand::ImmF(v) => Scalar::Float(v),
            Operand::Iter => Scalar::Int(self.iter as i64),
            Operand::ProcId => Scalar::Int(self.proc as i64),
        }
    }

    fn eval_index(&self, op: Operand, pc: usize) -> Result<u64, ExecError> {
        match self.eval(op) {
            Scalar::Int(v) if v >= 0 => Ok(v as u64),
            _ => Err(ExecError::BadIndex { pc }),
        }
    }

    fn set(&mut self, Reg(r): Reg, v: Scalar) {
        self.regs[r as usize] = v;
    }
}

/// Executes one iteration of `program` functionally against `mem`.
///
/// `iter` is the 0-based global iteration number (the value of the
/// [`Operand::Iter`] operand) and `proc` the executing processor's id.
/// Returns the number of *busy cycles* the iteration would cost on the
/// simulated in-order processor: one per retired instruction, `n` per
/// `compute n`.
///
/// # Errors
///
/// Propagates [`ExecError`] on divide-by-zero, bad indices, or exceeding
/// [`DEFAULT_STEP_LIMIT`] dynamic instructions.
pub fn execute_iteration(
    program: &Program,
    iter: u64,
    proc: u32,
    mem: &mut dyn MemOracle,
) -> Result<u64, ExecError> {
    execute_iteration_limited(program, iter, proc, mem, DEFAULT_STEP_LIMIT)
}

/// [`execute_iteration`] with an explicit dynamic step budget.
///
/// # Errors
///
/// See [`execute_iteration`].
pub fn execute_iteration_limited(
    program: &Program,
    iter: u64,
    proc: u32,
    mem: &mut dyn MemOracle,
    step_limit: usize,
) -> Result<u64, ExecError> {
    let mut frame = Frame {
        regs: vec![Scalar::ZERO; program.reg_count() as usize],
        iter,
        proc,
    };
    let mut pc = 0usize;
    let mut busy = 0u64;
    let mut steps = 0usize;
    while pc < program.len() {
        steps += 1;
        if steps > step_limit {
            return Err(ExecError::StepLimit { limit: step_limit });
        }
        match program.instr(pc) {
            Instr::Compute(n) => {
                busy += n as u64;
                pc += 1;
            }
            Instr::Load { dst, arr, idx } => {
                let i = frame.eval_index(idx, pc)?;
                let v = mem.read(arr, i);
                frame.set(dst, v);
                busy += 1;
                pc += 1;
            }
            Instr::Store { arr, idx, src } => {
                let i = frame.eval_index(idx, pc)?;
                let v = frame.eval(src);
                mem.write(arr, i, v);
                busy += 1;
                pc += 1;
            }
            Instr::Mov { dst, src } => {
                let v = frame.eval(src);
                frame.set(dst, v);
                busy += 1;
                pc += 1;
            }
            Instr::Bin { op, dst, a, b } => {
                let va = frame.eval(a);
                let vb = frame.eval(b);
                let v = op.apply(va, vb).ok_or(ExecError::DivideByZero { pc })?;
                frame.set(dst, v);
                busy += 1;
                pc += 1;
            }
            Instr::Bz { cond, target } => {
                busy += 1;
                pc = if frame.eval(cond).is_zero() {
                    target
                } else {
                    pc + 1
                };
            }
            Instr::Bnz { cond, target } => {
                busy += 1;
                pc = if frame.eval(cond).is_zero() {
                    pc + 1
                } else {
                    target
                };
            }
            Instr::Jmp { target } => {
                busy += 1;
                pc = target;
            }
        }
    }
    Ok(busy)
}

struct Tracer<'a> {
    inner: &'a mut dyn MemOracle,
    trace: Vec<TraceEntry>,
}

impl MemOracle for Tracer<'_> {
    fn read(&mut self, arr: ArrayId, idx: u64) -> Scalar {
        self.trace.push(TraceEntry {
            arr,
            idx,
            kind: AccessKind::Read,
        });
        self.inner.read(arr, idx)
    }

    fn write(&mut self, arr: ArrayId, idx: u64, value: Scalar) {
        self.trace.push(TraceEntry {
            arr,
            idx,
            kind: AccessKind::Write,
        });
        self.inner.write(arr, idx, value);
    }
}

/// Executes one iteration and records every memory access in program order.
///
/// The trace is what the dependence oracle and the speculation protocols'
/// property tests consume.
///
/// # Errors
///
/// See [`execute_iteration`].
pub fn trace_iteration(
    program: &Program,
    iter: u64,
    proc: u32,
    mem: &mut dyn MemOracle,
) -> Result<(Vec<TraceEntry>, u64), ExecError> {
    let mut tracer = Tracer {
        inner: mem,
        trace: Vec::new(),
    };
    let busy = execute_iteration(program, iter, proc, &mut tracer)?;
    Ok((tracer.trace, busy))
}

/// A simple `HashMap`-backed memory for tests and examples; absent cells
/// read as integer zero.
#[derive(Debug, Default)]
pub struct MapMemory {
    cells: std::collections::HashMap<(ArrayId, u64), Scalar>,
}

impl MapMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        MapMemory::default()
    }

    /// Pre-populates one cell.
    pub fn set(&mut self, arr: ArrayId, idx: u64, v: Scalar) {
        self.cells.insert((arr, idx), v);
    }

    /// Reads one cell without tracing.
    pub fn get(&self, arr: ArrayId, idx: u64) -> Scalar {
        self.cells.get(&(arr, idx)).copied().unwrap_or(Scalar::ZERO)
    }
}

impl MemOracle for MapMemory {
    fn read(&mut self, arr: ArrayId, idx: u64) -> Scalar {
        self.get(arr, idx)
    }

    fn write(&mut self, arr: ArrayId, idx: u64, value: Scalar) {
        self.set(arr, idx, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BinOp;
    use crate::program::ProgramBuilder;

    fn subscripted_increment() -> Program {
        // A[K[i]] = A[K[i]] + 1.0
        let a = ArrayId(0);
        let k = ArrayId(1);
        let mut b = ProgramBuilder::new();
        let idx = b.load(k, Operand::Iter);
        let v = b.load(a, Operand::Reg(idx));
        let v2 = b.binop(BinOp::FAdd, Operand::Reg(v), Operand::ImmF(1.0));
        b.store(a, Operand::Reg(idx), Operand::Reg(v2));
        b.build().unwrap()
    }

    #[test]
    fn executes_subscripted_subscript() {
        let p = subscripted_increment();
        let mut mem = MapMemory::new();
        mem.set(ArrayId(1), 0, Scalar::Int(7)); // K[0] = 7
        mem.set(ArrayId(0), 7, Scalar::Float(2.0)); // A[7] = 2.0
        let busy = execute_iteration(&p, 0, 0, &mut mem).unwrap();
        assert_eq!(mem.get(ArrayId(0), 7), Scalar::Float(3.0));
        assert_eq!(busy, 4);
    }

    #[test]
    fn trace_records_program_order() {
        let p = subscripted_increment();
        let mut mem = MapMemory::new();
        mem.set(ArrayId(1), 0, Scalar::Int(3));
        let (trace, _) = trace_iteration(&p, 0, 0, &mut mem).unwrap();
        assert_eq!(
            trace,
            vec![
                TraceEntry {
                    arr: ArrayId(1),
                    idx: 0,
                    kind: AccessKind::Read
                },
                TraceEntry {
                    arr: ArrayId(0),
                    idx: 3,
                    kind: AccessKind::Read
                },
                TraceEntry {
                    arr: ArrayId(0),
                    idx: 3,
                    kind: AccessKind::Write
                },
            ]
        );
    }

    #[test]
    fn compute_accumulates_busy_cycles() {
        let mut b = ProgramBuilder::new();
        b.compute(10);
        b.compute(5);
        let p = b.build().unwrap();
        let mut mem = MapMemory::new();
        assert_eq!(execute_iteration(&p, 0, 0, &mut mem).unwrap(), 15);
    }

    #[test]
    fn branches_select_paths() {
        // if iter == 0 { store A[0] } else { store A[1] }
        let a = ArrayId(0);
        let mut b = ProgramBuilder::new();
        let cond = b.binop(BinOp::CmpEq, Operand::Iter, Operand::ImmI(0));
        let else_l = b.label();
        let end_l = b.label();
        b.bz(Operand::Reg(cond), else_l);
        b.store(a, Operand::ImmI(0), Operand::ImmI(1));
        b.jmp(end_l);
        b.bind(else_l);
        b.store(a, Operand::ImmI(1), Operand::ImmI(2));
        b.bind(end_l);
        let p = b.build().unwrap();

        let mut mem = MapMemory::new();
        execute_iteration(&p, 0, 0, &mut mem).unwrap();
        assert_eq!(mem.get(a, 0), Scalar::Int(1));
        assert_eq!(mem.get(a, 1), Scalar::Int(0));

        let mut mem = MapMemory::new();
        execute_iteration(&p, 5, 0, &mut mem).unwrap();
        assert_eq!(mem.get(a, 0), Scalar::Int(0));
        assert_eq!(mem.get(a, 1), Scalar::Int(2));
    }

    #[test]
    fn backward_loop_with_counter() {
        // r = 4; do { r -= 1 } while r != 0  → 4 iterations
        let mut b = ProgramBuilder::new();
        let r = b.mov(Operand::ImmI(4));
        let top = b.label();
        b.bind(top);
        b.binop_into(r, BinOp::Sub, Operand::Reg(r), Operand::ImmI(1));
        b.bnz(Operand::Reg(r), top);
        let p = b.build().unwrap();
        let mut mem = MapMemory::new();
        let busy = execute_iteration(&p, 0, 0, &mut mem).unwrap();
        assert_eq!(busy, 1 + 4 * 2);
    }

    #[test]
    fn negative_index_is_bad_index() {
        let a = ArrayId(0);
        let mut b = ProgramBuilder::new();
        b.store(a, Operand::ImmI(-1), Operand::ImmI(0));
        let p = b.build().unwrap();
        let mut mem = MapMemory::new();
        assert_eq!(
            execute_iteration(&p, 0, 0, &mut mem),
            Err(ExecError::BadIndex { pc: 0 })
        );
    }

    #[test]
    fn float_index_is_bad_index() {
        let a = ArrayId(0);
        let mut b = ProgramBuilder::new();
        b.store(a, Operand::ImmF(1.5), Operand::ImmI(0));
        let p = b.build().unwrap();
        let mut mem = MapMemory::new();
        assert_eq!(
            execute_iteration(&p, 0, 0, &mut mem),
            Err(ExecError::BadIndex { pc: 0 })
        );
    }

    #[test]
    fn divide_by_zero_reported() {
        let mut b = ProgramBuilder::new();
        b.binop(BinOp::Div, Operand::ImmI(1), Operand::ImmI(0));
        let p = b.build().unwrap();
        let mut mem = MapMemory::new();
        assert_eq!(
            execute_iteration(&p, 0, 0, &mut mem),
            Err(ExecError::DivideByZero { pc: 0 })
        );
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.jmp(top);
        let p = b.build().unwrap();
        let mut mem = MapMemory::new();
        assert_eq!(
            execute_iteration_limited(&p, 0, 0, &mut mem, 100),
            Err(ExecError::StepLimit { limit: 100 })
        );
    }

    #[test]
    fn proc_id_operand_evaluates() {
        let a = ArrayId(0);
        let mut b = ProgramBuilder::new();
        b.store(a, Operand::ProcId, Operand::ImmI(9));
        let p = b.build().unwrap();
        let mut mem = MapMemory::new();
        execute_iteration(&p, 0, 3, &mut mem).unwrap();
        assert_eq!(mem.get(a, 3), Scalar::Int(9));
    }
}
