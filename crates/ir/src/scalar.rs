//! Scalar values held in IR registers.

use std::fmt;

/// A register value: either a 64-bit signed integer or a 64-bit float.
///
/// The workloads the paper evaluates use integer index arrays (`K(i)`,
/// `L(i)`) to subscript floating-point data arrays, so both kinds appear in
/// every loop body. Integer operations require integer operands; float
/// operations coerce integer operands to float (like Fortran mixed-mode
/// arithmetic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
}

impl Scalar {
    /// Integer zero, the default register value.
    pub const ZERO: Scalar = Scalar::Int(0);

    /// The value as an integer.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float: using a float as an array index or
    /// branch condition is an IR-level type error we want loudly visible.
    pub fn as_int(self) -> i64 {
        match self {
            Scalar::Int(v) => v,
            Scalar::Float(f) => panic!("expected integer scalar, found float {f}"),
        }
    }

    /// The value as a float, coercing integers.
    pub fn as_float(self) -> f64 {
        match self {
            Scalar::Int(v) => v as f64,
            Scalar::Float(f) => f,
        }
    }

    /// Whether the value is (integer or float) zero.
    pub fn is_zero(self) -> bool {
        match self {
            Scalar::Int(v) => v == 0,
            Scalar::Float(f) => f == 0.0,
        }
    }

    /// Raw bit pattern, used when storing a scalar into simulated memory.
    pub fn to_bits(self) -> u64 {
        match self {
            // Tag in the low bit would corrupt values; instead memory cells
            // store a (bits, is_float) pair at the `specrt-mem` level, so
            // here we just transmute.
            Scalar::Int(v) => v as u64,
            Scalar::Float(f) => f.to_bits(),
        }
    }

    /// Reconstructs an integer scalar from raw bits.
    pub fn int_from_bits(bits: u64) -> Scalar {
        Scalar::Int(bits as i64)
    }

    /// Reconstructs a float scalar from raw bits.
    pub fn float_from_bits(bits: u64) -> Scalar {
        Scalar::Float(f64::from_bits(bits))
    }
}

impl Default for Scalar {
    fn default() -> Self {
        Scalar::ZERO
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Int(v) => write!(f, "{v}"),
            Scalar::Float(x) => write!(f, "{x}"),
        }
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Scalar {
        Scalar::Int(v)
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Scalar {
        Scalar::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_accessors() {
        assert_eq!(Scalar::Int(5).as_int(), 5);
        assert_eq!(Scalar::Int(5).as_float(), 5.0);
        assert!(Scalar::Int(0).is_zero());
        assert!(!Scalar::Int(1).is_zero());
    }

    #[test]
    fn float_accessors() {
        assert_eq!(Scalar::Float(2.5).as_float(), 2.5);
        assert!(Scalar::Float(0.0).is_zero());
        assert!(!Scalar::Float(0.1).is_zero());
    }

    #[test]
    #[should_panic(expected = "expected integer scalar")]
    fn float_as_int_panics() {
        Scalar::Float(1.5).as_int();
    }

    #[test]
    fn bit_round_trips() {
        let i = Scalar::Int(-42);
        assert_eq!(Scalar::int_from_bits(i.to_bits()), i);
        let f = Scalar::Float(3.25);
        assert_eq!(Scalar::float_from_bits(f.to_bits()), f);
    }

    #[test]
    fn conversions_and_default() {
        assert_eq!(Scalar::from(3i64), Scalar::Int(3));
        assert_eq!(Scalar::from(3.0f64), Scalar::Float(3.0));
        assert_eq!(Scalar::default(), Scalar::ZERO);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Scalar::Int(7).to_string(), "7");
        assert_eq!(Scalar::Float(1.5).to_string(), "1.5");
    }
}
