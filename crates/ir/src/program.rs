//! Programs, the builder API, and static verification.

use std::fmt;

use crate::instr::{ArrayId, BinOp, Instr, Operand, Reg};

/// A verified straight-line-with-branches program: the body of one loop
/// iteration.
///
/// Construct with [`ProgramBuilder`]; [`ProgramBuilder::build`] verifies
/// branch targets and register usage so interpreters can execute without
/// bounds anxiety.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    instrs: Vec<Instr>,
    reg_count: u16,
}

impl Program {
    /// The instructions in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn instr(&self, pc: usize) -> Instr {
        self.instrs[pc]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of registers the program uses (max index + 1).
    pub fn reg_count(&self) -> u16 {
        self.reg_count
    }

    /// All array ids referenced by loads/stores, deduplicated, in first-use
    /// order. Useful for building memory layouts and dependence oracles.
    pub fn referenced_arrays(&self) -> Vec<ArrayId> {
        let mut seen = Vec::new();
        for i in &self.instrs {
            let arr = match i {
                Instr::Load { arr, .. } | Instr::Store { arr, .. } => Some(*arr),
                _ => None,
            };
            if let Some(a) = arr {
                if !seen.contains(&a) {
                    seen.push(a);
                }
            }
        }
        seen
    }

    /// Whether the program ever stores to `arr`.
    pub fn writes_array(&self, arr: ArrayId) -> bool {
        self.instrs
            .iter()
            .any(|i| matches!(i, Instr::Store { arr: a, .. } if *a == arr))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:4}: {i}")?;
        }
        Ok(())
    }
}

/// Errors found when verifying a built program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A branch targets an instruction index past the end of the program.
    /// (Targeting exactly `len` is allowed: it means "fall off the end".)
    BranchOutOfRange {
        /// Instruction index of the offending branch.
        pc: usize,
        /// Its target.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// An unresolved label remained at build time.
    UnboundLabel {
        /// The label index.
        label: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BranchOutOfRange { pc, target, len } => {
                write!(f, "branch at {pc} targets {target}, program length {len}")
            }
            VerifyError::UnboundLabel { label } => {
                write!(f, "label {label} was created but never bound")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// A forward-reference label handed out by [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Incremental program construction with automatic register allocation and
/// labels for forward branches.
///
/// # Examples
///
/// A conditional store (the `if (B1(i)) then A(L(i)) = …` pattern from the
/// paper's Figure 2):
///
/// ```
/// use specrt_ir::{ArrayId, Operand, ProgramBuilder};
///
/// let b1 = ArrayId(0);
/// let l = ArrayId(1);
/// let a = ArrayId(2);
/// let mut b = ProgramBuilder::new();
/// let cond = b.load(b1, Operand::Iter);
/// let skip = b.label();
/// b.bz(Operand::Reg(cond), skip);
/// let idx = b.load(l, Operand::Iter);
/// b.store(a, Operand::Reg(idx), Operand::ImmF(1.0));
/// b.bind(skip);
/// let prog = b.build().unwrap();
/// assert_eq!(prog.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    next_reg: u16,
    labels: Vec<Option<usize>>,
    // (pc, label) pairs to patch at build time.
    patches: Vec<(usize, usize)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Allocates a fresh register.
    ///
    /// # Panics
    ///
    /// Panics after 256 registers; loop bodies that large should be split.
    pub fn reg(&mut self) -> Reg {
        assert!(self.next_reg < 256, "out of IR registers");
        let r = Reg(self.next_reg as u8);
        self.next_reg += 1;
        r
    }

    /// Current instruction index (the PC the *next* pushed instruction gets).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Appends `compute n`.
    pub fn compute(&mut self, n: u32) -> &mut Self {
        self.push(Instr::Compute(n))
    }

    /// Appends a load into a fresh register and returns that register.
    pub fn load(&mut self, arr: ArrayId, idx: Operand) -> Reg {
        let dst = self.reg();
        self.push(Instr::Load { dst, arr, idx });
        dst
    }

    /// Appends a load into an existing register.
    pub fn load_into(&mut self, dst: Reg, arr: ArrayId, idx: Operand) -> &mut Self {
        self.push(Instr::Load { dst, arr, idx })
    }

    /// Appends a store.
    pub fn store(&mut self, arr: ArrayId, idx: Operand, src: Operand) -> &mut Self {
        self.push(Instr::Store { arr, idx, src })
    }

    /// Appends a move into a fresh register and returns it.
    pub fn mov(&mut self, src: Operand) -> Reg {
        let dst = self.reg();
        self.push(Instr::Mov { dst, src });
        dst
    }

    /// Appends a move into an existing register.
    pub fn mov_into(&mut self, dst: Reg, src: Operand) -> &mut Self {
        self.push(Instr::Mov { dst, src })
    }

    /// Appends a binary op into a fresh register and returns it.
    pub fn binop(&mut self, op: BinOp, a: Operand, b: Operand) -> Reg {
        let dst = self.reg();
        self.push(Instr::Bin { op, dst, a, b });
        dst
    }

    /// Appends a binary op into an existing register.
    pub fn binop_into(&mut self, dst: Reg, op: BinOp, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::Bin { op, dst, a, b })
    }

    /// Creates a label to be bound later with [`bind`](Self::bind).
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.instrs.len());
        self
    }

    /// Appends a branch-if-zero to `label`.
    pub fn bz(&mut self, cond: Operand, label: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), label.0));
        self.push(Instr::Bz { cond, target: 0 })
    }

    /// Appends a branch-if-nonzero to `label`.
    pub fn bnz(&mut self, cond: Operand, label: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), label.0));
        self.push(Instr::Bnz { cond, target: 0 })
    }

    /// Appends an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), label.0));
        self.push(Instr::Jmp { target: 0 })
    }

    /// Finalizes the program: patches labels and verifies branch targets.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] if a label was never bound or a branch target
    /// lies beyond one-past-the-end.
    pub fn build(mut self) -> Result<Program, VerifyError> {
        for (pc, label) in &self.patches {
            let target = self.labels[*label].ok_or(VerifyError::UnboundLabel { label: *label })?;
            match &mut self.instrs[*pc] {
                Instr::Bz { target: t, .. }
                | Instr::Bnz { target: t, .. }
                | Instr::Jmp { target: t } => *t = target,
                other => unreachable!("patch points at non-branch {other:?}"),
            }
        }
        let len = self.instrs.len();
        for (pc, i) in self.instrs.iter().enumerate() {
            let target = match i {
                Instr::Bz { target, .. } | Instr::Bnz { target, .. } | Instr::Jmp { target } => {
                    Some(*target)
                }
                _ => None,
            };
            if let Some(t) = target {
                if t > len {
                    return Err(VerifyError::BranchOutOfRange { pc, target: t, len });
                }
            }
        }
        Ok(Program {
            instrs: self.instrs,
            reg_count: self.next_reg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_sequential_registers() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.reg(), Reg(0));
        assert_eq!(b.reg(), Reg(1));
    }

    #[test]
    fn labels_patch_forward_branches() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bz(Operand::ImmI(0), l);
        b.compute(5);
        b.bind(l);
        b.compute(1);
        let p = b.build().unwrap();
        assert_eq!(
            p.instr(0),
            Instr::Bz {
                cond: Operand::ImmI(0),
                target: 2
            }
        );
    }

    #[test]
    fn labels_support_backward_branches() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.compute(1);
        b.bnz(Operand::ImmI(1), top);
        let p = b.build().unwrap();
        assert_eq!(
            p.instr(1),
            Instr::Bnz {
                cond: Operand::ImmI(1),
                target: 0
            }
        );
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jmp(l);
        assert_eq!(b.build(), Err(VerifyError::UnboundLabel { label: 0 }));
    }

    #[test]
    fn branch_to_end_is_allowed() {
        let mut b = ProgramBuilder::new();
        let end = b.label();
        b.jmp(end);
        b.bind(end);
        let p = b.build().unwrap();
        assert_eq!(p.instr(0), Instr::Jmp { target: 1 });
    }

    #[test]
    fn raw_out_of_range_branch_is_error() {
        let mut b = ProgramBuilder::new();
        b.push(Instr::Jmp { target: 99 });
        assert!(matches!(
            b.build(),
            Err(VerifyError::BranchOutOfRange { target: 99, .. })
        ));
    }

    #[test]
    fn referenced_arrays_dedupes_in_order() {
        let mut b = ProgramBuilder::new();
        let r = b.load(ArrayId(3), Operand::Iter);
        b.store(ArrayId(1), Operand::Iter, Operand::Reg(r));
        b.load(ArrayId(3), Operand::Iter);
        let p = b.build().unwrap();
        assert_eq!(p.referenced_arrays(), vec![ArrayId(3), ArrayId(1)]);
        assert!(p.writes_array(ArrayId(1)));
        assert!(!p.writes_array(ArrayId(3)));
    }

    #[test]
    fn display_lists_instructions() {
        let mut b = ProgramBuilder::new();
        b.compute(2);
        let p = b.build().unwrap();
        assert!(p.to_string().contains("compute 2"));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }
}
