#![warn(missing_docs)]

//! # specrt-prof
//!
//! Host-side performance observability for the simulator itself: where do
//! the *microseconds* go, as opposed to the simulated cycles that every
//! other crate accounts for.
//!
//! The design is a thread-local hierarchical span profiler:
//!
//! * [`scope("proto.access")`](scope) returns an RAII guard; dropping it
//!   records one span. Spans nest — a span's **self time** is its wall time
//!   minus the wall time of the spans opened inside it, so a ranked
//!   self-time table points at real code, not at whichever caller happens
//!   to sit on top.
//! * All bookkeeping is thread-local (no locks on the record path). When a
//!   thread exits, its aggregate flushes into a global registry;
//!   [`take_report`] drains the registry plus the calling thread into one
//!   [`ProfReport`] with **deterministic ordering** (threads by label,
//!   spans by name), so reports are diffable even though the times in them
//!   are not.
//! * Profiling is **off by default** and gated on one relaxed atomic load:
//!   a disabled [`scope`] call costs a branch and returns a 1-byte inert
//!   guard. The repo's hard determinism invariant is preserved by
//!   construction — host timing never flows into simulated state, and every
//!   consumer routes profile output to an opt-in channel (stderr / side
//!   files), never into gated deterministic output.
//!
//! Besides the per-name aggregation each thread keeps a bounded **timeline**
//! of `(name, start, duration)` triples for its outermost span levels;
//! `specrt-trace` renders these as a Chrome `trace_events` document with one
//! track per worker thread, which is how "worker 3 idled at the barrier for
//! 40% of the run" becomes visible.
//!
//! Zero dependencies; the clock is [`std::time::Instant`] (monotonic),
//! reported as nanoseconds since the first use in the process.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Timeline spans a single thread retains before it starts counting drops
/// (aggregation is unaffected — only the Chrome timeline is bounded).
pub const TIMELINE_CAP: usize = 1 << 16;

/// Maximum nesting depth recorded on the timeline. Deep, hot leaf spans
/// (event-queue pushes, per-message routing) still aggregate into the
/// self-time table but would drown a timeline in millions of slivers.
pub const TIMELINE_MAX_DEPTH: u32 = 4;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether profiling is currently enabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables span collection. Enable *before* the work
/// under measurement and call [`take_report`] after it; flipping the switch
/// while spans are open on some thread merely loses those spans.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first span so timestamps are comparable
        // across threads.
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn flushed() -> &'static Mutex<Vec<ThreadData>> {
    static FLUSHED: OnceLock<Mutex<Vec<ThreadData>>> = OnceLock::new();
    FLUSHED.get_or_init(|| Mutex::new(Vec::new()))
}

// ----------------------------------------------------------------------
// Per-thread collection
// ----------------------------------------------------------------------

/// Aggregate statistics of one span name on one thread (or merged).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall nanoseconds inside the span (children included).
    pub total_ns: u64,
    /// Wall nanoseconds inside the span *excluding* nested spans.
    pub self_ns: u64,
    /// Longest single occurrence, in nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    /// Adds another aggregate into this one (sums; max of maxima).
    pub fn absorb(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One completed span occurrence on a thread's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSpan {
    /// Span name.
    pub name: &'static str,
    /// Start, in nanoseconds since the process profiling epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at which the span ran (0 = outermost).
    pub depth: u32,
}

#[derive(Debug, Default)]
struct ThreadData {
    label: String,
    spans: Vec<(&'static str, SpanStat)>,
    timeline: Vec<TimelineSpan>,
    dropped: u64,
}

impl ThreadData {
    fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.timeline.is_empty()
    }
}

struct Frame {
    name: &'static str,
    start_ns: u64,
    child_ns: u64,
}

struct ThreadState {
    /// Explicit label ([`set_thread_label`]) or the std thread name.
    label: Option<String>,
    fallback: String,
    stack: Vec<Frame>,
    data: ThreadData,
}

impl ThreadState {
    fn new() -> ThreadState {
        ThreadState {
            label: None,
            fallback: std::thread::current()
                .name()
                .unwrap_or("thread")
                .to_string(),
            stack: Vec::new(),
            data: ThreadData::default(),
        }
    }

    fn record(&mut self, name: &'static str, dur_ns: u64, self_ns: u64, start_ns: u64) {
        let stat = match self.data.spans.iter_mut().find(|(n, _)| *n == name) {
            Some((_, s)) => s,
            None => {
                self.data.spans.push((name, SpanStat::default()));
                &mut self.data.spans.last_mut().expect("just pushed").1
            }
        };
        stat.count += 1;
        stat.total_ns += dur_ns;
        stat.self_ns += self_ns;
        stat.max_ns = stat.max_ns.max(dur_ns);
        let depth = self.stack.len() as u32;
        if depth < TIMELINE_MAX_DEPTH {
            if self.data.timeline.len() < TIMELINE_CAP {
                self.data.timeline.push(TimelineSpan {
                    name,
                    start_ns,
                    dur_ns,
                    depth,
                });
            } else {
                self.data.dropped += 1;
            }
        }
    }

    fn take(&mut self) -> ThreadData {
        let mut d = std::mem::take(&mut self.data);
        d.label = self.label.clone().unwrap_or_else(|| self.fallback.clone());
        d
    }
}

impl ThreadState {
    fn flush(&mut self) {
        if !self.data.is_empty() {
            let d = self.take();
            if let Ok(mut g) = flushed().lock() {
                g.push(d);
            }
        }
    }
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        // Thread exit: flush this thread's aggregate into the global
        // registry. Backstop only — `thread::scope` can unblock *before*
        // a worker's TLS destructors run, so pool workers also call
        // [`flush_thread`] explicitly before returning.
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// Immediately flushes the calling thread's recorded data into the global
/// registry (normally this happens at thread exit). Short-lived worker
/// threads should call this as their last act: `thread::scope` and `join`
/// may return before the worker's thread-local destructors have run, so an
/// exit-time-only flush can lose the race against [`take_report`]. Safe to
/// call repeatedly; a thread with nothing new recorded flushes nothing.
pub fn flush_thread() {
    TLS.with(|t| t.borrow_mut().flush());
}

/// Labels the calling thread in profile reports (e.g. `worker-3`). Without
/// a label the std thread name (or `thread`) is used.
pub fn set_thread_label(label: &str) {
    TLS.with(|t| t.borrow_mut().label = Some(label.to_string()));
}

/// RAII guard returned by [`scope`]; records the span when dropped.
#[must_use = "a span guard records on drop; binding it to `_` ends it immediately"]
pub struct Scope {
    armed: bool,
}

/// Opens a named span on the calling thread. Near-free when profiling is
/// disabled (one relaxed atomic load). Guards must drop in LIFO order —
/// the natural consequence of binding them to locals.
#[inline]
pub fn scope(name: &'static str) -> Scope {
    if !enabled() {
        return Scope { armed: false };
    }
    open(name);
    Scope { armed: true }
}

fn open(name: &'static str) {
    let start_ns = now_ns();
    TLS.with(|t| {
        t.borrow_mut().stack.push(Frame {
            name,
            start_ns,
            child_ns: 0,
        })
    });
}

impl Drop for Scope {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            close();
        }
    }
}

fn close() {
    let end_ns = now_ns();
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let Some(f) = t.stack.pop() else {
            return;
        };
        let dur = end_ns.saturating_sub(f.start_ns);
        let self_ns = dur.saturating_sub(f.child_ns);
        if let Some(parent) = t.stack.last_mut() {
            parent.child_ns += dur;
        }
        t.record(f.name, dur, self_ns, f.start_ns);
    });
}

// ----------------------------------------------------------------------
// Reports
// ----------------------------------------------------------------------

/// One thread's contribution to a [`ProfReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadProfile {
    /// Thread label (`main`, `worker-0`, …).
    pub label: String,
    /// Per-span aggregates, sorted by span name.
    pub spans: Vec<(String, SpanStat)>,
    /// Completed spans in start order (bounded; see [`TIMELINE_CAP`]).
    pub timeline: Vec<TimelineSpan>,
    /// Timeline spans discarded after the cap was reached.
    pub dropped: u64,
}

impl ThreadProfile {
    /// Aggregate for span `name`, if the thread ever entered it.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.spans[i].1)
    }
}

/// Merged host-profile of a run: one [`ThreadProfile`] per thread label,
/// deterministically ordered (labels in natural order, spans by name).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfReport {
    /// Per-thread profiles, sorted by label.
    pub threads: Vec<ThreadProfile>,
}

/// Natural sort key: `worker-10` sorts after `worker-2`.
fn label_key(label: &str) -> (String, u64) {
    let stem = label.trim_end_matches(|c: char| c.is_ascii_digit());
    let num = label[stem.len()..].parse().unwrap_or(0);
    (stem.to_string(), num)
}

impl ProfReport {
    fn from_threads(datas: Vec<ThreadData>) -> ProfReport {
        let mut report = ProfReport::default();
        for d in datas {
            report.absorb_thread(d.label, d.spans, d.timeline, d.dropped);
        }
        report.normalize();
        report
    }

    fn absorb_thread(
        &mut self,
        label: String,
        spans: Vec<(impl AsRef<str>, SpanStat)>,
        timeline: Vec<TimelineSpan>,
        dropped: u64,
    ) {
        let t = match self.threads.iter_mut().find(|t| t.label == label) {
            Some(t) => t,
            None => {
                self.threads.push(ThreadProfile {
                    label,
                    ..ThreadProfile::default()
                });
                self.threads.last_mut().expect("just pushed")
            }
        };
        for (name, stat) in spans {
            let name = name.as_ref();
            match t.spans.iter_mut().find(|(n, _)| n == name) {
                Some((_, s)) => s.absorb(&stat),
                None => t.spans.push((name.to_string(), stat)),
            }
        }
        t.timeline.extend(timeline);
        t.dropped += dropped;
    }

    fn normalize(&mut self) {
        self.threads.sort_by_key(|t| label_key(&t.label));
        for t in &mut self.threads {
            t.spans.sort_by(|a, b| a.0.cmp(&b.0));
            t.timeline.sort_by_key(|s| (s.start_ns, s.depth, s.dur_ns));
        }
    }

    /// Merges another report into this one: same-label threads combine
    /// span-wise, orderings stay deterministic. Commutative up to the
    /// (sorted) result.
    pub fn merge(&mut self, other: &ProfReport) {
        for t in &other.threads {
            self.absorb_thread(
                t.label.clone(),
                t.spans.clone(),
                t.timeline.clone(),
                t.dropped,
            );
        }
        self.normalize();
    }

    /// Whether no thread recorded anything.
    pub fn is_empty(&self) -> bool {
        self.threads.iter().all(|t| t.spans.is_empty())
    }

    /// Span aggregates summed across all threads, sorted by name.
    pub fn totals(&self) -> Vec<(String, SpanStat)> {
        let mut out: Vec<(String, SpanStat)> = Vec::new();
        for t in &self.threads {
            for (name, stat) in &t.spans {
                match out.iter_mut().find(|(n, _)| n == name) {
                    Some((_, s)) => s.absorb(stat),
                    None => out.push((name.clone(), *stat)),
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// [`totals`](Self::totals) ranked by self time, descending (name
    /// breaks ties, so equal-time rankings are still deterministic).
    pub fn ranked(&self) -> Vec<(String, SpanStat)> {
        let mut out = self.totals();
        out.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(&b.0)));
        out
    }

    /// Per-worker utilization: for every thread that ran a `par.worker`
    /// span, the fraction of that span spent inside `par.case` — i.e. doing
    /// assigned work rather than claiming or idling at the implicit join
    /// barrier. Sorted by thread label.
    pub fn worker_utilization(&self) -> Vec<(String, f64)> {
        self.threads
            .iter()
            .filter_map(|t| {
                let worker = t.span("par.worker")?;
                if worker.total_ns == 0 {
                    return None;
                }
                let busy = t.span("par.case").map_or(0, |s| s.total_ns);
                Some((
                    t.label.clone(),
                    (busy as f64 / worker.total_ns as f64).min(1.0),
                ))
            })
            .collect()
    }

    /// The ranked self-time table as plain text: one row per span (top
    /// `top` rows), with count, total/self milliseconds, the share of all
    /// self time, and the worst single occurrence.
    pub fn render_table(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let ranked = self.ranked();
        let all_self: u64 = ranked.iter().map(|(_, s)| s.self_ns).sum();
        let mut out = format!(
            "host profile: {} thread(s), {} span name(s), {:.1} ms total self time\n",
            self.threads.len(),
            ranked.len(),
            all_self as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>12} {:>12} {:>7} {:>12}",
            "span", "count", "total ms", "self ms", "self%", "max µs"
        );
        for (name, s) in ranked.iter().take(top) {
            let _ = writeln!(
                out,
                "{:<24} {:>10} {:>12.3} {:>12.3} {:>6.1}% {:>12.1}",
                name,
                s.count,
                s.total_ns as f64 / 1e6,
                s.self_ns as f64 / 1e6,
                100.0 * s.self_ns as f64 / all_self.max(1) as f64,
                s.max_ns as f64 / 1e3,
            );
        }
        let util = self.worker_utilization();
        if !util.is_empty() {
            let mean = util.iter().map(|(_, u)| u).sum::<f64>() / util.len() as f64;
            let _ = write!(out, "worker utilization:");
            for (label, u) in &util {
                let _ = write!(out, " {label}={:.0}%", u * 100.0);
            }
            let _ = writeln!(out, " (mean {:.0}%)", mean * 100.0);
        }
        let dropped: u64 = self.threads.iter().map(|t| t.dropped).sum();
        if dropped > 0 {
            let _ = writeln!(
                out,
                "(timeline truncated: {dropped} span(s) past the {TIMELINE_CAP}-per-thread cap)"
            );
        }
        out
    }
}

/// Drains everything recorded so far — previously exited threads plus the
/// calling thread — into one deterministic-ordered report, resetting the
/// collector. Call after the profiled workload has joined its workers.
pub fn take_report() -> ProfReport {
    let mut datas: Vec<ThreadData> = match flushed().lock() {
        Ok(mut g) => g.drain(..).collect(),
        Err(_) => Vec::new(),
    };
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if !t.data.is_empty() {
            let d = t.take();
            datas.push(d);
        }
    });
    ProfReport::from_threads(datas)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiling state is process-global; tests touching it serialize.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _l = locked();
        set_enabled(false);
        let _ = take_report();
        {
            let _a = scope("noop.outer");
            let _b = scope("noop.inner");
        }
        assert!(take_report().is_empty());
    }

    #[test]
    fn nesting_splits_self_time_exactly() {
        let _l = locked();
        set_enabled(true);
        let _ = take_report();
        {
            let _o = scope("t.outer");
            for _ in 0..3 {
                let _i = scope("t.inner");
                std::hint::black_box(0u64);
            }
        }
        set_enabled(false);
        let report = take_report();
        let totals = report.totals();
        let get = |n: &str| totals.iter().find(|(k, _)| k == n).map(|(_, s)| *s);
        let outer = get("t.outer").expect("outer recorded");
        let inner = get("t.inner").expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        // Child time is subtracted exactly, not approximately.
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        assert!(inner.self_ns <= inner.total_ns);
        assert!(inner.max_ns <= inner.total_ns);
    }

    #[test]
    fn worker_threads_flush_on_exit_and_sort_naturally() {
        let _l = locked();
        set_enabled(true);
        let _ = take_report();
        std::thread::scope(|s| {
            for w in [10u32, 2, 0] {
                s.spawn(move || {
                    set_thread_label(&format!("worker-{w}"));
                    {
                        let _g = scope("par.worker");
                        let _c = scope("par.case");
                        std::hint::black_box(w);
                    }
                    flush_thread();
                });
            }
        });
        set_enabled(false);
        let report = take_report();
        let labels: Vec<&str> = report.threads.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(labels, ["worker-0", "worker-2", "worker-10"]);
        let util = report.worker_utilization();
        assert_eq!(util.len(), 3);
        for (_, u) in util {
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn report_merge_is_stable_and_order_independent() {
        let mk = |label: &str, name: &str, stat: SpanStat| ProfReport {
            threads: vec![ThreadProfile {
                label: label.to_string(),
                spans: vec![(name.to_string(), stat)],
                timeline: Vec::new(),
                dropped: 0,
            }],
        };
        let a = mk(
            "worker-1",
            "par.case",
            SpanStat {
                count: 4,
                total_ns: 400,
                self_ns: 300,
                max_ns: 200,
            },
        );
        let b = mk(
            "worker-0",
            "par.case",
            SpanStat {
                count: 2,
                total_ns: 100,
                self_ns: 100,
                max_ns: 90,
            },
        );
        let c = mk(
            "worker-1",
            "fuzz.case",
            SpanStat {
                count: 1,
                total_ns: 50,
                self_ns: 50,
                max_ns: 50,
            },
        );

        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(abc, cba, "merge must be order-independent");

        let labels: Vec<&str> = abc.threads.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(labels, ["worker-0", "worker-1"]);
        // Same-label merge combined the two span lists, name-sorted.
        let w1 = &abc.threads[1];
        let names: Vec<&str> = w1.spans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["fuzz.case", "par.case"]);
        assert_eq!(w1.span("par.case").unwrap().count, 4);

        // Merging the same report twice doubles counts deterministically.
        let mut twice = a.clone();
        twice.merge(&a);
        assert_eq!(twice.threads[0].span("par.case").unwrap().count, 8);
        assert_eq!(twice.threads[0].span("par.case").unwrap().max_ns, 200);
    }

    #[test]
    fn ranked_orders_by_self_time_then_name() {
        let report = ProfReport {
            threads: vec![ThreadProfile {
                label: "main".into(),
                spans: vec![
                    (
                        "a.small".into(),
                        SpanStat {
                            count: 1,
                            total_ns: 10,
                            self_ns: 10,
                            max_ns: 10,
                        },
                    ),
                    (
                        "b.big".into(),
                        SpanStat {
                            count: 1,
                            total_ns: 99,
                            self_ns: 99,
                            max_ns: 99,
                        },
                    ),
                    (
                        "c.small".into(),
                        SpanStat {
                            count: 1,
                            total_ns: 10,
                            self_ns: 10,
                            max_ns: 10,
                        },
                    ),
                ],
                timeline: Vec::new(),
                dropped: 0,
            }],
        };
        let names: Vec<String> = report.ranked().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["b.big", "a.small", "c.small"]);
        let table = report.render_table(10);
        assert!(table.contains("b.big"));
        assert!(table.lines().count() >= 4);
    }
}
