//! Randomized tests: the full memory system (caches + directory + protocol
//! messages) against the speculation oracles, under randomized access
//! schedules with realistic timing interleavings — driven by the in-repo
//! deterministic [`SplitMix64`] generator.

use specrt_cache::CacheConfig;
use specrt_engine::{Cycles, SplitMix64};
use specrt_ir::ArrayId;
use specrt_mem::{ElemSize, PlacementPolicy, ProcId};
use specrt_proto::{LatencyConfig, MemSystem, MemSystemConfig};
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

const A: ArrayId = ArrayId(0);

fn small_system(procs: u32) -> MemSystem {
    MemSystem::new(MemSystemConfig {
        procs,
        cache: CacheConfig {
            l1_lines: 8,
            l2_lines: 32,
        },
        latency: LatencyConfig::default(),
        dir_banks: 4,
        net: specrt_proto::NetConfig::flat(),
        dirty_read_downgrades: false,
        retry: specrt_proto::RetryConfig::default(),
    })
}

#[derive(Debug, Clone, Copy)]
struct Access {
    proc: u8,
    elem: u8,
    write: bool,
    gap: u16,
}

fn random_schedule(rng: &mut SplitMix64, procs: u8, elems: u8) -> Vec<Access> {
    (0..rng.below(60))
        .map(|_| Access {
            proc: rng.below(procs as u64) as u8,
            elem: rng.below(elems as u64) as u8,
            write: rng.chance(0.5),
            gap: rng.below(400) as u16,
        })
        .collect()
}

/// Soundness of the non-privatization protocol under arbitrary timing:
/// whenever the machine does NOT flag a failure, the access pattern really
/// was inside the envelope (every element read-only or single-processor).
/// Races may cause *conservative* failures, but never a missed conflict.
#[test]
fn nonpriv_never_misses_a_conflict() {
    let mut rng = SplitMix64::new(0xa0c0_0001);
    for _case in 0..64 {
        let schedule = random_schedule(&mut rng, 4, 16);
        let mut ms = small_system(4);
        ms.alloc_array(A, 64, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        ms.configure_loop(plan, IterationNumbering::iteration_wise());

        let mut now = Cycles(0);
        for a in &schedule {
            now += Cycles(a.gap as u64);
            let out = if a.write {
                ms.write(ProcId(a.proc as u32), A, a.elem as u64, now)
            } else {
                ms.read(ProcId(a.proc as u32), A, a.elem as u64, now)
            };
            now = now.max(out.complete_at);
        }
        ms.drain_all_messages();

        if ms.failure().is_none() {
            // No element may be both written and touched by two processors.
            for e in 0..16u8 {
                let procs: std::collections::BTreeSet<u8> = schedule
                    .iter()
                    .filter(|a| a.elem == e)
                    .map(|a| a.proc)
                    .collect();
                let wrote = schedule.iter().any(|a| a.elem == e && a.write);
                assert!(
                    procs.len() <= 1 || !wrote,
                    "missed conflict on element {e} (procs {procs:?})"
                );
            }
        }
    }
}

/// With well-separated accesses (no in-flight races), the protocol is also
/// *complete*: it passes exactly the envelope.
#[test]
fn nonpriv_exact_without_races() {
    let mut rng = SplitMix64::new(0xa0c0_0002);
    for _case in 0..64 {
        let schedule = random_schedule(&mut rng, 3, 12);
        let mut ms = small_system(3);
        ms.alloc_array(A, 64, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        ms.configure_loop(plan, IterationNumbering::iteration_wise());

        let mut now = Cycles(0);
        for a in &schedule {
            // Leave enough time for every update message to land.
            now += Cycles(2000);
            let out = if a.write {
                ms.write(ProcId(a.proc as u32), A, a.elem as u64, now)
            } else {
                ms.read(ProcId(a.proc as u32), A, a.elem as u64, now)
            };
            now = now.max(out.complete_at);
        }
        ms.drain_all_messages();

        let mut envelope_ok = true;
        for e in 0..12u8 {
            let procs: std::collections::BTreeSet<u8> = schedule
                .iter()
                .filter(|a| a.elem == e)
                .map(|a| a.proc)
                .collect();
            let wrote = schedule.iter().any(|a| a.elem == e && a.write);
            envelope_ok &= procs.len() <= 1 || !wrote;
        }
        assert_eq!(
            ms.failure().is_none(),
            envelope_ok,
            "failure {:?}",
            ms.failure()
        );
    }
}

/// Privatization protocol under per-processor monotone iteration
/// sequences: fails exactly iff some element's max read-first stamp
/// exceeds its min write stamp (when accesses are race-free).
#[test]
fn priv_matches_stamp_oracle() {
    let mut rng = SplitMix64::new(0xa0c0_0003);
    for _case in 0..64 {
        // Per access: (proc, elem, write?, advance?); iterations advance
        // per proc.
        let accesses: Vec<(u32, u64, bool, bool)> = (0..rng.below(40))
            .map(|_| {
                (
                    rng.below(3) as u32,
                    rng.below(8),
                    rng.chance(0.5),
                    rng.chance(0.5),
                )
            })
            .collect();
        let mut ms = small_system(3);
        ms.alloc_array(A, 16, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut plan = TestPlan::new();
        plan.set(
            A,
            ProtocolKind::Priv {
                read_in: true,
                copy_out: false,
            },
        );
        ms.configure_loop(plan, IterationNumbering::iteration_wise());

        // Assign iterations round-robin: proc p executes iterations
        // p, p+3, p+6, ... in order; each access optionally advances the
        // processor to its next iteration.
        let mut iter_of = [0u64, 1, 2];
        let mut now = Cycles(0);
        // Oracle bookkeeping: per (proc, elem): last iteration that wrote.
        let mut wrote_in: std::collections::HashMap<(u32, u64), u64> = Default::default();
        let mut max_rf = [0u64; 8];
        let mut min_w = [u64::MAX; 8];
        let mut begun = [false; 3];

        for &(proc, elem, write, advance) in &accesses {
            if advance || !begun[proc as usize] {
                if begun[proc as usize] {
                    iter_of[proc as usize] += 3;
                }
                begun[proc as usize] = true;
                ms.begin_iteration(ProcId(proc), iter_of[proc as usize]);
            }
            now += Cycles(2000);
            let iter = iter_of[proc as usize];
            let stamp = iter + 1;
            let out = if write {
                wrote_in.insert((proc, elem), stamp);
                min_w[elem as usize] = min_w[elem as usize].min(stamp);
                ms.write(ProcId(proc), A, elem, now)
            } else {
                // Read-first iff this iteration has not written the element.
                if wrote_in.get(&(proc, elem)) != Some(&stamp) {
                    max_rf[elem as usize] = max_rf[elem as usize].max(stamp);
                }
                ms.read(ProcId(proc), A, elem, now)
            };
            now = now.max(out.complete_at);
        }
        ms.drain_all_messages();

        let oracle_fail = (0..8).any(|e| max_rf[e] > min_w[e]);
        assert_eq!(
            ms.failure().is_some(),
            oracle_fail,
            "failure {:?}, max_rf {:?}, min_w {:?}",
            ms.failure(),
            max_rf,
            min_w
        );
    }
}

/// The reduced no-read-in privatization mode (Figure 5-b) under race-free
/// schedules: fails exactly iff some element is BOTH read-first (by some
/// iteration) and written — the conservative mixed-use rule.
#[test]
fn priv_no_read_in_matches_mixed_use_rule() {
    let mut rng = SplitMix64::new(0xa0c0_0004);
    for _case in 0..48 {
        let accesses: Vec<(u32, u64, bool, bool)> = (0..rng.below(40))
            .map(|_| {
                (
                    rng.below(3) as u32,
                    rng.below(8),
                    rng.chance(0.5),
                    rng.chance(0.5),
                )
            })
            .collect();
        let mut ms = small_system(3);
        ms.alloc_array(A, 16, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut plan = TestPlan::new();
        plan.set(
            A,
            ProtocolKind::Priv {
                read_in: false,
                copy_out: false,
            },
        );
        ms.configure_loop(plan, IterationNumbering::iteration_wise());

        let mut iter_of = [0u64, 1, 2];
        let mut begun = [false; 3];
        let mut now = Cycles(0);
        // Oracle per element: set of (proc, iter) writing; read-first marks.
        let mut writes: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 8];
        let mut read_firsts: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 8];
        let mut wrote_this_iter: std::collections::HashSet<(u32, u64, u64)> = Default::default();
        let mut read_this_iter: std::collections::HashSet<(u32, u64, u64)> = Default::default();

        for &(proc, elem, write, advance) in &accesses {
            if advance || !begun[proc as usize] {
                if begun[proc as usize] {
                    iter_of[proc as usize] += 3;
                }
                begun[proc as usize] = true;
                ms.begin_iteration(ProcId(proc), iter_of[proc as usize]);
            }
            now += Cycles(2000);
            let iter = iter_of[proc as usize];
            let out = if write {
                wrote_this_iter.insert((proc, iter, elem));
                writes[elem as usize].push((proc, iter));
                ms.write(ProcId(proc), A, elem, now)
            } else {
                if !wrote_this_iter.contains(&(proc, iter, elem))
                    && !read_this_iter.contains(&(proc, iter, elem))
                {
                    read_firsts[elem as usize].push((proc, iter));
                }
                read_this_iter.insert((proc, iter, elem));
                ms.read(ProcId(proc), A, elem, now)
            };
            assert!(out.read_in.is_none(), "no-read-in mode must never read in");
            now = now.max(out.complete_at);
        }
        ms.drain_all_messages();

        // Oracle: the shared AnyW/AnyR1st bits are sticky, so any
        // coexistence of a read-first and a write on an element fails —
        // even a same-iteration read-then-write sends both signals.
        let oracle_fail = (0..8).any(|e| !read_firsts[e].is_empty() && !writes[e].is_empty());
        assert_eq!(
            ms.failure().is_some(),
            oracle_fail,
            "failure {:?}; rf {:?}; w {:?}",
            ms.failure(),
            read_firsts,
            writes
        );
    }
}
