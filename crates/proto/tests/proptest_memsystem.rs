//! Property tests: the full memory system (caches + directory + protocol
//! messages) against the speculation oracles, under randomized access
//! schedules with realistic timing interleavings.

use proptest::prelude::*;

use specrt_cache::CacheConfig;
use specrt_engine::Cycles;
use specrt_ir::ArrayId;
use specrt_mem::{ElemSize, PlacementPolicy, ProcId};
use specrt_proto::{LatencyConfig, MemSystem, MemSystemConfig};
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

const A: ArrayId = ArrayId(0);

fn small_system(procs: u32) -> MemSystem {
    MemSystem::new(MemSystemConfig {
        procs,
        cache: CacheConfig {
            l1_lines: 8,
            l2_lines: 32,
        },
        latency: LatencyConfig::default(),
        dir_banks: 4,
        dirty_read_downgrades: false,
    })
}

#[derive(Debug, Clone, Copy)]
struct Access {
    proc: u8,
    elem: u8,
    write: bool,
    gap: u16,
}

fn schedule_strategy(procs: u8, elems: u8) -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec(
        (0..procs, 0..elems, any::<bool>(), 0u16..400).prop_map(|(proc, elem, write, gap)| {
            Access {
                proc,
                elem,
                write,
                gap,
            }
        }),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of the non-privatization protocol under arbitrary timing:
    /// whenever the machine does NOT flag a failure, the access pattern
    /// really was inside the envelope (every element read-only or
    /// single-processor). Races may cause *conservative* failures, but
    /// never a missed conflict.
    #[test]
    fn nonpriv_never_misses_a_conflict(schedule in schedule_strategy(4, 16)) {
        let mut ms = small_system(4);
        ms.alloc_array(A, 64, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        ms.configure_loop(plan, IterationNumbering::iteration_wise());

        let mut now = Cycles(0);
        for a in &schedule {
            now += Cycles(a.gap as u64);
            let out = if a.write {
                ms.write(ProcId(a.proc as u32), A, a.elem as u64, now)
            } else {
                ms.read(ProcId(a.proc as u32), A, a.elem as u64, now)
            };
            now = now.max(out.complete_at);
        }
        ms.drain_all_messages();

        if ms.failure().is_none() {
            // No element may be both written and touched by two processors.
            for e in 0..16u8 {
                let procs: std::collections::BTreeSet<u8> = schedule
                    .iter()
                    .filter(|a| a.elem == e)
                    .map(|a| a.proc)
                    .collect();
                let wrote = schedule.iter().any(|a| a.elem == e && a.write);
                prop_assert!(
                    procs.len() <= 1 || !wrote,
                    "missed conflict on element {} (procs {:?})",
                    e,
                    procs
                );
            }
        }
    }

    /// With well-separated accesses (no in-flight races), the protocol is
    /// also *complete*: it passes exactly the envelope.
    #[test]
    fn nonpriv_exact_without_races(schedule in schedule_strategy(3, 12)) {
        let mut ms = small_system(3);
        ms.alloc_array(A, 64, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        ms.configure_loop(plan, IterationNumbering::iteration_wise());

        let mut now = Cycles(0);
        for a in &schedule {
            // Leave enough time for every update message to land.
            now += Cycles(2000);
            let out = if a.write {
                ms.write(ProcId(a.proc as u32), A, a.elem as u64, now)
            } else {
                ms.read(ProcId(a.proc as u32), A, a.elem as u64, now)
            };
            now = now.max(out.complete_at);
        }
        ms.drain_all_messages();

        let mut envelope_ok = true;
        for e in 0..12u8 {
            let procs: std::collections::BTreeSet<u8> = schedule
                .iter()
                .filter(|a| a.elem == e)
                .map(|a| a.proc)
                .collect();
            let wrote = schedule.iter().any(|a| a.elem == e && a.write);
            envelope_ok &= procs.len() <= 1 || !wrote;
        }
        prop_assert_eq!(ms.failure().is_none(), envelope_ok,
            "failure {:?}", ms.failure());
    }

    /// Privatization protocol under per-processor monotone iteration
    /// sequences: fails exactly iff some element's max read-first stamp
    /// exceeds its min write stamp (when accesses are race-free).
    #[test]
    fn priv_matches_stamp_oracle(
        // Per access: (proc, elem, write?); iterations advance per proc.
        accesses in proptest::collection::vec(
            (0u32..3, 0u64..8, any::<bool>(), any::<bool>()),
            0..40
        )
    ) {
        let mut ms = small_system(3);
        ms.alloc_array(A, 16, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::Priv { read_in: true, copy_out: false });
        ms.configure_loop(plan, IterationNumbering::iteration_wise());

        // Assign iterations round-robin: proc p executes iterations
        // p, p+3, p+6, ... in order; each access optionally advances the
        // processor to its next iteration.
        let mut iter_of = [0u64, 1, 2];
        let mut now = Cycles(0);
        // Oracle bookkeeping: per (proc, elem): last iteration that wrote.
        let mut wrote_in: std::collections::HashMap<(u32, u64), u64> = Default::default();
        let mut max_rf = [0u64; 8];
        let mut min_w = [u64::MAX; 8];
        let mut begun = [false; 3];

        for &(proc, elem, write, advance) in &accesses {
            if advance || !begun[proc as usize] {
                if begun[proc as usize] {
                    iter_of[proc as usize] += 3;
                }
                begun[proc as usize] = true;
                ms.begin_iteration(ProcId(proc), iter_of[proc as usize]);
            }
            now += Cycles(2000);
            let iter = iter_of[proc as usize];
            let stamp = iter + 1;
            let out = if write {
                wrote_in.insert((proc, elem), stamp);
                min_w[elem as usize] = min_w[elem as usize].min(stamp);
                ms.write(ProcId(proc), A, elem, now)
            } else {
                // Read-first iff this iteration has not written the element.
                if wrote_in.get(&(proc, elem)) != Some(&stamp) {
                    max_rf[elem as usize] = max_rf[elem as usize].max(stamp);
                }
                ms.read(ProcId(proc), A, elem, now)
            };
            now = now.max(out.complete_at);
        }
        ms.drain_all_messages();

        let oracle_fail = (0..8).any(|e| max_rf[e] > min_w[e]);
        prop_assert_eq!(ms.failure().is_some(), oracle_fail,
            "failure {:?}, max_rf {:?}, min_w {:?}", ms.failure(), max_rf, min_w);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The reduced no-read-in privatization mode (Figure 5-b) under
    /// race-free schedules: fails exactly iff some element is BOTH
    /// read-first (by some iteration) and written (in a different
    /// iteration or by a different processor) — the conservative
    /// mixed-use rule.
    #[test]
    fn priv_no_read_in_matches_mixed_use_rule(
        accesses in proptest::collection::vec(
            (0u32..3, 0u64..8, any::<bool>(), any::<bool>()),
            0..40
        )
    ) {
        let mut ms = small_system(3);
        ms.alloc_array(A, 16, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::Priv { read_in: false, copy_out: false });
        ms.configure_loop(plan, IterationNumbering::iteration_wise());

        let mut iter_of = [0u64, 1, 2];
        let mut begun = [false; 3];
        let mut now = Cycles(0);
        // Oracle per element: set of (proc, iter) writing; read-first marks.
        let mut writes: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 8];
        let mut read_firsts: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 8];
        let mut wrote_this_iter: std::collections::HashSet<(u32, u64, u64)> = Default::default();
        let mut read_this_iter: std::collections::HashSet<(u32, u64, u64)> = Default::default();

        for &(proc, elem, write, advance) in &accesses {
            if advance || !begun[proc as usize] {
                if begun[proc as usize] {
                    iter_of[proc as usize] += 3;
                }
                begun[proc as usize] = true;
                ms.begin_iteration(ProcId(proc), iter_of[proc as usize]);
            }
            now += Cycles(2000);
            let iter = iter_of[proc as usize];
            let out = if write {
                wrote_this_iter.insert((proc, iter, elem));
                writes[elem as usize].push((proc, iter));
                ms.write(ProcId(proc), A, elem, now)
            } else {
                if !wrote_this_iter.contains(&(proc, iter, elem))
                    && !read_this_iter.contains(&(proc, iter, elem))
                {
                    read_firsts[elem as usize].push((proc, iter));
                }
                read_this_iter.insert((proc, iter, elem));
                ms.read(ProcId(proc), A, elem, now)
            };
            prop_assert!(out.read_in.is_none(), "no-read-in mode must never read in");
            now = now.max(out.complete_at);
        }
        ms.drain_all_messages();

        // Oracle: element fails iff it has a read-first and a write that are
        // not confined to the same (proc, iteration)'s write-before-read...
        // precisely: exists read-first (p, i) and write (q, j) with
        // (p, i) != (q, j) covering both the cross-proc sticky rule and the
        // same-proc WriteAny rule — except a write *later in the same
        // iteration* than the read-first, which the reduced state cannot
        // order... it clears nothing: the shared AnyW/AnyR1st are sticky, so
        // any coexistence of a read-first and a write on an element fails
        // UNLESS they are the same iteration's read-then-write (the
        // read-first mark precedes the write and the private FAIL only
        // triggers for *earlier*-iteration writes; the shared store gets
        // both signals → fails). So: fails iff element has >= 1 read-first
        // and >= 1 write, except when the ONLY such pair is a same-proc
        // same-iteration read-then-write... which still sends both signals.
        // Net: fails iff some element has both a read-first and a write.
        let oracle_fail = (0..8).any(|e| {
            !read_firsts[e].is_empty() && !writes[e].is_empty()
        });
        prop_assert_eq!(ms.failure().is_some(), oracle_fail,
            "failure {:?}; rf {:?}; w {:?}", ms.failure(), read_firsts, writes);
    }
}
