//! Two identical runs of the memory system must produce byte-identical
//! invariant-walk/dump output. `MemSystem` keeps its iterable side tables
//! (`private_layouts`, the debug in-order bookkeeping) in ordered maps and
//! `dump()` sorts everything else, so host hash randomization can never
//! leak into debug output or undermine the fuzzer's `-j1` vs `-jN`
//! byte-identity gate from inside the memory system.

use specrt_cache::CacheConfig;
use specrt_engine::{Cycles, SplitMix64};
use specrt_ir::ArrayId;
use specrt_mem::{ElemSize, PlacementPolicy, ProcId};
use specrt_proto::{LatencyConfig, MemSystem, MemSystemConfig, NetConfig};
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

const A: ArrayId = ArrayId(0);
const B: ArrayId = ArrayId(1);

/// One deterministic mixed workload: a non-privatized array and a
/// privatized one (so private copies get allocated), randomized accesses
/// from a fixed seed, then a full drain.
fn run_once() -> (String, Option<specrt_spec::FailReason>) {
    let mut ms = MemSystem::new(MemSystemConfig {
        procs: 4,
        cache: CacheConfig {
            l1_lines: 8,
            l2_lines: 32,
        },
        latency: LatencyConfig::default(),
        dir_banks: 4,
        net: NetConfig::flat(),
        dirty_read_downgrades: false,
        retry: specrt_proto::RetryConfig::default(),
    });
    ms.alloc_array(A, 64, ElemSize::W8, PlacementPolicy::RoundRobin);
    ms.alloc_array(B, 64, ElemSize::W8, PlacementPolicy::RoundRobin);
    let mut plan = TestPlan::new();
    plan.set(A, ProtocolKind::NonPriv);
    plan.set(
        B,
        ProtocolKind::Priv {
            read_in: true,
            copy_out: false,
        },
    );
    ms.configure_loop(plan, IterationNumbering::iteration_wise());

    let mut rng = SplitMix64::new(0xd0_d0);
    let mut now = Cycles(0);
    for p in 0..4u32 {
        ms.begin_iteration(ProcId(p), p as u64);
    }
    for _ in 0..120 {
        now += Cycles(rng.below(500));
        let proc = ProcId(rng.below(4) as u32);
        let arr = if rng.chance(0.5) { A } else { B };
        let idx = rng.below(48);
        let out = if rng.chance(0.4) {
            ms.write(proc, arr, idx, now)
        } else {
            ms.read(proc, arr, idx, now)
        };
        now = now.max(out.complete_at);
    }
    ms.drain_all_messages();
    ms.assert_invariants();
    (ms.dump(), ms.failure().map(|(r, _)| r))
}

#[test]
fn identical_runs_dump_identically() {
    let (dump1, fail1) = run_once();
    let (dump2, fail2) = run_once();
    assert_eq!(fail1, fail2, "verdict must be reproducible");
    assert_eq!(dump1, dump2, "dump must be byte-identical across runs");
    // The dump actually covers the interesting state: directories, caches,
    // and at least one allocated private copy.
    assert!(
        dump1.contains("dir 0:"),
        "missing directory section:\n{dump1}"
    );
    assert!(
        dump1.contains("cache 3:"),
        "missing cache section:\n{dump1}"
    );
    assert!(
        !dump1.contains("private copies: 0"),
        "privatized array must have allocated private copies:\n{dump1}"
    );
}
