#![warn(missing_docs)]

//! # specrt-proto
//!
//! The DASH-like directory-based cache-coherence protocol of the simulated
//! CC-NUMA machine, extended with the paper's speculation hooks.
//!
//! Structure:
//!
//! * [`latency`] — the §5.1 latency model: round-trip times of 1 / 12 / 60 /
//!   208 / 291 cycles for L1, L2, local memory, 2-hop and 3-hop remote
//!   accesses, plus occupancy-based contention at directories and memory
//!   banks (the global network is a constant-latency abstraction, as in the
//!   paper);
//! * [`directory`] — per-node directory slices tracking each line as
//!   Uncached / Shared(sharers) / Dirty(owner);
//! * [`bits`] — the directory-side access-bit stores: the "dedicated memory
//!   that is close to the directory" of §4.1, holding
//!   [`NonPrivDirElem`](specrt_spec::NonPrivDirElem) /
//!   [`PrivSharedElem`](specrt_spec::PrivSharedElem) /
//!   [`PrivPrivateElem`](specrt_spec::PrivPrivateElem) state per element of
//!   each array under test;
//! * [`system`] — [`system::MemSystem`], the façade the machine
//!   layer talks to: every simulated load/store enters here and comes back
//!   with a completion time, possible read-in instructions, and possibly a
//!   speculation failure.
//!
//! Asynchronous protocol messages (`First_update`, `ROnly_update`,
//! read-first and first-write signals, `First_update_fail` bounces) travel
//! through an internal event queue with network latency, so the races that
//! the paper's algorithms (f)–(h) resolve actually occur in simulation.

pub mod bits;
pub mod directory;
pub mod latency;
pub mod system;

pub use directory::{DirLineState, DirectoryNode, SharerSet};
pub use latency::LatencyConfig;
pub use specrt_cache::CacheConfig;
pub use specrt_net::{
    Delivery, FaultAction, FaultConfig, FaultStats, LinkStat, NetConfig, NetSummary, Network,
    NodeFaultConfig, NodeFaultKind, Topology,
};
pub use specrt_trace::{HitKind, NullSink, RingBufferSink, TraceEvent, TraceSink, Tracer};
pub use system::{private_copy_id, AccessOutcome, MemSystem, MemSystemConfig, RetryConfig};
