//! The latency model of §5.1.
//!
//! "The round-trip latencies to the on-chip primary cache, secondary cache,
//! memory in the local node, memory in a remote node with 2 hops, and memory
//! in a remote node with 3 hops are 1, 12, 60, 208 and 291 cycles on average
//! respectively. These figures correspond to an unloaded machine; they
//! increase with resource contention."

use specrt_engine::Cycles;
use specrt_mem::NodeId;

/// Unloaded latencies and contention service times, in 200-MHz cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Round trip to the primary cache (hit).
    pub l1_hit: u64,
    /// Round trip to the secondary cache (hit).
    pub l2_hit: u64,
    /// Round trip to memory in the local node (miss served at home == local).
    pub local_mem: u64,
    /// Round trip to memory in a remote home, data at home (2 hops).
    pub remote_2hop: u64,
    /// Round trip when the line is dirty in a third node (3 hops).
    pub remote_3hop: u64,
    /// Extra latency when the data must be fetched from a dirty owner
    /// (applied on top of the 2-hop/local base; `remote_3hop` =
    /// `remote_2hop` + this).
    pub owner_fetch_extra: u64,
    /// Extra latency when sharers on other nodes must be invalidated
    /// (invalidations travel in parallel; one network round trip).
    pub invalidate_extra: u64,
    /// One-way network traversal for fire-and-forget protocol messages.
    pub net_oneway: u64,
    /// Directory + memory occupancy per data transaction (contention).
    pub mem_service: u64,
    /// Directory occupancy per access-bit update message (contention).
    pub update_service: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            l1_hit: 1,
            l2_hit: 12,
            local_mem: 60,
            remote_2hop: 208,
            remote_3hop: 291,
            owner_fetch_extra: 0,
            invalidate_extra: 40,
            net_oneway: 0,
            mem_service: 40,
            update_service: 10,
        }
        .derive()
    }
}

impl LatencyConfig {
    /// Recomputes the internal parameters from the paper's observable
    /// round-trip latencies, so that the structural invariants
    ///
    /// * `remote_2hop = local_mem + 2 · net_oneway` (a remote 2-hop miss
    ///   is a local miss plus a network round trip), and
    /// * `remote_3hop = remote_2hop + owner_fetch_extra`
    ///
    /// hold by construction. Call this after overriding any of the
    /// round-trip fields instead of hand-computing `net_oneway` /
    /// `owner_fetch_extra`.
    ///
    /// # Panics
    ///
    /// Panics if the round trips are not monotone
    /// (`local_mem <= remote_2hop <= remote_3hop`).
    pub fn derive(mut self) -> Self {
        assert!(
            self.local_mem <= self.remote_2hop && self.remote_2hop <= self.remote_3hop,
            "round-trip latencies must be monotone: local {} <= 2-hop {} <= 3-hop {}",
            self.local_mem,
            self.remote_2hop,
            self.remote_3hop
        );
        self.net_oneway = (self.remote_2hop - self.local_mem) / 2;
        self.owner_fetch_extra = self.remote_3hop - self.remote_2hop;
        self
    }
    /// One-way travel time between two nodes (0 within a node; the global
    /// network is a constant-latency abstraction).
    pub fn travel(&self, from: NodeId, to: NodeId) -> Cycles {
        if from == to {
            Cycles::ZERO
        } else {
            Cycles(self.net_oneway)
        }
    }

    /// Unloaded round-trip base for a miss from `requester` to `home`, with
    /// the data clean at home.
    pub fn miss_base(&self, requester: NodeId, home: NodeId) -> Cycles {
        if requester == home {
            Cycles(self.local_mem)
        } else {
            Cycles(self.remote_2hop)
        }
    }

    /// Unloaded round trip for a miss that must also fetch from a dirty
    /// owner on `owner`.
    pub fn miss_with_owner(&self, requester: NodeId, home: NodeId, owner: NodeId) -> Cycles {
        let base = self.miss_base(requester, home);
        if owner == requester || owner == home {
            // Owner co-located with an endpoint: the fetch is folded into an
            // existing hop; charge only half the extra.
            base + Cycles(self.owner_fetch_extra / 2)
        } else {
            base + Cycles(self.owner_fetch_extra)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);

    #[test]
    fn defaults_match_paper_table() {
        let c = LatencyConfig::default();
        assert_eq!(c.l1_hit, 1);
        assert_eq!(c.l2_hit, 12);
        assert_eq!(c.local_mem, 60);
        assert_eq!(c.remote_2hop, 208);
        assert_eq!(c.remote_3hop, 291);
    }

    #[test]
    fn derive_enforces_structural_invariants() {
        let c = LatencyConfig::default();
        // The defaults derive 74 and 83 — the values that used to be
        // hand-computed magic numbers.
        assert_eq!(c.net_oneway, 74);
        assert_eq!(c.owner_fetch_extra, 83);
        assert_eq!(c.remote_2hop, c.local_mem + 2 * c.net_oneway);
        assert_eq!(c.remote_3hop, c.remote_2hop + c.owner_fetch_extra);
        // Overriding a round trip and re-deriving keeps the invariants.
        let fast = LatencyConfig {
            local_mem: 40,
            remote_2hop: 140,
            remote_3hop: 200,
            ..c
        }
        .derive();
        assert_eq!(fast.net_oneway, 50);
        assert_eq!(fast.owner_fetch_extra, 60);
        assert_eq!(fast.remote_2hop, fast.local_mem + 2 * fast.net_oneway);
        assert_eq!(fast.remote_3hop, fast.remote_2hop + fast.owner_fetch_extra);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn derive_rejects_non_monotone_round_trips() {
        let _ = LatencyConfig {
            remote_2hop: 40,
            ..LatencyConfig::default()
        }
        .derive();
    }

    #[test]
    fn three_hop_is_two_hop_plus_owner_fetch() {
        let c = LatencyConfig::default();
        assert_eq!(
            c.miss_with_owner(N0, N1, N2),
            Cycles(c.remote_3hop),
            "remote home, third-party owner is the paper's 3-hop case"
        );
    }

    #[test]
    fn local_travel_is_free() {
        let c = LatencyConfig::default();
        assert_eq!(c.travel(N0, N0), Cycles::ZERO);
        assert_eq!(c.travel(N0, N1), Cycles(c.net_oneway));
    }

    #[test]
    fn miss_base_selects_local_vs_remote() {
        let c = LatencyConfig::default();
        assert_eq!(c.miss_base(N0, N0), Cycles(60));
        assert_eq!(c.miss_base(N0, N1), Cycles(208));
    }

    #[test]
    fn colocated_owner_cheaper_than_third_party() {
        let c = LatencyConfig::default();
        let colocated = c.miss_with_owner(N0, N1, N1);
        let third = c.miss_with_owner(N0, N1, N2);
        assert!(colocated < third);
        assert!(colocated > c.miss_base(N0, N1));
    }
}
