//! Directory-side access-bit stores — the "dedicated memory that is close to
//! the directory and is accessed at the same time as the directory" (§4.1).
//!
//! Logically the bits live in the directory slice of each element's home
//! node; we store them per array (contiguously, like the hardware's access
//! bit table indexed through the translation table) and compute the home
//! node only for timing.

use std::collections::HashMap;

use specrt_ir::ArrayId;
use specrt_mem::ProcId;
use specrt_spec::{
    NonPrivDirElem, PrivNoReadInPrivate, PrivNoReadInShared, PrivPrivateElem, PrivSharedElem,
};

/// Non-privatization directory state for every element of the arrays under
/// that test.
#[derive(Debug, Clone, Default)]
pub struct NonPrivStore {
    arrays: HashMap<ArrayId, Vec<NonPrivDirElem>>,
}

impl NonPrivStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        NonPrivStore::default()
    }

    /// Registers `arr` with `len` elements, all state clear.
    pub fn register(&mut self, arr: ArrayId, len: u64) {
        self.arrays
            .insert(arr, vec![NonPrivDirElem::default(); len as usize]);
    }

    /// Whether `arr` is registered.
    pub fn contains(&self, arr: ArrayId) -> bool {
        self.arrays.contains_key(&arr)
    }

    /// Element state accessor.
    ///
    /// # Panics
    ///
    /// Panics if the array is unregistered or the index out of range.
    pub fn elem(&self, arr: ArrayId, idx: u64) -> &NonPrivDirElem {
        &self.arrays[&arr][idx as usize]
    }

    /// Mutable element state accessor.
    ///
    /// # Panics
    ///
    /// Panics if the array is unregistered or the index out of range.
    pub fn elem_mut(&mut self, arr: ArrayId, idx: u64) -> &mut NonPrivDirElem {
        &mut self.arrays.get_mut(&arr).expect("array registered")[idx as usize]
    }

    /// Clears all state (loop start: "clearing the directory tags … with a
    /// system call").
    pub fn clear(&mut self) {
        for v in self.arrays.values_mut() {
            for e in v {
                e.clear();
            }
        }
    }
}

/// Shared-copy privatization stamps (`MaxR1st`/`MinW`) for privatized
/// arrays.
#[derive(Debug, Clone, Default)]
pub struct PrivSharedStore {
    arrays: HashMap<ArrayId, Vec<PrivSharedElem>>,
}

impl PrivSharedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PrivSharedStore::default()
    }

    /// Registers `arr` with `len` elements.
    pub fn register(&mut self, arr: ArrayId, len: u64) {
        self.arrays
            .insert(arr, vec![PrivSharedElem::default(); len as usize]);
    }

    /// Whether `arr` is registered.
    pub fn contains(&self, arr: ArrayId) -> bool {
        self.arrays.contains_key(&arr)
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if unregistered/out of range.
    pub fn elem(&self, arr: ArrayId, idx: u64) -> &PrivSharedElem {
        &self.arrays[&arr][idx as usize]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if unregistered/out of range.
    pub fn elem_mut(&mut self, arr: ArrayId, idx: u64) -> &mut PrivSharedElem {
        &mut self.arrays.get_mut(&arr).expect("array registered")[idx as usize]
    }

    /// Clears all stamps.
    pub fn clear(&mut self) {
        for v in self.arrays.values_mut() {
            for e in v {
                e.clear();
            }
        }
    }
}

/// Private-copy privatization stamps (`PMaxR1st`/`PMaxW`), one vector per
/// (array, processor).
#[derive(Debug, Clone, Default)]
pub struct PrivPrivateStore {
    copies: HashMap<(ArrayId, ProcId), Vec<PrivPrivateElem>>,
    // Sticky per-element "has been read in / written" marks. Unlike the
    // stamps, these survive §3.3 stamp-window resets: the private copy's
    // data remains valid across windows, so the read-in decision must not
    // re-trigger (it would reload stale shared data over private updates).
    touched: HashMap<(ArrayId, ProcId), Vec<bool>>,
}

impl PrivPrivateStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PrivPrivateStore::default()
    }

    /// Registers the private copy of `arr` for `proc` with `len` elements.
    pub fn register(&mut self, arr: ArrayId, proc: ProcId, len: u64) {
        self.copies
            .insert((arr, proc), vec![PrivPrivateElem::default(); len as usize]);
        self.touched.insert((arr, proc), vec![false; len as usize]);
    }

    /// Marks element `idx` as resident in the private copy (read in or
    /// written at some point in the loop).
    pub fn mark_touched(&mut self, arr: ArrayId, proc: ProcId, idx: u64) {
        self.touched
            .get_mut(&(arr, proc))
            .expect("private copy registered")[idx as usize] = true;
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if unregistered/out of range.
    pub fn elem(&self, arr: ArrayId, proc: ProcId, idx: u64) -> &PrivPrivateElem {
        &self.copies[&(arr, proc)][idx as usize]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if unregistered/out of range.
    pub fn elem_mut(&mut self, arr: ArrayId, proc: ProcId, idx: u64) -> &mut PrivPrivateElem {
        &mut self
            .copies
            .get_mut(&(arr, proc))
            .expect("private copy registered")[idx as usize]
    }

    /// Whether every element of `range` in the (array, proc) copy has never
    /// been read in or written — the read-in test over a whole memory line.
    /// Survives stamp-window resets.
    pub fn line_untouched(&self, arr: ArrayId, proc: ProcId, range: std::ops::Range<u64>) -> bool {
        let v = &self.touched[&(arr, proc)];
        range.clone().all(|i| !v[i as usize])
    }

    /// For copy-out: the processor holding the highest `PMaxW` for element
    /// `idx`, with that stamp, if anyone wrote it.
    pub fn last_writer(&self, arr: ArrayId, procs: u32, idx: u64) -> Option<(ProcId, u64)> {
        let mut best: Option<(ProcId, u64)> = None;
        for p in 0..procs {
            let proc = ProcId(p);
            if let Some(v) = self.copies.get(&(arr, proc)) {
                let stamp = v[idx as usize].pmax_w;
                if stamp > 0 && best.is_none_or(|(_, s)| stamp > s) {
                    best = Some((proc, stamp));
                }
            }
        }
        best
    }

    /// Clears only the stamps (a §3.3 stamp-window reset); the touched
    /// marks — and with them the read-in decisions — are preserved.
    pub fn clear_stamps(&mut self) {
        for v in self.copies.values_mut() {
            for e in v {
                e.clear();
            }
        }
    }

    /// Clears everything (loop start).
    pub fn clear(&mut self) {
        self.clear_stamps();
        for v in self.touched.values_mut() {
            for t in v {
                *t = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonpriv_store_round_trip() {
        let mut s = NonPrivStore::new();
        s.register(ArrayId(0), 4);
        assert!(s.contains(ArrayId(0)));
        s.elem_mut(ArrayId(0), 2).on_write_req(ProcId(1)).unwrap();
        assert_eq!(s.elem(ArrayId(0), 2).first, Some(ProcId(1)));
        s.clear();
        assert_eq!(s.elem(ArrayId(0), 2).first, None);
    }

    #[test]
    fn priv_shared_store_round_trip() {
        let mut s = PrivSharedStore::new();
        s.register(ArrayId(1), 3);
        s.elem_mut(ArrayId(1), 0).on_first_write(5).unwrap();
        assert!(s.elem(ArrayId(1), 0).written());
        s.clear();
        assert!(!s.elem(ArrayId(1), 0).written());
    }

    #[test]
    fn private_store_line_untouched() {
        let mut s = PrivPrivateStore::new();
        s.register(ArrayId(0), ProcId(0), 8);
        assert!(s.line_untouched(ArrayId(0), ProcId(0), 0..8));
        s.mark_touched(ArrayId(0), ProcId(0), 3);
        assert!(!s.line_untouched(ArrayId(0), ProcId(0), 0..8));
        assert!(s.line_untouched(ArrayId(0), ProcId(0), 4..8));
        // A stamp-window reset clears stamps but not residency.
        s.elem_mut(ArrayId(0), ProcId(0), 3)
            .on_first_write_signal(2);
        s.clear_stamps();
        assert!(s.elem(ArrayId(0), ProcId(0), 3).is_untouched());
        assert!(!s.line_untouched(ArrayId(0), ProcId(0), 0..8));
        s.clear();
        assert!(s.line_untouched(ArrayId(0), ProcId(0), 0..8));
    }

    #[test]
    fn last_writer_finds_max_stamp() {
        let mut s = PrivPrivateStore::new();
        for p in 0..3 {
            s.register(ArrayId(0), ProcId(p), 2);
        }
        s.elem_mut(ArrayId(0), ProcId(0), 0)
            .on_first_write_signal(2);
        s.elem_mut(ArrayId(0), ProcId(2), 0)
            .on_first_write_signal(7);
        assert_eq!(s.last_writer(ArrayId(0), 3, 0), Some((ProcId(2), 7)));
        assert_eq!(s.last_writer(ArrayId(0), 3, 1), None);
    }
}

/// Shared-directory reduced (no-read-in) privatization bits (Figure 5-b).
#[derive(Debug, Clone, Default)]
pub struct Priv3SharedStore {
    arrays: HashMap<ArrayId, Vec<PrivNoReadInShared>>,
}

impl Priv3SharedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Priv3SharedStore::default()
    }

    /// Registers `arr` with `len` elements.
    pub fn register(&mut self, arr: ArrayId, len: u64) {
        self.arrays
            .insert(arr, vec![PrivNoReadInShared::default(); len as usize]);
    }

    /// Whether `arr` is registered.
    pub fn contains(&self, arr: ArrayId) -> bool {
        self.arrays.contains_key(&arr)
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if unregistered/out of range.
    pub fn elem(&self, arr: ArrayId, idx: u64) -> &PrivNoReadInShared {
        &self.arrays[&arr][idx as usize]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if unregistered/out of range.
    pub fn elem_mut(&mut self, arr: ArrayId, idx: u64) -> &mut PrivNoReadInShared {
        &mut self.arrays.get_mut(&arr).expect("array registered")[idx as usize]
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        for v in self.arrays.values_mut() {
            for e in v {
                e.clear();
            }
        }
    }
}

/// Private-directory reduced (no-read-in) privatization bits
/// (`Read1st`/`Write`/`WriteAny`, §4.1).
#[derive(Debug, Clone, Default)]
pub struct Priv3PrivateStore {
    copies: HashMap<(ArrayId, ProcId), Vec<PrivNoReadInPrivate>>,
}

impl Priv3PrivateStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Priv3PrivateStore::default()
    }

    /// Registers the private copy of `arr` for `proc`.
    pub fn register(&mut self, arr: ArrayId, proc: ProcId, len: u64) {
        self.copies.insert(
            (arr, proc),
            vec![PrivNoReadInPrivate::default(); len as usize],
        );
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if unregistered/out of range.
    pub fn elem(&self, arr: ArrayId, proc: ProcId, idx: u64) -> &PrivNoReadInPrivate {
        &self.copies[&(arr, proc)][idx as usize]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if unregistered/out of range.
    pub fn elem_mut(&mut self, arr: ArrayId, proc: ProcId, idx: u64) -> &mut PrivNoReadInPrivate {
        &mut self
            .copies
            .get_mut(&(arr, proc))
            .expect("private copy registered")[idx as usize]
    }

    /// The hardware's per-iteration qualified reset: clears `Read1st` and
    /// `Write` (but not `WriteAny`) for every element of `proc`'s copies.
    pub fn clear_iteration_bits(&mut self, proc: ProcId) {
        for ((_, p), v) in self.copies.iter_mut() {
            if *p == proc {
                for e in v {
                    e.clear_iteration();
                }
            }
        }
    }

    /// Clears everything.
    pub fn clear(&mut self) {
        for v in self.copies.values_mut() {
            for e in v {
                e.clear();
            }
        }
    }
}

#[cfg(test)]
mod priv3_tests {
    use super::*;

    #[test]
    fn priv3_stores_round_trip() {
        let mut s = Priv3SharedStore::new();
        s.register(ArrayId(0), 2);
        assert!(s.contains(ArrayId(0)));
        s.elem_mut(ArrayId(0), 1).on_first_write().unwrap();
        assert!(s.elem_mut(ArrayId(0), 1).on_read_first().is_err());
        s.clear();
        s.elem_mut(ArrayId(0), 1).on_read_first().unwrap();

        let mut p = Priv3PrivateStore::new();
        p.register(ArrayId(0), ProcId(0), 2);
        p.elem_mut(ArrayId(0), ProcId(0), 0).on_write().unwrap();
        assert!(p.elem(ArrayId(0), ProcId(0), 0).write);
        p.clear_iteration_bits(ProcId(0));
        assert!(!p.elem(ArrayId(0), ProcId(0), 0).write);
        assert!(p.elem(ArrayId(0), ProcId(0), 0).write_any);
        p.clear();
        assert!(p.elem(ArrayId(0), ProcId(0), 0).is_untouched());
    }
}
