//! Directory line states (DASH-like full-map directory).
//!
//! Each node's directory slice tracks the lines homed in its memory module.
//! A line is *Uncached* (memory is the only copy), *Shared* (one or more
//! clean cached copies), or *Dirty* (exactly one cache owns a modified
//! copy). All transactions on a line serialize at its home directory, which
//! is what the paper's protocol extensions lean on to keep their data races
//! resolvable.

use std::collections::{BTreeSet, HashMap};

use specrt_mem::{LineAddr, ProcId};

/// Coherence state of one line at its home directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirLineState {
    /// No cached copies.
    Uncached,
    /// Clean copies at the given processors (never empty).
    Shared(BTreeSet<ProcId>),
    /// Modified copy owned by one processor.
    Dirty(ProcId),
}

impl DirLineState {
    /// The sharers if `Shared`, empty otherwise.
    pub fn sharers(&self) -> BTreeSet<ProcId> {
        match self {
            DirLineState::Shared(s) => s.clone(),
            _ => BTreeSet::new(),
        }
    }

    /// The owner if `Dirty`.
    pub fn owner(&self) -> Option<ProcId> {
        match self {
            DirLineState::Dirty(p) => Some(*p),
            _ => None,
        }
    }
}

/// One node's directory slice.
///
/// Lines not present in the map are `Uncached`; the map is populated lazily.
#[derive(Debug, Clone, Default)]
pub struct DirectoryNode {
    lines: HashMap<LineAddr, DirLineState>,
}

impl DirectoryNode {
    /// Creates an empty slice.
    pub fn new() -> Self {
        DirectoryNode::default()
    }

    /// Forgets every line (machine reuse), keeping map capacity.
    pub fn reset(&mut self) {
        self.lines.clear();
    }

    /// Current state of `line`.
    pub fn state(&self, line: LineAddr) -> DirLineState {
        self.lines
            .get(&line)
            .cloned()
            .unwrap_or(DirLineState::Uncached)
    }

    /// Records that `proc` now holds a clean copy (after a read fill or a
    /// dirty-to-shared downgrade).
    pub fn add_sharer(&mut self, line: LineAddr, proc: ProcId) {
        let state = self.lines.entry(line).or_insert(DirLineState::Uncached);
        match state {
            DirLineState::Uncached => {
                *state = DirLineState::Shared(BTreeSet::from([proc]));
            }
            DirLineState::Shared(s) => {
                s.insert(proc);
            }
            DirLineState::Dirty(owner) => {
                panic!("add_sharer({line}, {proc}) while dirty at {owner}");
            }
        }
    }

    /// Records that `proc` now owns the line exclusively (after a write
    /// fill/upgrade). Any previous sharers must already have been
    /// invalidated by the caller.
    pub fn set_dirty(&mut self, line: LineAddr, proc: ProcId) {
        self.lines.insert(line, DirLineState::Dirty(proc));
    }

    /// Downgrades a dirty line to shared by `procs` (after a write-back
    /// triggered by a read request: owner and requester both keep copies).
    ///
    /// # Panics
    ///
    /// Panics if the line was not dirty.
    pub fn downgrade_to_shared(&mut self, line: LineAddr, procs: BTreeSet<ProcId>) {
        assert!(
            matches!(self.state(line), DirLineState::Dirty(_)),
            "downgrade of non-dirty {line}"
        );
        assert!(
            !procs.is_empty(),
            "downgrade must leave at least one sharer"
        );
        self.lines.insert(line, DirLineState::Shared(procs));
    }

    /// Removes one sharer (cache replaced a clean line silently, or an
    /// invalidation completed). A line with no sharers left becomes
    /// `Uncached`.
    pub fn remove_sharer(&mut self, line: LineAddr, proc: ProcId) {
        if let Some(DirLineState::Shared(s)) = self.lines.get_mut(&line) {
            s.remove(&proc);
            if s.is_empty() {
                self.lines.insert(line, DirLineState::Uncached);
            }
        }
    }

    /// Records a dirty write-back without a new owner (displacement): the
    /// line becomes `Uncached`.
    ///
    /// # Panics
    ///
    /// Panics if the line was not dirty at `proc`.
    pub fn writeback_to_uncached(&mut self, line: LineAddr, proc: ProcId) {
        assert_eq!(
            self.state(line),
            DirLineState::Dirty(proc),
            "write-back of {line} from non-owner {proc}"
        );
        self.lines.insert(line, DirLineState::Uncached);
    }

    /// Forgets everything (caches were flushed).
    pub fn clear(&mut self) {
        self.lines.clear();
    }

    /// Number of tracked (non-`Uncached` or once-touched) lines.
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }

    /// Iterates over every line this slice has ever tracked with its current
    /// state (arbitrary order). Used by the coherence invariant checker.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &DirLineState)> + '_ {
        self.lines.iter().map(|(l, s)| (*l, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcId = ProcId(0);
    const P1: ProcId = ProcId(1);
    const L: LineAddr = LineAddr(7);

    #[test]
    fn lazily_uncached() {
        let d = DirectoryNode::new();
        assert_eq!(d.state(L), DirLineState::Uncached);
    }

    #[test]
    fn sharer_lifecycle() {
        let mut d = DirectoryNode::new();
        d.add_sharer(L, P0);
        d.add_sharer(L, P1);
        assert_eq!(d.state(L).sharers(), BTreeSet::from([P0, P1]));
        d.remove_sharer(L, P0);
        assert_eq!(d.state(L).sharers(), BTreeSet::from([P1]));
        d.remove_sharer(L, P1);
        assert_eq!(d.state(L), DirLineState::Uncached);
    }

    #[test]
    fn dirty_lifecycle() {
        let mut d = DirectoryNode::new();
        d.set_dirty(L, P0);
        assert_eq!(d.state(L).owner(), Some(P0));
        d.downgrade_to_shared(L, BTreeSet::from([P0, P1]));
        assert_eq!(d.state(L).sharers().len(), 2);
    }

    #[test]
    fn writeback_to_uncached_clears_owner() {
        let mut d = DirectoryNode::new();
        d.set_dirty(L, P1);
        d.writeback_to_uncached(L, P1);
        assert_eq!(d.state(L), DirLineState::Uncached);
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn writeback_from_wrong_owner_panics() {
        let mut d = DirectoryNode::new();
        d.set_dirty(L, P1);
        d.writeback_to_uncached(L, P0);
    }

    #[test]
    #[should_panic(expected = "while dirty")]
    fn add_sharer_to_dirty_panics() {
        let mut d = DirectoryNode::new();
        d.set_dirty(L, P0);
        d.add_sharer(L, P1);
    }

    #[test]
    fn clear_forgets() {
        let mut d = DirectoryNode::new();
        d.add_sharer(L, P0);
        d.clear();
        assert_eq!(d.tracked_lines(), 0);
        assert_eq!(d.state(L), DirLineState::Uncached);
    }
}
