//! Directory line states (DASH-like full-map directory).
//!
//! Each node's directory slice tracks the lines homed in its memory module.
//! A line is *Uncached* (memory is the only copy), *Shared* (one or more
//! clean cached copies), or *Dirty* (exactly one cache owns a modified
//! copy). All transactions on a line serialize at its home directory, which
//! is what the paper's protocol extensions lean on to keep their data races
//! resolvable.

use std::collections::HashMap;
use std::fmt;

use specrt_mem::{LineAddr, ProcId};

/// Full-map presence bits: the set of processors holding a clean copy.
///
/// The paper's directory is a DASH-style full bit-vector — one presence bit
/// per processor — so the model stores exactly that: a `u64` mask, bounded
/// to [`SharerSet::MAX_PROCS`] processors (asserted at insertion). Compared
/// to a heap-allocated set this keeps [`DirLineState`] `Copy`, which matters
/// because the directory is consulted on every coherence transaction — the
/// hottest path in the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// Hard bound on processor ids representable in the presence mask.
    pub const MAX_PROCS: u32 = 64;

    /// No sharers.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// The set containing exactly `proc`.
    pub fn single(proc: ProcId) -> SharerSet {
        let mut s = SharerSet::EMPTY;
        s.insert(proc);
        s
    }

    /// Adds `proc` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is outside the presence mask (`>= MAX_PROCS`).
    pub fn insert(&mut self, proc: ProcId) {
        assert!(
            proc.0 < Self::MAX_PROCS,
            "proc {proc} exceeds the {}-bit directory presence mask",
            Self::MAX_PROCS
        );
        self.0 |= 1 << proc.0;
    }

    /// Removes `proc` from the set (no-op if absent).
    pub fn remove(&mut self, proc: ProcId) {
        if proc.0 < Self::MAX_PROCS {
            self.0 &= !(1 << proc.0);
        }
    }

    /// Whether `proc` holds a copy.
    pub fn contains(self, proc: ProcId) -> bool {
        proc.0 < Self::MAX_PROCS && self.0 & (1 << proc.0) != 0
    }

    /// Number of sharers.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the sharers in ascending processor order.
    pub fn iter(self) -> SharerIter {
        SharerIter(self.0)
    }
}

/// Iterator over a [`SharerSet`]'s processors, ascending.
pub struct SharerIter(u64);

impl Iterator for SharerIter {
    type Item = ProcId;

    fn next(&mut self) -> Option<ProcId> {
        if self.0 == 0 {
            return None;
        }
        let p = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(ProcId(p))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl FromIterator<ProcId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = ProcId>>(iter: I) -> SharerSet {
        let mut s = SharerSet::EMPTY;
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl IntoIterator for SharerSet {
    type Item = ProcId;
    type IntoIter = SharerIter;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Debug for SharerSet {
    /// Renders like the set it replaced (`{ProcId(0), ProcId(2)}`) so dumps
    /// and debug output stay byte-stable across the representation change.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Coherence state of one line at its home directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirLineState {
    /// No cached copies.
    Uncached,
    /// Clean copies at the given processors (never empty).
    Shared(SharerSet),
    /// Modified copy owned by one processor.
    Dirty(ProcId),
}

impl DirLineState {
    /// The sharers if `Shared`, empty otherwise.
    pub fn sharers(&self) -> SharerSet {
        match self {
            DirLineState::Shared(s) => *s,
            _ => SharerSet::EMPTY,
        }
    }

    /// The owner if `Dirty`.
    pub fn owner(&self) -> Option<ProcId> {
        match self {
            DirLineState::Dirty(p) => Some(*p),
            _ => None,
        }
    }
}

/// One node's directory slice.
///
/// Lines not present in the map are `Uncached`; the map is populated lazily.
#[derive(Debug, Clone, Default)]
pub struct DirectoryNode {
    lines: HashMap<LineAddr, DirLineState>,
}

impl DirectoryNode {
    /// Creates an empty slice.
    pub fn new() -> Self {
        DirectoryNode::default()
    }

    /// Forgets every line (machine reuse), keeping map capacity.
    pub fn reset(&mut self) {
        self.lines.clear();
    }

    /// Current state of `line`.
    pub fn state(&self, line: LineAddr) -> DirLineState {
        self.lines
            .get(&line)
            .copied()
            .unwrap_or(DirLineState::Uncached)
    }

    /// Records that `proc` now holds a clean copy (after a read fill or a
    /// dirty-to-shared downgrade).
    pub fn add_sharer(&mut self, line: LineAddr, proc: ProcId) {
        let state = self.lines.entry(line).or_insert(DirLineState::Uncached);
        match state {
            DirLineState::Uncached => {
                *state = DirLineState::Shared(SharerSet::single(proc));
            }
            DirLineState::Shared(s) => {
                s.insert(proc);
            }
            DirLineState::Dirty(owner) => {
                panic!("add_sharer({line}, {proc}) while dirty at {owner}");
            }
        }
    }

    /// Records that `proc` now owns the line exclusively (after a write
    /// fill/upgrade). Any previous sharers must already have been
    /// invalidated by the caller.
    pub fn set_dirty(&mut self, line: LineAddr, proc: ProcId) {
        self.lines.insert(line, DirLineState::Dirty(proc));
    }

    /// Downgrades a dirty line to shared by `procs` (after a write-back
    /// triggered by a read request: owner and requester both keep copies).
    ///
    /// # Panics
    ///
    /// Panics if the line was not dirty.
    pub fn downgrade_to_shared(&mut self, line: LineAddr, procs: SharerSet) {
        assert!(
            matches!(self.state(line), DirLineState::Dirty(_)),
            "downgrade of non-dirty {line}"
        );
        assert!(
            !procs.is_empty(),
            "downgrade must leave at least one sharer"
        );
        self.lines.insert(line, DirLineState::Shared(procs));
    }

    /// Removes one sharer (cache replaced a clean line silently, or an
    /// invalidation completed). A line with no sharers left becomes
    /// `Uncached`.
    pub fn remove_sharer(&mut self, line: LineAddr, proc: ProcId) {
        if let Some(DirLineState::Shared(s)) = self.lines.get_mut(&line) {
            s.remove(proc);
            if s.is_empty() {
                self.lines.insert(line, DirLineState::Uncached);
            }
        }
    }

    /// Records a dirty write-back without a new owner (displacement): the
    /// line becomes `Uncached`.
    ///
    /// # Panics
    ///
    /// Panics if the line was not dirty at `proc`.
    pub fn writeback_to_uncached(&mut self, line: LineAddr, proc: ProcId) {
        assert_eq!(
            self.state(line),
            DirLineState::Dirty(proc),
            "write-back of {line} from non-owner {proc}"
        );
        self.lines.insert(line, DirLineState::Uncached);
    }

    /// Forgets everything (caches were flushed).
    pub fn clear(&mut self) {
        self.lines.clear();
    }

    /// Number of tracked (non-`Uncached` or once-touched) lines.
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }

    /// Iterates over every line this slice has ever tracked with its current
    /// state (arbitrary order). Used by the coherence invariant checker.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &DirLineState)> + '_ {
        self.lines.iter().map(|(l, s)| (*l, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcId = ProcId(0);
    const P1: ProcId = ProcId(1);
    const L: LineAddr = LineAddr(7);

    #[test]
    fn lazily_uncached() {
        let d = DirectoryNode::new();
        assert_eq!(d.state(L), DirLineState::Uncached);
    }

    #[test]
    fn sharer_lifecycle() {
        let mut d = DirectoryNode::new();
        d.add_sharer(L, P0);
        d.add_sharer(L, P1);
        assert_eq!(d.state(L).sharers(), SharerSet::from_iter([P0, P1]));
        d.remove_sharer(L, P0);
        assert_eq!(d.state(L).sharers(), SharerSet::single(P1));
        d.remove_sharer(L, P1);
        assert_eq!(d.state(L), DirLineState::Uncached);
    }

    #[test]
    fn dirty_lifecycle() {
        let mut d = DirectoryNode::new();
        d.set_dirty(L, P0);
        assert_eq!(d.state(L).owner(), Some(P0));
        d.downgrade_to_shared(L, SharerSet::from_iter([P0, P1]));
        assert_eq!(d.state(L).sharers().len(), 2);
    }

    #[test]
    fn writeback_to_uncached_clears_owner() {
        let mut d = DirectoryNode::new();
        d.set_dirty(L, P1);
        d.writeback_to_uncached(L, P1);
        assert_eq!(d.state(L), DirLineState::Uncached);
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn writeback_from_wrong_owner_panics() {
        let mut d = DirectoryNode::new();
        d.set_dirty(L, P1);
        d.writeback_to_uncached(L, P0);
    }

    #[test]
    #[should_panic(expected = "while dirty")]
    fn add_sharer_to_dirty_panics() {
        let mut d = DirectoryNode::new();
        d.set_dirty(L, P0);
        d.add_sharer(L, P1);
    }

    #[test]
    fn clear_forgets() {
        let mut d = DirectoryNode::new();
        d.add_sharer(L, P0);
        d.clear();
        assert_eq!(d.tracked_lines(), 0);
        assert_eq!(d.state(L), DirLineState::Uncached);
    }

    #[test]
    fn sharer_set_iterates_in_ascending_proc_order() {
        let s = SharerSet::from_iter([ProcId(5), ProcId(0), ProcId(63)]);
        let procs: Vec<ProcId> = s.iter().collect();
        assert_eq!(procs, vec![ProcId(0), ProcId(5), ProcId(63)]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(ProcId(5)));
        assert!(!s.contains(ProcId(6)));
    }

    #[test]
    fn sharer_set_debug_matches_set_notation() {
        let s = SharerSet::from_iter([ProcId(2), ProcId(0)]);
        assert_eq!(format!("{s:?}"), "{ProcId(0), ProcId(2)}");
        assert_eq!(format!("{:?}", SharerSet::EMPTY), "{}");
    }

    #[test]
    #[should_panic(expected = "presence mask")]
    fn sharer_set_rejects_out_of_range_proc() {
        let mut s = SharerSet::EMPTY;
        s.insert(ProcId(64));
    }
}
