//! [`MemSystem`]: the full memory system one simulated machine owns.
//!
//! Every simulated load/store enters through [`MemSystem::read`] /
//! [`MemSystem::write`] and returns an [`AccessOutcome`] carrying the
//! completion time (unloaded §5.1 latency plus queueing at the home
//! directory), an optional read-in order (privatization protocol), with any
//! speculation failure recorded on the system. Asynchronous access-bit
//! update messages travel through an internal event queue with network
//! latency, so update-vs-write races reach the directory exactly as in the
//! paper's algorithms (f)–(h).

use std::fmt::Write as _;
use std::ops::Range;

use specrt_cache::{CacheConfig, CacheHierarchy, ElemTag, HitLevel, LineState, LineTags, Victim};
use specrt_engine::{BankedResource, Cycles, EventQueue, StatSet};
use specrt_ir::ArrayId;
use specrt_mem::{ArrayLayout, ElemSize, LineAddr, NodeId, NumaAllocator, PlacementPolicy, ProcId};
use specrt_net::{Delivery, FaultAction, FaultStats, NetConfig, NetSummary, Network};
use specrt_spec::{
    CacheEmission, CacheEvent, DirElem, DirEmission, DirEvent, FailReason, IterationNumbering,
    NoReadInOutcome, PrivateEffect, PrivateEvent, ProtocolKind, ProtocolSpec, TestPlan,
};
use specrt_trace::{HitKind, TraceEvent, Tracer};

use crate::bits::{
    NonPrivStore, Priv3PrivateStore, Priv3SharedStore, PrivPrivateStore, PrivSharedStore,
};
use crate::directory::{DirLineState, DirectoryNode, SharerSet};
use crate::latency::LatencyConfig;

/// Reserved id space for per-processor private copies of privatized arrays.
const PRIVATE_ID_BASE: u32 = 0x8000_0000;

/// The [`ArrayId`] under which processor `proc`'s private copy of `arr` is
/// allocated. Workload arrays must keep their ids below `2^23`.
pub fn private_copy_id(arr: ArrayId, proc: ProcId) -> ArrayId {
    assert!(arr.0 < (1 << 23), "array id {arr} too large to privatize");
    assert!(proc.0 < 256, "processor id {proc} too large");
    ArrayId(PRIVATE_ID_BASE | (arr.0 << 8) | proc.0)
}

/// Executes the pure non-privatization cache-tag transition in place,
/// double-evaluating under `debug_assertions` to enforce
/// [`ProtocolSpec`]'s determinism contract at the tag layer (free function
/// because callers hold a tag borrow into the cache hierarchy).
fn spec_cache_step(tag: &mut ElemTag, dirty: bool, ev: CacheEvent) -> Option<CacheEmission> {
    let (next, em) = ProtocolSpec::cache_step(*tag, dirty, ev);
    debug_assert_eq!(
        (next, em),
        ProtocolSpec::cache_step(*tag, dirty, ev),
        "ProtocolSpec::cache_step must be deterministic"
    );
    *tag = next;
    em
}

/// Executes the pure privatization cache-tag transition in place,
/// returning whether a first-access signal must be raised.
fn spec_private_cache(tag: &mut ElemTag, write: bool) -> bool {
    let (next, signal) = if write {
        ProtocolSpec::private_cache_write(*tag)
    } else {
        ProtocolSpec::private_cache_read(*tag)
    };
    debug_assert_eq!(
        (next, signal),
        if write {
            ProtocolSpec::private_cache_write(*tag)
        } else {
            ProtocolSpec::private_cache_read(*tag)
        },
        "ProtocolSpec private cache steps must be deterministic"
    );
    *tag = next;
    signal
}

/// Result of one simulated memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// When the access completes (data available / store globally
    /// performed). Loads stall the processor until then; stores retire into
    /// the write buffer.
    pub complete_at: Cycles,
    /// For the privatization protocol: the element range of the accessed
    /// line that was just **read in** from the shared array. The functional
    /// layer must copy those shared values into the private copy.
    pub read_in: Option<Range<u64>>,
}

/// Configuration of the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSystemConfig {
    /// Number of processors (= nodes).
    pub procs: u32,
    /// Cache geometry per node.
    pub cache: CacheConfig,
    /// Latency model.
    pub latency: LatencyConfig,
    /// Directory banks per node (per-line serialization with cross-line
    /// parallelism).
    pub dir_banks: usize,
    /// Interconnect model. [`NetConfig::flat()`] (the default) reproduces
    /// the seed's constant-latency abstraction exactly; a mesh with finite
    /// link bandwidth makes the §5.1 latencies "increase with resource
    /// contention" as the paper says they do on a real machine.
    pub net: NetConfig,
    /// Sharing write-back: on a read request for a dirty line, the owner
    /// writes back and *keeps a clean shared copy* (classic DASH) instead of
    /// dropping it (invalidate-on-fetch, the default — simpler and usually
    /// better under the migratory sharing these loops exhibit). Access bits
    /// stay with the owner's retained copy either way.
    pub dirty_read_downgrades: bool,
    /// Timeout/retry policy for asynchronous protocol messages when the
    /// interconnect's fault plane is lossy. Irrelevant (never consulted)
    /// on a fault-free network.
    pub retry: RetryConfig,
}

/// Sender-side watchdog policy for asynchronous protocol update messages.
///
/// The paper assumes reliable delivery; under a lossy [`NetConfig`] fault
/// plane each update message gets a watchdog timer. If the (implicit)
/// directory acknowledgement does not come back within the timeout, the
/// sender retransmits with bounded exponential backoff; replay at the
/// directory is idempotent (duplicate `First_update`s serialize exactly as
/// race cases (f)/(g) dictate — at worst a redundant `Redundant`/bounce).
/// When every transmission is lost the watchdog escalates into the paper's
/// own safety net: [`specrt_spec::FailReason::MessageLost`] aborts the
/// speculative run, backups are restored, and the loop re-executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Cycles the watchdog waits before the first retransmission; each
    /// further attempt doubles the wait (exponential backoff).
    pub timeout: u64,
    /// Retransmissions attempted before escalating to an abort.
    pub max_retries: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            timeout: 512,
            max_retries: 4,
        }
    }
}

impl Default for MemSystemConfig {
    fn default() -> Self {
        MemSystemConfig {
            procs: 16,
            cache: CacheConfig::default(),
            latency: LatencyConfig::default(),
            dir_banks: 8,
            net: NetConfig::flat(),
            dirty_read_downgrades: false,
            retry: RetryConfig::default(),
        }
    }
}

#[derive(Debug, Clone)]
enum Msg {
    FirstUpdate {
        arr: ArrayId,
        idx: u64,
        sender: ProcId,
    },
    ROnlyUpdate {
        arr: ArrayId,
        idx: u64,
        sender: ProcId,
    },
    FirstUpdateFail {
        arr: ArrayId,
        idx: u64,
        target: ProcId,
    },
    PrivReadFirst {
        arr: ArrayId,
        idx: u64,
        iter: u64,
    },
    PrivFirstWrite {
        arr: ArrayId,
        idx: u64,
        iter: u64,
    },
}

/// The simulated machine's memory system: caches, directories, NUMA memory,
/// plain coherence, and the speculation protocol extensions.
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemSystemConfig,
    numa: NumaAllocator,
    plan: TestPlan,
    numbering: IterationNumbering,
    caches: Vec<CacheHierarchy>,
    dirs: Vec<DirectoryNode>,
    dir_banks: Vec<BankedResource>,
    net: Network,
    /// Emit [`TraceEvent::Net`] per routed message. Opt-in (and off by
    /// default) so the dense network stream never perturbs existing
    /// transaction-level golden traces.
    net_trace: bool,
    nonpriv: NonPrivStore,
    priv_shared: PrivSharedStore,
    priv_private: PrivPrivateStore,
    priv3_shared: Priv3SharedStore,
    priv3_private: Priv3PrivateStore,
    /// Private-copy layouts, `(array, per-processor slots)`. A flat
    /// linear-scan structure, not a map: the lookup sits on the hot
    /// per-access path of every privatized protocol and a loop tests a
    /// handful of arrays at most, so a scan beats tree traversal — and
    /// the per-proc slot is a direct index. [`Self::dump`] sorts at
    /// render time, so the conformance harness's byte-for-byte dump
    /// comparison is unaffected by insertion order.
    private_layouts: Vec<(ArrayId, Vec<Option<ArrayLayout>>)>,
    msgs: EventQueue<Msg>,
    failure: Option<(FailReason, Cycles)>,
    cur_eff_iter: Vec<u64>,
    stats: StatSet,
    test_enabled: bool,
    stamp_base: u64,
    trace_filter: Option<(u32, u64)>,
    tracer: Tracer,
    /// Scratch: queueing delay of the last directory transaction, read by
    /// the tracing path right after the dispatch that produced it.
    last_queue: Cycles,
    /// Scratch: which of the paper's race-case algorithms (a)–(h) the last
    /// dispatch took, for the transaction trace.
    last_case: Option<&'static str>,
    /// Scratch: abort context `(proc, arr, idx, iter)` of the access or
    /// message currently being processed, consumed by [`Self::fail`].
    cur_ctx: Option<(Option<u32>, u32, u64, Option<u64>)>,
    /// Debug-only shadow of the shared-directory stores, advanced through
    /// [`ProtocolSpec::dir_step`] in lock-step with the real state. Every
    /// spec step first checks the store still matches the shadow (nothing
    /// mutated protocol state behind the spec's back) and then records the
    /// successor the spec computed (the executor wrote back exactly that).
    /// Together with the double evaluation in the choke points below this
    /// enforces the spec's purity/determinism contract on every message of
    /// every debug run — the `assert_invariants` pattern.
    /// Flat per-array element vectors (grown on demand): the shadow is
    /// consulted on every debug-build spec step, and is only ever read
    /// point-wise — never iterated for output — so no ordered map is
    /// needed.
    #[cfg(debug_assertions)]
    spec_shadow: Vec<(ArrayId, Vec<Option<DirElem>>)>,
    /// Latest scheduled delivery time per `(src, dst)` node pair. On a
    /// fault-free network this only *asserts* (debug builds) the
    /// interconnect's in-order per-path guarantee — the computed arrival is
    /// never earlier. Under a lossy fault plane it becomes an active
    /// go-back-N clamp: a retransmitted or extra-delayed message raises the
    /// path's watermark, and every later message on the path delivers at or
    /// after it, preserving the §3.2 in-order assumption the protocol
    /// algorithms rely on. A flat `nodes × nodes` vector indexed
    /// `src * nodes + dst`: [`Self::deliver`] touches it for every
    /// asynchronous message, and node counts are small and fixed.
    msg_arrival: Vec<Cycles>,
}

impl MemSystem {
    /// Creates a memory system with no arrays allocated.
    pub fn new(cfg: MemSystemConfig) -> Self {
        assert!(
            cfg.procs <= SharerSet::MAX_PROCS,
            "{} procs exceed the directory's full-map presence mask",
            cfg.procs
        );
        let procs = cfg.procs as usize;
        MemSystem {
            numa: NumaAllocator::new(cfg.procs),
            plan: TestPlan::new(),
            numbering: IterationNumbering::iteration_wise(),
            caches: (0..procs).map(|_| CacheHierarchy::new(cfg.cache)).collect(),
            dirs: (0..procs).map(|_| DirectoryNode::new()).collect(),
            dir_banks: (0..procs)
                .map(|_| BankedResource::new(cfg.dir_banks))
                .collect(),
            net: Network::new(cfg.net, cfg.procs, cfg.latency.net_oneway),
            net_trace: false,
            nonpriv: NonPrivStore::new(),
            priv_shared: PrivSharedStore::new(),
            priv_private: PrivPrivateStore::new(),
            priv3_shared: Priv3SharedStore::new(),
            priv3_private: Priv3PrivateStore::new(),
            private_layouts: Vec::new(),
            msgs: EventQueue::new(),
            failure: None,
            cur_eff_iter: vec![0; procs],
            stats: StatSet::new(),
            test_enabled: true,
            stamp_base: 0,
            tracer: Tracer::off(),
            last_queue: Cycles(0),
            last_case: None,
            cur_ctx: None,
            #[cfg(debug_assertions)]
            spec_shadow: Vec::new(),
            msg_arrival: vec![Cycles(0); procs * procs],
            trace_filter: std::env::var("SPECRT_TRACE").ok().and_then(|v| {
                let parts: Vec<u64> = v.split(',').filter_map(|x| x.parse().ok()).collect();
                (parts.len() == 2).then(|| (parts[0] as u32, parts[1]))
            }),
            cfg,
        }
    }

    /// Number of processors.
    pub fn procs(&self) -> u32 {
        self.cfg.procs
    }

    /// The latency model in use.
    pub fn latency(&self) -> &LatencyConfig {
        &self.cfg.latency
    }

    /// Allocates a workload array.
    pub fn alloc_array(
        &mut self,
        arr: ArrayId,
        len: u64,
        elem: ElemSize,
        policy: PlacementPolicy,
    ) -> ArrayLayout {
        self.numa.alloc_array(arr, len, elem, policy)
    }

    /// Layout of a previously allocated array.
    ///
    /// # Panics
    ///
    /// Panics if the array was never allocated.
    pub fn layout(&self, arr: ArrayId) -> ArrayLayout {
        *self.numa.address_map().layout(arr)
    }

    /// Configures the speculation state for a new loop: assigns the test
    /// plan and iteration numbering, allocates private copies for
    /// privatized arrays (first time only), registers/clears all access-bit
    /// stores and cache access bits, and clears any recorded failure.
    pub fn configure_loop(&mut self, plan: TestPlan, numbering: IterationNumbering) {
        self.numbering = numbering;
        for (arr, kind) in plan.arrays_under_test() {
            let layout = self.layout(arr);
            match kind {
                ProtocolKind::NonPriv => {
                    if !self.nonpriv.contains(arr) {
                        self.nonpriv.register(arr, layout.len);
                    }
                }
                ProtocolKind::Priv { read_in, copy_out } => {
                    let reduced = !read_in && !copy_out;
                    let registered = if reduced {
                        self.priv3_shared.contains(arr)
                    } else {
                        self.priv_shared.contains(arr)
                    };
                    if !registered {
                        if reduced {
                            // Figure 5-b: the no-read-in/no-copy-out state.
                            self.priv3_shared.register(arr, layout.len);
                        } else {
                            self.priv_shared.register(arr, layout.len);
                        }
                        for p in 0..self.cfg.procs {
                            let proc = ProcId(p);
                            if self.private_layout_get(arr, proc).is_none() {
                                let pid = private_copy_id(arr, proc);
                                let playout = self.numa.alloc_array(
                                    pid,
                                    layout.len,
                                    layout.elem,
                                    PlacementPolicy::Local(proc.node()),
                                );
                                self.private_layout_set(arr, proc, playout);
                            }
                            if reduced {
                                self.priv3_private.register(arr, proc, layout.len);
                            } else {
                                self.priv_private.register(arr, proc, layout.len);
                            }
                        }
                    }
                }
                ProtocolKind::Plain => {}
            }
        }
        self.plan = plan;
        self.nonpriv.clear();
        self.priv_shared.clear();
        self.priv_private.clear();
        self.priv3_shared.clear();
        self.priv3_private.clear();
        #[cfg(debug_assertions)]
        self.spec_shadow.clear();
        // Hardware tag reset at loop start: every resident line gets fresh
        // access bits sized for the protocol it now runs under (lines may
        // have been cached by pre-loop phases under a different plan).
        for c in &mut self.caches {
            c.clear_all_access_bits();
        }
        let mut retags: Vec<(usize, specrt_mem::LineAddr, LineTags)> = Vec::new();
        for (ci, c) in self.caches.iter().enumerate() {
            for line in c.resident() {
                let tags = self.fresh_tags_for_line(line);
                retags.push((ci, line, tags));
            }
        }
        for (ci, line, tags) in retags {
            self.caches[ci].set_tags(line, tags);
        }
        self.failure = None;
        self.test_enabled = true;
        self.stamp_base = 0;
        for e in &mut self.cur_eff_iter {
            *e = 0;
        }
    }

    /// The test plan currently configured.
    pub fn plan(&self) -> &TestPlan {
        &self.plan
    }

    /// Enables or disables the dependence *test* while keeping the data
    /// paths (privatized routing, read-in) intact. Used by the paper's
    /// `Ideal` scenario: "the doall execution of the loop without any tests
    /// for correctness" (§6). Disabled tests send no update messages and
    /// record no failures.
    pub fn set_test_enabled(&mut self, on: bool) {
        self.test_enabled = on;
    }

    /// Marks the start of `global_iter` (0-based) on `proc`: computes the
    /// effective stamp and, on a superiteration boundary, clears the
    /// per-iteration cache access bits (the hardware's qualified reset).
    pub fn begin_iteration(&mut self, proc: ProcId, global_iter: u64) {
        debug_assert!(
            global_iter >= self.stamp_base,
            "iteration {global_iter} precedes the stamp window base {}",
            self.stamp_base
        );
        let eff = self.numbering.effective(global_iter - self.stamp_base);
        let slot = &mut self.cur_eff_iter[proc.0 as usize];
        if *slot != eff {
            *slot = eff;
            self.caches[proc.0 as usize].clear_iteration_bits();
            // Figure 5-b mode: the private directory's Read1st/Write bits
            // are "cleared at the beginning of each iteration" (§4.1).
            self.priv3_private.clear_iteration_bits(proc);
        }
    }

    /// Starts recording protocol events (accesses, speculative state
    /// transitions, delivered access-bit messages, aborts) into a ring
    /// buffer keeping the most recent `capacity` events. Useful for
    /// debugging protocol interleavings and for the `protocol_trace`
    /// example. Shorthand for `set_tracer(Tracer::ring(capacity))`.
    pub fn enable_event_trace(&mut self, capacity: usize) {
        self.tracer = Tracer::ring(capacity);
    }

    /// Installs a tracer (any [`specrt_trace::TraceSink`] behind it).
    /// `Tracer::off()` disables tracing; disabled tracing costs one flag
    /// check per access.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the installed tracer, so higher layers (scheduler,
    /// executor) can emit their events into the same stream.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Takes the recorded events, leaving tracing enabled with an empty
    /// buffer.
    pub fn take_event_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.drain()
    }

    /// §3.3 stamp-overflow resynchronization point: all processors have
    /// synchronized after `base` iterations; the privatization time stamps
    /// reset to zero and subsequent effective iteration numbers are
    /// relative to `base`. Sound because the synchronizing barrier orders
    /// every earlier iteration before every later one, so dependences that
    /// cross the window boundary are satisfied, not violations.
    pub fn reset_stamp_window(&mut self, base: u64) {
        self.stamp_base = base;
        self.priv_shared.clear();
        // The touched marks go too, not just the stamps: the barrier
        // commits the prefix (the machine layer folds the winners into
        // shared memory), so every stamped private copy is stale — another
        // processor's committed write may supersede it, and the shared
        // directory that would have caught the conflict was just cleared.
        // The next access must re-run the read-in decision against the
        // committed shared data.
        self.priv_private.clear();
        #[cfg(debug_assertions)]
        self.spec_shadow.clear();
        for e in &mut self.cur_eff_iter {
            *e = 0;
        }
        for c in &mut self.caches {
            c.clear_iteration_bits();
        }
        // Discard resident private-copy lines of the *stamped*
        // privatization protocol for the same reason: a window-2 cache hit
        // on a window-1 line would serve pre-commit data. Eviction is
        // state-only here; the re-fetch misses of the next window carry
        // the timing cost. The no-read-in variant keeps its lines — its
        // sticky bits survive the reset, so cross-window conflicts are
        // still detected and an undetected private value is by
        // construction the processor's own.
        let mut stale: Vec<(usize, LineAddr)> = Vec::new();
        for (arr, per_proc) in &self.private_layouts {
            match self.plan.kind_of(*arr) {
                ProtocolKind::Priv { read_in, copy_out } if read_in || copy_out => {}
                _ => continue,
            }
            for (p, layout) in per_proc.iter().enumerate() {
                let Some(layout) = layout else { continue };
                let first = layout.base.line().0;
                for line in first..first + layout.line_count() {
                    stale.push((p, LineAddr(line)));
                }
            }
        }
        for (p, line) in stale {
            if let Some((state, _tags)) = self.caches[p].invalidate(line) {
                // State-only directory bookkeeping (the quiescent-barrier
                // analogue of `retire_victim`, with no routing charge): a
                // private line's authoritative stamps live in the private
                // store, so no tag merge is needed.
                let home = self.numa.home_of(line.base());
                let proc = ProcId(p as u32);
                if state == LineState::Dirty {
                    if self.dirs[home.0 as usize].state(line) == DirLineState::Dirty(proc) {
                        self.dirs[home.0 as usize].writeback_to_uncached(line, proc);
                    }
                } else {
                    self.dirs[home.0 as usize].remove_sharer(line, proc);
                }
            }
        }
        self.stats.incr("stamp_window_resets");
    }

    /// Abort-side reset: re-arms the speculation hardware for a fresh
    /// speculative attempt after an abort
    /// (`RecoveryPolicy::RetrySpeculative`). Drops every in-flight protocol
    /// message (the abort broadcast quashes them), clears the recorded
    /// failure, every access-bit store on both the directory and cache
    /// sides, and the per-path delivery watermarks. Statistics and the
    /// fault plane's RNG stream are deliberately *not* reset: counters keep
    /// accumulating across attempts, and the re-run draws fresh fault
    /// decisions — a transient message loss need not repeat.
    pub fn reset_speculation(&mut self) {
        self.msgs.clear();
        self.failure = None;
        self.stamp_base = 0;
        self.nonpriv.clear();
        self.priv_shared.clear();
        self.priv_private.clear();
        self.priv3_shared.clear();
        self.priv3_private.clear();
        #[cfg(debug_assertions)]
        self.spec_shadow.clear();
        for e in &mut self.cur_eff_iter {
            *e = 0;
        }
        for c in &mut self.caches {
            c.clear_all_access_bits();
        }
        self.msg_arrival.fill(Cycles(0));
        self.stats.incr("retry.speculative_reruns");
    }

    /// Returns the system to the state of a fresh [`MemSystem::new`] with
    /// the same configuration, while keeping the big containers' allocated
    /// capacity (cache slot vectors, line/tag maps, directory maps). This
    /// is the machine-reuse path: a pooled worker serving many requests
    /// resets instead of reconstructing, eliminating the per-case
    /// `machine.setup` rebuild named by the host profile.
    ///
    /// Everything observable must replay exactly as on a fresh system —
    /// the serving layer's byte-identity guarantee (cold = warm = any job
    /// count) rides on it:
    /// * the NUMA allocator rewinds to page 1 / node 0, so array addresses
    ///   and placements repeat;
    /// * the fault plane rewinds to its configured seed, so fault-injected
    ///   runs repeat;
    /// * the speculative stores are **reconstructed**, not just cleared —
    ///   their per-array registrations (keyed by `ArrayId`, sized at
    ///   registration) would otherwise leak stale lengths into the next
    ///   request;
    /// * stats, traces and scratch all zero; the tracer is detached
    ///   (re-enable per request via [`MemSystem::enable_event_trace`]).
    ///
    /// The env-derived `SPECRT_TRACE` filter survives: it is host
    /// configuration, not per-run state.
    pub fn reset_for_reuse(&mut self) {
        let procs = self.cfg.procs as usize;
        self.numa.reset();
        self.plan = TestPlan::new();
        self.numbering = IterationNumbering::iteration_wise();
        for c in &mut self.caches {
            c.reset();
        }
        for d in &mut self.dirs {
            d.reset();
        }
        for b in &mut self.dir_banks {
            b.reset();
        }
        self.net.reset();
        self.net_trace = false;
        self.nonpriv = NonPrivStore::new();
        self.priv_shared = PrivSharedStore::new();
        self.priv_private = PrivPrivateStore::new();
        self.priv3_shared = Priv3SharedStore::new();
        self.priv3_private = Priv3PrivateStore::new();
        #[cfg(debug_assertions)]
        self.spec_shadow.clear();
        self.private_layouts.clear();
        self.msgs.clear();
        self.failure = None;
        self.cur_eff_iter.clear();
        self.cur_eff_iter.resize(procs, 0);
        self.stats.reset();
        self.test_enabled = true;
        self.stamp_base = 0;
        self.tracer = Tracer::off();
        self.last_queue = Cycles(0);
        self.last_case = None;
        self.cur_ctx = None;
        self.msg_arrival.fill(Cycles(0));
    }

    /// The recorded speculation failure, if any.
    pub fn failure(&self) -> Option<(FailReason, Cycles)> {
        self.failure
    }

    /// Delivers every pending asynchronous protocol message (loop end: the
    /// test only passes once all in-flight updates have been checked).
    pub fn drain_all_messages(&mut self) {
        let _prof = specrt_prof::scope("proto.drain_all");
        while let Some(t) = self.msgs.peek_time() {
            self.drain_messages(t);
        }
        #[cfg(debug_assertions)]
        self.assert_invariants();
    }

    /// Checks the directory/cache coherence invariant at a quiescent point:
    /// a line the directory calls `Dirty(owner)` must be held dirty by
    /// exactly that cache and no other, a `Shared` line's sharers must each
    /// hold a non-dirty copy, and conversely every dirty cached line must be
    /// registered as `Dirty` at its home directory. Cheap enough to run
    /// after every drain; the conformance harness and debug builds call it
    /// whenever the message queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if any of the above invariants is violated.
    pub fn assert_invariants(&self) {
        for (node, dir) in self.dirs.iter().enumerate() {
            for (line, state) in dir.iter() {
                match state {
                    DirLineState::Uncached => {}
                    DirLineState::Shared(sharers) => {
                        for p in sharers.iter() {
                            let st = self.caches[p.0 as usize].state_of(line);
                            assert!(
                                st.is_some() && st != Some(LineState::Dirty),
                                "dir {node}: {line} shared by {p} but cache state is {st:?}"
                            );
                        }
                    }
                    DirLineState::Dirty(owner) => {
                        assert_eq!(
                            self.caches[owner.0 as usize].state_of(line),
                            Some(LineState::Dirty),
                            "dir {node}: {line} dirty at {owner} but cache disagrees"
                        );
                        for (p, cache) in self.caches.iter().enumerate() {
                            if p as u32 != owner.0 {
                                assert_eq!(
                                    cache.state_of(line),
                                    None,
                                    "dir {node}: {line} dirty at {owner} but also cached by proc {p}"
                                );
                            }
                        }
                    }
                }
            }
        }
        for (p, cache) in self.caches.iter().enumerate() {
            for line in cache.resident() {
                if cache.state_of(line) == Some(LineState::Dirty) {
                    let home = self.numa.home_of(line.base());
                    assert_eq!(
                        self.dirs[home.0 as usize].state(line),
                        DirLineState::Dirty(ProcId(p as u32)),
                        "proc {p}: {line} dirty in cache but home dir {home} disagrees"
                    );
                }
            }
        }
    }

    /// Renders the coherence-visible state of the whole memory system as a
    /// deterministic multi-line string: per-node directory lines (sorted by
    /// address), per-processor resident lines with their coherence state,
    /// and the private-copy layout table. Two runs of the same deterministic
    /// simulation produce byte-identical dumps — the conformance harness
    /// pins that, so host hash randomization can never leak into debug
    /// output, golden files, or the `-j1` vs `-jN` determinism gate.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (node, dir) in self.dirs.iter().enumerate() {
            let mut lines: Vec<(LineAddr, &DirLineState)> = dir.iter().collect();
            lines.sort_by_key(|(l, _)| *l);
            let _ = writeln!(out, "dir {node}: {} tracked", lines.len());
            for (line, state) in lines {
                let _ = writeln!(out, "  {line} {state:?}");
            }
        }
        for (p, cache) in self.caches.iter().enumerate() {
            let resident = cache.resident();
            let _ = writeln!(out, "cache {p}: {} resident", resident.len());
            for line in resident {
                let _ = writeln!(out, "  {line} {:?}", cache.state_of(line));
            }
        }
        // Sort-at-dump: the live structure is a flat scan-ordered vector;
        // the rendered table keeps the historical (array, proc) key order.
        let mut privs: Vec<(ArrayId, ProcId, &ArrayLayout)> = Vec::new();
        for (arr, per_proc) in &self.private_layouts {
            for (p, layout) in per_proc.iter().enumerate() {
                if let Some(layout) = layout {
                    privs.push((*arr, ProcId(p as u32), layout));
                }
            }
        }
        privs.sort_by_key(|&(arr, proc, _)| (arr, proc));
        let _ = writeln!(out, "private copies: {}", privs.len());
        for (arr, proc, layout) in privs {
            let _ = writeln!(out, "  {arr} @ {proc}: {layout:?}");
        }
        out
    }

    /// Empties all caches (the paper flushes caches after every loop
    /// invocation). Dirty victims are written back, merging access bits.
    pub fn flush_caches(&mut self, now: Cycles) {
        for p in 0..self.cfg.procs {
            let proc = ProcId(p);
            let victims = self.caches[p as usize].flush();
            for v in victims {
                self.retire_victim(proc, v, now);
            }
        }
        for d in &mut self.dirs {
            d.clear();
        }
        self.stats.incr("cache_flushes");
    }

    /// Aggregate protocol statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Bumps one statistics counter from outside the protocol layer — the
    /// machine-side recovery machinery (checkpoint snapshots/restores)
    /// records its counters into the same [`StatSet`] the run reports.
    pub fn incr_stat(&mut self, key: &'static str) {
        self.stats.incr(key);
    }

    /// The interconnect in use.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Snapshot of the interconnect's traffic (messages, hops, queueing,
    /// per-link occupancy).
    pub fn net_summary(&self) -> NetSummary {
        self.net.summary()
    }

    /// Faults the interconnect's fault plane has injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.net.fault_stats()
    }

    /// Enables/disables per-message [`TraceEvent::Net`] emission (off by
    /// default; requires a tracer to be installed to have any effect).
    pub fn set_net_trace(&mut self, on: bool) {
        self.net_trace = on;
    }

    /// `(l1_hits, l2_hits, misses)` summed over all processors.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        self.caches
            .iter()
            .map(CacheHierarchy::hit_stats)
            .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z))
    }

    /// For copy-out: the processor whose private copy holds the last write
    /// of element `idx` of privatized array `arr`.
    pub fn copy_out_winner(&self, arr: ArrayId, idx: u64) -> Option<ProcId> {
        self.priv_private
            .last_writer(arr, self.cfg.procs, idx)
            .map(|(p, _)| p)
    }

    // ------------------------------------------------------------------
    // Access entry points
    // ------------------------------------------------------------------

    /// Simulates a load of `arr[idx]` by `proc` issued at `now`.
    pub fn read(&mut self, proc: ProcId, arr: ArrayId, idx: u64, now: Cycles) -> AccessOutcome {
        self.access(proc, arr, idx, now, false)
    }

    /// Simulates a store to `arr[idx]` by `proc` issued at `now`.
    pub fn write(&mut self, proc: ProcId, arr: ArrayId, idx: u64, now: Cycles) -> AccessOutcome {
        self.access(proc, arr, idx, now, true)
    }

    fn access(
        &mut self,
        proc: ProcId,
        arr: ArrayId,
        idx: u64,
        now: Cycles,
        is_write: bool,
    ) -> AccessOutcome {
        let _prof = specrt_prof::scope("proto.access");
        self.trace(proc, arr, idx, now, if is_write { "write" } else { "read" });
        self.drain_messages(now);
        let enabled = self.tracer.enabled();
        let (hit, pre) = if enabled {
            self.last_queue = Cycles(0);
            self.last_case = None;
            let iter = self
                .plan
                .kind_of(arr)
                .is_privatized()
                .then(|| self.cur_eff_iter[proc.0 as usize]);
            self.cur_ctx = Some((Some(proc.0), arr.0, idx, iter));
            (
                self.probe_hit(proc, arr, idx),
                self.spec_state_label(arr, idx),
            )
        } else {
            (HitKind::Miss, None)
        };
        let out = match (self.plan.kind_of(arr), is_write) {
            (ProtocolKind::Plain, w) => self.plain_access(proc, arr, idx, now, w),
            (ProtocolKind::NonPriv, false) => self.nonpriv_read(proc, arr, idx, now),
            (ProtocolKind::NonPriv, true) => self.nonpriv_write(proc, arr, idx, now),
            (ProtocolKind::Priv { read_in, copy_out }, w) if !read_in && !copy_out => {
                if w {
                    self.priv3_write(proc, arr, idx, now)
                } else {
                    self.priv3_read(proc, arr, idx, now)
                }
            }
            (ProtocolKind::Priv { .. }, false) => self.priv_read(proc, arr, idx, now),
            (ProtocolKind::Priv { .. }, true) => self.priv_write(proc, arr, idx, now),
        };
        if enabled {
            let home = self.trace_home(proc, arr, idx);
            self.tracer.emit(TraceEvent::Transaction {
                at: now,
                proc: proc.0,
                arr: arr.0,
                idx,
                write: is_write,
                hit,
                home,
                queue: self.last_queue,
                complete: out.complete_at,
                case: self.last_case,
            });
            self.emit_spec_transition(now, Some(proc.0), arr, idx, pre);
            self.cur_ctx = None;
        }
        out
    }

    /// What level `arr[idx]` would hit in `proc`'s caches (for tracing only;
    /// does not count as an access).
    fn probe_hit(&self, proc: ProcId, arr: ArrayId, idx: u64) -> HitKind {
        let layout = if self.plan.kind_of(arr).is_privatized() {
            match self.private_layout_get(arr, proc) {
                Some(l) => *l,
                None => return HitKind::Miss,
            }
        } else {
            self.layout(arr)
        };
        let line = layout.addr_of(idx).line();
        match self.caches[proc.0 as usize].probe(line) {
            HitLevel::L1 => HitKind::L1,
            HitLevel::L2 => HitKind::L2,
            HitLevel::Miss => HitKind::Miss,
        }
    }

    /// Home node of the address `proc` actually accesses for `arr[idx]`
    /// (the local private copy for privatized arrays).
    fn trace_home(&self, proc: ProcId, arr: ArrayId, idx: u64) -> u32 {
        if self.plan.kind_of(arr).is_privatized() {
            match self.private_layout_get(arr, proc) {
                Some(l) => self.numa.home_of(l.addr_of(idx)).0,
                None => proc.node().0,
            }
        } else {
            self.shared_elem_home(arr, idx).0
        }
    }

    /// Rendered speculative directory state of `arr[idx]` under the current
    /// plan, if the array is under test.
    fn spec_state_label(&self, arr: ArrayId, idx: u64) -> Option<(&'static str, String)> {
        match self.plan.kind_of(arr) {
            ProtocolKind::NonPriv if self.nonpriv.contains(arr) => {
                Some(("nonpriv", self.nonpriv.elem(arr, idx).state_label()))
            }
            ProtocolKind::Priv { read_in, copy_out }
                if !read_in && !copy_out && self.priv3_shared.contains(arr) =>
            {
                Some((
                    "priv-noreadin",
                    self.priv3_shared.elem(arr, idx).state_label(),
                ))
            }
            ProtocolKind::Priv { .. } if self.priv_shared.contains(arr) => {
                Some(("priv", self.priv_shared.elem(arr, idx).state_label()))
            }
            _ => None,
        }
    }

    /// Emits a [`TraceEvent::SpecTransition`] if the shared directory state
    /// of `arr[idx]` differs from the `pre`-dispatch snapshot.
    fn emit_spec_transition(
        &mut self,
        at: Cycles,
        proc: Option<u32>,
        arr: ArrayId,
        idx: u64,
        pre: Option<(&'static str, String)>,
    ) {
        let Some((protocol, from)) = pre else {
            return;
        };
        let Some((_, to)) = self.spec_state_label(arr, idx) else {
            return;
        };
        if from == to {
            return;
        }
        let iter = self.cur_ctx.and_then(|(_, _, _, iter)| iter);
        self.tracer.emit(TraceEvent::SpecTransition {
            at,
            proc: proc.unwrap_or(u32::MAX),
            arr: arr.0,
            idx,
            protocol,
            from,
            to,
            iter,
        });
    }

    // ------------------------------------------------------------------
    // Plain coherence
    // ------------------------------------------------------------------

    fn plain_access(
        &mut self,
        proc: ProcId,
        arr: ArrayId,
        idx: u64,
        now: Cycles,
        is_write: bool,
    ) -> AccessOutcome {
        let layout = self.layout(arr);
        let line = layout.addr_of(idx).line();
        let level = self.caches[proc.0 as usize].access(line);
        let complete_at = match (level, is_write) {
            (HitLevel::L1, false) => now + Cycles(self.cfg.latency.l1_hit),
            (HitLevel::L2, false) => now + Cycles(self.cfg.latency.l2_hit),
            (HitLevel::Miss, false) => self.fetch_line(proc, line, false, LineTags::empty(), now),
            (_, true) => {
                let dirty = self.caches[proc.0 as usize].state_of(line) == Some(LineState::Dirty);
                match (level, dirty) {
                    (HitLevel::Miss, _) => {
                        self.fetch_line(proc, line, true, LineTags::empty(), now)
                    }
                    (_, true) => {
                        now + Cycles(if level == HitLevel::L1 {
                            self.cfg.latency.l1_hit
                        } else {
                            self.cfg.latency.l2_hit
                        })
                    }
                    (_, false) => self.upgrade_line(proc, line, LineTags::empty(), now),
                }
            }
        };
        AccessOutcome {
            complete_at,
            read_in: None,
        }
    }

    // ------------------------------------------------------------------
    // ProtocolSpec execution
    // ------------------------------------------------------------------
    //
    // Every protocol state transition — directory entries, cache access
    // bits, private-copy stamps — funnels through the pure
    // [`ProtocolSpec`] element-layer steps via the choke points below.
    // The memory system contributes only the *executor* concerns (timing,
    // NUMA homes, cache geometry, message transport); the race-case logic
    // itself is the same transition function `specrt-check model`
    // enumerates. Debug builds evaluate every step twice and compare
    // (determinism) and reconcile a shadow directory (no mutation bypasses
    // the spec).

    /// Runs [`ProtocolSpec::dir_step`] at one shared-directory element,
    /// writing the successor back into the owning store.
    fn spec_dir_step(&mut self, arr: ArrayId, idx: u64, ev: DirEvent) -> Option<DirEmission> {
        let cur = match ev {
            DirEvent::ReadFirst { .. } | DirEvent::FirstWrite { .. } => {
                if self.priv3_shared.contains(arr) {
                    DirElem::Priv3(*self.priv3_shared.elem(arr, idx))
                } else {
                    DirElem::Priv(*self.priv_shared.elem(arr, idx))
                }
            }
            _ => DirElem::NonPriv(*self.nonpriv.elem(arr, idx)),
        };
        #[cfg(debug_assertions)]
        if let Some(shadow) = self.shadow_get(arr, idx) {
            debug_assert_eq!(
                *shadow, cur,
                "directory state of {arr}[{idx}] mutated outside ProtocolSpec"
            );
        }
        let (next, em) = ProtocolSpec::dir_step(cur, ev);
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                (next, em),
                ProtocolSpec::dir_step(cur, ev),
                "ProtocolSpec::dir_step must be deterministic"
            );
            self.shadow_set(arr, idx, next);
        }
        match next {
            DirElem::NonPriv(e) => *self.nonpriv.elem_mut(arr, idx) = e,
            DirElem::Priv(e) => *self.priv_shared.elem_mut(arr, idx) = e,
            DirElem::Priv3(e) => *self.priv3_shared.elem_mut(arr, idx) = e,
        }
        em
    }

    /// Point lookup in the flat debug shadow directory.
    #[cfg(debug_assertions)]
    fn shadow_get(&self, arr: ArrayId, idx: u64) -> Option<&DirElem> {
        self.spec_shadow
            .iter()
            .find(|(a, _)| *a == arr)
            .and_then(|(_, v)| v.get(idx as usize))
            .and_then(Option::as_ref)
    }

    #[cfg(debug_assertions)]
    fn shadow_set(&mut self, arr: ArrayId, idx: u64, elem: DirElem) {
        let v = match self.spec_shadow.iter_mut().find(|(a, _)| *a == arr) {
            Some((_, v)) => v,
            None => {
                self.spec_shadow.push((arr, Vec::new()));
                &mut self.spec_shadow.last_mut().expect("just pushed").1
            }
        };
        if v.len() <= idx as usize {
            v.resize(idx as usize + 1, None);
        }
        v[idx as usize] = Some(elem);
    }

    /// [`Self::spec_dir_step`] for events whose only possible emission is
    /// a FAIL (every directory event except `First_update`).
    fn spec_dir_test(&mut self, arr: ArrayId, idx: u64, ev: DirEvent) -> Result<(), FailReason> {
        match self.spec_dir_step(arr, idx, ev) {
            None => Ok(()),
            Some(DirEmission::Fail(reason)) => Err(reason),
            Some(em) => unreachable!("directory event {ev:?} emitted {em:?}"),
        }
    }

    /// Runs [`ProtocolSpec::private_step`] at one element of `proc`'s
    /// stamped private directory (which also marks it touched, feeding the
    /// line-granularity read-in test).
    fn spec_private_step(
        &mut self,
        arr: ArrayId,
        proc: ProcId,
        idx: u64,
        ev: PrivateEvent,
    ) -> PrivateEffect {
        let cur = *self.priv_private.elem(arr, proc, idx);
        let (next, effect) = ProtocolSpec::private_step(cur, ev);
        debug_assert_eq!(
            (next, effect),
            ProtocolSpec::private_step(cur, ev),
            "ProtocolSpec::private_step must be deterministic"
        );
        *self.priv_private.elem_mut(arr, proc, idx) = next;
        self.priv_private.mark_touched(arr, proc, idx);
        effect
    }

    /// Runs [`ProtocolSpec::private3_step`] at one element of `proc`'s
    /// no-read-in private directory.
    fn spec_priv3_step(
        &mut self,
        arr: ArrayId,
        proc: ProcId,
        idx: u64,
        write: bool,
    ) -> Result<NoReadInOutcome, FailReason> {
        let cur = *self.priv3_private.elem(arr, proc, idx);
        let (next, r) = ProtocolSpec::private3_step(cur, write);
        debug_assert_eq!(
            (next, r),
            ProtocolSpec::private3_step(cur, write),
            "ProtocolSpec::private3_step must be deterministic"
        );
        *self.priv3_private.elem_mut(arr, proc, idx) = next;
        r
    }

    // ------------------------------------------------------------------
    // Non-privatization protocol
    // ------------------------------------------------------------------

    fn nonpriv_read(&mut self, proc: ProcId, arr: ArrayId, idx: u64, now: Cycles) -> AccessOutcome {
        let layout = self.layout(arr);
        let addr = layout.addr_of(idx);
        let line = addr.line();
        let home = self.numa.home_of(addr);
        let level = self.caches[proc.0 as usize].access(line);
        let complete_at = if level != HitLevel::Miss {
            let latency = if level == HitLevel::L1 {
                self.cfg.latency.l1_hit
            } else {
                self.cfg.latency.l2_hit
            };
            let done = now + Cycles(latency);
            let dirty = self.caches[proc.0 as usize].state_of(line) == Some(LineState::Dirty);
            let offset = self.elem_offset(&layout, line, idx);
            self.stats.incr("race_case_a");
            let tags = self.caches[proc.0 as usize]
                .tags_mut(line)
                .expect("resident line has tags");
            let tag = tags.get_mut(offset);
            match spec_cache_step(tag, dirty, CacheEvent::Read { reader: proc }) {
                None => {}
                Some(CacheEmission::SendFirstUpdate) => {
                    self.stats.incr("nonpriv_first_updates");
                    self.send(
                        now,
                        proc.node(),
                        home,
                        Msg::FirstUpdate {
                            arr,
                            idx,
                            sender: proc,
                        },
                    );
                }
                Some(CacheEmission::SendROnlyUpdate) => {
                    self.stats.incr("nonpriv_r_only_updates");
                    self.send(
                        now,
                        proc.node(),
                        home,
                        Msg::ROnlyUpdate {
                            arr,
                            idx,
                            sender: proc,
                        },
                    );
                }
                Some(CacheEmission::Fail(reason)) => self.fail(reason, done),
                Some(CacheEmission::NeedWriteReq) => unreachable!("read emitted a write request"),
            }
            done
        } else {
            // Miss: deliver in-flight updates, fetch (merging any dirty
            // owner's tag state into the directory), and only then run the
            // directory-side test and project the reply tags — exactly the
            // ordering of algorithm (b).
            self.last_case = Some("b");
            self.stats.incr("race_case_b");
            self.drain_before_transaction(proc.node(), home, now);
            let done = self.coherence_fetch(proc, line, false, now);
            if let Err(reason) = self.spec_dir_test(arr, idx, DirEvent::ReadReq { from: proc }) {
                self.fail(reason, now);
            }
            let tags = self.project_nonpriv_tags(&layout, line, proc);
            self.install_line(proc, line, LineState::Clean, tags, now);
            done
        };
        AccessOutcome {
            complete_at,
            read_in: None,
        }
    }

    fn nonpriv_write(
        &mut self,
        proc: ProcId,
        arr: ArrayId,
        idx: u64,
        now: Cycles,
    ) -> AccessOutcome {
        let layout = self.layout(arr);
        let addr = layout.addr_of(idx);
        let line = addr.line();
        let home = self.numa.home_of(addr);
        let level = self.caches[proc.0 as usize].access(line);
        let complete_at = if level != HitLevel::Miss {
            let dirty = self.caches[proc.0 as usize].state_of(line) == Some(LineState::Dirty);
            let offset = self.elem_offset(&layout, line, idx);
            let hit_latency = if level == HitLevel::L1 {
                self.cfg.latency.l1_hit
            } else {
                self.cfg.latency.l2_hit
            };
            self.stats.incr("race_case_c");
            let tags = self.caches[proc.0 as usize]
                .tags_mut(line)
                .expect("resident line has tags");
            let tag = tags.get_mut(offset);
            match spec_cache_step(tag, dirty, CacheEvent::Write { writer: proc }) {
                None => now + Cycles(hit_latency),
                Some(CacheEmission::NeedWriteReq) => {
                    // Upgrade: the directory runs the authoritative test and
                    // the grant refreshes the whole line's tags.
                    self.last_case = Some("d");
                    self.stats.incr("race_case_d");
                    self.drain_before_transaction(proc.node(), home, now);
                    if let Err(reason) =
                        self.spec_dir_test(arr, idx, DirEvent::WriteReq { from: proc })
                    {
                        self.fail(reason, now);
                    }
                    let mut tags = self.project_nonpriv_tags(&layout, line, proc);
                    if tags.is_tracked() {
                        spec_cache_step(tags.get_mut(offset), true, CacheEvent::CompleteWrite);
                    }
                    self.upgrade_line(proc, line, tags, now)
                }
                Some(CacheEmission::Fail(reason)) => {
                    self.fail(reason, now + Cycles(hit_latency));
                    now + Cycles(hit_latency)
                }
                Some(em) => unreachable!("write emitted {em:?}"),
            }
        } else {
            // Algorithm (d): writeback+invalidate the owner and merge its
            // tag state, *then* test and grant.
            self.last_case = Some("d");
            self.stats.incr("race_case_d");
            self.drain_before_transaction(proc.node(), home, now);
            let done = self.coherence_fetch(proc, line, true, now);
            if let Err(reason) = self.spec_dir_test(arr, idx, DirEvent::WriteReq { from: proc }) {
                self.fail(reason, now);
            }
            let offset = self.elem_offset(&layout, line, idx);
            let mut tags = self.project_nonpriv_tags(&layout, line, proc);
            if tags.is_tracked() {
                spec_cache_step(tags.get_mut(offset), true, CacheEvent::CompleteWrite);
            }
            self.install_line(proc, line, LineState::Dirty, tags, now);
            done
        };
        AccessOutcome {
            complete_at,
            read_in: None,
        }
    }

    /// Builds the line tags sent with a data reply: the directory state
    /// projected into `viewer`'s NONE/OWN/OTHER view (Fig. 6-b/d: "Copy dir
    /// state to tag state for all the words in the line").
    fn project_nonpriv_tags(
        &self,
        layout: &ArrayLayout,
        line: LineAddr,
        viewer: ProcId,
    ) -> LineTags {
        let range = match layout.elems_on_line(line) {
            Some(r) => r,
            None => return LineTags::empty(),
        };
        let mut tags = LineTags::cleared((range.end - range.start) as usize);
        for (i, idx) in range.clone().enumerate() {
            *tags.get_mut(i) = self.nonpriv.elem(layout.id, idx).to_tag(viewer);
        }
        tags
    }

    // ------------------------------------------------------------------
    // Privatization protocol
    // ------------------------------------------------------------------

    fn priv_read(&mut self, proc: ProcId, arr: ArrayId, idx: u64, now: Cycles) -> AccessOutcome {
        let eff = self.effective_iter(proc);
        let playout = self.private_layout(arr, proc);
        let line = playout.addr_of(idx).line();
        let level = self.caches[proc.0 as usize].access(line);
        if level != HitLevel::Miss {
            let latency = if level == HitLevel::L1 {
                self.cfg.latency.l1_hit
            } else {
                self.cfg.latency.l2_hit
            };
            let offset = self.elem_offset(&playout, line, idx);
            let tags = self.caches[proc.0 as usize]
                .tags_mut(line)
                .expect("resident private line has tags");
            if spec_private_cache(tags.get_mut(offset), false) {
                self.stats.incr("priv_read_first_signals");
                // Private directory is local: update synchronously, then
                // forward the read-first signal to the shared home.
                let effect = self.spec_private_step(
                    arr,
                    proc,
                    idx,
                    PrivateEvent::ReadFirstSignal { iter: eff },
                );
                debug_assert_eq!(effect, PrivateEffect::SignalReadFirst);
                self.forward_read_first(proc, arr, idx, eff, now);
            }
            return AccessOutcome {
                complete_at: now + Cycles(latency),
                read_in: None,
            };
        }
        // Miss: the private directory decides between read-in, read-first,
        // and a plain refill (algorithm (c)).
        self.last_case = Some("c");
        let range = playout.elems_on_line(line).expect("line within array");
        let untouched = self.priv_private.line_untouched(arr, proc, range.clone());
        let effect = self.spec_private_step(
            arr,
            proc,
            idx,
            PrivateEvent::ReadMiss {
                iter: eff,
                line_untouched: untouched,
            },
        );
        let mut read_in = None;
        let mut complete_at = self.fill_private_line(proc, arr, &playout, line, false, now);
        match effect {
            PrivateEffect::TestReadFirst => {
                self.stats.incr("priv_read_ins");
                if self.test_enabled {
                    let home = self.shared_elem_home(arr, idx);
                    self.drain_before_transaction(proc.node(), home, now);
                    if let Err(reason) =
                        self.spec_dir_test(arr, idx, DirEvent::ReadFirst { iter: eff })
                    {
                        self.fail(reason, now);
                    }
                }
                complete_at += self.shared_fetch_latency(proc, arr, idx, now);
                read_in = Some(range);
            }
            PrivateEffect::SignalReadFirst => {
                self.stats.incr("priv_read_first_signals");
                self.forward_read_first(proc, arr, idx, eff, now);
            }
            PrivateEffect::None => {}
            effect => unreachable!("read miss produced {effect:?}"),
        }
        AccessOutcome {
            complete_at,
            read_in,
        }
    }

    fn priv_write(&mut self, proc: ProcId, arr: ArrayId, idx: u64, now: Cycles) -> AccessOutcome {
        let eff = self.effective_iter(proc);
        let playout = self.private_layout(arr, proc);
        let line = playout.addr_of(idx).line();
        let level = self.caches[proc.0 as usize].access(line);
        if level != HitLevel::Miss {
            let dirty = self.caches[proc.0 as usize].state_of(line) == Some(LineState::Dirty);
            let offset = self.elem_offset(&playout, line, idx);
            let hit_latency = if level == HitLevel::L1 {
                self.cfg.latency.l1_hit
            } else {
                self.cfg.latency.l2_hit
            };
            let tags = self.caches[proc.0 as usize]
                .tags_mut(line)
                .expect("resident private line has tags");
            if spec_private_cache(tags.get_mut(offset), true) {
                self.stats.incr("priv_first_write_signals");
                let effect = self.spec_private_step(
                    arr,
                    proc,
                    idx,
                    PrivateEvent::FirstWriteSignal { iter: eff },
                );
                if effect == PrivateEffect::SignalFirstWrite {
                    self.forward_first_write(proc, arr, idx, eff, now);
                }
            }
            let complete_at = if dirty {
                now + Cycles(hit_latency)
            } else {
                // Local upgrade of the private line.
                let mut tags = self.private_tags(arr, proc, &playout, line, eff);
                tags.get_mut(offset).set_write(true);
                self.upgrade_line(proc, line, tags, now)
            };
            return AccessOutcome {
                complete_at,
                read_in: None,
            };
        }
        // Miss (algorithm (h)).
        self.last_case = Some("h");
        let range = playout.elems_on_line(line).expect("line within array");
        let untouched = self.priv_private.line_untouched(arr, proc, range.clone());
        let effect = self.spec_private_step(
            arr,
            proc,
            idx,
            PrivateEvent::WriteMiss {
                iter: eff,
                line_untouched: untouched,
            },
        );
        let mut read_in = None;
        let mut complete_at = self.fill_private_line(proc, arr, &playout, line, true, now);
        match effect {
            PrivateEffect::TestFirstWrite => {
                self.stats.incr("priv_read_ins");
                if self.test_enabled {
                    let home = self.shared_elem_home(arr, idx);
                    self.drain_before_transaction(proc.node(), home, now);
                    if let Err(reason) =
                        self.spec_dir_test(arr, idx, DirEvent::FirstWrite { iter: eff })
                    {
                        self.fail(reason, now);
                    }
                }
                complete_at += self.shared_fetch_latency(proc, arr, idx, now);
                read_in = Some(range);
            }
            PrivateEffect::SignalFirstWrite => {
                self.forward_first_write(proc, arr, idx, eff, now);
            }
            PrivateEffect::None => {}
            effect => unreachable!("write miss produced {effect:?}"),
        }
        AccessOutcome {
            complete_at,
            read_in,
        }
    }

    // ------------------------------------------------------------------
    // Privatization protocol, reduced no-read-in state (Figure 5-b / §4.1)
    // ------------------------------------------------------------------

    fn priv3_read(&mut self, proc: ProcId, arr: ArrayId, idx: u64, now: Cycles) -> AccessOutcome {
        let _ = self.effective_iter(proc); // assert we are inside an iteration
        let playout = self.private_layout(arr, proc);
        let line = playout.addr_of(idx).line();
        let level = self.caches[proc.0 as usize].access(line);
        let hit = level != HitLevel::Miss;
        let latency = match level {
            HitLevel::L1 => self.cfg.latency.l1_hit,
            HitLevel::L2 => self.cfg.latency.l2_hit,
            HitLevel::Miss => 0,
        };
        let signal = if hit {
            let offset = self.elem_offset(&playout, line, idx);
            let tags = self.caches[proc.0 as usize]
                .tags_mut(line)
                .expect("resident private line has tags");
            spec_private_cache(tags.get_mut(offset), false)
        } else {
            true // the private directory decides below
        };
        let mut complete_at = now + Cycles(latency);
        if !hit {
            let tags = self.priv3_tags(arr, proc, &playout, line);
            complete_at = self.fetch_line_with_state(proc, line, LineState::Clean, tags, now);
        }
        if signal {
            match self.spec_priv3_step(arr, proc, idx, false) {
                Ok(NoReadInOutcome::NotifyShared) => {
                    self.stats.incr("priv_read_first_signals");
                    self.forward_read_first(proc, arr, idx, 1, now);
                }
                Ok(NoReadInOutcome::Local) => {}
                Err(reason) => self.fail(reason, now),
            }
        }
        AccessOutcome {
            complete_at,
            read_in: None,
        }
    }

    fn priv3_write(&mut self, proc: ProcId, arr: ArrayId, idx: u64, now: Cycles) -> AccessOutcome {
        let _ = self.effective_iter(proc);
        let playout = self.private_layout(arr, proc);
        let line = playout.addr_of(idx).line();
        let level = self.caches[proc.0 as usize].access(line);
        let hit = level != HitLevel::Miss;
        let signal = if hit {
            let offset = self.elem_offset(&playout, line, idx);
            let tags = self.caches[proc.0 as usize]
                .tags_mut(line)
                .expect("resident private line has tags");
            spec_private_cache(tags.get_mut(offset), true)
        } else {
            true
        };
        let complete_at = if hit {
            let dirty = self.caches[proc.0 as usize].state_of(line) == Some(LineState::Dirty);
            let hit_latency = if level == HitLevel::L1 {
                self.cfg.latency.l1_hit
            } else {
                self.cfg.latency.l2_hit
            };
            if dirty {
                now + Cycles(hit_latency)
            } else {
                let mut tags = self.priv3_tags(arr, proc, &playout, line);
                let offset = self.elem_offset(&playout, line, idx);
                tags.get_mut(offset).set_write(true);
                self.upgrade_line(proc, line, tags, now)
            }
        } else {
            let mut tags = self.priv3_tags(arr, proc, &playout, line);
            let offset = self.elem_offset(&playout, line, idx);
            tags.get_mut(offset).set_write(true);
            self.fetch_line_with_state(proc, line, LineState::Dirty, tags, now)
        };
        if signal {
            match self.spec_priv3_step(arr, proc, idx, true) {
                Ok(NoReadInOutcome::NotifyShared) => {
                    self.stats.incr("priv_first_write_signals");
                    self.forward_first_write(proc, arr, idx, 1, now);
                }
                Ok(NoReadInOutcome::Local) => {}
                Err(reason) => self.fail(reason, now),
            }
        }
        AccessOutcome {
            complete_at,
            read_in: None,
        }
    }

    /// Refill tags for a no-read-in private line, reconstructed from the
    /// private directory bits.
    fn priv3_tags(
        &self,
        arr: ArrayId,
        proc: ProcId,
        playout: &ArrayLayout,
        line: LineAddr,
    ) -> LineTags {
        let range = playout.elems_on_line(line).expect("line within array");
        let mut tags = LineTags::cleared((range.end - range.start) as usize);
        for (i, idx) in range.clone().enumerate() {
            let e = self.priv3_private.elem(arr, proc, idx);
            let t = tags.get_mut(i);
            if e.write {
                t.set_write(true);
            }
            if e.read1st {
                t.set_read1st(true);
            }
        }
        tags
    }

    fn effective_iter(&self, proc: ProcId) -> u64 {
        let eff = self.cur_eff_iter[proc.0 as usize];
        assert!(
            eff > 0,
            "{proc} accessed a privatized array outside an iteration"
        );
        eff
    }

    fn private_layout(&self, arr: ArrayId, proc: ProcId) -> ArrayLayout {
        *self
            .private_layout_get(arr, proc)
            .unwrap_or_else(|| panic!("no private copy of {arr} for {proc}"))
    }

    /// Point lookup in the flat private-layout table (hot path: one
    /// linear scan over the few arrays under test, then a direct
    /// per-processor index).
    fn private_layout_get(&self, arr: ArrayId, proc: ProcId) -> Option<&ArrayLayout> {
        self.private_layouts
            .iter()
            .find(|(a, _)| *a == arr)
            .and_then(|(_, per_proc)| per_proc.get(proc.0 as usize))
            .and_then(Option::as_ref)
    }

    fn private_layout_set(&mut self, arr: ArrayId, proc: ProcId, layout: ArrayLayout) {
        let procs = self.cfg.procs as usize;
        let per_proc = match self.private_layouts.iter_mut().find(|(a, _)| *a == arr) {
            Some((_, v)) => v,
            None => {
                self.private_layouts.push((arr, vec![None; procs]));
                &mut self.private_layouts.last_mut().expect("just pushed").1
            }
        };
        per_proc[proc.0 as usize] = Some(layout);
    }

    /// Tags for a refilled private line, reconstructed from the private
    /// directory stamps: bits are set for elements already read-first or
    /// written *in the current effective iteration*, so refills after an
    /// eviction do not re-signal.
    fn private_tags(
        &self,
        arr: ArrayId,
        proc: ProcId,
        playout: &ArrayLayout,
        line: LineAddr,
        eff: u64,
    ) -> LineTags {
        let range = playout.elems_on_line(line).expect("line within array");
        let mut tags = LineTags::cleared((range.end - range.start) as usize);
        for (i, idx) in range.clone().enumerate() {
            let e = self.priv_private.elem(arr, proc, idx);
            let t = tags.get_mut(i);
            if e.pmax_w == eff {
                t.set_write(true);
            }
            if e.pmax_r1st == eff {
                t.set_read1st(true);
            }
        }
        tags
    }

    fn forward_read_first(&mut self, proc: ProcId, arr: ArrayId, idx: u64, eff: u64, now: Cycles) {
        if !self.test_enabled {
            return;
        }
        let home = self.shared_elem_home(arr, idx);
        self.send(
            now,
            proc.node(),
            home,
            Msg::PrivReadFirst {
                arr,
                idx,
                iter: eff,
            },
        );
    }

    fn forward_first_write(&mut self, proc: ProcId, arr: ArrayId, idx: u64, eff: u64, now: Cycles) {
        if !self.test_enabled {
            return;
        }
        self.stats.incr("priv_first_write_shared");
        let home = self.shared_elem_home(arr, idx);
        self.send(
            now,
            proc.node(),
            home,
            Msg::PrivFirstWrite {
                arr,
                idx,
                iter: eff,
            },
        );
    }

    fn shared_elem_home(&self, arr: ArrayId, idx: u64) -> NodeId {
        let layout = self.layout(arr);
        self.numa.home_of(layout.addr_of(idx))
    }

    /// Latency of fetching the shared array's line during a read-in,
    /// including queueing at the shared home's directory.
    fn shared_fetch_latency(
        &mut self,
        proc: ProcId,
        arr: ArrayId,
        idx: u64,
        now: Cycles,
    ) -> Cycles {
        let layout = self.layout(arr);
        let addr = layout.addr_of(idx);
        let home = self.numa.home_of(addr);
        let lat = self.cfg.latency;
        let req = self.route(proc.node(), home, now);
        let end = self.dir_banks[home.0 as usize].acquire(
            addr.line().0,
            req.arrive,
            Cycles(lat.mem_service),
        );
        let queue = end
            .saturating_sub(req.arrive)
            .saturating_sub(Cycles(lat.mem_service));
        self.last_queue = queue;
        let base = lat.miss_base(proc.node(), home);
        self.finish_round_trip(proc.node(), home, now, req, end, base + queue) - now
    }

    /// Fills a private-copy line (always homed locally).
    fn fill_private_line(
        &mut self,
        proc: ProcId,
        arr: ArrayId,
        playout: &ArrayLayout,
        line: LineAddr,
        as_dirty: bool,
        now: Cycles,
    ) -> Cycles {
        let eff = self.cur_eff_iter[proc.0 as usize];
        let tags = self.private_tags(arr, proc, playout, line, eff);
        if as_dirty {
            self.fetch_line_with_state(proc, line, LineState::Dirty, tags, now)
        } else {
            self.fetch_line_with_state(proc, line, LineState::Clean, tags, now)
        }
    }

    // ------------------------------------------------------------------
    // Interconnect routing
    // ------------------------------------------------------------------

    /// Routes one message through the interconnect, reserving the links it
    /// crosses, and (when network tracing is on) emits the corresponding
    /// [`TraceEvent::Net`].
    fn route(&mut self, src: NodeId, dst: NodeId, now: Cycles) -> Delivery {
        let d = self.net.send(src, dst, now);
        if self.net_trace && src != dst && self.tracer.enabled() {
            self.tracer.emit(TraceEvent::Net {
                at: now,
                src: src.0,
                dst: dst.0,
                hops: d.hops,
                queue: d.queue,
                transit: d.arrive.saturating_sub(now),
            });
        }
        d
    }

    /// Completes a calibrated round trip whose request (`req`, sent at
    /// `now`) was served by the home directory until `bank_end`: sends the
    /// reply leg and folds whatever latency the interconnect added *beyond
    /// its calibrated share* into `cost` (the unloaded base plus bank
    /// queueing). On an unloaded flat network both legs cost exactly the
    /// calibrated `travel()`, the correction is zero, and the result is
    /// bit-identical to the seed's `now + cost`.
    fn finish_round_trip(
        &mut self,
        src: NodeId,
        home: NodeId,
        now: Cycles,
        req: Delivery,
        bank_end: Cycles,
        cost: Cycles,
    ) -> Cycles {
        let rep = self.route(home, src, bank_end);
        let legs_actual = (req.arrive - now) + (rep.arrive - bank_end);
        let legs_calib = self.cfg.latency.travel(src, home) + self.cfg.latency.travel(home, src);
        now + (cost + legs_actual).saturating_sub(legs_calib)
    }

    // ------------------------------------------------------------------
    // Coherence transactions
    // ------------------------------------------------------------------

    /// Runs a full fetch transaction for `line` on behalf of `proc` and
    /// fills the cache. Returns the completion time.
    fn fetch_line(
        &mut self,
        proc: ProcId,
        line: LineAddr,
        exclusive: bool,
        tags: LineTags,
        now: Cycles,
    ) -> Cycles {
        let state = if exclusive {
            LineState::Dirty
        } else {
            LineState::Clean
        };
        self.fetch_line_with_state(proc, line, state, tags, now)
    }

    fn fetch_line_with_state(
        &mut self,
        proc: ProcId,
        line: LineAddr,
        state: LineState,
        tags: LineTags,
        now: Cycles,
    ) -> Cycles {
        let done = self.coherence_fetch(proc, line, state == LineState::Dirty, now);
        self.install_line(proc, line, state, tags, now);
        done
    }

    /// The directory-side half of a fetch: serializes at the home bank,
    /// fetches/merges a dirty owner's line (algorithm (b)/(d): "send
    /// writeback request to owner; wait for reply; update dir … using the
    /// tag state"), invalidates sharers for exclusive requests, and updates
    /// the line's directory state for the new holder. Returns the
    /// completion time. Any speculation-directory test must run *after*
    /// this call, so it sees the merged state; the cache fill follows via
    /// [`install_line`].
    ///
    /// [`install_line`]: Self::install_line
    fn coherence_fetch(
        &mut self,
        proc: ProcId,
        line: LineAddr,
        exclusive: bool,
        now: Cycles,
    ) -> Cycles {
        self.stats.incr("transactions");
        let home = self.numa.home_of(line.base());
        let lat = self.cfg.latency;
        let req = self.route(proc.node(), home, now);
        let end =
            self.dir_banks[home.0 as usize].acquire(line.0, req.arrive, Cycles(lat.mem_service));
        let queue = end
            .saturating_sub(req.arrive)
            .saturating_sub(Cycles(lat.mem_service));
        self.last_queue = queue;

        let dir_state = self.dirs[home.0 as usize].state(line);
        let mut base = lat.miss_base(proc.node(), home);
        match dir_state {
            DirLineState::Uncached => {}
            DirLineState::Shared(sharers) => {
                if exclusive {
                    // Invalidate all sharers.
                    let mut any_remote = false;
                    for s in sharers.iter() {
                        if s != proc {
                            self.stats.incr("invalidations");
                            self.invalidate_at_cache(s, line);
                            if s.node() != home {
                                any_remote = true;
                            }
                        }
                    }
                    if any_remote {
                        base += Cycles(lat.invalidate_extra);
                    }
                }
            }
            DirLineState::Dirty(owner) => {
                debug_assert_ne!(owner, proc, "requester cannot own a missing line");
                base = lat.miss_with_owner(proc.node(), home, owner.node());
                self.stats.incr("owner_fetches");
                if !exclusive && self.cfg.dirty_read_downgrades {
                    // Sharing write-back (classic DASH): the owner keeps a
                    // clean copy; its tags stay valid from its viewpoint.
                    let owner_tags = self.caches[owner.0 as usize]
                        .tags_of(line)
                        .cloned()
                        .unwrap_or_else(LineTags::empty);
                    self.merge_tags_into_dir(owner, line, &owner_tags, now);
                    self.caches[owner.0 as usize].mark_clean(line);
                    self.dirs[home.0 as usize].downgrade_to_shared(line, SharerSet::single(owner));
                } else {
                    // Invalidate-on-fetch: the owner writes back and drops
                    // its copy; merge its tags into the directory.
                    let (_, owner_tags) = self.caches[owner.0 as usize]
                        .invalidate(line)
                        .expect("directory says owner holds the line");
                    self.merge_tags_into_dir(owner, line, &owner_tags, now);
                    self.dirs[home.0 as usize].writeback_to_uncached(line, owner);
                }
            }
        }
        match exclusive {
            true => self.dirs[home.0 as usize].set_dirty(line, proc),
            false => self.dirs[home.0 as usize].add_sharer(line, proc),
        }
        self.finish_round_trip(proc.node(), home, now, req, end, base + queue)
    }

    /// The cache-side half of a fetch: fills the line (with the reply's
    /// access bits) and retires any displaced victim.
    fn install_line(
        &mut self,
        proc: ProcId,
        line: LineAddr,
        state: LineState,
        tags: LineTags,
        now: Cycles,
    ) {
        if let Some(v) = self.caches[proc.0 as usize].fill(line, state, tags) {
            self.retire_victim(proc, v, now);
        }
    }

    /// Upgrades a resident clean line to dirty (write to shared line): the
    /// home invalidates other sharers and grants exclusivity; `new_tags`
    /// replace the line's access bits (directory projection).
    fn upgrade_line(
        &mut self,
        proc: ProcId,
        line: LineAddr,
        new_tags: LineTags,
        now: Cycles,
    ) -> Cycles {
        self.stats.incr("upgrades");
        let home = self.numa.home_of(line.base());
        let lat = self.cfg.latency;
        let req = self.route(proc.node(), home, now);
        let end =
            self.dir_banks[home.0 as usize].acquire(line.0, req.arrive, Cycles(lat.mem_service));
        let queue = end
            .saturating_sub(req.arrive)
            .saturating_sub(Cycles(lat.mem_service));
        self.last_queue = queue;
        let mut base = lat.miss_base(proc.node(), home);

        let dir_state = self.dirs[home.0 as usize].state(line);
        let mut any_remote = false;
        for s in dir_state.sharers() {
            if s != proc {
                self.stats.incr("invalidations");
                self.invalidate_at_cache(s, line);
                if s.node() != home {
                    any_remote = true;
                }
            }
        }
        if any_remote {
            base += Cycles(lat.invalidate_extra);
        }
        self.dirs[home.0 as usize].set_dirty(line, proc);
        let cache = &mut self.caches[proc.0 as usize];
        cache.mark_dirty(line);
        if let Some(t) = cache.tags_mut(line) {
            *t = new_tags;
        }
        self.finish_round_trip(proc.node(), home, now, req, end, base + queue)
    }

    /// Invalidation at a sharer's cache. Clean lines drop their tags: any
    /// tag state a clean line accumulated was already messaged to the home.
    fn invalidate_at_cache(&mut self, proc: ProcId, line: LineAddr) {
        self.caches[proc.0 as usize].invalidate(line);
        let home = self.numa.home_of(line.base());
        self.dirs[home.0 as usize].remove_sharer(line, proc);
    }

    /// Handles a line displaced from a cache: dirty victims write back
    /// (merging access bits into the home directory, algorithm (e)); clean
    /// victims just notify the directory.
    fn retire_victim(&mut self, proc: ProcId, v: Victim, now: Cycles) {
        let home = self.numa.home_of(v.line.base());
        if v.dirty {
            self.stats.incr("writebacks");
            // Charge directory occupancy for the write-back (asynchronous;
            // the processor does not wait).
            let arrive = self.route(proc.node(), home, now).arrive;
            self.dir_banks[home.0 as usize].acquire(
                v.line.0,
                arrive,
                Cycles(self.cfg.latency.mem_service),
            );
            self.merge_tags_into_dir(proc, v.line, &v.tags, now);
            if self.dirs[home.0 as usize].state(v.line) == DirLineState::Dirty(proc) {
                self.dirs[home.0 as usize].writeback_to_uncached(v.line, proc);
            }
        } else {
            self.dirs[home.0 as usize].remove_sharer(v.line, proc);
        }
    }

    /// Merges a dirty line's per-element tags into the directory's
    /// non-privatization state (private-copy lines have their authoritative
    /// stamps in the private store already and are skipped). Displacement
    /// path: counts as the paper's algorithm (e).
    fn merge_tags_into_dir(&mut self, owner: ProcId, line: LineAddr, tags: &LineTags, now: Cycles) {
        if self.merge_line_tags(owner, line, tags, now) {
            self.stats.incr("race_case_e");
        }
    }

    /// Shared merge core: replays a line's per-element tags into the home
    /// directory as `Writeback` events. Returns whether the line is under
    /// the non-privatization test (and was therefore merged).
    fn merge_line_tags(
        &mut self,
        owner: ProcId,
        line: LineAddr,
        tags: &LineTags,
        now: Cycles,
    ) -> bool {
        if !tags.is_tracked() {
            return false;
        }
        let Some((arr, first_elem)) = self.numa.address_map().locate(line.base()) else {
            return false;
        };
        if self.plan.kind_of(arr) != ProtocolKind::NonPriv {
            return false;
        }
        let layout = self.layout(arr);
        let range = layout.elems_on_line(line).expect("line within array");
        debug_assert_eq!(range.start, first_elem);
        for (i, idx) in range.enumerate() {
            if i >= tags.len() {
                break;
            }
            if let Err(reason) = self.spec_dir_test(
                arr,
                idx,
                DirEvent::Writeback {
                    tag: tags.get(i),
                    owner,
                },
            ) {
                self.fail(reason, now);
            }
        }
        true
    }

    /// Merges every resident **dirty** tracked line's accumulated access
    /// bits into its home directory *without* evicting the line — the
    /// verdict-time equivalent of the paper's flush-after-every-loop (§4).
    ///
    /// Rationale: a dirty hit-write under the non-privatization protocol
    /// is silent — the `Own`/`NoShr` bits accumulate in the owning cache
    /// and only reach the directory when the line is displaced. With ≥3
    /// tracked elements per line there is a reachable window (a writer
    /// exclusive-fetches a line through a directory-untouched element
    /// while the reader's `First_update` is still in flight, then
    /// hit-writes the read element on the now-dirty line) where a real
    /// cross-processor conflict is invisible at the post-drain quiescent
    /// point. Scenario runners call this after
    /// [`Self::drain_all_messages`] and before reading the verdict, so
    /// the machine's verdict matches the flushed semantics the model
    /// checker proves.
    ///
    /// State-only: the merge replays the same [`DirEvent::Writeback`]
    /// steps an eviction would (idempotent on consistent state, so a
    /// later real write-back of the still-resident line is harmless) and
    /// charges no simulated time or directory occupancy. Each merged line
    /// increments the `verdict_merges` stat — deliberately *not* a
    /// `race_case_*` counter, since no displacement (algorithm (e))
    /// actually occurred.
    pub fn merge_dirty_tags(&mut self, now: Cycles) {
        let mut dirty: Vec<(ProcId, LineAddr, LineTags)> = Vec::new();
        for (p, cache) in self.caches.iter().enumerate() {
            for line in cache.resident() {
                if cache.state_of(line) != Some(LineState::Dirty) {
                    continue;
                }
                if let Some(tags) = cache.tags_of(line) {
                    if tags.is_tracked() {
                        dirty.push((ProcId(p as u32), line, *tags));
                    }
                }
            }
        }
        for (proc, line, tags) in dirty {
            if self.merge_line_tags(proc, line, &tags, now) {
                self.stats.incr("verdict_merges");
            }
        }
    }

    // ------------------------------------------------------------------
    // Asynchronous messages
    // ------------------------------------------------------------------

    fn send(&mut self, now: Cycles, from: NodeId, to: NodeId, msg: Msg) {
        self.stats.incr("update_messages");
        let retry = self.cfg.retry;
        let mut send_at = now;
        let mut attempt: u32 = 0;
        loop {
            // An armed node-level fault swallows the message before the
            // message-rate draw. The check is stateless (no RNG), so a
            // config without a node fault keeps its decision stream — and
            // its timings — bit-for-bit.
            if let Some(suspect) = self.net.node_fault_blocks(from, to, send_at) {
                self.stats.incr("fault.node.dropped");
                self.emit_node_fault(send_at, from, to, suspect, attempt);
                // The swallowed copy still occupied links up to the fault.
                let _ = self.route(from, to, send_at);
                let wait = Cycles(retry.timeout.checked_shl(attempt).unwrap_or(u64::MAX));
                if attempt >= retry.max_retries {
                    // Every retransmission vanished into the same silent
                    // node: escalate past "a message was lost" to "the
                    // node is gone".
                    self.stats.incr("retry.exhausted");
                    self.stats.incr("fault.node.unreachable");
                    self.fail(
                        FailReason::NodeUnreachable {
                            node: ProcId(suspect),
                        },
                        send_at + wait,
                    );
                    return;
                }
                self.stats.incr("retry.resends");
                send_at += wait;
                attempt += 1;
                continue;
            }
            match self.net.fault_decide() {
                FaultAction::Deliver => {
                    let arrive = self.route(from, to, send_at).arrive + Cycles(1);
                    self.deliver(from, to, arrive, msg);
                    return;
                }
                FaultAction::Delay(extra) => {
                    self.stats.incr("fault.delayed");
                    self.emit_fault(send_at, from, to, "delay", attempt);
                    let arrive = self.route(from, to, send_at).arrive + Cycles(1) + Cycles(extra);
                    self.deliver(from, to, arrive, msg);
                    return;
                }
                FaultAction::Duplicate => {
                    self.stats.incr("fault.duplicated");
                    self.emit_fault(send_at, from, to, "duplicate", attempt);
                    // Both copies take a real trip through the routing
                    // layer; the directory's replay is idempotent, so the
                    // straggler serializes like any raced update.
                    let first = self.route(from, to, send_at).arrive + Cycles(1);
                    let second = self.route(from, to, send_at).arrive + Cycles(1);
                    self.deliver(from, to, first, msg.clone());
                    self.deliver(from, to, second, msg);
                    return;
                }
                FaultAction::Drop => {
                    self.stats.incr("fault.dropped");
                    self.emit_fault(send_at, from, to, "drop", attempt);
                    // The lost copy still occupied links before vanishing.
                    let _ = self.route(from, to, send_at);
                    let wait = Cycles(retry.timeout.checked_shl(attempt).unwrap_or(u64::MAX));
                    if attempt >= retry.max_retries {
                        // Watchdog exhausted: the dependence test can no
                        // longer be trusted — escalate into the paper's
                        // abort/restore/serial safety net.
                        self.stats.incr("retry.exhausted");
                        self.fail(
                            FailReason::MessageLost {
                                attempts: attempt + 1,
                            },
                            send_at + wait,
                        );
                        return;
                    }
                    self.stats.incr("retry.resends");
                    send_at += wait;
                    attempt += 1;
                }
            }
        }
    }

    /// Schedules one delivered copy, clamping to the path's in-order
    /// watermark (identity on a fault-free network — debug builds assert
    /// that).
    fn deliver(&mut self, from: NodeId, to: NodeId, arrive: Cycles, msg: Msg) {
        let nodes = self.cfg.procs as usize;
        let slot = &mut self.msg_arrival[from.0 as usize * nodes + to.0 as usize];
        #[cfg(debug_assertions)]
        if !self.net.config().faults.enabled() {
            assert!(
                arrive >= *slot,
                "out-of-order delivery {from}->{to}: {arrive} scheduled before {last}",
                arrive = arrive.raw(),
                last = slot.raw(),
            );
        }
        let arrive = arrive.max(*slot);
        *slot = arrive;
        self.msgs.push_lenient(arrive, msg);
    }

    /// Emits a [`TraceEvent::Fault`] for one fault-plane decision.
    fn emit_fault(&mut self, at: Cycles, from: NodeId, to: NodeId, kind: &'static str, n: u32) {
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::Fault {
                at,
                src: from.0,
                dst: to.0,
                kind,
                attempt: n,
            });
        }
    }

    /// Emits a [`TraceEvent::NodeFault`] for one send swallowed by a
    /// node-level fault.
    fn emit_node_fault(&mut self, at: Cycles, from: NodeId, to: NodeId, node: u32, n: u32) {
        if self.tracer.enabled() {
            let kind = self
                .net
                .config()
                .faults
                .node_fault
                .map_or("node", |nf| nf.kind_label());
            self.tracer.emit(TraceEvent::NodeFault {
                at,
                src: from.0,
                dst: to.0,
                node,
                kind,
                attempt: n,
            });
        }
    }

    fn drain_messages(&mut self, upto: Cycles) {
        let _prof = specrt_prof::scope("proto.drain");
        while let Some(t) = self.msgs.peek_time() {
            if t > upto {
                break;
            }
            let (at, msg) = self.msgs.pop().expect("peeked");
            self.handle_message(at, msg);
        }
    }

    fn handle_message(&mut self, at: Cycles, msg: Msg) {
        let _prof = specrt_prof::scope("proto.dir_msg");
        // Preserve the abort context of any in-progress access: messages
        // delivered mid-transaction carry their own context.
        let saved_ctx = self.cur_ctx.take();
        let enabled = self.tracer.enabled();
        let mut pre = None;
        if enabled {
            let (kind, arr, idx, sender, iter) = match &msg {
                Msg::FirstUpdate { arr, idx, sender } => {
                    ("First_update", *arr, *idx, Some(sender.0), None)
                }
                Msg::ROnlyUpdate { arr, idx, sender } => {
                    ("ROnly_update", *arr, *idx, Some(sender.0), None)
                }
                Msg::FirstUpdateFail { arr, idx, target } => {
                    ("First_update_fail", *arr, *idx, Some(target.0), None)
                }
                Msg::PrivReadFirst { arr, idx, iter } => {
                    ("read-first signal", *arr, *idx, None, Some(*iter))
                }
                Msg::PrivFirstWrite { arr, idx, iter } => {
                    ("first-write signal", *arr, *idx, None, Some(*iter))
                }
            };
            self.tracer.emit(TraceEvent::Message {
                at,
                kind,
                arr: arr.0,
                idx,
            });
            self.cur_ctx = Some((sender, arr.0, idx, iter));
            pre = Some((sender, arr, idx, self.spec_state_label(arr, idx)));
        }
        match msg {
            Msg::FirstUpdate { arr, idx, sender } => {
                self.stats.incr("race_case_f");
                self.charge_update_service(arr, idx, at);
                match self.spec_dir_step(arr, idx, DirEvent::FirstUpdate { sender }) {
                    None => {}
                    Some(DirEmission::SendFirstUpdateFail { target }) => {
                        self.stats.incr("first_update_bounces");
                        let home = self.shared_elem_home(arr, idx);
                        self.send(
                            at,
                            home,
                            target.node(),
                            Msg::FirstUpdateFail { arr, idx, target },
                        );
                    }
                    Some(DirEmission::Fail(reason)) => self.fail(reason, at),
                }
            }
            Msg::ROnlyUpdate { arr, idx, sender } => {
                self.stats.incr("race_case_h");
                self.charge_update_service(arr, idx, at);
                if let Err(reason) = self.spec_dir_test(arr, idx, DirEvent::ROnlyUpdate { sender })
                {
                    self.fail(reason, at);
                }
            }
            Msg::FirstUpdateFail { arr, idx, target } => {
                self.stats.incr("race_case_g");
                let layout = self.layout(arr);
                let line = layout.addr_of(idx).line();
                let offset = self.elem_offset(&layout, line, idx);
                let dirty = self.caches[target.0 as usize].state_of(line) == Some(LineState::Dirty);
                let cache = &mut self.caches[target.0 as usize];
                if cache.probe(line) != HitLevel::Miss {
                    if let Some(tags) = cache.tags_mut(line) {
                        if tags.is_tracked() {
                            if let Some(CacheEmission::Fail(reason)) = spec_cache_step(
                                tags.get_mut(offset),
                                dirty,
                                CacheEvent::FirstUpdateFail { target },
                            ) {
                                self.fail(reason, at);
                            }
                        }
                    }
                }
                // If the line was displaced meanwhile, its write-back merge
                // already reconciled the state with the directory.
            }
            Msg::PrivReadFirst { arr, idx, iter } => {
                self.charge_update_service(arr, idx, at);
                if let Err(reason) = self.spec_dir_test(arr, idx, DirEvent::ReadFirst { iter }) {
                    self.fail(reason, at);
                }
            }
            Msg::PrivFirstWrite { arr, idx, iter } => {
                self.charge_update_service(arr, idx, at);
                if let Err(reason) = self.spec_dir_test(arr, idx, DirEvent::FirstWrite { iter }) {
                    self.fail(reason, at);
                }
            }
        }
        if let Some((sender, arr, idx, snap)) = pre {
            self.emit_spec_transition(at, sender, arr, idx, snap);
        }
        self.cur_ctx = saved_ctx;
    }

    fn charge_update_service(&mut self, arr: ArrayId, idx: u64, at: Cycles) {
        let layout = self.layout(arr);
        let addr = layout.addr_of(idx);
        let home = self.numa.home_of(addr);
        self.dir_banks[home.0 as usize].acquire(
            addr.line().0,
            at,
            Cycles(self.cfg.latency.update_service),
        );
    }

    /// Delivers every queued update message that would reach its
    /// destination no later than a transaction from `from` arriving at a
    /// home node (in-order delivery: messages sent earlier on the same
    /// path must be processed before the transaction).
    fn drain_before_transaction(&mut self, from: NodeId, home: NodeId, now: Cycles) {
        // Probe, don't send: the transaction's own links are reserved when
        // the coherence path routes it; this only estimates its arrival so
        // earlier in-flight messages are processed first.
        let arrive = self.net.probe(from, home, now);
        self.drain_messages(arrive);
    }

    /// Development aid: with `SPECRT_TRACE=<array>,<element>` in the
    /// environment, prints every access to that element with the full
    /// cache/tag/directory view (used to debug protocol interleavings).
    fn trace(&self, proc: ProcId, arr: ArrayId, idx: u64, now: Cycles, what: &str) {
        if let Some((farr, fidx)) = self.trace_filter {
            if arr.0 == farr && idx == fidx {
                let layout = self.layout(arr);
                let line = layout.addr_of(idx).line();
                let level = self.caches[proc.0 as usize].probe(line);
                let state = self.caches[proc.0 as usize].state_of(line);
                let offset = {
                    let range = layout.elems_on_line(line).unwrap();
                    (idx - range.start) as usize
                };
                let tag = self.caches[proc.0 as usize].tags_of(line).map(|t| {
                    if t.is_tracked() {
                        format!("{}", t.get(offset))
                    } else {
                        "untracked".into()
                    }
                });
                let dir_elem = if self.nonpriv.contains(arr) {
                    format!("{:?}", self.nonpriv.elem(arr, idx))
                } else {
                    "unregistered".into()
                };
                eprintln!(
                    "[trace] t={now} {proc} {what} {arr}[{idx}] level={level:?} state={state:?} tag={tag:?} dir={dir_elem} dirline={:?}",
                    self.dirs[self.numa.home_of(layout.addr_of(idx)).0 as usize].state(line),
                );
            }
        }
    }

    fn fail(&mut self, reason: FailReason, at: Cycles) {
        self.stats.incr("speculation_failures_detected");
        if self.tracer.enabled() {
            let (proc, arr, idx, iter) = match self.cur_ctx {
                Some((p, a, i, it)) => (p, Some(a), Some(i), it),
                None => (None, None, None, None),
            };
            self.tracer.emit(TraceEvent::Abort {
                at,
                proc,
                arr,
                idx,
                iter,
                label: reason.label(),
                reason: reason.to_string(),
            });
        }
        match self.failure {
            Some((_, t)) if t <= at => {}
            _ => self.failure = Some((reason, at)),
        }
    }

    /// A DASH-style uncached fetch&op on `arr[idx]`: the operation executes
    /// atomically at the element's home memory (serializing at the home
    /// directory bank) without allocating the line in any cache. Returns
    /// the completion time. The *functional* read-modify-write is the
    /// caller's business — this models only timing and serialization, which
    /// is what synchronization primitives (barrier counters, lock grants)
    /// need.
    pub fn fetch_op(&mut self, proc: ProcId, arr: ArrayId, idx: u64, now: Cycles) -> Cycles {
        self.stats.incr("fetch_ops");
        let layout = self.layout(arr);
        let addr = layout.addr_of(idx);
        let home = self.numa.home_of(addr);
        let lat = self.cfg.latency;
        let req = self.route(proc.node(), home, now);
        let end = self.dir_banks[home.0 as usize].acquire(
            addr.line().0,
            req.arrive,
            Cycles(lat.mem_service),
        );
        let queue = end
            .saturating_sub(req.arrive)
            .saturating_sub(Cycles(lat.mem_service));
        let base = lat.miss_base(proc.node(), home);
        self.finish_round_trip(proc.node(), home, now, req, end, base + queue)
    }

    /// Whether lines of `arr` carry speculation access bits under the
    /// current plan: arrays under test, and private copies of privatized
    /// arrays.
    fn array_is_tracked(&self, arr: ArrayId) -> bool {
        if self.plan.kind_of(arr).is_under_test() {
            return true;
        }
        if arr.0 >= PRIVATE_ID_BASE {
            let base = ArrayId((arr.0 >> 8) & ((1 << 23) - 1));
            return self.plan.kind_of(base).is_privatized();
        }
        false
    }

    /// Fresh (cleared) tags sized for a resident line under the current
    /// plan.
    fn fresh_tags_for_line(&self, line: LineAddr) -> LineTags {
        match self.numa.address_map().locate(line.base()) {
            Some((arr, _)) if self.array_is_tracked(arr) => {
                let layout = self.numa.address_map().layout(arr);
                match layout.elems_on_line(line) {
                    Some(r) => LineTags::cleared((r.end - r.start) as usize),
                    None => LineTags::empty(),
                }
            }
            _ => LineTags::empty(),
        }
    }

    fn elem_offset(&self, layout: &ArrayLayout, line: LineAddr, idx: u64) -> usize {
        let range = layout.elems_on_line(line).expect("line within array");
        debug_assert!(range.contains(&idx));
        (idx - range.start) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(procs: u32) -> MemSystem {
        MemSystem::new(MemSystemConfig {
            procs,
            cache: CacheConfig {
                l1_lines: 16,
                l2_lines: 64,
            },
            latency: LatencyConfig::default(),
            dir_banks: 4,
            net: NetConfig::flat(),
            dirty_read_downgrades: false,
            retry: RetryConfig::default(),
        })
    }

    const A: ArrayId = ArrayId(0);
    const P0: ProcId = ProcId(0);
    const P1: ProcId = ProcId(1);

    #[test]
    fn private_copy_ids_are_unique() {
        let a = private_copy_id(ArrayId(1), ProcId(0));
        let b = private_copy_id(ArrayId(1), ProcId(1));
        let c = private_copy_id(ArrayId(2), ProcId(0));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.0 >= PRIVATE_ID_BASE);
    }

    #[test]
    fn plain_read_miss_then_hits() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 64, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let t0 = Cycles(0);
        let o = ms.read(P0, A, 0, t0);
        // First page is homed on node 0, so this is a local miss: 60 cycles.
        assert_eq!(o.complete_at, Cycles(60));
        let o = ms.read(P0, A, 1, o.complete_at);
        // Same line now in L1.
        assert_eq!(o.complete_at, Cycles(61));
    }

    #[test]
    fn plain_remote_read_costs_two_hops() {
        let mut ms = small_system(2);
        // One page on node 0; allocate a second array landing on node 1.
        ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
        let b = ArrayId(1);
        ms.alloc_array(b, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let o = ms.read(P0, b, 0, Cycles(0));
        assert_eq!(o.complete_at, Cycles(208));
    }

    #[test]
    fn dirty_remote_line_costs_three_hops() {
        let mut ms = small_system(3);
        let b = ArrayId(1);
        ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin); // node 0
        ms.alloc_array(b, 8, ElemSize::W8, PlacementPolicy::RoundRobin); // node 1
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        // P2 dirties b[0] (home node 1).
        let o = ms.write(ProcId(2), b, 0, Cycles(0));
        let t = o.complete_at;
        // P0 reads it: requester 0, home 1, owner 2 → 3 hops.
        let o = ms.read(P0, b, 0, t);
        assert_eq!(o.complete_at - t, Cycles(291));
    }

    #[test]
    fn write_to_shared_line_invalidates_sharers() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let t = ms.read(P0, A, 0, Cycles(0)).complete_at;
        let t = ms.read(P1, A, 0, t).complete_at;
        let t = ms.write(P0, A, 0, t).complete_at;
        assert_eq!(ms.stats().get("invalidations"), 1);
        // P1 misses now.
        let o = ms.read(P1, A, 0, t);
        assert!(o.complete_at - t >= Cycles(60));
    }

    #[test]
    fn directory_bank_contention_queues() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        // P1's remote miss arrives at the home (node 0) at t=74 and holds
        // the bank until t=114; P0's local miss issued at t=80 must queue.
        let b = ms.read(P1, A, 0, Cycles(0)).complete_at;
        assert_eq!(b, Cycles(208));
        let a = ms.read(P0, A, 0, Cycles(80)).complete_at;
        // Unloaded it would be 80+60=140; queueing behind P1 adds 34.
        assert_eq!(a, Cycles(174), "local transaction must queue behind P1");
    }

    // ---- non-privatization end-to-end ----

    fn nonpriv_plan() -> TestPlan {
        let mut p = TestPlan::new();
        p.set(A, ProtocolKind::NonPriv);
        p
    }

    #[test]
    fn nonpriv_disjoint_writers_pass() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let mut t = Cycles(0);
        for i in 0..8 {
            t = ms.write(P0, A, i, t).complete_at;
            t = ms.write(P1, A, 16 + i, t).complete_at;
        }
        ms.drain_all_messages();
        assert!(ms.failure().is_none());
    }

    #[test]
    fn nonpriv_read_only_sharing_passes() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let mut t = Cycles(0);
        for i in 0..8 {
            t = ms.read(P0, A, i, t).complete_at;
            t = ms.read(P1, A, i, t).complete_at;
        }
        ms.drain_all_messages();
        assert!(ms.failure().is_none(), "failure: {:?}", ms.failure());
    }

    #[test]
    fn nonpriv_write_then_remote_read_fails() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let t = ms.write(P0, A, 3, Cycles(0)).complete_at;
        let _ = ms.read(P1, A, 3, t);
        ms.drain_all_messages();
        let (reason, _) = ms.failure().expect("must fail");
        assert_eq!(reason.label(), "read_of_remotely_written");
    }

    #[test]
    fn nonpriv_read_then_remote_write_fails() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let t = ms.read(P0, A, 3, Cycles(0)).complete_at;
        // Let the First_update arrive before the write transaction.
        let t = t + Cycles(1000);
        let _ = ms.write(P1, A, 3, t);
        ms.drain_all_messages();
        let (reason, _) = ms.failure().expect("must fail");
        assert_eq!(reason.label(), "write_conflict");
    }

    #[test]
    fn hidden_conflict_caught_only_by_verdict_merge() {
        // The hide-a-conflict window (ROADMAP item 5): a drain-point-only
        // verdict misses a conflict whose evidence is split between an
        // in-flight update and a silently written dirty line.
        //
        //  1. P1 fills line 0 clean (miss via element 1), then hit-reads
        //     element 0 — its First_update crosses the network (~74cy).
        //  2. While the update is in flight, P0 exclusive-fetches line 0
        //     through the untouched element 2. The directory still shows
        //     element 0 untouched, so P0's granted tags say so too; P1's
        //     clean copy is invalidated, dropping its tag state.
        //  3. P0 silently dirty-hit-writes element 0 — the line is dirty,
        //     so no message is sent.
        //  4. The update lands at a directory that never saw the write:
        //     accepted, First(cpu1). Directory and P0's cache now hold
        //     contradictory halves of a write conflict.
        //
        // Draining leaves no failure (the old verdict read would PASS);
        // only merging the dirty line's tags into the directory exposes
        // the conflict.
        let mut ms = small_system(2);
        ms.alloc_array(A, 64, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let t = ms.read(P1, A, 1, Cycles(0)).complete_at; // remote fill
        let t = ms.read(P1, A, 0, t).complete_at; // clean hit: update in flight
        let t = ms.write(P0, A, 2, t + Cycles(2)).complete_at; // local, beats update
        let _ = ms.write(P0, A, 0, t); // silent dirty hit
        ms.drain_all_messages();
        assert!(
            ms.failure().is_none(),
            "drain-point verdict would wrongly PASS, got {:?}",
            ms.failure()
        );
        ms.merge_dirty_tags(Cycles(1000));
        let (reason, _) = ms.failure().expect("merged verdict must FAIL");
        assert_eq!(reason.label(), "write_conflict");
        assert!(ms.stats().get("verdict_merges") >= 1);
    }

    #[test]
    fn nonpriv_update_write_race_detected() {
        // P0 reads element 3 at t=0 (First_update in flight), P1 writes it
        // immediately: the write request reaches the directory before the
        // update; the late update must FAIL (algorithm (f)).
        let mut ms = small_system(2);
        // Home the array remotely from both by using 3 procs? With 2 procs
        // the array's first page homes on node 0 = P0: P0's update is
        // local (fast). Make P1 the reader so its update crosses the net.
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let _ = ms.read(P1, A, 3, Cycles(0)); // update arrives ~t+75
        let _ = ms.write(P0, A, 3, Cycles(1)); // local write req, processed first
        ms.drain_all_messages();
        let (reason, _) = ms.failure().expect("race must fail");
        assert!(
            reason.label() == "first_update_race" || reason.label() == "write_conflict",
            "unexpected reason {reason:?}"
        );
    }

    #[test]
    fn nonpriv_same_processor_mixed_access_passes() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let mut t = Cycles(0);
        for _ in 0..3 {
            t = ms.read(P0, A, 5, t).complete_at;
            t = ms.write(P0, A, 5, t).complete_at;
        }
        ms.drain_all_messages();
        assert!(ms.failure().is_none(), "failure: {:?}", ms.failure());
    }

    // ---- privatization end-to-end ----

    fn priv_plan() -> TestPlan {
        let mut p = TestPlan::new();
        p.set(
            A,
            ProtocolKind::Priv {
                read_in: true,
                copy_out: true,
            },
        );
        p
    }

    #[test]
    fn priv_write_before_read_same_iteration_passes() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(priv_plan(), IterationNumbering::iteration_wise());
        let mut t = Cycles(0);
        for (proc, iters) in [(P0, 0..4u64), (P1, 4..8)] {
            for i in iters {
                ms.begin_iteration(proc, i);
                t = ms.write(proc, A, 2, t).complete_at;
                t = ms.read(proc, A, 2, t).complete_at;
            }
        }
        ms.drain_all_messages();
        assert!(ms.failure().is_none(), "failure: {:?}", ms.failure());
    }

    #[test]
    fn priv_read_first_after_earlier_write_fails() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(priv_plan(), IterationNumbering::iteration_wise());
        // Iteration 0 (P0) writes element 2; iteration 5 (P1) reads it first.
        ms.begin_iteration(P0, 0);
        let t = ms.write(P0, A, 2, Cycles(0)).complete_at;
        ms.begin_iteration(P1, 5);
        let _ = ms.read(P1, A, 2, t + Cycles(1000));
        ms.drain_all_messages();
        let (reason, _) = ms.failure().expect("flow dependence must fail");
        assert_eq!(reason.label(), "read_first_after_write");
    }

    #[test]
    fn priv_reads_then_later_writes_pass_with_read_in() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(priv_plan(), IterationNumbering::iteration_wise());
        // Early iterations read (P0), later iterations write (P1).
        let mut t = Cycles(0);
        ms.begin_iteration(P0, 0);
        let o = ms.read(P0, A, 2, t);
        assert!(o.read_in.is_some(), "first touch must read in");
        t = o.complete_at;
        ms.begin_iteration(P1, 6);
        let o = ms.write(P1, A, 2, t);
        t = o.complete_at;
        let _ = t;
        ms.drain_all_messages();
        assert!(ms.failure().is_none(), "failure: {:?}", ms.failure());
        assert_eq!(ms.copy_out_winner(A, 2), Some(P1));
    }

    #[test]
    fn priv_read_in_happens_once_per_line() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(priv_plan(), IterationNumbering::iteration_wise());
        ms.begin_iteration(P0, 0);
        let o1 = ms.read(P0, A, 0, Cycles(0));
        assert!(o1.read_in.is_some());
        // Element 1 is on the same line, already read in.
        let o2 = ms.read(P0, A, 1, o1.complete_at);
        assert!(o2.read_in.is_none());
        assert_eq!(ms.stats().get("priv_read_ins"), 1);
    }

    #[test]
    fn priv_chunked_numbering_masks_dependences_within_chunk() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(priv_plan(), IterationNumbering::chunked(8));
        // Write in iteration 0, read-first in iteration 5: same chunk →
        // same stamp → passes (the processor-wise relaxation of §2.2.3).
        ms.begin_iteration(P0, 0);
        let t = ms.write(P0, A, 2, Cycles(0)).complete_at;
        ms.begin_iteration(P0, 5);
        let _ = ms.read(P0, A, 2, t + Cycles(500));
        ms.drain_all_messages();
        assert!(ms.failure().is_none(), "failure: {:?}", ms.failure());
    }

    #[test]
    fn flush_caches_forces_remisses() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let t = ms.read(P0, A, 0, Cycles(0)).complete_at;
        ms.flush_caches(t);
        let o = ms.read(P0, A, 0, t);
        assert!(o.complete_at - t >= Cycles(60), "flushed line must miss");
    }

    #[test]
    fn failure_keeps_earliest() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let t = ms.write(P0, A, 3, Cycles(0)).complete_at;
        let t = ms.read(P1, A, 3, t + Cycles(10)).complete_at; // fail 1
        let _ = ms.read(P1, A, 4, t);
        let first = ms.failure().unwrap().1;
        let _ = ms.write(P1, A, 3, t + Cycles(1000)); // would fail again later
        assert_eq!(ms.failure().unwrap().1, first);
    }

    #[test]
    fn fetch_op_serializes_at_home_without_caching() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin); // node 0
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        // Remote fetch&op: one 2-hop round trip, bank busy 74..114.
        let b = ms.fetch_op(P1, A, 0, Cycles(0));
        assert_eq!(b, Cycles(208));
        // A local fetch&op issued at t=80 arrives while the bank is busy
        // and queues behind it (unloaded it would finish at 140).
        let a = ms.fetch_op(P0, A, 0, Cycles(80));
        assert_eq!(a, Cycles(174), "hot-spot serialization");
        // The operation is uncached: a subsequent read still misses.
        let o = ms.read(P0, A, 0, a);
        assert!(o.complete_at - a >= Cycles(60));
        assert_eq!(ms.stats().get("fetch_ops"), 2);
    }

    #[test]
    fn sharing_writeback_keeps_owner_copy() {
        let mut cfg = MemSystemConfig {
            procs: 3,
            cache: CacheConfig {
                l1_lines: 16,
                l2_lines: 64,
            },
            latency: LatencyConfig::default(),
            dir_banks: 4,
            net: NetConfig::flat(),
            dirty_read_downgrades: true,
            retry: RetryConfig::default(),
        };
        let mut ms = MemSystem::new(cfg);
        let b = ArrayId(1);
        ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin); // node 0
        ms.alloc_array(b, 8, ElemSize::W8, PlacementPolicy::RoundRobin); // node 1
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        // P2 dirties b[0]; P0 reads it: with sharing write-back, P2 keeps a
        // clean copy and a subsequent P2 read is an L1 hit.
        let t = ms.write(ProcId(2), b, 0, Cycles(0)).complete_at;
        let t = ms.read(ProcId(0), b, 0, t).complete_at;
        let o = ms.read(ProcId(2), b, 0, t);
        assert_eq!(o.complete_at - t, Cycles(1), "owner retained a copy");

        // With the default invalidate-on-fetch, the owner misses instead.
        cfg.dirty_read_downgrades = false;
        let mut ms = MemSystem::new(cfg);
        ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.alloc_array(b, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let t = ms.write(ProcId(2), b, 0, Cycles(0)).complete_at;
        let t = ms.read(ProcId(0), b, 0, t).complete_at;
        let o = ms.read(ProcId(2), b, 0, t);
        assert!(o.complete_at - t > Cycles(12), "owner was invalidated");
    }

    #[test]
    fn sharing_writeback_preserves_nonpriv_detection() {
        let mut ms = MemSystem::new(MemSystemConfig {
            procs: 2,
            cache: CacheConfig {
                l1_lines: 16,
                l2_lines: 64,
            },
            latency: LatencyConfig::default(),
            dir_banks: 4,
            net: NetConfig::flat(),
            dirty_read_downgrades: true,
            retry: RetryConfig::default(),
        });
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let t = ms.write(P0, A, 3, Cycles(0)).complete_at;
        let _ = ms.read(P1, A, 3, t + Cycles(1000));
        ms.drain_all_messages();
        assert!(ms.failure().is_some(), "conflict must still be caught");
    }

    #[test]
    fn stamp_window_reset_discards_private_copies() {
        // A write populates the private copy; a §3.3 stamp reset marks the
        // window boundary where the machine folds committed values back
        // into the shared image, so the private copy is stale afterwards.
        // A read in the next window must re-read-in from the shared array
        // (served with the committed value by the machine layer) rather
        // than hit a leftover private line from the previous window.
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(priv_plan(), IterationNumbering::iteration_wise());
        ms.begin_iteration(P0, 0);
        let t = ms.write(P0, A, 2, Cycles(0)).complete_at;
        ms.drain_all_messages();
        ms.reset_stamp_window(16);
        ms.begin_iteration(P0, 16);
        let out = ms.read(P0, A, 2, t + Cycles(2000));
        assert!(
            out.read_in.is_some(),
            "the next window must re-read-in the committed value"
        );
        ms.drain_all_messages();
        assert!(ms.failure().is_none(), "{:?}", ms.failure());
    }

    #[test]
    fn stamp_window_reset_restarts_effective_numbering() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(priv_plan(), IterationNumbering::iteration_wise());
        // Window 0: iteration 7 writes element 5.
        ms.begin_iteration(P0, 7);
        let t = ms.write(P0, A, 5, Cycles(0)).complete_at;
        ms.drain_all_messages();
        ms.reset_stamp_window(8);
        // Window 1: iteration 9 (effective stamp 2) reads element 5 first.
        // Without the reset this would be a read-first after a write
        // (stamp 8 > MinW 8... exactly at boundary); with the reset the
        // stamps are clean and the read-first passes.
        ms.begin_iteration(P1, 9);
        let _ = ms.read(P1, A, 5, t + Cycles(2000));
        ms.drain_all_messages();
        assert!(ms.failure().is_none(), "{:?}", ms.failure());
    }

    #[test]
    fn configure_loop_resets_state() {
        let mut ms = small_system(2);
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let t = ms.write(P0, A, 3, Cycles(0)).complete_at;
        let _ = ms.read(P1, A, 3, t);
        ms.drain_all_messages();
        assert!(ms.failure().is_some());
        ms.flush_caches(t + Cycles(10_000));
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        assert!(ms.failure().is_none());
        // The same pattern by a single processor now passes.
        let t2 = Cycles(100_000);
        let t2 = ms.write(P0, A, 3, t2).complete_at;
        let _ = ms.read(P0, A, 3, t2);
        ms.drain_all_messages();
        assert!(ms.failure().is_none());
    }

    #[test]
    fn flat_network_reproduces_unloaded_latencies_exactly() {
        // Golden check for the network integration: with the flat
        // zero-contention network (the default), the §5.1 unloaded round
        // trips come out exactly — 60 local, 208 remote 2-hop, 291 remote
        // 3-hop — i.e. the interconnect layer adds zero cycles and zero
        // state compared to the seed's constant-latency abstraction.
        let mut ms = small_system(3);
        let b = ArrayId(1);
        ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin); // node 0
        ms.alloc_array(b, 8, ElemSize::W8, PlacementPolicy::RoundRobin); // node 1
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let local = ms.read(P0, A, 0, Cycles(0)).complete_at;
        assert_eq!(local, Cycles(60), "local miss");
        let two = ms.read(P0, b, 0, Cycles(10_000));
        assert_eq!(two.complete_at - Cycles(10_000), Cycles(208), "2-hop miss");
        // P2 dirties the line; P0 (remote to home n1 and owner n2) rereads.
        let t = ms.write(ProcId(2), b, 1, Cycles(20_000)).complete_at;
        let three = ms.read(P0, b, 1, t + Cycles(10_000));
        assert_eq!(
            three.complete_at - (t + Cycles(10_000)),
            Cycles(291),
            "3-hop miss"
        );
        let s = ms.net_summary();
        assert_eq!(s.total_queue, 0, "flat network never queues");
        assert!(s.links.is_empty(), "flat network reserves no links");
        assert!(s.messages > 0, "traffic was still accounted");
    }

    #[test]
    fn mesh_with_constrained_links_queues_and_slows_misses() {
        let mesh = MemSystem::new(MemSystemConfig {
            procs: 16,
            net: NetConfig::mesh(16).with_link_service(64),
            ..MemSystemConfig::default()
        });
        let flat = MemSystem::new(MemSystemConfig {
            procs: 16,
            ..MemSystemConfig::default()
        });
        let run = |mut ms: MemSystem| {
            ms.alloc_array(A, 256, ElemSize::W8, PlacementPolicy::RoundRobin);
            ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
            // Every processor hammers node 0's memory at the same instant:
            // the links into node 0 saturate on the mesh.
            let mut last = Cycles(0);
            for p in 1..16 {
                let o = ms.read(ProcId(p), A, 0, Cycles(0));
                last = last.max(o.complete_at);
            }
            (last, ms.net_summary())
        };
        let (flat_done, flat_sum) = run(flat);
        let (mesh_done, mesh_sum) = run(mesh);
        assert_eq!(flat_sum.total_queue, 0);
        assert!(
            mesh_sum.total_queue > 0,
            "constrained mesh links must queue: {mesh_sum:?}"
        );
        assert!(
            mesh_done > flat_done,
            "contention must slow the hot-spot: mesh {mesh_done} vs flat {flat_done}"
        );
        let hot = mesh_sum.hotspot().expect("links were used");
        assert!(hot.queued > 0, "hotspot link shows queueing: {hot:?}");
    }

    #[test]
    fn mesh_keeps_protocol_outcomes_identical() {
        // Topology changes timing, never protocol semantics: the same
        // conflicting access pattern fails under both networks, and the
        // same clean pattern passes under both.
        for net in [NetConfig::flat(), NetConfig::mesh(4).with_link_service(32)] {
            let mut ms = MemSystem::new(MemSystemConfig {
                procs: 4,
                net,
                ..MemSystemConfig::default()
            });
            ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
            ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
            let t = ms.write(P0, A, 3, Cycles(0)).complete_at;
            let _ = ms.read(P1, A, 3, t + Cycles(1000));
            ms.drain_all_messages();
            assert!(ms.failure().is_some(), "conflict caught under {net:?}");
        }
    }

    /// A read-only storm over a non-privatized array: round one misses
    /// (synchronous directory tests), round two hits in cache and sends the
    /// asynchronous `First_update`/`ROnly_update` stream — the messages the
    /// fault plane perturbs. No writes, so the only possible failure is a
    /// lost message.
    fn run_read_storm(faults: specrt_net::FaultConfig) -> MemSystem {
        let mut ms = MemSystem::new(MemSystemConfig {
            procs: 4,
            net: NetConfig::flat().with_faults(faults),
            ..MemSystemConfig::default()
        });
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let mut t = Cycles(0);
        for _round in 0..2 {
            for p in 0..4u32 {
                for i in 0..32 {
                    let o = ms.read(ProcId(p), A, i, t);
                    t = o.complete_at + Cycles(1);
                }
            }
        }
        ms.drain_all_messages();
        ms
    }

    #[test]
    fn dropped_updates_retry_and_recover() {
        let ms = run_read_storm(specrt_net::FaultConfig {
            seed: 0x5eed,
            drop_ppm: 200_000,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_cycles: 0,
            node_fault: None,
        });
        assert!(ms.stats().get("fault.dropped") > 0, "no drop ever fired");
        assert!(ms.stats().get("retry.resends") > 0, "drops must retransmit");
        assert_eq!(
            ms.failure(),
            None,
            "bounded retries recover a 20% loss rate"
        );
        assert!(ms.fault_stats().dropped > 0);
    }

    #[test]
    fn duplicated_updates_replay_idempotently() {
        let clean = run_read_storm(specrt_net::FaultConfig::none());
        let dup = run_read_storm(specrt_net::FaultConfig {
            seed: 1,
            drop_ppm: 0,
            dup_ppm: 1_000_000,
            delay_ppm: 0,
            delay_cycles: 0,
            node_fault: None,
        });
        assert!(dup.stats().get("fault.duplicated") > 0);
        assert_eq!(dup.failure(), None, "duplicates must not fail a clean run");
        assert_eq!(
            dup.dump(),
            clean.dump(),
            "directory replay of duplicates must be idempotent"
        );
    }

    #[test]
    fn delayed_updates_stay_in_order_and_pass() {
        let ms = run_read_storm(specrt_net::FaultConfig {
            seed: 2,
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 1_000_000,
            delay_cycles: 10_000,
            node_fault: None,
        });
        assert!(ms.stats().get("fault.delayed") > 0);
        assert_eq!(
            ms.failure(),
            None,
            "delay alone must never fail a clean run"
        );
    }

    #[test]
    fn total_loss_escalates_to_message_lost_abort() {
        let ms = run_read_storm(specrt_net::FaultConfig {
            seed: 3,
            drop_ppm: 1_000_000,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_cycles: 0,
            node_fault: None,
        });
        assert!(ms.stats().get("retry.exhausted") > 0);
        let (reason, _) = ms.failure().expect("total loss must abort");
        assert_eq!(reason.label(), "message_lost");
    }

    #[test]
    fn faulty_network_still_catches_real_conflicts() {
        // Drop/duplicate/delay must never mask a genuine dependence: the
        // same conflicting pattern as mesh_keeps_protocol_outcomes_identical
        // under an aggressive fault plane still records a failure.
        let faults = specrt_net::FaultConfig {
            seed: 7,
            drop_ppm: 100_000,
            dup_ppm: 100_000,
            delay_ppm: 100_000,
            delay_cycles: 500,
            node_fault: None,
        };
        let mut ms = MemSystem::new(MemSystemConfig {
            procs: 4,
            net: NetConfig::mesh(4).with_link_service(32).with_faults(faults),
            ..MemSystemConfig::default()
        });
        ms.alloc_array(A, 32, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(nonpriv_plan(), IterationNumbering::iteration_wise());
        let t = ms.write(P0, A, 3, Cycles(0)).complete_at;
        let _ = ms.read(P1, A, 3, t + Cycles(1000));
        ms.drain_all_messages();
        assert!(ms.failure().is_some(), "conflict caught despite faults");
    }
}
