//! End-to-end service tests: determinism across cold/warm/parallelism,
//! cache behaviour, backpressure, the admin surface, and the TCP
//! transport with concurrent clients.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::TcpStream;
use std::sync::Arc;

use specrt_check::Json;
use specrt_par::Lane;
use specrt_serve::{serve_connection, Outcome, ServeConfig, ServeCore, Server};

fn core_with(workers: usize, queue_depth: usize, cache_capacity: usize) -> Arc<ServeCore> {
    ServeCore::new(ServeConfig {
        workers,
        queue_depth,
        cache_capacity,
    })
}

/// Runs a whole session through the stdio-style transport and returns
/// the response lines.
fn session(core: &Arc<ServeCore>, input: &str) -> Vec<String> {
    let mut out: Vec<u8> = Vec::new();
    serve_connection(core, Cursor::new(input.to_string()), &mut out).expect("session io");
    String::from_utf8(out)
        .expect("utf8 output")
        .lines()
        .map(str::to_string)
        .collect()
}

/// Resolves one request directly on the core (no transport).
fn one(core: &Arc<ServeCore>, line: &str) -> String {
    match core.handle_line(line) {
        Outcome::Ready(p) => p,
        Outcome::Pending(rx) => rx.recv().expect("job answered"),
        Outcome::Shutdown(p) => p,
    }
}

fn counter(core: &Arc<ServeCore>, name: &str) -> u64 {
    let snap = Json::parse(&core.metrics_snapshot_json()).expect("snapshot parses");
    snap.get("counters")
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

#[test]
fn duplicate_request_is_served_from_cache_byte_identically() {
    let core = core_with(2, 16, 64);
    let req = r#"{"id":1,"op":"case","seed":42,"protocol":"hw-nonpriv"}"#;
    let dup = r#"{"id":3,"op":"case","seed":42,"protocol":"hw-nonpriv"}"#;
    let other = r#"{"id":2,"op":"case","seed":43,"protocol":"hw-nonpriv"}"#;

    let cold = one(&core, req);
    let unrelated = one(&core, other);
    let warm = one(&core, dup);

    assert_ne!(cold, unrelated);
    // Identical modulo the echoed id: strip `{"id":N,` from both.
    let strip = |s: &str| s.split_once(',').unwrap().1.to_string();
    assert_eq!(
        strip(&cold),
        strip(&warm),
        "cache hit must be byte-identical"
    );
    assert_eq!(counter(&core, "serve.cache_hits"), 1);
    assert_eq!(counter(&core, "serve.cache_misses"), 2);

    // The payload is well-formed JSON with the canonical key and result.
    let v = Json::parse(&cold).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert!(v
        .get("key")
        .and_then(Json::as_str)
        .unwrap()
        .starts_with("0x"));
    let result = v.get("result").unwrap();
    assert_eq!(
        result.get("protocol").and_then(Json::as_str),
        Some("hw-nonpriv")
    );
    assert!(result.get("cycles").and_then(Json::as_u64).unwrap() > 0);
}

#[test]
fn responses_are_identical_at_any_worker_count_cold_or_warm() {
    let input = concat!(
        r#"{"id":1,"op":"case","seed":7,"protocol":"hw-priv"}"#,
        "\n",
        r#"{"id":2,"op":"case","seed":8,"protocol":"sw-lrpd","lane":"batch"}"#,
        "\n",
        r#"{"id":3,"op":"case","seed":7,"protocol":"hw-priv"}"#,
        "\n",
        r#"{"id":4,"op":"workload","name":"ocean","invocation":1,"scenario":"hw"}"#,
        "\n",
    );
    let base = session(&core_with(1, 16, 64), input);
    assert_eq!(base.len(), 4);
    for workers in [2, 8] {
        let got = session(&core_with(workers, 16, 64), input);
        assert_eq!(base, got, "stream must not depend on --jobs {workers}");
    }
    // Warm replay of the same session on the same core: same bytes.
    let core = core_with(4, 16, 64);
    let cold = session(&core, input);
    let warm = session(&core, input);
    assert_eq!(base, cold);
    assert_eq!(cold, warm);
    // id:3 duplicates id:1's content.
    let strip = |s: &str| s.split_once(',').unwrap().1.to_string();
    assert_eq!(strip(&cold[0]), strip(&cold[2]));
}

#[test]
fn full_lane_answers_busy_instead_of_blocking() {
    let core = core_with(1, 1, 16);
    // Wedge the single worker, then fill the one batch queue slot.
    let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
    let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
    core.pool()
        .submit(Lane::Batch, move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
    started_rx.recv().unwrap();
    core.pool().submit(Lane::Batch, || {}).unwrap();

    let r = core.handle_line(r#"{"id":9,"op":"case","seed":1,"lane":"batch"}"#);
    let line = match r {
        Outcome::Ready(p) => p,
        _ => panic!("backpressure must answer immediately"),
    };
    let v = Json::parse(&line).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("retryable").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("id").and_then(Json::as_u64), Some(9));
    assert!(v
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("busy"));
    assert_eq!(counter(&core, "serve.busy_rejections"), 1);

    // The interactive lane still accepts work.
    let ok = core.handle_line(r#"{"id":10,"op":"ping"}"#);
    assert!(matches!(ok, Outcome::Ready(_)));
    gate_tx.send(()).unwrap();
}

#[test]
fn admin_surface_ping_stats_errors() {
    let core = core_with(2, 8, 16);
    assert_eq!(
        one(&core, r#"{"id":1,"op":"ping"}"#),
        r#"{"id":1,"ok":true,"result":"pong"}"#
    );
    let _ = one(&core, r#"{"op":"case","seed":3}"#);
    let stats = one(&core, r#"{"id":2,"op":"stats"}"#);
    let v = Json::parse(&stats).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let counters = v.get("result").and_then(|r| r.get("counters")).unwrap();
    assert!(
        counters
            .get("serve.requests")
            .and_then(Json::as_u64)
            .unwrap()
            >= 2
    );
    assert!(counters.get("serve.pool.workers").and_then(Json::as_u64) == Some(2));
    assert!(counters.get("serve.latency_us.p50").is_some());
    assert!(counters.get("serve.latency_us.p99").is_some());

    for (line, needle) in [
        ("not json", "bad JSON"),
        (r#"{"op":"frobnicate"}"#, "unknown op"),
        (r#"{"op":"case"}"#, "needs \"case\" or \"seed\""),
        (
            r#"{"op":"case","seed":1,"protocol":"hw"}"#,
            "unknown protocol",
        ),
        (r#"{"op":"workload","name":"linpack"}"#, "unknown workload"),
        (
            r#"{"op":"case","seed":1,"config":{"cache_lines":4}}"#,
            "unknown config key",
        ),
    ] {
        let r = one(&core, line);
        let v = Json::parse(&r).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
        assert!(
            v.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains(needle),
            "{line} → {r}"
        );
        assert_eq!(v.get("retryable").and_then(Json::as_bool), Some(false));
    }
    assert!(counter(&core, "serve.errors") >= 6);
}

#[test]
fn check_protocol_reports_oracle_agreement() {
    let core = core_with(2, 8, 16);
    let r = one(&core, r#"{"id":1,"op":"case","seed":5,"protocol":"check"}"#);
    let v = Json::parse(&r).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let result = v.get("result").unwrap();
    assert_eq!(result.get("protocol").and_then(Json::as_str), Some("check"));
    assert_eq!(result.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        result
            .get("mismatches")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(0)
    );
}

#[test]
fn config_overrides_change_the_key_and_the_result() {
    let core = core_with(2, 8, 64);
    let base = one(&core, r#"{"op":"case","seed":11,"protocol":"hw-nonpriv"}"#);
    let slow = one(
        &core,
        r#"{"op":"case","seed":11,"protocol":"hw-nonpriv","config":{"remote_2hop":500,"remote_3hop":600}}"#,
    );
    let vb = Json::parse(&base).unwrap();
    let vs = Json::parse(&slow).unwrap();
    assert_ne!(vb.get("key"), vs.get("key"));
    let cycles = |v: &Json| {
        v.get("result")
            .and_then(|r| r.get("cycles"))
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert!(
        cycles(&vs) > cycles(&vb),
        "slower remote memory must cost cycles"
    );
    // Same seed, same config: still a cache hit, not a third miss.
    let again = one(&core, r#"{"op":"case","seed":11,"protocol":"hw-nonpriv"}"#);
    assert_eq!(base, again);
    assert_eq!(counter(&core, "serve.cache_hits"), 1);
}

#[test]
fn tcp_concurrent_clients_share_the_cache_and_shutdown_stops_the_server() {
    let core = core_with(4, 32, 128);
    let server = Server::bind(Arc::clone(&core), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    fn client(addr: std::net::SocketAddr, seeds: Vec<u64>) -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut responses = Vec::new();
        for (i, seed) in seeds.iter().enumerate() {
            let mut s = stream.try_clone().expect("clone");
            writeln!(
                s,
                "{{\"id\":{i},\"op\":\"case\",\"seed\":{seed},\"protocol\":\"hw-nonpriv\"}}"
            )
            .expect("write");
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            responses.push(line.trim().to_string());
        }
        responses
    }

    // Three clients, overlapping seeds: every client sees the same
    // payload bytes for the same seed.
    let c1 = std::thread::spawn(move || client(addr, vec![21, 22, 21]));
    let c2 = std::thread::spawn(move || client(addr, vec![22, 21, 23]));
    let c3 = std::thread::spawn(move || client(addr, vec![23, 23, 22]));
    let (r1, r2, r3) = (c1.join().unwrap(), c2.join().unwrap(), c3.join().unwrap());
    let strip = |s: &str| s.split_once(',').unwrap().1.to_string();
    assert_eq!(strip(&r1[0]), strip(&r1[2]), "same seed, same bytes");
    assert_eq!(strip(&r1[0]), strip(&r2[1]), "across clients too");
    assert_eq!(strip(&r2[0]), strip(&r1[1]));
    assert_eq!(strip(&r3[2]), strip(&r2[0]));
    for r in r1.iter().chain(&r2).chain(&r3) {
        let v = Json::parse(r).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    }

    // 9 requests over 3 distinct keys: at least 6 hits (exact count is
    // scheduling-dependent when identical misses race).
    assert!(counter(&core, "serve.cache_hits") >= 6);

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    writeln!(&stream, "{{\"id\":99,\"op\":\"shutdown\"}}").expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("shutting down"));
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn metrics_out_streams_snapshots() {
    let dir = std::env::temp_dir().join(format!("specrt-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    let core = core_with(2, 8, 16);
    core.set_metrics_out(Some(path.clone()));
    let _ = one(&core, r#"{"op":"case","seed":2}"#);
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let v = Json::parse(text.trim()).expect("metrics file is JSON");
    assert!(
        v.get("counters")
            .and_then(|c| c.get("serve.completed"))
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
    std::fs::remove_dir_all(&dir).ok();
}
