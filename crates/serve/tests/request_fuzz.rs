//! Hostile-input fuzz for the wire parser: `parse_request` must be total.
//!
//! Seeded byte- and token-level mutations of a known-good request corpus
//! are thrown at the parser. Whatever arrives, the parser must never
//! panic; when it rejects a line, the rejection must flow into a
//! structured `{"ok":false}` response the client can read — a malformed
//! request may cost the sender an error, never the service a thread.

use specrt_check::Json;
use specrt_engine::SplitMix64;
use specrt_serve::request::{extract_id, parse_request};
use specrt_serve::service::error_payload;

/// Known-good request lines covering every op and the override surface
/// (message faults, node faults, checkpointing included).
const CORPUS: &[&str] = &[
    r#"{"id":7,"op":"case","seed":3}"#,
    r#"{"op":"case","seed":9,"protocol":"hw-priv","lane":"batch","config":{"l2_hit":13}}"#,
    r#"{"op":"case","case":{"procs":2,"elems":4,"ops":[[{"r":0},{"w":1}],[]]}}"#,
    r#"{"op":"case","seed":3,"config":{"drop_ppm":50000,"fault_seed":9,"retry_timeout":64}}"#,
    r#"{"op":"case","seed":3,"config":{"node_fault_kind":"pause","node_fault_node":1,"node_fault_for_cycles":5000,"checkpoint_every":8}}"#,
    r#"{"op":"workload","name":"ocean","scenario":"hw","scale":"smoke"}"#,
    r#"{"op":"workload","name":"track","failure":true,"id":"x"}"#,
    r#"{"op":"stats"}"#,
    r#"{"op":"ping"}"#,
    r#"{"op":"shutdown","id":[1,2]}"#,
];

/// JSON-flavoured splice snippets: structure breakers, numeric edge
/// cases, and keywords the parser special-cases.
const SNIPPETS: &[&str] = &[
    "null",
    "{",
    "}",
    "[",
    "]",
    "\"",
    ",",
    ":",
    "1e999",
    "-5",
    "\"crash\"",
    "\"check\"",
    "18446744073709551616",
    "\\u0000",
    "0.5",
    "true",
    "\"op\":",
    "\"procs\":0",
    "\"seed\":-1",
];

/// Feeds one (possibly mangled) line to the parser; on rejection, renders
/// the structured error response and checks it is well-formed JSON with
/// `"ok":false`.
fn assert_total(line: &str) {
    if let Err(e) = parse_request(line) {
        assert!(!e.is_empty(), "empty error for {line:?}");
        let resp = error_payload(&extract_id(line), &e, false);
        let v = Json::parse(&resp)
            .unwrap_or_else(|p| panic!("error response is not valid JSON ({p}): {resp:?}"));
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(false),
            "error response must carry ok:false: {resp:?}"
        );
    }
}

#[test]
fn byte_mutations_never_panic_the_parser() {
    let mut rng = SplitMix64::new(0xf00d);
    for round in 0..2_000u64 {
        let base = CORPUS[(round % CORPUS.len() as u64) as usize];
        let mut bytes = base.as_bytes().to_vec();
        for _ in 0..=rng.below(3) {
            if bytes.is_empty() {
                break;
            }
            let pos = rng.below(bytes.len() as u64) as usize;
            match rng.below(4) {
                0 => bytes[pos] = rng.below(256) as u8,
                1 => bytes.insert(pos, rng.below(256) as u8),
                2 => {
                    bytes.remove(pos);
                }
                _ => bytes.truncate(pos),
            }
        }
        let line = String::from_utf8_lossy(&bytes);
        assert_total(&line);
    }
}

#[test]
fn token_splices_never_panic_the_parser() {
    let mut rng = SplitMix64::new(0x511ce);
    for round in 0..1_000u64 {
        let base = CORPUS[(round % CORPUS.len() as u64) as usize];
        let mut line = base.to_string();
        for _ in 0..=rng.below(2) {
            let snippet = SNIPPETS[rng.below(SNIPPETS.len() as u64) as usize];
            // Splice on a char boundary.
            let mut pos = rng.below(line.len() as u64 + 1) as usize;
            while !line.is_char_boundary(pos) {
                pos -= 1;
            }
            if rng.chance(0.3) {
                // Replace the rest instead of inserting.
                line.truncate(pos);
                line.push_str(snippet);
            } else {
                line.insert_str(pos, snippet);
            }
        }
        assert_total(&line);
    }
}

#[test]
fn degenerate_lines_are_rejected_not_panicked() {
    for line in [
        "",
        " ",
        "{}",
        "[]",
        "42",
        "\"op\"",
        "{\"op\":\"case\"}",
        "{\"op\":\"case\",\"seed\":3,\"case\":{}}",
        "{\"op\":\"case\",\"seed\":18446744073709551616}",
        "{\"op\":\"workload\"}",
        "{\"op\":\"workload\",\"name\":\"ocean\",\"invocation\":99999}",
        "{\"op\":\"case\",\"seed\":1,\"config\":{\"procs\":65}}",
        "{\"op\":\"case\",\"seed\":1,\"config\":{\"drop_ppm\":4294967297}}",
        "{\"op\":\"case\",\"seed\":1,\"config\":{\"node_fault_kind\":\"crash\",\"node_fault_node\":1,\"node_fault_for_cycles\":7}}",
    ] {
        assert_total(line);
        // All of these are in fact malformed — pin that they error rather
        // than silently succeeding.
        if !line.trim().is_empty() {
            assert!(parse_request(line).is_err(), "accepted {line:?}");
        } else {
            assert!(parse_request(line).is_err());
        }
    }
}
