//! Command-line entry point for the simulation service.
//!
//! ```text
//! specrt-serve [--stdio | --listen ADDR] [--jobs N] [--queue-depth N]
//!              [--cache-capacity N] [--metrics-out FILE]
//! ```
//!
//! `--stdio` serves one session on stdin/stdout (tests, CI, `echo | …`
//! one-shots); the default is a TCP listener on `127.0.0.1:7487`
//! (`nc 127.0.0.1 7487` and type requests). Either way the service stops
//! on `{"op":"shutdown"}` (stdio also stops at EOF).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use specrt_serve::{run_stdio, ServeConfig, Server};

const USAGE: &str = "\
specrt-serve: persistent simulation service (JSON lines in, JSON lines out)

USAGE:
    specrt-serve [OPTIONS]

OPTIONS:
    --stdio                serve stdin/stdout instead of TCP
    --listen ADDR          TCP listen address [default: 127.0.0.1:7487]
    --jobs N               simulation worker threads [default: host cores]
    --queue-depth N        per-lane queue bound before `busy` [default: 64]
    --cache-capacity N     result-cache payloads, 0 disables [default: 1024]
    --metrics-out FILE     rewrite FILE with a metrics snapshot after each
                           request
    -h, --help             this help

REQUESTS (one JSON object per line):
    {\"id\":1,\"op\":\"case\",\"seed\":42,\"protocol\":\"hw-nonpriv\"}
    {\"id\":2,\"op\":\"case\",\"case\":{...},\"protocol\":\"check\",\"lane\":\"batch\"}
    {\"id\":3,\"op\":\"workload\",\"name\":\"ocean\",\"invocation\":0,\"scenario\":\"hw\"}
    {\"id\":4,\"op\":\"stats\"}
    {\"id\":5,\"op\":\"ping\"}
    {\"id\":6,\"op\":\"shutdown\"}
";

struct Args {
    stdio: bool,
    listen: String,
    cfg: ServeConfig,
    metrics_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        stdio: false,
        listen: "127.0.0.1:7487".to_string(),
        cfg: ServeConfig::default(),
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--stdio" => args.stdio = true,
            "--listen" => args.listen = value("--listen")?,
            "--jobs" => {
                args.cfg.workers = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs an integer".to_string())?
            }
            "--queue-depth" => {
                args.cfg.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs an integer".to_string())?
            }
            "--cache-capacity" => {
                args.cfg.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity needs an integer".to_string())?
            }
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("specrt-serve: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let core = specrt_serve::ServeCore::new(args.cfg);
    core.set_metrics_out(args.metrics_out);
    let result = if args.stdio {
        run_stdio(&core)
    } else {
        match Server::bind(Arc::clone(&core), &args.listen) {
            Ok(server) => {
                match server.local_addr() {
                    Ok(addr) => eprintln!(
                        "specrt-serve: listening on {addr} ({} workers, queue depth {}, cache {})",
                        args.cfg.workers, args.cfg.queue_depth, args.cfg.cache_capacity
                    ),
                    Err(_) => eprintln!("specrt-serve: listening on {}", args.listen),
                }
                server.run()
            }
            Err(e) => Err(e),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("specrt-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
