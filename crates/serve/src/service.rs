//! The service core: request → (cache | worker pool) → rendered response.
//!
//! [`ServeCore`] is transport-agnostic — `server` feeds it lines from TCP
//! or stdio, the bench load driver calls it in-process. One line in, one
//! [`Outcome`] out:
//!
//! * admin requests (`ping`, `stats`, `shutdown`) and **cache hits**
//!   answer immediately ([`Outcome::Ready`]) without touching a Machine;
//! * misses are submitted to the two-lane [`WorkerPool`]; the caller gets
//!   a [`Outcome::Pending`] receiver that resolves when the simulation
//!   finishes;
//! * a full lane answers `busy` immediately with `"retryable":true` —
//!   backpressure is a response, not a blocked socket.
//!
//! **Determinism boundary.** The cached payload — everything inside
//! `{"ok":true,"key":…,"result":…}` — is a pure function of the canonical
//! request key: simulated cycles, verdicts, image hashes only. The `id`
//! echo is spliced *around* the cached bytes per response, so a cold run,
//! a warm hit, and any `--jobs` width return byte-identical payloads.
//! Host-time observations (request latency) exist only in the metrics
//! channel, never in a payload.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use specrt_check::{write_json_string, Json};
use specrt_engine::StatSet;
use specrt_machine::{run_scenario_configured, RunResult};
use specrt_mem::MemoryImage;
use specrt_par::WorkerPool;
use specrt_trace::export::metrics_json;
use specrt_trace::MetricsRegistry;

use crate::cache::ResultCache;
use crate::request::{extract_id, parse_request, Protocol, Request, SimJob, Work};

/// Sizing knobs for a [`ServeCore`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads simulating.
    pub workers: usize,
    /// Per-lane queue bound (jobs beyond it are rejected `busy`).
    pub queue_depth: usize,
    /// Result-cache capacity in payloads (`0` disables the cache).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_depth: 64,
            cache_capacity: 1024,
        }
    }
}

/// How one request line resolves.
pub enum Outcome {
    /// The response is already rendered (admin, cache hit, error, busy).
    Ready(String),
    /// The response arrives on this receiver when the simulation
    /// completes. A dropped sender means the job died (panicked).
    Pending(mpsc::Receiver<String>),
    /// The response is rendered and the service should stop afterwards.
    Shutdown(String),
}

/// The shared service state. Construct once, share via `Arc` across
/// connections.
pub struct ServeCore {
    pool: WorkerPool,
    cache: ResultCache,
    metrics: Mutex<MetricsRegistry>,
    metrics_out: Mutex<Option<PathBuf>>,
    in_flight: AtomicU64,
}

impl ServeCore {
    /// Builds the pool and cache.
    pub fn new(cfg: ServeConfig) -> Arc<ServeCore> {
        Arc::new(ServeCore {
            pool: WorkerPool::new(cfg.workers, cfg.queue_depth),
            cache: ResultCache::new(cfg.cache_capacity),
            metrics: Mutex::new(MetricsRegistry::new()),
            metrics_out: Mutex::new(None),
            in_flight: AtomicU64::new(0),
        })
    }

    /// Streams a metrics snapshot to `path` after every completed request
    /// (`None` disables).
    pub fn set_metrics_out(&self, path: Option<PathBuf>) {
        *self.metrics_out.lock().expect("metrics_out lock") = path;
    }

    /// The underlying pool (tests and telemetry).
    #[doc(hidden)]
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Simulations accepted but not yet answered.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Handles one request line. See the module docs for the outcome
    /// contract.
    pub fn handle_line(self: &Arc<Self>, line: &str) -> Outcome {
        let started = Instant::now();
        self.with_metrics(|m| m.incr("serve.requests", 1));
        let parsed = match parse_request(line) {
            Ok(p) => p,
            Err(e) => {
                self.with_metrics(|m| m.incr("serve.errors", 1));
                return Outcome::Ready(error_payload(&extract_id(line), &e, false));
            }
        };
        let id = parsed.id;
        match parsed.request {
            Request::Ping => Outcome::Ready(respond(&id, "{\"ok\":true,\"result\":\"pong\"}")),
            Request::Stats => {
                let snap = self.metrics_snapshot_json();
                Outcome::Ready(respond(&id, &format!("{{\"ok\":true,\"result\":{snap}}}")))
            }
            Request::Shutdown => {
                Outcome::Shutdown(respond(&id, "{\"ok\":true,\"result\":\"shutting down\"}"))
            }
            Request::Sim { lane, job } => self.handle_sim(id, lane, job, started),
        }
    }

    fn handle_sim(
        self: &Arc<Self>,
        id: Option<String>,
        lane: specrt_par::Lane,
        job: Box<SimJob>,
        started: Instant,
    ) -> Outcome {
        if let Some(hit) = self.cache.get(job.key) {
            self.with_metrics(|m| {
                m.incr("serve.cache_hits", 1);
                m.observe("serve.latency_us", elapsed_us(started));
            });
            self.dump_metrics();
            return Outcome::Ready(respond(&id, &hit));
        }
        self.with_metrics(|m| m.incr("serve.cache_misses", 1));
        let (tx, rx) = mpsc::channel();
        let core = Arc::clone(self);
        let busy_id = id.clone();
        let submitted = self.pool.submit(lane, move || {
            let _prof = specrt_prof::scope("serve.execute");
            let (payload, stats) = execute_job(&job);
            let payload: Arc<str> = Arc::from(payload);
            core.cache.insert(job.key, Arc::clone(&payload));
            core.with_metrics(|m| {
                m.absorb_stats("serve.run.", &stats);
                m.observe("serve.latency_us", elapsed_us(started));
                m.incr("serve.completed", 1);
            });
            core.in_flight.fetch_sub(1, Ordering::Relaxed);
            core.dump_metrics();
            let _ = tx.send(respond(&id, &payload));
        });
        match submitted {
            Ok(()) => {
                self.in_flight.fetch_add(1, Ordering::Relaxed);
                Outcome::Pending(rx)
            }
            Err(q) => {
                self.with_metrics(|m| m.incr("serve.busy_rejections", 1));
                Outcome::Ready(error_payload(
                    &busy_id,
                    &format!("busy: {} queue full, retry later", q.0.name()),
                    true,
                ))
            }
        }
    }

    fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.metrics.lock().expect("metrics lock"))
    }

    /// Records a connection writer thread dying mid-stream (visible as
    /// `serve.writer_panics` and counted into `serve.errors`); the
    /// transport maps the dead thread to a structured I/O error instead of
    /// propagating the panic into the connection loop.
    pub fn count_writer_panic(&self) {
        self.with_metrics(|m| {
            m.incr("serve.writer_panics", 1);
            m.incr("serve.errors", 1);
        });
    }

    /// Renders the full metrics snapshot: accumulated counters and
    /// latency histograms plus point-in-time gauges (queue depths, cache
    /// occupancy, pool telemetry) and derived p50/p99 request latency.
    pub fn metrics_snapshot_json(&self) -> String {
        let mut m = MetricsRegistry::new();
        self.with_metrics(|inner| m.merge(inner));
        let (qi, qb) = self.pool.queue_depths();
        m.incr("serve.queue.interactive", qi as u64);
        m.incr("serve.queue.batch", qb as u64);
        m.incr("serve.queue.capacity", self.pool.queue_capacity() as u64);
        m.incr("serve.pool.workers", self.pool.workers() as u64);
        m.incr("serve.pool.executed", self.pool.executed());
        m.incr("serve.pool.panicked", self.pool.panicked());
        m.incr("serve.in_flight", self.in_flight());
        let (_, _, evictions) = self.cache.counters();
        m.incr("serve.cache.entries", self.cache.entries() as u64);
        m.incr("serve.cache.evictions", evictions);
        let quantiles = m
            .histogram("serve.latency_us")
            .map(|h| (h.quantile(0.5), h.quantile(0.99)));
        if let Some((p50, p99)) = quantiles {
            m.incr("serve.latency_us.p50", p50);
            m.incr("serve.latency_us.p99", p99);
        }
        metrics_json(&m)
    }

    fn dump_metrics(&self) {
        let path = self.metrics_out.lock().expect("metrics_out lock").clone();
        if let Some(path) = path {
            let mut snap = self.metrics_snapshot_json();
            snap.push('\n');
            if let Err(e) = std::fs::write(&path, snap) {
                eprintln!("specrt-serve: cannot write {}: {e}", path.display());
            }
        }
    }
}

fn elapsed_us(started: Instant) -> u64 {
    started.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Splices the echoed request id (raw JSON) in front of a cached payload.
/// The payload itself stays id-free so cold and warm responses share
/// bytes.
pub fn respond(id: &Option<String>, payload: &str) -> String {
    match id {
        Some(raw) => {
            debug_assert!(payload.starts_with('{'));
            format!("{{\"id\":{raw},{}", &payload[1..])
        }
        None => payload.to_string(),
    }
}

/// Renders an error response.
pub fn error_payload(id: &Option<String>, msg: &str, retryable: bool) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    write_json_string(msg, &mut out);
    out.push_str(",\"retryable\":");
    out.push_str(if retryable { "true" } else { "false" });
    out.push('}');
    respond(id, &out)
}

/// Runs one simulation job to its id-free payload. Pure: the bytes depend
/// only on the job (enforced by the determinism tests).
pub fn execute_job(job: &SimJob) -> (String, StatSet) {
    match &job.work {
        Work::Case {
            case,
            protocol: Protocol::Check,
            cfg: _,
        } => {
            let r = specrt_check::run_case(case);
            let result = Json::Obj(vec![
                ("protocol".into(), Json::str("check")),
                ("ok".into(), Json::Bool(r.ok())),
                (
                    "mismatches".into(),
                    Json::Arr(
                        r.mismatches
                            .iter()
                            .map(|mm| Json::str(mm.to_string()))
                            .collect(),
                    ),
                ),
                ("stats".into(), stats_json(&r.stats)),
            ]);
            (payload_ok(job.key, &result), r.stats)
        }
        Work::Case {
            case,
            protocol,
            cfg,
        } => {
            let (kind, live, scenario) = protocol
                .run_plan()
                .expect("non-check protocols have a run plan");
            let spec = case.loop_spec(kind, live);
            let r = run_scenario_configured(&spec, scenario, *cfg);
            let head = vec![("protocol".to_string(), Json::str(protocol.label()))];
            let result = run_json(head, &r);
            (payload_ok(job.key, &result), r.stats)
        }
        Work::Workload {
            name,
            spec,
            scenario,
            scenario_label,
            cfg,
        } => {
            let r = run_scenario_configured(spec, *scenario, *cfg);
            let head = vec![
                ("workload".to_string(), Json::str(name.as_str())),
                ("loop".to_string(), Json::str(spec.name.as_str())),
                ("protocol".to_string(), Json::str(scenario_label.as_str())),
            ];
            let result = run_json(head, &r);
            (payload_ok(job.key, &result), r.stats)
        }
    }
}

fn payload_ok(key: u64, result: &Json) -> String {
    format!(
        "{{\"ok\":true,\"key\":\"0x{key:016x}\",\"result\":{}}}",
        result.render()
    )
}

fn stats_json(stats: &StatSet) -> Json {
    Json::Obj(
        stats
            .iter()
            .map(|(k, v)| (k.to_string(), Json::num_u64(v)))
            .collect(),
    )
}

/// Canonical content hash of a final memory image: array ids in sorted
/// order, each element tagged with its scalar kind (an integer whose bits
/// equal a float's must not collide).
pub fn image_hash(img: &MemoryImage) -> u64 {
    let mut h = specrt_check::CanonHasher::new();
    h.write_str("image");
    for id in img.array_ids() {
        h.write_u64(id.0 as u64);
        let contents = img.contents(id);
        h.write_u64(contents.len() as u64);
        for s in contents {
            h.write_u64(match s {
                specrt_ir::Scalar::Int(_) => 0,
                specrt_ir::Scalar::Float(_) => 1,
            });
            h.write_u64(s.to_bits());
        }
    }
    h.finish()
}

fn run_json(mut fields: Vec<(String, Json)>, r: &RunResult) -> Json {
    fields.push(("scenario".into(), Json::str(r.scenario.to_string())));
    fields.push((
        "passed".into(),
        match r.passed {
            Some(b) => Json::Bool(b),
            None => Json::Null,
        },
    ));
    fields.push((
        "failure".into(),
        match &r.failure {
            Some(f) => Json::str(f.as_str()),
            None => Json::Null,
        },
    ));
    fields.push(("cycles".into(), Json::num_u64(r.total_cycles.raw())));
    fields.push(("iterations".into(), Json::num_u64(r.iterations)));
    fields.push(("busy".into(), Json::num_u64(r.breakdown.busy.raw())));
    fields.push(("sync".into(), Json::num_u64(r.breakdown.sync.raw())));
    fields.push(("mem".into(), Json::num_u64(r.breakdown.mem.raw())));
    fields.push((
        "image".into(),
        Json::str(format!("0x{:016x}", image_hash(&r.final_image))),
    ));
    fields.push((
        "net".into(),
        Json::Obj(vec![
            ("messages".into(), Json::num_u64(r.net.messages)),
            ("local_messages".into(), Json::num_u64(r.net.local_messages)),
            ("total_hops".into(), Json::num_u64(r.net.total_hops)),
            ("total_queue".into(), Json::num_u64(r.net.total_queue)),
        ]),
    ));
    fields.push(("stats".into(), stats_json(&r.stats)));
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respond_splices_the_id_without_touching_the_payload() {
        let payload = "{\"ok\":true,\"result\":1}";
        assert_eq!(respond(&None, payload), payload);
        assert_eq!(
            respond(&Some("42".into()), payload),
            "{\"id\":42,\"ok\":true,\"result\":1}"
        );
        assert_eq!(
            respond(&Some("\"abc\"".into()), payload),
            "{\"id\":\"abc\",\"ok\":true,\"result\":1}"
        );
    }

    #[test]
    fn error_payload_escapes_the_message() {
        let e = error_payload(&None, "bad \"op\"", true);
        assert_eq!(
            e,
            "{\"ok\":false,\"error\":\"bad \\\"op\\\"\",\"retryable\":true}"
        );
        assert!(Json::parse(&e).is_ok());
    }
}
