#![warn(missing_docs)]

//! # specrt-serve
//!
//! A persistent simulation service over the full machine stack: clients
//! send newline-delimited JSON requests (an explicit [`CaseSpec`] or
//! generator seed, or a named paper workload, plus machine-configuration
//! overrides and a protocol variant) and receive one JSON response line
//! per request, in order.
//!
//! Sweeps re-run the same configurations constantly — fuzz replays,
//! CI gates, parameter studies that overlap on their base points — and a
//! `Machine` build-and-run is the expensive part. The service therefore
//! memoizes **completed results** in a sharded LRU keyed by the canonical
//! content hash of (case, machine config, protocol) from
//! [`specrt_check::canonical_key`]: a repeated request is answered from
//! the cache byte-for-byte identically without touching a Machine.
//!
//! * [`request`] — strict wire-request parsing and canonical cache keys;
//! * [`cache`] — the sharded LRU result cache;
//! * [`service`] — [`ServeCore`]: admission, the two-lane
//!   [`specrt_par::WorkerPool`] (interactive before batch), backpressure
//!   (`busy` responses when a lane is full), metrics, and deterministic
//!   result rendering;
//! * [`server`] — stdio and TCP transports with ordered pipelining.
//!
//! The `specrt-serve` binary wires these to the command line; the bench
//! load driver (`crates/bench/benches/serve_load.rs`) drives [`ServeCore`]
//! in-process.
//!
//! [`CaseSpec`]: specrt_check::CaseSpec

pub mod cache;
pub mod request;
pub mod server;
pub mod service;

pub use cache::ResultCache;
pub use request::{apply_overrides, parse_request, Parsed, Protocol, Request, SimJob, Work};
pub use server::{run_stdio, serve_connection, Server};
pub use service::{execute_job, image_hash, Outcome, ServeConfig, ServeCore};
