//! The result cache: canonical key → rendered response payload.
//!
//! Sharded to keep lock hold times off the request path — a hit under one
//! shard's mutex never waits for an insert in another. Each shard is a
//! small LRU: entries carry a monotonically increasing *touch tick*; a
//! full shard evicts the entry with the oldest tick. Capacity is fixed at
//! construction and `0` disables caching entirely (every lookup misses,
//! inserts are dropped) — useful for A/B-ing the cache in the load
//! driver.
//!
//! Values are `Arc<str>` because one payload may be concurrently handed
//! to many clients; the cache never clones the bytes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const SHARDS: usize = 16;

struct Shard {
    entries: HashMap<u64, (u64, Arc<str>)>,
    tick: u64,
}

/// A sharded LRU map from canonical request key to response payload.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Creates a cache holding about `capacity` payloads in total
    /// (distributed over the shards). `0` disables caching.
    pub fn new(capacity: usize) -> ResultCache {
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS)
        };
        ResultCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // The canonical key is already well-mixed; the low bits pick the
        // shard and the full key indexes within it.
        &self.shards[(key % SHARDS as u64) as usize]
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<str>> {
        if self.per_shard == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut s = self.shard(key).lock().expect("cache lock");
        s.tick += 1;
        let tick = s.tick;
        match s.entries.get_mut(&key) {
            Some((touched, payload)) => {
                *touched = tick;
                let payload = Arc::clone(payload);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least recently
    /// touched entry if it is full.
    pub fn insert(&self, key: u64, payload: Arc<str>) {
        if self.per_shard == 0 {
            return;
        }
        let mut s = self.shard(key).lock().expect("cache lock");
        s.tick += 1;
        let tick = s.tick;
        if !s.entries.contains_key(&key) && s.entries.len() >= self.per_shard {
            if let Some(&oldest) = s
                .entries
                .iter()
                .min_by_key(|(_, (touched, _))| *touched)
                .map(|(k, _)| k)
            {
                s.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        s.entries.insert(key, (tick, payload));
    }

    /// Number of cached payloads.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").entries.len())
            .sum()
    }

    /// `(hits, misses, evictions)` since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_after_insert_returns_same_bytes() {
        let c = ResultCache::new(64);
        assert!(c.get(1).is_none());
        c.insert(1, arc("payload-one"));
        assert_eq!(c.get(1).as_deref(), Some("payload-one"));
        assert_eq!(c.counters().0, 1);
        assert_eq!(c.counters().1, 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let c = ResultCache::new(0);
        c.insert(1, arc("x"));
        assert!(c.get(1).is_none());
        assert_eq!(c.entries(), 0);
    }

    #[test]
    fn full_shard_evicts_least_recently_touched() {
        // Capacity 16 over 16 shards = 1 entry per shard; keys 0 and 16
        // share shard 0.
        let c = ResultCache::new(16);
        c.insert(0, arc("a"));
        c.insert(16, arc("b"));
        assert!(c.get(0).is_none(), "older entry evicted");
        assert_eq!(c.get(16).as_deref(), Some("b"));
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn touching_refreshes_recency() {
        // Two entries per shard: capacity 32, keys 0/16/32 on shard 0.
        let c = ResultCache::new(32);
        c.insert(0, arc("a"));
        c.insert(16, arc("b"));
        assert!(c.get(0).is_some()); // 0 is now newer than 16
        c.insert(32, arc("c"));
        assert!(c.get(16).is_none(), "stale entry evicted");
        assert!(c.get(0).is_some());
        assert!(c.get(32).is_some());
    }
}
