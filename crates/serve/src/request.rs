//! Wire-request parsing: one JSON object per line in, one simulation (or
//! admin action) out.
//!
//! A request names **what to simulate** — either an explicit [`CaseSpec`]
//! (or generator seed), or one of the four paper workloads — plus the
//! machine configuration and protocol variant, and **how to schedule it**
//! (the [`Lane`]). Parsing is strict: unknown operations, protocols,
//! scales, and configuration keys are errors, never silently ignored —
//! a typo'd override that fell through would hash to the *base*
//! configuration's canonical key and poison the result cache with a
//! mislabelled entry.
//!
//! The canonical cache key is computed here too, because only the parser
//! sees the fully-resolved request (workload processor counts applied,
//! overrides folded in): [`SimJob::key`] covers the case content or
//! workload identity, the complete [`MachineConfig`], and the
//! protocol/scenario label via [`specrt_check::canonical_key`] /
//! [`CanonHasher`].

use specrt_check::{canonical_key, case_from_json, CanonHasher, CaseSpec, Json};
use specrt_machine::{
    CheckpointConfig, LoopSpec, MachineConfig, RecoveryPolicy, Scenario, SwVariant,
};
use specrt_par::Lane;
use specrt_proto::{NetConfig, NodeFaultConfig, NodeFaultKind};
use specrt_spec::ProtocolKind;
use specrt_workloads::{all_workloads, Scale};

/// Protocol variant of a `case` request. Labels are the wire strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Uniprocessor baseline (no test).
    Serial,
    /// Doall without tests (upper bound).
    Ideal,
    /// Hardware non-privatization protocol.
    HwNonPriv,
    /// Hardware privatization with read-in + copy-out.
    HwPriv,
    /// Hardware no-read-in/no-copy-out privatization (Fig. 5-b).
    HwPriv3,
    /// Software LRPD baseline (iteration-wise).
    SwLrpd,
    /// Full differential check across all of the above.
    Check,
}

impl Protocol {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Serial => "serial",
            Protocol::Ideal => "ideal",
            Protocol::HwNonPriv => "hw-nonpriv",
            Protocol::HwPriv => "hw-priv",
            Protocol::HwPriv3 => "hw-priv3",
            Protocol::SwLrpd => "sw-lrpd",
            Protocol::Check => "check",
        }
    }

    /// Parses [`Protocol::label`] back.
    pub fn parse(s: &str) -> Option<Protocol> {
        match s {
            "serial" => Some(Protocol::Serial),
            "ideal" => Some(Protocol::Ideal),
            "hw-nonpriv" => Some(Protocol::HwNonPriv),
            "hw-priv" => Some(Protocol::HwPriv),
            "hw-priv3" => Some(Protocol::HwPriv3),
            "sw-lrpd" => Some(Protocol::SwLrpd),
            "check" => Some(Protocol::Check),
            _ => None,
        }
    }

    /// The `(protocol kind, live, scenario)` triple a single-scenario run
    /// uses ([`Protocol::Check`] runs every scenario and has no single
    /// triple).
    pub fn run_plan(self) -> Option<(ProtocolKind, bool, Scenario)> {
        match self {
            Protocol::Serial => Some((ProtocolKind::NonPriv, true, Scenario::Serial)),
            Protocol::Ideal => Some((ProtocolKind::NonPriv, true, Scenario::Ideal)),
            Protocol::HwNonPriv => Some((ProtocolKind::NonPriv, true, Scenario::Hw)),
            Protocol::HwPriv => Some((
                ProtocolKind::Priv {
                    read_in: true,
                    copy_out: true,
                },
                true,
                Scenario::Hw,
            )),
            Protocol::HwPriv3 => Some((
                ProtocolKind::Priv {
                    read_in: false,
                    copy_out: false,
                },
                false,
                Scenario::Hw,
            )),
            Protocol::SwLrpd => Some((
                ProtocolKind::Priv {
                    read_in: true,
                    copy_out: true,
                },
                true,
                Scenario::Sw(SwVariant::IterationWise),
            )),
            Protocol::Check => None,
        }
    }
}

/// The simulation a request resolved to (everything the worker needs).
#[derive(Debug)]
pub enum Work {
    /// Run one generated/explicit case under one protocol.
    Case {
        /// The case to run.
        case: CaseSpec,
        /// Protocol variant.
        protocol: Protocol,
        /// Fully-resolved machine configuration.
        cfg: MachineConfig,
    },
    /// Run one invocation of a named workload under one scenario.
    Workload {
        /// Workload name (diagnostics only; the key is already computed).
        name: String,
        /// The resolved loop to run.
        spec: LoopSpec,
        /// Scenario to run it under.
        scenario: Scenario,
        /// Wire label of the scenario (`"hw"`, `"sw"`, …).
        scenario_label: String,
        /// Fully-resolved machine configuration.
        cfg: MachineConfig,
    },
}

/// A parsed simulation job: canonical cache key plus the work itself.
#[derive(Debug)]
pub struct SimJob {
    /// Canonical content hash of the request (cache key).
    pub key: u64,
    /// What to run.
    pub work: Work,
}

/// A parsed request.
#[derive(Debug)]
pub enum Request {
    /// A simulation (cacheable, runs on the pool).
    Sim {
        /// Scheduling lane.
        lane: Lane,
        /// The job.
        job: Box<SimJob>,
    },
    /// Metrics snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop the service after answering.
    Shutdown,
}

/// `(echoed id, parsed request)`: the `id` field, rendered back verbatim,
/// is spliced into the response so clients can pipeline.
#[derive(Debug)]
pub struct Parsed {
    /// Rendered `id` field, if the request carried one.
    pub id: Option<String>,
    /// The request.
    pub request: Request,
}

/// Extracts just the rendered `id` of a request line, if the line parses
/// far enough to have one (used to label error responses).
pub fn extract_id(line: &str) -> Option<String> {
    let v = Json::parse(line).ok()?;
    id_of(&v)
}

fn id_of(v: &Json) -> Option<String> {
    v.get("id").map(|id| id.render())
}

/// Parses one request line. Errors are human-readable strings that become
/// the `error` field of the response.
pub fn parse_request(line: &str) -> Result<Parsed, String> {
    let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    if !matches!(v, Json::Obj(_)) {
        return Err("request must be a JSON object".to_string());
    }
    let id = id_of(&v);
    let op = match v.get("op") {
        Some(op) => op
            .as_str()
            .ok_or_else(|| "\"op\" must be a string".to_string())?,
        None => "case",
    };
    let request = match op {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "case" => parse_case(&v)?,
        "workload" => parse_workload(&v)?,
        other => {
            return Err(format!(
                "unknown op {other:?} (expected case|workload|stats|ping|shutdown)"
            ))
        }
    };
    Ok(Parsed { id, request })
}

fn parse_lane(v: &Json) -> Result<Lane, String> {
    match v.get("lane") {
        None => Ok(Lane::Interactive),
        Some(l) => {
            let s = l
                .as_str()
                .ok_or_else(|| "\"lane\" must be a string".to_string())?;
            Lane::parse(s).ok_or_else(|| format!("unknown lane {s:?} (interactive|batch)"))
        }
    }
}

fn parse_case(v: &Json) -> Result<Request, String> {
    let lane = parse_lane(v)?;
    let case = match (v.get("case"), v.get("seed")) {
        (Some(c), None) => case_from_json(c)?,
        (None, Some(s)) => {
            let seed = s
                .as_u64()
                .ok_or_else(|| "\"seed\" must be an unsigned integer".to_string())?;
            CaseSpec::generate(seed)
        }
        (Some(_), Some(_)) => return Err("give either \"case\" or \"seed\", not both".to_string()),
        (None, None) => return Err("a case request needs \"case\" or \"seed\"".to_string()),
    };
    let protocol = match v.get("protocol") {
        None => Protocol::HwNonPriv,
        Some(p) => {
            let s = p
                .as_str()
                .ok_or_else(|| "\"protocol\" must be a string".to_string())?;
            Protocol::parse(s).ok_or_else(|| {
                format!(
                    "unknown protocol {s:?} \
                     (serial|ideal|hw-nonpriv|hw-priv|hw-priv3|sw-lrpd|check)"
                )
            })?
        }
    };
    let mut cfg = MachineConfig::with_procs(case.procs);
    if let Some(o) = v.get("config") {
        if protocol == Protocol::Check {
            // `check` runs its scenarios on the default machine; accepting
            // overrides here would cache results under keys the run never
            // honoured.
            return Err("\"config\" overrides are not supported with protocol \"check\"".into());
        }
        apply_overrides(&mut cfg, o)?;
        // The machine's processor count is the case's; an override would
        // desynchronize the schedule from the spec.
        if cfg.mem.procs != case.procs {
            return Err("\"procs\" is fixed by the case; omit it from \"config\"".into());
        }
    }
    let key = canonical_key(&case, &cfg, protocol.label());
    Ok(Request::Sim {
        lane,
        job: Box::new(SimJob {
            key,
            work: Work::Case {
                case,
                protocol,
                cfg,
            },
        }),
    })
}

fn parse_scale(v: &Json) -> Result<(Scale, &'static str), String> {
    match v.get("scale") {
        None => Ok((Scale::Smoke, "smoke")),
        Some(s) => match s.as_str() {
            Some("smoke") => Ok((Scale::Smoke, "smoke")),
            Some("bench") => Ok((Scale::Bench, "bench")),
            Some("full") => Ok((Scale::Full, "full")),
            _ => Err("unknown scale (smoke|bench|full)".to_string()),
        },
    }
}

fn parse_workload(v: &Json) -> Result<Request, String> {
    let lane = parse_lane(v)?;
    let name = v
        .get("name")
        .and_then(|n| n.as_str())
        .ok_or_else(|| "a workload request needs a string \"name\"".to_string())?
        .to_string();
    let (scale, scale_label) = parse_scale(v)?;
    let failure = match v.get("failure") {
        None => false,
        Some(f) => f
            .as_bool()
            .ok_or_else(|| "\"failure\" must be a boolean".to_string())?,
    };
    let invocation = match v.get("invocation") {
        None => 0,
        Some(i) => i
            .as_u64()
            .ok_or_else(|| "\"invocation\" must be an unsigned integer".to_string())?,
    };
    if failure && v.get("invocation").is_some() {
        return Err("give either \"invocation\" or \"failure\":true, not both".to_string());
    }
    let scenario_label = v
        .get("scenario")
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| "\"scenario\" must be a string".to_string())
        })
        .transpose()?
        .unwrap_or_else(|| "hw".to_string());

    let mut workloads = all_workloads(scale);
    let idx = workloads
        .iter()
        .position(|w| w.name == name)
        .ok_or_else(|| format!("unknown workload {name:?} (ocean|p3m|adm|track)"))?;
    let w = workloads.swap_remove(idx);

    let scenario = match scenario_label.as_str() {
        "serial" => Scenario::Serial,
        "ideal" => Scenario::Ideal,
        "sw" => Scenario::Sw(w.sw_variant),
        "hw" => Scenario::Hw,
        other => return Err(format!("unknown scenario {other:?} (serial|ideal|sw|hw)")),
    };

    let spec = if failure {
        w.failure_instance
    } else {
        let n = w.invocations.len() as u64;
        w.invocations
            .into_iter()
            .nth(invocation as usize)
            .ok_or_else(|| format!("invocation {invocation} out of range (workload has {n})"))?
    };

    let mut cfg = MachineConfig::with_procs(w.procs);
    if let Some(o) = v.get("config") {
        apply_overrides(&mut cfg, o)?;
    }

    let mut h = CanonHasher::new();
    h.write_str("workload");
    h.write_str(&name);
    h.write_str(scale_label);
    h.write_bool(failure);
    h.write_u64(invocation);
    h.write_str(&scenario_label);
    specrt_check::hash_machine_config_into(&mut h, &cfg);
    let key = h.finish();

    Ok(Request::Sim {
        lane,
        job: Box::new(SimJob {
            key,
            work: Work::Workload {
                name,
                spec,
                scenario,
                scenario_label,
                cfg,
            },
        }),
    })
}

fn override_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("config.{key} must be an unsigned integer"))
}

fn override_bool(v: &Json, key: &str) -> Result<bool, String> {
    v.as_bool()
        .ok_or_else(|| format!("config.{key} must be a boolean"))
}

fn override_ppm(v: &Json, key: &str) -> Result<u32, String> {
    let n = override_u64(v, key)?;
    u32::try_from(n)
        .map_err(|_| format!("config.{key}={n} out of range (accepted range: 0..=1_000_000 ppm)"))
}

/// Applies a flat `"config"` override object onto a [`MachineConfig`].
///
/// Keys mirror the configuration fields (latencies by their
/// `LatencyConfig` names); unknown keys are errors. `"topology":"mesh"`
/// installs [`NetConfig::mesh`] for the *current* processor count, so a
/// `procs` override must precede it in effect — `procs` is therefore
/// applied first regardless of field order.
///
/// Fault-plane keys (`fault_seed`, `drop_ppm`, `dup_ppm`, `delay_ppm`,
/// `delay_cycles`) set message-level faults; rates are validated against
/// the accepted `0..=1_000_000` ppm range. A node-level fault is assembled
/// from `node_fault_kind` (`crash`/`pause`/`partition`), `node_fault_node`,
/// optional `node_fault_at_cycle` (default 0) and — for pause/partition —
/// `node_fault_for_cycles`. `checkpoint_every` selects
/// [`RecoveryPolicy::CheckpointRestart`] with that snapshot cadence.
pub fn apply_overrides(cfg: &mut MachineConfig, overrides: &Json) -> Result<(), String> {
    let fields = match overrides {
        Json::Obj(fields) => fields,
        _ => return Err("\"config\" must be an object".to_string()),
    };
    // Two passes: processor count first (mesh sizing depends on it).
    if let Some(p) = overrides.get("procs") {
        let p = override_u64(p, "procs")?;
        if p == 0 || p > 64 {
            return Err("config.procs must be in 1..=64".to_string());
        }
        cfg.mem.procs = p as u32;
    }
    // Node-fault parts are assembled after the loop (the shape needs
    // several keys at once).
    let mut nf_kind: Option<&str> = None;
    let mut nf_node: Option<u64> = None;
    let mut nf_at: Option<u64> = None;
    let mut nf_for: Option<u64> = None;
    for (k, val) in fields {
        match k.as_str() {
            "procs" => {} // first pass
            "l1_lines" => cfg.mem.cache.l1_lines = override_u64(val, k)?.max(1) as usize,
            "l2_lines" => cfg.mem.cache.l2_lines = override_u64(val, k)?.max(1) as usize,
            "l1_hit" => cfg.mem.latency.l1_hit = override_u64(val, k)?,
            "l2_hit" => cfg.mem.latency.l2_hit = override_u64(val, k)?,
            "local_mem" => cfg.mem.latency.local_mem = override_u64(val, k)?,
            "remote_2hop" => cfg.mem.latency.remote_2hop = override_u64(val, k)?,
            "remote_3hop" => cfg.mem.latency.remote_3hop = override_u64(val, k)?,
            "owner_fetch_extra" => cfg.mem.latency.owner_fetch_extra = override_u64(val, k)?,
            "invalidate_extra" => cfg.mem.latency.invalidate_extra = override_u64(val, k)?,
            "net_oneway" => cfg.mem.latency.net_oneway = override_u64(val, k)?,
            "mem_service" => cfg.mem.latency.mem_service = override_u64(val, k)?,
            "update_service" => cfg.mem.latency.update_service = override_u64(val, k)?,
            "dir_banks" => cfg.mem.dir_banks = override_u64(val, k)?.max(1) as usize,
            "topology" => match val.as_str() {
                Some("flat") => cfg.mem.net = NetConfig::flat(),
                Some("mesh") => cfg.mem.net = NetConfig::mesh(cfg.mem.procs),
                _ => return Err("config.topology must be \"flat\" or \"mesh\"".to_string()),
            },
            "hop_latency" => cfg.mem.net.hop_latency = override_u64(val, k)?,
            "link_service" => cfg.mem.net.link_service = override_u64(val, k)?,
            "dirty_read_downgrades" => cfg.mem.dirty_read_downgrades = override_bool(val, k)?,
            "retry_timeout" => cfg.mem.retry.timeout = override_u64(val, k)?.max(1),
            "retry_max_retries" => cfg.mem.retry.max_retries = override_u64(val, k)? as u32,
            "write_buffer" => cfg.write_buffer = override_u64(val, k)?.max(1) as usize,
            "barrier_overhead" => cfg.barrier_overhead = override_u64(val, k)?,
            "sched_static_overhead" => cfg.sched_static_overhead = override_u64(val, k)?,
            "sched_lock_hold" => cfg.sched_lock_hold = override_u64(val, k)?,
            "abort_latency" => cfg.abort_latency = override_u64(val, k)?,
            "iter_reset_cost" => cfg.iter_reset_cost = override_u64(val, k)?,
            "detailed_barrier" => cfg.detailed_barrier = override_bool(val, k)?,
            "retry_speculative" => {
                let n = override_u64(val, k)?;
                cfg.recovery = if n == 0 {
                    RecoveryPolicy::SerialReexec
                } else {
                    RecoveryPolicy::RetrySpeculative {
                        max_attempts: n as u32,
                    }
                };
            }
            "checkpoint_every" => {
                cfg.recovery = RecoveryPolicy::CheckpointRestart {
                    checkpoint: CheckpointConfig {
                        every_iters: override_u64(val, k)?.max(1),
                    },
                };
            }
            "fault_seed" => cfg.mem.net.faults.seed = override_u64(val, k)?,
            "drop_ppm" => cfg.mem.net.faults.drop_ppm = override_ppm(val, k)?,
            "dup_ppm" => cfg.mem.net.faults.dup_ppm = override_ppm(val, k)?,
            "delay_ppm" => cfg.mem.net.faults.delay_ppm = override_ppm(val, k)?,
            "delay_cycles" => cfg.mem.net.faults.delay_cycles = override_u64(val, k)?,
            "node_fault_kind" => {
                nf_kind = Some(val.as_str().ok_or_else(|| {
                    "config.node_fault_kind must be \"crash\", \"pause\" or \"partition\""
                        .to_string()
                })?)
            }
            "node_fault_node" => nf_node = Some(override_u64(val, k)?),
            "node_fault_at_cycle" => nf_at = Some(override_u64(val, k)?),
            "node_fault_for_cycles" => nf_for = Some(override_u64(val, k)?),
            other => return Err(format!("unknown config key {other:?}")),
        }
    }
    if nf_kind.is_some() || nf_node.is_some() || nf_at.is_some() || nf_for.is_some() {
        let kind = nf_kind.ok_or_else(|| {
            "config.node_fault_kind is required to configure a node fault".to_string()
        })?;
        let node = nf_node.ok_or_else(|| {
            "config.node_fault_node is required to configure a node fault".to_string()
        })?;
        if node >= u64::from(cfg.mem.procs) {
            return Err(format!(
                "config.node_fault_node={node} out of range (machine has {} nodes)",
                cfg.mem.procs
            ));
        }
        let kind = match kind {
            "crash" => {
                if nf_for.is_some() {
                    return Err(
                        "config.node_fault_for_cycles does not apply to \"crash\"".to_string()
                    );
                }
                NodeFaultKind::Crash
            }
            "pause" => NodeFaultKind::Pause {
                for_cycles: nf_for.ok_or_else(|| {
                    "config.node_fault_for_cycles is required for \"pause\"".to_string()
                })?,
            },
            "partition" => NodeFaultKind::Partition {
                for_cycles: nf_for.ok_or_else(|| {
                    "config.node_fault_for_cycles is required for \"partition\"".to_string()
                })?,
            },
            other => {
                return Err(format!(
                    "unknown node_fault_kind {other:?} (crash|pause|partition)"
                ))
            }
        };
        cfg.mem.net.faults.node_fault = Some(NodeFaultConfig {
            kind,
            node: node as u32,
            at_cycle: nf_at.unwrap_or(0),
        });
    }
    // Reject rate combinations the fault plane would panic on, with the
    // accepted range in the message.
    cfg.mem
        .net
        .faults
        .validate()
        .map_err(|e| format!("config: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_labels_round_trip() {
        for p in [
            Protocol::Serial,
            Protocol::Ideal,
            Protocol::HwNonPriv,
            Protocol::HwPriv,
            Protocol::HwPriv3,
            Protocol::SwLrpd,
            Protocol::Check,
        ] {
            assert_eq!(Protocol::parse(p.label()), Some(p));
        }
        assert_eq!(Protocol::parse("hw"), None);
    }

    #[test]
    fn seed_request_defaults() {
        let p = parse_request(r#"{"id":7,"op":"case","seed":3}"#).unwrap();
        assert_eq!(p.id.as_deref(), Some("7"));
        match p.request {
            Request::Sim { lane, job } => {
                assert_eq!(lane, Lane::Interactive);
                match job.work {
                    Work::Case { protocol, .. } => assert_eq!(protocol, Protocol::HwNonPriv),
                    other => panic!("unexpected work {other:?}"),
                }
            }
            _ => panic!("expected a sim request"),
        }
    }

    #[test]
    fn key_is_insensitive_to_field_order_but_not_config() {
        let a = parse_request(r#"{"op":"case","seed":9,"protocol":"hw-priv","lane":"batch"}"#);
        let b = parse_request(r#"{"protocol":"hw-priv","seed":9,"lane":"batch","op":"case"}"#);
        let key = |p: Result<Parsed, String>| match p.unwrap().request {
            Request::Sim { job, .. } => job.key,
            _ => panic!("sim expected"),
        };
        let (ka, kb) = (key(a), key(b));
        assert_eq!(ka, kb);
        let c = parse_request(
            r#"{"op":"case","seed":9,"protocol":"hw-priv","lane":"batch","config":{"l2_hit":13}}"#,
        );
        assert_ne!(ka, key(c));
    }

    #[test]
    fn unknown_config_keys_are_rejected() {
        let r = parse_request(r#"{"op":"case","seed":1,"config":{"l2_hits":9}}"#);
        assert!(r.unwrap_err().contains("unknown config key"));
    }

    #[test]
    fn check_refuses_overrides() {
        let r = parse_request(r#"{"op":"case","seed":1,"protocol":"check","config":{"l2_hit":9}}"#);
        assert!(r.unwrap_err().contains("not supported"));
    }

    #[test]
    fn workload_requests_resolve_processor_counts() {
        let p = parse_request(r#"{"op":"workload","name":"ocean","scenario":"hw"}"#).unwrap();
        match p.request {
            Request::Sim { job, .. } => match job.work {
                Work::Workload { cfg, .. } => assert_eq!(cfg.procs(), 8),
                other => panic!("unexpected work {other:?}"),
            },
            _ => panic!("sim expected"),
        }
    }

    fn sim_key(line: &str) -> u64 {
        match parse_request(line).unwrap().request {
            Request::Sim { job, .. } => job.key,
            _ => panic!("sim expected"),
        }
    }

    #[test]
    fn fault_and_checkpoint_overrides_separate_cache_keys() {
        let base = sim_key(r#"{"op":"case","seed":3}"#);
        let dropped = sim_key(r#"{"op":"case","seed":3,"config":{"drop_ppm":50000}}"#);
        let crash = sim_key(
            r#"{"op":"case","seed":3,"config":{"node_fault_kind":"crash","node_fault_node":1,"node_fault_at_cycle":500}}"#,
        );
        let ckpt = sim_key(r#"{"op":"case","seed":3,"config":{"checkpoint_every":8}}"#);
        let keys = [base, dropped, crash, ckpt];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "override {i} aliases {j}");
            }
        }
    }

    #[test]
    fn node_fault_overrides_are_validated() {
        // Kind without node.
        let r = parse_request(r#"{"op":"case","seed":3,"config":{"node_fault_kind":"crash"}}"#);
        assert!(r.unwrap_err().contains("node_fault_node"));
        // Node out of range for the case's machine.
        let r = parse_request(
            r#"{"op":"case","seed":3,"config":{"node_fault_kind":"crash","node_fault_node":99}}"#,
        );
        assert!(r.unwrap_err().contains("out of range"));
        // Pause without a duration.
        let r = parse_request(
            r#"{"op":"case","seed":3,"config":{"node_fault_kind":"pause","node_fault_node":1}}"#,
        );
        assert!(r.unwrap_err().contains("node_fault_for_cycles"));
        // Unknown kind.
        let r = parse_request(
            r#"{"op":"case","seed":3,"config":{"node_fault_kind":"melt","node_fault_node":1}}"#,
        );
        assert!(r.unwrap_err().contains("crash|pause|partition"));
    }

    #[test]
    fn fault_rates_are_range_checked() {
        let r = parse_request(r#"{"op":"case","seed":3,"config":{"drop_ppm":2000000}}"#);
        assert!(r.unwrap_err().contains("0..=1_000_000"));
        // Rates summing past 100% are rejected by the combined check.
        let r = parse_request(
            r#"{"op":"case","seed":3,"config":{"drop_ppm":600000,"dup_ppm":600000}}"#,
        );
        assert!(r.unwrap_err().contains("1_000_000"));
    }

    #[test]
    fn workload_failure_and_invocation_are_distinct_keys() {
        let key = |line: &str| match parse_request(line).unwrap().request {
            Request::Sim { job, .. } => job.key,
            _ => panic!("sim expected"),
        };
        let inv0 = key(r#"{"op":"workload","name":"track","invocation":0}"#);
        let inv1 = key(r#"{"op":"workload","name":"track","invocation":1}"#);
        let fail = key(r#"{"op":"workload","name":"track","failure":true}"#);
        assert_ne!(inv0, inv1);
        assert_ne!(inv0, fail);
        assert_ne!(inv1, fail);
    }
}
