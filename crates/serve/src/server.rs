//! Transports: newline-delimited JSON over stdio or TCP.
//!
//! One connection = one request stream = one response stream, **in
//! request order**. Pipelining works because the reader thread parses and
//! dispatches ahead (cache hits and admin requests resolve instantly,
//! misses go to the pool) while a writer thread resolves the per-request
//! [`Outcome`]s in submission order — so responses never interleave or
//! reorder, keeping the stream deterministic even at high `--jobs`.
//!
//! A `shutdown` request stops the whole service: the connection answers
//! it, stops reading, and the accept loop (TCP mode) is woken by a
//! self-connect so it can exit and join the remaining connections.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

use crate::service::{Outcome, ServeCore};

/// Outcomes a connection may buffer ahead of the writer before the
/// reader blocks — bounds per-connection memory under pipelining.
const PIPELINE_DEPTH: usize = 64;

/// Serves one connection: reads request lines from `reader`, writes one
/// response line per request to `writer`, in order. Returns `true` if a
/// `shutdown` request asked the whole service to stop.
pub fn serve_connection<R, W>(core: &Arc<ServeCore>, reader: R, writer: W) -> io::Result<bool>
where
    R: BufRead,
    W: Write + Send,
{
    let (tx, rx) = mpsc::sync_channel::<Outcome>(PIPELINE_DEPTH);
    std::thread::scope(|s| {
        let drain = s.spawn(move || drain_outcomes(rx, writer));
        // A panicking writer must not take the connection loop down with
        // it: map the dead thread to a structured error and count it, so
        // the accept loop logs and moves on.
        let join_drain = |drain: std::thread::ScopedJoinHandle<'_, io::Result<bool>>| {
            drain.join().unwrap_or_else(|_| {
                core.count_writer_panic();
                Err(io::Error::other("writer thread panicked"))
            })
        };
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    drop(tx);
                    // Keep whatever responses were already queued flowing.
                    let _ = join_drain(drain);
                    return Err(e);
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let outcome = core.handle_line(&line);
            let stop = matches!(outcome, Outcome::Shutdown(_));
            if tx.send(outcome).is_err() || stop {
                break;
            }
        }
        drop(tx);
        join_drain(drain)
    })
}

fn drain_outcomes<W: Write>(rx: mpsc::Receiver<Outcome>, mut writer: W) -> io::Result<bool> {
    let mut shutdown = false;
    for outcome in rx {
        let line = match outcome {
            Outcome::Ready(p) => p,
            Outcome::Pending(done) => done.recv().unwrap_or_else(|_| {
                // The job's sender dropped without answering: it panicked
                // (the pool caught it and survived).
                crate::service::error_payload(&None, "internal: simulation job died", false)
            }),
            Outcome::Shutdown(p) => {
                shutdown = true;
                p
            }
        };
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            break;
        }
    }
    Ok(shutdown)
}

/// Serves stdin/stdout until EOF or a `shutdown` request.
pub fn run_stdio(core: &Arc<ServeCore>) -> io::Result<()> {
    let stdin = io::stdin();
    serve_connection(core, stdin.lock(), io::stdout()).map(|_| ())
}

/// A bound TCP service.
pub struct Server {
    core: Arc<ServeCore>,
    listener: TcpListener,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7487`, or port `0` for an ephemeral
    /// port).
    pub fn bind(core: Arc<ServeCore>, addr: &str) -> io::Result<Server> {
        Ok(Server {
            core,
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections (one thread each) until a `shutdown` request
    /// arrives on any of them; then stops accepting and joins every
    /// connection.
    pub fn run(self) -> io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        let addr = self.listener.local_addr()?;
        let mut conns = Vec::new();
        for stream in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let core = Arc::clone(&self.core);
            let stop = Arc::clone(&stop);
            conns.push(std::thread::spawn(move || {
                let _ = stream.set_nodelay(true);
                let reader = match stream.try_clone() {
                    Ok(s) => BufReader::new(s),
                    Err(_) => return,
                };
                match serve_connection(&core, reader, &stream) {
                    Ok(true) => {
                        stop.store(true, Ordering::SeqCst);
                        // Wake the accept loop so it observes the flag.
                        let _ = TcpStream::connect(addr);
                    }
                    Ok(false) => {}
                    Err(e) => eprintln!("specrt-serve: connection error: {e}"),
                }
            }));
        }
        for c in conns {
            let _ = c.join();
        }
        Ok(())
    }
}
