//! Randomized tests: the LRPD test against the ground-truth dependence
//! oracle, and the instrumented-IR marking against the pure algorithm —
//! driven by the in-repo deterministic [`SplitMix64`] generator.

use specrt_engine::SplitMix64;
use specrt_ir::{
    execute_iteration, AccessKind, ArrayId, BinOp, MemOracle, Operand, Program, ProgramBuilder,
    Scalar,
};
use specrt_lrpd::{
    analyze_iteration_traces, instrument_for_proc, InstrumentConfig, LrpdOutcome, LrpdShadow,
    OracleVerdict, ShadowIds,
};
use specrt_mem::ProcId;
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

/// One iteration's accesses: (element, is_write) in program order.
type IterTrace = Vec<(u64, bool)>;

fn random_traces(rng: &mut SplitMix64) -> Vec<IterTrace> {
    (0..rng.range(1, 8))
        .map(|_| {
            (0..rng.below(6))
                .map(|_| (rng.below(6), rng.chance(0.5)))
                .collect()
        })
        .collect()
}

fn mark_all(traces: &[IterTrace]) -> LrpdShadow {
    let mut sh = LrpdShadow::new(6);
    for (i, t) in traces.iter().enumerate() {
        let iter = i as u64 + 1;
        for &(e, w) in t {
            if w {
                sh.mark_write(e, iter);
            } else {
                sh.mark_read(e, iter);
            }
        }
    }
    sh
}

fn to_oracle(traces: &[IterTrace]) -> Vec<Vec<(u64, AccessKind)>> {
    traces
        .iter()
        .map(|t| {
            t.iter()
                .map(|&(e, w)| {
                    (
                        e,
                        if w {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                    )
                })
                .collect()
        })
        .collect()
}

/// LRPD without privatization passes exactly the loops the oracle calls
/// DoallNoPriv.
#[test]
fn lrpd_nopriv_equals_oracle() {
    let mut rng = SplitMix64::new(0x14bd_0001);
    for _case in 0..256 {
        let traces = random_traces(&mut rng);
        let sh = mark_all(&traces);
        let verdict = analyze_iteration_traces(&to_oracle(&traces));
        let lrpd_ok = sh.analyze(false) == LrpdOutcome::DoallNoPriv;
        assert_eq!(
            lrpd_ok,
            verdict == OracleVerdict::DoallNoPriv,
            "traces {traces:?}"
        );
    }
}

/// LRPD with privatization passes exactly the loops the oracle calls
/// DoallNoPriv or DoallPriv (basic privatization, no read-in).
#[test]
fn lrpd_priv_equals_oracle() {
    let mut rng = SplitMix64::new(0x14bd_0002);
    for _case in 0..256 {
        let traces = random_traces(&mut rng);
        let sh = mark_all(&traces);
        let verdict = analyze_iteration_traces(&to_oracle(&traces));
        let lrpd_ok = sh.analyze(true).passed();
        assert_eq!(lrpd_ok, verdict.priv_ok(), "traces {traces:?}");
    }
}

/// The privatized verdict is monotone: whatever passes without
/// privatization also passes with it.
#[test]
fn privatization_only_helps() {
    let mut rng = SplitMix64::new(0x14bd_0003);
    for _case in 0..256 {
        let traces = random_traces(&mut rng);
        let sh = mark_all(&traces);
        if sh.analyze(false) == LrpdOutcome::DoallNoPriv {
            assert!(sh.analyze(true).passed());
        }
    }
}

/// Merging per-processor shadows is equivalent to marking globally when
/// iterations are partitioned across processors.
#[test]
fn merge_equals_global_marking() {
    let mut rng = SplitMix64::new(0x14bd_0004);
    for _case in 0..256 {
        let traces = random_traces(&mut rng);
        let procs = rng.range(1, 4) as usize;
        let global = mark_all(&traces);
        let mut shadows = vec![LrpdShadow::new(6); procs];
        for (i, t) in traces.iter().enumerate() {
            let iter = i as u64 + 1;
            let p = i % procs;
            for &(e, w) in t {
                if w {
                    shadows[p].mark_write(e, iter);
                } else {
                    shadows[p].mark_read(e, iter);
                }
            }
        }
        let mut merged = LrpdShadow::new(6);
        for sh in &shadows {
            merged.merge(sh);
        }
        assert_eq!(merged.analyze(true), global.analyze(true));
        assert_eq!(merged.analyze(false), global.analyze(false));
        assert_eq!(merged.atw(), global.atw());
        assert_eq!(merged.atm(), global.atm());
    }
}

// ----------------------------------------------------------------------
// Instrumented-IR marking vs. pure algorithm
// ----------------------------------------------------------------------

#[derive(Default)]
struct Mem(std::collections::HashMap<(ArrayId, u64), Scalar>);

impl MemOracle for Mem {
    fn read(&mut self, arr: ArrayId, idx: u64) -> Scalar {
        self.0.get(&(arr, idx)).copied().unwrap_or(Scalar::ZERO)
    }
    fn write(&mut self, arr: ArrayId, idx: u64, value: Scalar) {
        self.0.insert((arr, idx), value);
    }
}

const A: ArrayId = ArrayId(0);
const K: ArrayId = ArrayId(1);
const WF: ArrayId = ArrayId(2);

/// A loop body whose iteration reads `A[K[2i]]` and (conditionally on
/// `WF[i]`) writes `A[K[2i+1]]` — enough to produce arbitrary single-read/
/// single-write iteration traces from the generated index data.
fn generic_body() -> Program {
    let mut b = ProgramBuilder::new();
    let i2 = b.binop(BinOp::Mul, Operand::Iter, Operand::ImmI(2));
    let ridx = b.load(K, Operand::Reg(i2));
    let v = b.load(A, Operand::Reg(ridx));
    let wf = b.load(WF, Operand::Iter);
    let skip = b.label();
    b.bz(Operand::Reg(wf), skip);
    let i21 = b.binop(BinOp::Add, Operand::Reg(i2), Operand::ImmI(1));
    let widx = b.load(K, Operand::Reg(i21));
    let v2 = b.binop(BinOp::FAdd, Operand::Reg(v), Operand::ImmF(1.0));
    b.store(A, Operand::Reg(widx), Operand::Reg(v2));
    b.bind(skip);
    b.build().unwrap()
}

fn random_kvals_wflags(rng: &mut SplitMix64) -> (Vec<i64>, Vec<bool>) {
    let kvals: Vec<i64> = (0..rng.range(2, 16)).map(|_| rng.below(6) as i64).collect();
    let wflags: Vec<bool> = (0..8).map(|_| rng.chance(0.5)).collect();
    (kvals, wflags)
}

/// Executing the instrumented body leaves shadow memory whose observable
/// predicates (A_w, A_r, A_np, Atw) agree with the pure reference marking
/// the same accesses.
#[test]
fn instrumented_marks_agree_with_reference() {
    let mut rng = SplitMix64::new(0x14bd_0005);
    for _case in 0..64 {
        let (kvals, wflags) = random_kvals_wflags(&mut rng);
        let iters = (kvals.len() / 2) as u64;
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let cfg = InstrumentConfig {
            plan,
            numbering: IterationNumbering::iteration_wise(),
            bitmap: false,
        };
        let prog = instrument_for_proc(&generic_body(), &cfg, ProcId(0));

        let mut mem = Mem::default();
        for (i, &k) in kvals.iter().enumerate() {
            mem.write(K, i as u64, Scalar::Int(k));
        }
        for (i, &f) in wflags.iter().enumerate() {
            mem.write(WF, i as u64, Scalar::Int(f as i64));
        }
        let mut reference = LrpdShadow::new(6);
        for i in 0..iters {
            execute_iteration(&prog, i, 0, &mut mem).unwrap();
            let iter = i + 1;
            reference.mark_read(kvals[(2 * i) as usize] as u64, iter);
            if wflags[i as usize % 8] {
                reference.mark_write(kvals[(2 * i + 1) as usize] as u64, iter);
            }
        }

        let ids = ShadowIds::new(A, ProcId(0));
        for e in 0..6u64 {
            let w = mem.read(ids.w_last(), e).as_int() as u64;
            let rc = mem.read(ids.r_cur(), e).as_int() as u64;
            let rs = mem.read(ids.r_sticky(), e).as_int() != 0;
            let np = mem.read(ids.np(), e).as_int() != 0;
            assert_eq!(w != 0, reference.a_w(e), "A_w[{e}]");
            assert_eq!(rs || rc != 0, reference.a_r(e), "A_r[{e}]");
            assert_eq!(np, reference.a_np(e), "A_np[{e}]");
        }
        let atw = mem.read(ids.counters(), 0).as_int() as u64;
        assert_eq!(atw, reference.atw());
    }
}

/// The bitmap (processor-wise) instrumentation marks the same
/// A_w/A_r/A_np predicates as a reference shadow where the whole processor
/// execution counts as one superiteration.
#[test]
fn bitmap_marks_agree_with_superiteration_reference() {
    let mut rng = SplitMix64::new(0x14bd_0006);
    for _case in 0..64 {
        let (kvals, wflags) = random_kvals_wflags(&mut rng);
        let iters = (kvals.len() / 2) as u64;
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let cfg = InstrumentConfig {
            plan,
            numbering: IterationNumbering::processor_wise(iters, 1),
            bitmap: true,
        };
        let prog = instrument_for_proc(&generic_body(), &cfg, ProcId(0));

        let mut mem = Mem::default();
        for (i, &k) in kvals.iter().enumerate() {
            mem.write(K, i as u64, Scalar::Int(k));
        }
        for (i, &f) in wflags.iter().enumerate() {
            mem.write(WF, i as u64, Scalar::Int(f as i64));
        }
        // Reference: all iterations share stamp 1 (one superiteration).
        let mut reference = LrpdShadow::new(6);
        for i in 0..iters {
            execute_iteration(&prog, i, 0, &mut mem).unwrap();
            reference.mark_read(kvals[(2 * i) as usize] as u64, 1);
            if wflags[i as usize % 8] {
                reference.mark_write(kvals[(2 * i + 1) as usize] as u64, 1);
            }
        }
        let ids = ShadowIds::new(A, ProcId(0));
        let aw = mem.read(ids.w_last(), 0).as_int() as u64;
        let ar = mem.read(ids.r_cur(), 0).as_int() as u64;
        let anp = mem.read(ids.np(), 0).as_int() as u64;
        for e in 0..6u64 {
            let bit = 1u64 << e;
            assert_eq!(aw & bit != 0, reference.a_w(e), "A_w[{e}]");
            assert_eq!(ar & bit != 0, reference.a_r(e), "A_r[{e}]");
            assert_eq!(anp & bit != 0, reference.a_np(e), "A_np[{e}]");
        }
    }
}
