//! Array-id allocation for the software scheme's shadow arrays and private
//! copies.
//!
//! The software LRPD scheme needs, per (array under test, processor):
//! four shadow arrays (`w_last`, `r_cur`, `r_sticky`, `np` — the stamped
//! representation of `A_w`/`A_r`/`A_np`), a small counter array, and — for
//! privatized arrays — a private copy of the data. All of these are ordinary
//! simulated arrays (they cost real cache misses and instructions); this
//! module assigns them deterministic [`ArrayId`]s in reserved ranges so they
//! can never collide with workload arrays.

use specrt_ir::ArrayId;
use specrt_mem::ProcId;

/// Bit 29 marks software-scheme private data copies.
const SW_PRIVATE_BASE: u32 = 0x2000_0000;
/// Bit 30 marks shadow arrays.
const SHADOW_BASE: u32 = 0x4000_0000;

/// Which shadow array of the stamped LRPD representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShadowKind {
    /// Last iteration that wrote the element (`A_w` = nonzero).
    WLast,
    /// Tentative uncovered-read stamp.
    RCur,
    /// Sticky uncovered-read flag.
    RSticky,
    /// Sticky read-before-write flag (`A_np`).
    Np,
    /// Per-processor counters: `[atw, atm, bad_wr, bad_np]`.
    Counters,
}

impl ShadowKind {
    fn code(self) -> u32 {
        match self {
            ShadowKind::WLast => 0,
            ShadowKind::RCur => 1,
            ShadowKind::RSticky => 2,
            ShadowKind::Np => 3,
            ShadowKind::Counters => 4,
        }
    }

    /// All kinds, in code order.
    pub fn all() -> [ShadowKind; 5] {
        [
            ShadowKind::WLast,
            ShadowKind::RCur,
            ShadowKind::RSticky,
            ShadowKind::Np,
            ShadowKind::Counters,
        ]
    }
}

/// Id of the `kind` shadow array for `arr` owned by `proc`.
///
/// # Panics
///
/// Panics if `arr.0 >= 2^18` or `proc.0 >= 256`.
pub fn shadow_id(arr: ArrayId, kind: ShadowKind, proc: ProcId) -> ArrayId {
    assert!(arr.0 < (1 << 18), "array id {arr} too large to shadow");
    assert!(proc.0 < 256, "processor id {proc} too large");
    ArrayId(SHADOW_BASE | (kind.code() << 26) | (arr.0 << 8) | proc.0)
}

/// Id of the software scheme's private copy of privatized array `arr` for
/// `proc`.
///
/// # Panics
///
/// Panics if `arr.0 >= 2^18` or `proc.0 >= 256`.
pub fn sw_private_copy_id(arr: ArrayId, proc: ProcId) -> ArrayId {
    assert!(arr.0 < (1 << 18), "array id {arr} too large to privatize");
    assert!(proc.0 < 256, "processor id {proc} too large");
    ArrayId(SW_PRIVATE_BASE | (arr.0 << 8) | proc.0)
}

/// Convenience bundle of one processor's shadow ids for one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowIds {
    /// The array under test.
    pub arr: ArrayId,
    /// The owning processor.
    pub proc: ProcId,
}

impl ShadowIds {
    /// Bundles ids for `(arr, proc)`.
    pub fn new(arr: ArrayId, proc: ProcId) -> Self {
        ShadowIds { arr, proc }
    }

    /// The `w_last` shadow array.
    pub fn w_last(&self) -> ArrayId {
        shadow_id(self.arr, ShadowKind::WLast, self.proc)
    }

    /// The `r_cur` shadow array.
    pub fn r_cur(&self) -> ArrayId {
        shadow_id(self.arr, ShadowKind::RCur, self.proc)
    }

    /// The `r_sticky` shadow array.
    pub fn r_sticky(&self) -> ArrayId {
        shadow_id(self.arr, ShadowKind::RSticky, self.proc)
    }

    /// The `np` shadow array.
    pub fn np(&self) -> ArrayId {
        shadow_id(self.arr, ShadowKind::Np, self.proc)
    }

    /// The counters array (`[atw, atm, bad_wr, bad_np]`).
    pub fn counters(&self) -> ArrayId {
        shadow_id(self.arr, ShadowKind::Counters, self.proc)
    }

    /// All data-shadow ids (excluding counters), in kind order.
    pub fn data_shadows(&self) -> [ArrayId; 4] {
        [self.w_last(), self.r_cur(), self.r_sticky(), self.np()]
    }
}

/// Index of `atw` in the counters array.
pub const CNT_ATW: u64 = 0;
/// Index of `atm` in the counters array.
pub const CNT_ATM: u64 = 1;
/// Index of the test-(b) flag in the counters array.
pub const CNT_BAD_WR: u64 = 2;
/// Index of the test-(d) flag in the counters array.
pub const CNT_BAD_NP: u64 = 3;
/// Length of the counters array.
pub const CNT_LEN: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_across_kinds_procs_arrays() {
        let mut seen = std::collections::HashSet::new();
        for arr in [0u32, 1, 77] {
            for proc in [0u32, 1, 15] {
                for kind in ShadowKind::all() {
                    assert!(seen.insert(shadow_id(ArrayId(arr), kind, ProcId(proc))));
                }
                assert!(seen.insert(sw_private_copy_id(ArrayId(arr), ProcId(proc))));
            }
        }
    }

    #[test]
    fn reserved_ranges_do_not_collide_with_workload_ids() {
        let s = shadow_id(ArrayId(0), ShadowKind::WLast, ProcId(0));
        let p = sw_private_copy_id(ArrayId(0), ProcId(0));
        assert!(s.0 >= SHADOW_BASE);
        assert!(p.0 >= SW_PRIVATE_BASE && p.0 < SHADOW_BASE);
    }

    #[test]
    fn bundle_matches_free_functions() {
        let ids = ShadowIds::new(ArrayId(3), ProcId(2));
        assert_eq!(
            ids.w_last(),
            shadow_id(ArrayId(3), ShadowKind::WLast, ProcId(2))
        );
        assert_eq!(
            ids.counters(),
            shadow_id(ArrayId(3), ShadowKind::Counters, ProcId(2))
        );
        assert_eq!(ids.data_shadows().len(), 4);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_array_id_rejected() {
        shadow_id(ArrayId(1 << 18), ShadowKind::Np, ProcId(0));
    }
}
