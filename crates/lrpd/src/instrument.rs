//! The marking-instrumentation pass.
//!
//! "If run-time parallelization is to be performed, the compiler inserts
//! code to back up arrays, update the shadow arrays every time the arrays
//! under test are accessed, perform the analysis and, if the analysis
//! fails, restart the loop serially." (paper §2.2.4)
//!
//! [`instrument_for_proc`] performs the *marking* part as a real IR-to-IR
//! transformation: every load/store to an array under test is followed by a
//! `markread`/`markwrite` block that manipulates the processor's private
//! shadow arrays using ordinary loads, stores, compares and branches — so
//! the software scheme's instruction and cache overheads arise naturally in
//! simulation, exactly as they did from Polaris-generated code.
//! Privatized arrays are additionally *redirected* to the processor's
//! private copy of the data.

use specrt_ir::{ArrayId, BinOp, Instr, Operand, Program, Reg};
use specrt_mem::ProcId;
use specrt_spec::{IterationNumbering, TestPlan};

use crate::shadow::{sw_private_copy_id, ShadowIds, CNT_ATW};

/// What to instrument and how iterations are numbered.
#[derive(Debug, Clone)]
pub struct InstrumentConfig {
    /// Arrays under test (and which are privatized).
    pub plan: TestPlan,
    /// Effective stamp numbering (iteration-wise, chunked, processor-wise).
    pub numbering: IterationNumbering,
    /// Processor-wise bitmap shadows (§2.2.3): "each entry in a shadow
    /// array now only needs to be 1 bit. These entries are accessed with
    /// bitmap operations, resulting in significant space savings." The
    /// marking blocks use shift/mask sequences on 64-element words; the
    /// merging-analysis phase scans words instead of elements.
    pub bitmap: bool,
}

/// Number of instructions in a markread block (stamped representation).
const MARKREAD_LEN: usize = 10;
/// Number of instructions in a markwrite block (stamped representation).
const MARKWRITE_LEN: usize = 11;
/// Number of instructions in a bitmap markread block.
const MARKREAD_BM_LEN: usize = 12;
/// Number of instructions in a bitmap markwrite block.
const MARKWRITE_BM_LEN: usize = 15;

/// Instruments `body` for execution by `proc`.
///
/// The returned program:
///
/// * starts with a short prologue computing the effective iteration stamp;
/// * redirects accesses to privatized arrays to `proc`'s private copy;
/// * follows every access to an array under test with the corresponding
///   marking block.
///
/// # Panics
///
/// Panics if the instrumented program would exceed the IR's 256-register
/// budget.
pub fn instrument_for_proc(body: &Program, cfg: &InstrumentConfig, proc: ProcId) -> Program {
    // Allocate pass registers after the body's own.
    let base = body.reg_count();
    assert!(base + 5 <= 256, "no registers left for instrumentation");
    let t = Reg(base as u8); // effective stamp (bitmap: word index)
    let ri = Reg((base + 1) as u8); // materialized index
    let s1 = Reg((base + 2) as u8); // scratch
    let s2 = Reg((base + 3) as u8); // scratch
    let m = Reg((base + 4) as u8); // bitmap: bit mask

    let chunk = cfg.numbering.chunk_size();
    let prologue_len = if cfg.bitmap {
        0
    } else if chunk == 1 {
        1
    } else {
        2
    };

    // First pass: compute the new start pc of every original instruction.
    let mut new_pc = Vec::with_capacity(body.len() + 1);
    let mut pc = prologue_len;
    for instr in body.instrs() {
        new_pc.push(pc);
        pc += expanded_len(instr, cfg);
    }
    new_pc.push(pc); // branch-to-end target

    // Second pass: emit.
    let mut out: Vec<Instr> = Vec::with_capacity(pc);
    if cfg.bitmap {
        // No stamp prologue: bitmap marks are position-independent.
    } else if chunk == 1 {
        out.push(Instr::Bin {
            op: BinOp::Add,
            dst: t,
            a: Operand::Iter,
            b: Operand::ImmI(1),
        });
    } else {
        out.push(Instr::Bin {
            op: BinOp::Div,
            dst: t,
            a: Operand::Iter,
            b: Operand::ImmI(chunk as i64),
        });
        out.push(Instr::Bin {
            op: BinOp::Add,
            dst: t,
            a: Operand::Reg(t),
            b: Operand::ImmI(1),
        });
    }

    for instr in body.instrs() {
        match *instr {
            Instr::Load { dst, arr, idx } if cfg.plan.kind_of(arr).is_under_test() => {
                // If the load overwrites its own index register, preserve
                // the index for the marking block.
                let idx = if idx == Operand::Reg(dst) {
                    out.push(Instr::Mov { dst: ri, src: idx });
                    Operand::Reg(ri)
                } else {
                    idx
                };
                let idx_reg = materialize_index(&mut out, idx, ri);
                let target = redirect(arr, &cfg.plan, proc);
                out.push(Instr::Load {
                    dst,
                    arr: target,
                    idx: Operand::Reg(idx_reg),
                });
                let sh = ShadowIds::new(arr, proc);
                if cfg.bitmap {
                    emit_markread_bitmap(&mut out, &sh, idx_reg, t, m, s1, s2);
                } else {
                    emit_markread(&mut out, &sh, idx_reg, t, s1, s2);
                }
            }
            Instr::Store { arr, idx, src } if cfg.plan.kind_of(arr).is_under_test() => {
                let idx_reg = materialize_index(&mut out, idx, ri);
                let target = redirect(arr, &cfg.plan, proc);
                out.push(Instr::Store {
                    arr: target,
                    idx: Operand::Reg(idx_reg),
                    src,
                });
                let sh = ShadowIds::new(arr, proc);
                if cfg.bitmap {
                    emit_markwrite_bitmap(&mut out, &sh, idx_reg, t, m, s1, s2);
                } else {
                    emit_markwrite(&mut out, &sh, idx_reg, t, s1, s2);
                }
            }
            Instr::Bz { cond, target } => out.push(Instr::Bz {
                cond,
                target: new_pc[target],
            }),
            Instr::Bnz { cond, target } => out.push(Instr::Bnz {
                cond,
                target: new_pc[target],
            }),
            Instr::Jmp { target } => out.push(Instr::Jmp {
                target: new_pc[target],
            }),
            other => out.push(other),
        }
    }

    rebuild(out, base + 5)
}

fn redirect(arr: ArrayId, plan: &TestPlan, proc: ProcId) -> ArrayId {
    if plan.kind_of(arr).is_privatized() {
        sw_private_copy_id(arr, proc)
    } else {
        arr
    }
}

fn expanded_len(instr: &Instr, cfg: &InstrumentConfig) -> usize {
    let (mr, mw) = if cfg.bitmap {
        (MARKREAD_BM_LEN, MARKWRITE_BM_LEN)
    } else {
        (MARKREAD_LEN, MARKWRITE_LEN)
    };
    match instr {
        Instr::Load { dst, arr, idx } if cfg.plan.kind_of(*arr).is_under_test() => {
            let idx_cost = if *idx == Operand::Reg(*dst) {
                1
            } else {
                index_cost(idx)
            };
            idx_cost + 1 + mr
        }
        Instr::Store { arr, idx, .. } if cfg.plan.kind_of(*arr).is_under_test() => {
            index_cost(idx) + 1 + mw
        }
        _ => 1,
    }
}

fn index_cost(idx: &Operand) -> usize {
    match idx {
        Operand::Reg(_) => 0,
        _ => 1,
    }
}

fn materialize_index(out: &mut Vec<Instr>, idx: Operand, ri: Reg) -> Reg {
    match idx {
        Operand::Reg(r) => r,
        other => {
            out.push(Instr::Mov {
                dst: ri,
                src: other,
            });
            ri
        }
    }
}

/// markread: the §2.2.2 rule (b), in the stamped representation.
///
/// ```text
/// s1 = shW[i];  if s1 == t goto DONE          // covered before: no marks
/// shNp[i] = 1
/// s1 = shRCur[i]
/// if s1 == 0 goto FRESH
/// if s1 == t goto FRESH
/// shRSticky[i] = 1                            // promote old tentative read
/// FRESH: shRCur[i] = t
/// DONE:
/// ```
fn emit_markread(out: &mut Vec<Instr>, sh: &ShadowIds, i: Reg, t: Reg, s1: Reg, s2: Reg) {
    let start = out.len();
    let done = start + MARKREAD_LEN;
    let fresh = done - 1;
    out.push(Instr::Load {
        dst: s1,
        arr: sh.w_last(),
        idx: Operand::Reg(i),
    }); // 0
    out.push(Instr::Bin {
        op: BinOp::CmpEq,
        dst: s2,
        a: Operand::Reg(s1),
        b: Operand::Reg(t),
    }); // 1
    out.push(Instr::Bnz {
        cond: Operand::Reg(s2),
        target: done,
    }); // 2
    out.push(Instr::Store {
        arr: sh.np(),
        idx: Operand::Reg(i),
        src: Operand::ImmI(1),
    }); // 3
    out.push(Instr::Load {
        dst: s1,
        arr: sh.r_cur(),
        idx: Operand::Reg(i),
    }); // 4
    out.push(Instr::Bz {
        cond: Operand::Reg(s1),
        target: fresh,
    }); // 5
    out.push(Instr::Bin {
        op: BinOp::CmpEq,
        dst: s2,
        a: Operand::Reg(s1),
        b: Operand::Reg(t),
    }); // 6
    out.push(Instr::Bnz {
        cond: Operand::Reg(s2),
        target: fresh,
    }); // 7
    out.push(Instr::Store {
        arr: sh.r_sticky(),
        idx: Operand::Reg(i),
        src: Operand::ImmI(1),
    }); // 8
    out.push(Instr::Store {
        arr: sh.r_cur(),
        idx: Operand::Reg(i),
        src: Operand::Reg(t),
    }); // 9 = FRESH
    debug_assert_eq!(out.len(), done);
}

/// markwrite: the §2.2.2 rules (a) and (c), in the stamped representation.
///
/// ```text
/// s1 = shRCur[i]; if s1 != t goto NOCOVER
/// shRCur[i] = 0                               // covered after
/// NOCOVER:
/// s1 = shW[i]; if s1 == t goto DONE           // already counted this iter
/// shW[i] = t
/// cnt[ATW] += 1
/// DONE:
/// ```
fn emit_markwrite(out: &mut Vec<Instr>, sh: &ShadowIds, i: Reg, t: Reg, s1: Reg, s2: Reg) {
    let start = out.len();
    let done = start + MARKWRITE_LEN;
    let nocover = start + 4;
    out.push(Instr::Load {
        dst: s1,
        arr: sh.r_cur(),
        idx: Operand::Reg(i),
    }); // 0
    out.push(Instr::Bin {
        op: BinOp::CmpEq,
        dst: s2,
        a: Operand::Reg(s1),
        b: Operand::Reg(t),
    }); // 1
    out.push(Instr::Bz {
        cond: Operand::Reg(s2),
        target: nocover,
    }); // 2
    out.push(Instr::Store {
        arr: sh.r_cur(),
        idx: Operand::Reg(i),
        src: Operand::ImmI(0),
    }); // 3
    out.push(Instr::Load {
        dst: s1,
        arr: sh.w_last(),
        idx: Operand::Reg(i),
    }); // 4 = NOCOVER
    out.push(Instr::Bin {
        op: BinOp::CmpEq,
        dst: s2,
        a: Operand::Reg(s1),
        b: Operand::Reg(t),
    }); // 5
    out.push(Instr::Bnz {
        cond: Operand::Reg(s2),
        target: done,
    }); // 6
    out.push(Instr::Store {
        arr: sh.w_last(),
        idx: Operand::Reg(i),
        src: Operand::Reg(t),
    }); // 7
    out.push(Instr::Load {
        dst: s1,
        arr: sh.counters(),
        idx: Operand::ImmI(CNT_ATW as i64),
    }); // 8
    out.push(Instr::Bin {
        op: BinOp::Add,
        dst: s1,
        a: Operand::Reg(s1),
        b: Operand::ImmI(1),
    }); // 9
    out.push(Instr::Store {
        arr: sh.counters(),
        idx: Operand::ImmI(CNT_ATW as i64),
        src: Operand::Reg(s1),
    }); // 10
    debug_assert_eq!(out.len(), done);
}

/// Bitmap markread (processor-wise, §2.2.3): per element bit in a
/// 64-element word. A read sets the `A_r` and `A_np` bits unless this
/// processor already wrote the element.
///
/// ```text
/// w = i >> 6; m = 1 << (i & 63)
/// if aw[w] & m goto DONE                   // covered: I wrote it already
/// ar[w] |= m; anp[w] |= m
/// DONE:
/// ```
#[allow(clippy::too_many_arguments)]
fn emit_markread_bitmap(
    out: &mut Vec<Instr>,
    sh: &ShadowIds,
    i: Reg,
    w: Reg,
    m: Reg,
    s1: Reg,
    s2: Reg,
) {
    let start = out.len();
    let done = start + MARKREAD_BM_LEN;
    out.push(Instr::Bin {
        op: BinOp::Shr,
        dst: w,
        a: Operand::Reg(i),
        b: Operand::ImmI(6),
    }); // 0
    out.push(Instr::Bin {
        op: BinOp::And,
        dst: s2,
        a: Operand::Reg(i),
        b: Operand::ImmI(63),
    }); // 1
    out.push(Instr::Bin {
        op: BinOp::Shl,
        dst: m,
        a: Operand::ImmI(1),
        b: Operand::Reg(s2),
    }); // 2
    out.push(Instr::Load {
        dst: s1,
        arr: sh.w_last(),
        idx: Operand::Reg(w),
    }); // 3
    out.push(Instr::Bin {
        op: BinOp::And,
        dst: s2,
        a: Operand::Reg(s1),
        b: Operand::Reg(m),
    }); // 4
    out.push(Instr::Bnz {
        cond: Operand::Reg(s2),
        target: done,
    }); // 5
    out.push(Instr::Load {
        dst: s1,
        arr: sh.r_cur(),
        idx: Operand::Reg(w),
    }); // 6
    out.push(Instr::Bin {
        op: BinOp::Or,
        dst: s1,
        a: Operand::Reg(s1),
        b: Operand::Reg(m),
    }); // 7
    out.push(Instr::Store {
        arr: sh.r_cur(),
        idx: Operand::Reg(w),
        src: Operand::Reg(s1),
    }); // 8
    out.push(Instr::Load {
        dst: s1,
        arr: sh.np(),
        idx: Operand::Reg(w),
    }); // 9
    out.push(Instr::Bin {
        op: BinOp::Or,
        dst: s1,
        a: Operand::Reg(s1),
        b: Operand::Reg(m),
    }); // 10
    out.push(Instr::Store {
        arr: sh.np(),
        idx: Operand::Reg(w),
        src: Operand::Reg(s1),
    }); // 11
    debug_assert_eq!(out.len(), done);
}

/// Bitmap markwrite (processor-wise): sets the `A_w` bit (counting `Atw`
/// once per new element) and clears the element's `A_r` bit — any read by
/// this processor is covered by this write within the superiteration.
///
/// ```text
/// w = i >> 6; m = 1 << (i & 63)
/// if aw[w] & m goto CLR                    // already counted
/// aw[w] |= m; cnt[ATW] += 1
/// CLR: ar[w] &= ~m
/// ```
#[allow(clippy::too_many_arguments)]
fn emit_markwrite_bitmap(
    out: &mut Vec<Instr>,
    sh: &ShadowIds,
    i: Reg,
    w: Reg,
    m: Reg,
    s1: Reg,
    s2: Reg,
) {
    let start = out.len();
    let done = start + MARKWRITE_BM_LEN;
    let clr = start + 11;
    out.push(Instr::Bin {
        op: BinOp::Shr,
        dst: w,
        a: Operand::Reg(i),
        b: Operand::ImmI(6),
    }); // 0
    out.push(Instr::Bin {
        op: BinOp::And,
        dst: s2,
        a: Operand::Reg(i),
        b: Operand::ImmI(63),
    }); // 1
    out.push(Instr::Bin {
        op: BinOp::Shl,
        dst: m,
        a: Operand::ImmI(1),
        b: Operand::Reg(s2),
    }); // 2
    out.push(Instr::Load {
        dst: s1,
        arr: sh.w_last(),
        idx: Operand::Reg(w),
    }); // 3
    out.push(Instr::Bin {
        op: BinOp::And,
        dst: s2,
        a: Operand::Reg(s1),
        b: Operand::Reg(m),
    }); // 4
    out.push(Instr::Bnz {
        cond: Operand::Reg(s2),
        target: clr,
    }); // 5
    out.push(Instr::Bin {
        op: BinOp::Or,
        dst: s1,
        a: Operand::Reg(s1),
        b: Operand::Reg(m),
    }); // 6
    out.push(Instr::Store {
        arr: sh.w_last(),
        idx: Operand::Reg(w),
        src: Operand::Reg(s1),
    }); // 7
    out.push(Instr::Load {
        dst: s2,
        arr: sh.counters(),
        idx: Operand::ImmI(CNT_ATW as i64),
    }); // 8
    out.push(Instr::Bin {
        op: BinOp::Add,
        dst: s2,
        a: Operand::Reg(s2),
        b: Operand::ImmI(1),
    }); // 9
    out.push(Instr::Store {
        arr: sh.counters(),
        idx: Operand::ImmI(CNT_ATW as i64),
        src: Operand::Reg(s2),
    }); // 10
    out.push(Instr::Bin {
        op: BinOp::Xor,
        dst: s2,
        a: Operand::Reg(m),
        b: Operand::ImmI(-1),
    }); // 11 = CLR
    out.push(Instr::Load {
        dst: s1,
        arr: sh.r_cur(),
        idx: Operand::Reg(w),
    }); // 12
    out.push(Instr::Bin {
        op: BinOp::And,
        dst: s1,
        a: Operand::Reg(s1),
        b: Operand::Reg(s2),
    }); // 13
    out.push(Instr::Store {
        arr: sh.r_cur(),
        idx: Operand::Reg(w),
        src: Operand::Reg(s1),
    }); // 14
    debug_assert_eq!(out.len(), done);
}

fn rebuild(instrs: Vec<Instr>, _regs: u16) -> Program {
    let mut b = specrt_ir::ProgramBuilder::new();
    // Reserve the register space by allocating up to the max used register.
    let max_reg = instrs
        .iter()
        .flat_map(regs_of)
        .max()
        .map_or(0, |r| r as u16 + 1);
    for _ in 0..max_reg {
        b.reg();
    }
    for i in instrs {
        b.push(i);
    }
    b.build().expect("instrumented program verifies")
}

fn regs_of(i: &Instr) -> Vec<u8> {
    fn op(o: &Operand, v: &mut Vec<u8>) {
        if let Operand::Reg(Reg(r)) = o {
            v.push(*r);
        }
    }
    let mut v = Vec::new();
    match i {
        Instr::Compute(_) => {}
        Instr::Load { dst, idx, .. } => {
            v.push(dst.0);
            op(idx, &mut v);
        }
        Instr::Store { idx, src, .. } => {
            op(idx, &mut v);
            op(src, &mut v);
        }
        Instr::Mov { dst, src } => {
            v.push(dst.0);
            op(src, &mut v);
        }
        Instr::Bin { dst, a, b, .. } => {
            v.push(dst.0);
            op(a, &mut v);
            op(b, &mut v);
        }
        Instr::Bz { cond, .. } | Instr::Bnz { cond, .. } => op(cond, &mut v),
        Instr::Jmp { .. } => {}
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_ir::{execute_iteration, MemOracle, ProgramBuilder, Scalar};
    use specrt_spec::ProtocolKind;

    use crate::algorithm::{LrpdOutcome, LrpdShadow};
    use crate::shadow::CNT_LEN;

    const A: ArrayId = ArrayId(0);
    const K: ArrayId = ArrayId(1);

    fn subscripted_body() -> Program {
        // v = A[K[iter]]; A[K[iter]] = v + 1.0
        let mut b = ProgramBuilder::new();
        let idx = b.load(K, Operand::Iter);
        let v = b.load(A, Operand::Reg(idx));
        let v2 = b.binop(BinOp::FAdd, Operand::Reg(v), Operand::ImmF(1.0));
        b.store(A, Operand::Reg(idx), Operand::Reg(v2));
        b.build().unwrap()
    }

    fn nonpriv_cfg() -> InstrumentConfig {
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        InstrumentConfig {
            plan,
            numbering: IterationNumbering::iteration_wise(),
            bitmap: false,
        }
    }

    /// Simple map-backed memory that also serves the shadow arrays.
    #[derive(Default)]
    struct Mem(std::collections::HashMap<(ArrayId, u64), Scalar>);

    impl MemOracle for Mem {
        fn read(&mut self, arr: ArrayId, idx: u64) -> Scalar {
            self.0.get(&(arr, idx)).copied().unwrap_or(Scalar::ZERO)
        }
        fn write(&mut self, arr: ArrayId, idx: u64, value: Scalar) {
            self.0.insert((arr, idx), value);
        }
    }

    fn run_instrumented(
        body: &Program,
        cfg: &InstrumentConfig,
        k_values: &[i64],
        iters: u64,
    ) -> (Mem, Program) {
        let prog = instrument_for_proc(body, cfg, ProcId(0));
        let mut mem = Mem::default();
        for (i, &kv) in k_values.iter().enumerate() {
            mem.write(K, i as u64, Scalar::Int(kv));
        }
        for it in 0..iters {
            execute_iteration(&prog, it, 0, &mut mem).unwrap();
        }
        (mem, prog)
    }

    /// Reads the simulated shadow state into a host `LrpdShadow` for
    /// comparison with the reference implementation.
    fn extract_shadow(mem: &mut Mem, arr: ArrayId, len: u64) -> LrpdShadow {
        let ids = ShadowIds::new(arr, ProcId(0));
        let mut sh = LrpdShadow::new(len);
        // Rebuild by replaying the raw arrays through the public API is not
        // possible; instead compare observable predicates directly.
        // (Helper kept minimal: tests below assert on raw shadow cells.)
        let _ = (&mut sh, ids, mem);
        sh
    }

    #[test]
    fn instrumented_program_preserves_semantics() {
        let body = subscripted_body();
        let cfg = nonpriv_cfg();
        let (mut mem, _) = run_instrumented(&body, &cfg, &[0, 1, 2, 3], 4);
        // Each A[e] incremented once.
        for e in 0..4 {
            assert_eq!(mem.read(A, e), Scalar::Float(1.0), "A[{e}]");
        }
    }

    #[test]
    fn instrumented_marks_match_reference_lrpd() {
        // Non-parallel pattern: all iterations hit element 0.
        let body = subscripted_body();
        let cfg = nonpriv_cfg();
        let (mut mem, _) = run_instrumented(&body, &cfg, &[0, 0, 0], 3);

        // Reference marking for the same accesses.
        let mut reference = LrpdShadow::new(4);
        for it in 1..=3u64 {
            reference.mark_read(0, it);
            reference.mark_write(0, it);
        }

        let ids = ShadowIds::new(A, ProcId(0));
        for e in 0..4u64 {
            let w = mem.read(ids.w_last(), e).as_int() as u64;
            let rc = mem.read(ids.r_cur(), e).as_int() as u64;
            let rs = mem.read(ids.r_sticky(), e).as_int() != 0;
            let np = mem.read(ids.np(), e).as_int() != 0;
            assert_eq!(w != 0, reference.a_w(e), "A_w[{e}]");
            assert_eq!(rs || rc != 0, reference.a_r(e), "A_r[{e}]");
            assert_eq!(np, reference.a_np(e), "A_np[{e}]");
        }
        let atw = mem.read(ids.counters(), CNT_ATW).as_int() as u64;
        assert_eq!(atw, reference.atw());
        // The pattern is privatizable (write-covered reads? no: read happens
        // first) — reference says not privatizable; check full analysis.
        assert_eq!(
            reference.analyze(true),
            LrpdOutcome::NotParallel(crate::algorithm::NotParallelCause::NotPrivatizable)
        );
    }

    #[test]
    fn privatized_arrays_are_redirected() {
        let body = subscripted_body();
        let mut plan = TestPlan::new();
        plan.set(
            A,
            ProtocolKind::Priv {
                read_in: false,
                copy_out: false,
            },
        );
        let cfg = InstrumentConfig {
            plan,
            numbering: IterationNumbering::iteration_wise(),
            bitmap: false,
        };
        let (mut mem, prog) = run_instrumented(&body, &cfg, &[0, 0], 2);
        // The shared array was never touched; the private copy was.
        assert_eq!(mem.read(A, 0), Scalar::ZERO);
        let pc = sw_private_copy_id(A, ProcId(0));
        assert_eq!(mem.read(pc, 0), Scalar::Float(2.0));
        assert!(prog.writes_array(pc));
        assert!(!prog.writes_array(A));
    }

    #[test]
    fn untested_arrays_are_untouched_by_the_pass() {
        let mut b = ProgramBuilder::new();
        let v = b.load(K, Operand::Iter);
        b.store(K, Operand::Iter, Operand::Reg(v));
        let body = b.build().unwrap();
        let cfg = nonpriv_cfg(); // only A under test; K is plain
        let prog = instrument_for_proc(&body, &cfg, ProcId(0));
        // Only the stamp prologue is added.
        assert_eq!(prog.len(), body.len() + 1);
    }

    #[test]
    fn chunked_numbering_emits_two_instruction_prologue() {
        let body = subscripted_body();
        let mut cfg = nonpriv_cfg();
        cfg.numbering = IterationNumbering::chunked(4);
        let prog = instrument_for_proc(&body, &cfg, ProcId(0));
        let plain = instrument_for_proc(&body, &nonpriv_cfg(), ProcId(0));
        assert_eq!(prog.len(), plain.len() + 1);
    }

    #[test]
    fn chunked_stamps_merge_iterations() {
        // With chunk 8, writes to the same element from iterations 0..3
        // count as ONE superiteration write: atw stays 1.
        let body = subscripted_body();
        let mut cfg = nonpriv_cfg();
        cfg.numbering = IterationNumbering::chunked(8);
        let (mut mem, _) = run_instrumented(&body, &cfg, &[0, 0, 0, 0], 4);
        let ids = ShadowIds::new(A, ProcId(0));
        assert_eq!(mem.read(ids.counters(), CNT_ATW).as_int(), 1);
    }

    #[test]
    fn branch_targets_survive_instrumentation() {
        // if iter == 0 { A[0] = 1 } else { A[1] = 1 }; plus a read of K.
        let mut b = ProgramBuilder::new();
        let c = b.binop(BinOp::CmpEq, Operand::Iter, Operand::ImmI(0));
        let else_l = b.label();
        let end_l = b.label();
        b.bz(Operand::Reg(c), else_l);
        b.store(A, Operand::ImmI(0), Operand::ImmI(1));
        b.jmp(end_l);
        b.bind(else_l);
        b.store(A, Operand::ImmI(1), Operand::ImmI(1));
        b.bind(end_l);
        b.load(K, Operand::Iter);
        let body = b.build().unwrap();
        let cfg = nonpriv_cfg();
        let prog = instrument_for_proc(&body, &cfg, ProcId(0));
        let mut mem = Mem::default();
        execute_iteration(&prog, 0, 0, &mut mem).unwrap();
        execute_iteration(&prog, 1, 0, &mut mem).unwrap();
        assert_eq!(mem.read(A, 0), Scalar::Int(1));
        assert_eq!(mem.read(A, 1), Scalar::Int(1));
        // Each iteration stored exactly one element: atw == 2.
        let ids = ShadowIds::new(A, ProcId(0));
        assert_eq!(mem.read(ids.counters(), CNT_ATW).as_int(), 2);
        let _ = CNT_LEN;
    }

    #[test]
    fn extract_shadow_helper_compiles() {
        // Guard so the helper isn't flagged as dead code if unused later.
        let mut mem = Mem::default();
        let _ = extract_shadow(&mut mem, A, 1);
    }
}
