#![warn(missing_docs)]

//! # specrt-lrpd
//!
//! The software **LRPD test** (paper §2): the baseline the hardware scheme
//! is evaluated against.
//!
//! Four pieces:
//!
//! * [`algorithm`] — the pure LRPD algorithm (shadow arrays, marking,
//!   merging, analysis) as host Rust. Used as the semantic reference, by
//!   property tests, and by the machine layer to determine what the
//!   simulated software scheme must conclude.
//! * [`oracle`] — ground-truth cross-iteration dependence analysis over
//!   access traces, used to validate both the LRPD test and the hardware
//!   protocols (iteration-wise and processor-wise envelopes).
//! * [`instrument`] — a real IR-to-IR pass that inserts shadow-array marking
//!   code around every access to an array under test, mirroring what the
//!   Polaris compiler emits for the software scheme; privatized arrays are
//!   additionally redirected to per-processor private copies.
//! * [`phases`] — generators for the IR loop bodies of the software
//!   scheme's fixed phases (shadow zero-out, merge + analysis), so their
//!   cost is simulated rather than assumed.

pub mod algorithm;
pub mod instrument;
pub mod oracle;
pub mod phases;
pub mod shadow;

pub use algorithm::{LrpdOutcome, LrpdShadow, NotParallelCause};
pub use instrument::{instrument_for_proc, InstrumentConfig};
pub use oracle::{analyze_iteration_traces, OracleVerdict};
pub use shadow::{sw_private_copy_id, ShadowIds, ShadowKind};
