//! The pure LRPD test (paper §2.2.2), host-side reference implementation.
//!
//! The shadow state follows the efficient stamped representation the paper
//! describes ("each element of the shadow arrays holds the iteration number
//! where the read or write occurred"):
//!
//! * `w_last[e]` — last iteration that wrote `e` (`A_w` is `w_last != 0`);
//! * `r_cur[e]` / `r_sticky[e]` — a read that is (so far) not covered by a
//!   same-iteration write leaves a tentative stamp in `r_cur`; a covering
//!   write later in the same iteration clears it; a new uncovered read in a
//!   *different* iteration promotes the previous tentative stamp to the
//!   sticky bit (`A_r` is `r_sticky || r_cur != 0`);
//! * `np[e]` — sticky: some read was not *preceded* by a same-iteration
//!   write (`A_np`);
//! * `atw` — running sum over iterations of the number of distinct elements
//!   written in that iteration.
//!
//! Marking is per-processor (each processor owns a private shadow set);
//! [`LrpdShadow::merge`] implements the merging phase; [`analysis`] runs
//! steps (a)–(e).
//!
//! [`analysis`]: LrpdShadow::analyze

use std::fmt;

/// Why the LRPD test declared the loop not parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotParallelCause {
    /// Test (b): some element is written in one iteration and read
    /// (uncovered) in another — a flow or anti dependence.
    WriteReadOverlap,
    /// Test (d): some element is written and also read before being written
    /// in some iteration — not privatizable.
    NotPrivatizable,
}

impl fmt::Display for NotParallelCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotParallelCause::WriteReadOverlap => {
                write!(f, "marked write and read areas overlap (test b)")
            }
            NotParallelCause::NotPrivatizable => {
                write!(f, "array is written and not privatizable (test d)")
            }
        }
    }
}

/// Outcome of the analysis phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LrpdOutcome {
    /// The loop was a doall without privatizing the array (test (c)).
    DoallNoPriv,
    /// The loop was made a doall by privatizing the array (test (e)).
    DoallPrivatized,
    /// The loop, as executed, was not parallel.
    NotParallel(NotParallelCause),
}

impl LrpdOutcome {
    /// Whether the speculative parallel execution may be kept.
    pub fn passed(self) -> bool {
        !matches!(self, LrpdOutcome::NotParallel(_))
    }
}

/// Shadow state for one array (one processor's private copy, or the merged
/// global state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrpdShadow {
    w_last: Vec<u64>,
    r_cur: Vec<u64>,
    r_sticky: Vec<bool>,
    np: Vec<bool>,
    atw: u64,
}

impl LrpdShadow {
    /// Zeroed shadow state for an array of `len` elements.
    pub fn new(len: u64) -> Self {
        let n = len as usize;
        LrpdShadow {
            w_last: vec![0; n],
            r_cur: vec![0; n],
            r_sticky: vec![false; n],
            np: vec![false; n],
            atw: 0,
        }
    }

    /// Number of elements shadowed.
    pub fn len(&self) -> usize {
        self.w_last.len()
    }

    /// Whether the shadow covers no elements.
    pub fn is_empty(&self) -> bool {
        self.w_last.is_empty()
    }

    /// Marks a read of element `e` in iteration `iter` (1-based stamp).
    ///
    /// # Panics
    ///
    /// Panics if `iter` is 0 or `e` out of range.
    pub fn mark_read(&mut self, e: u64, iter: u64) {
        assert!(iter > 0, "iteration stamps are 1-based");
        let e = e as usize;
        if self.w_last[e] == iter {
            return; // covered by an earlier write in the same iteration
        }
        self.np[e] = true;
        if self.r_cur[e] != 0 && self.r_cur[e] != iter {
            // The previous tentative read was never covered.
            self.r_sticky[e] = true;
        }
        self.r_cur[e] = iter;
    }

    /// Marks a write of element `e` in iteration `iter` (1-based stamp).
    ///
    /// # Panics
    ///
    /// Panics if `iter` is 0 or `e` out of range.
    pub fn mark_write(&mut self, e: u64, iter: u64) {
        assert!(iter > 0, "iteration stamps are 1-based");
        let e = e as usize;
        if self.r_cur[e] == iter {
            // This write covers the read earlier in the same iteration.
            self.r_cur[e] = 0;
        }
        if self.w_last[e] != iter {
            self.w_last[e] = iter;
            self.atw += 1; // first write to e in this iteration
        }
    }

    /// `A_w[e]`: the element was written in some iteration.
    pub fn a_w(&self, e: u64) -> bool {
        self.w_last[e as usize] != 0
    }

    /// `A_r[e]`: the element was read and not written in some iteration.
    pub fn a_r(&self, e: u64) -> bool {
        self.r_sticky[e as usize] || self.r_cur[e as usize] != 0
    }

    /// `A_np[e]`: some read of the element was not preceded by a
    /// same-iteration write.
    pub fn a_np(&self, e: u64) -> bool {
        self.np[e as usize]
    }

    /// The `Atw` counter (total writes, counting once per (iteration,
    /// element) pair).
    pub fn atw(&self) -> u64 {
        self.atw
    }

    /// `Atm`: number of distinct elements written.
    pub fn atm(&self) -> u64 {
        self.w_last.iter().filter(|&&w| w != 0).count() as u64
    }

    /// The merging phase: folds another processor's private shadow into
    /// this one. Iterations are disjoint across processors, so per-iteration
    /// coverage never spans shadows; the merge is a plain lattice join.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn merge(&mut self, other: &LrpdShadow) {
        assert_eq!(self.len(), other.len(), "shadow length mismatch");
        for e in 0..self.w_last.len() {
            if other.w_last[e] != 0 {
                // Keep any nonzero stamp; the analysis only tests nonzero.
                self.w_last[e] = other.w_last[e];
            }
            // An uncovered tentative read from another processor can no
            // longer be covered (its iterations are finished): it is sticky.
            if other.r_sticky[e] || other.r_cur[e] != 0 {
                if self.r_cur[e] != 0 || self.r_sticky[e] {
                    self.r_sticky[e] = true;
                } else {
                    self.r_cur[e] = if other.r_cur[e] != 0 {
                        other.r_cur[e]
                    } else {
                        // Only the sticky bit: represent as sticky here too.
                        self.r_sticky[e] = true;
                        0
                    };
                }
                if other.r_sticky[e] {
                    self.r_sticky[e] = true;
                }
            }
            self.np[e] |= other.np[e];
        }
        self.atw += other.atw;
    }

    /// The analysis phase, steps (a)–(e) of §2.2.2. `privatized` selects
    /// whether the array was speculatively privatized (enabling tests (d)
    /// and (e) instead of failing at (c)).
    pub fn analyze(&self, privatized: bool) -> LrpdOutcome {
        // (b) any(A_w & A_r)
        for e in 0..self.len() as u64 {
            if self.a_w(e) && self.a_r(e) {
                return LrpdOutcome::NotParallel(NotParallelCause::WriteReadOverlap);
            }
        }
        // (c) Atw == Atm
        if self.atw() == self.atm() {
            return LrpdOutcome::DoallNoPriv;
        }
        if !privatized {
            // Without privatization there is no step (d)/(e) to fall back
            // on: multiple iterations wrote the same element.
            return LrpdOutcome::NotParallel(NotParallelCause::NotPrivatizable);
        }
        // (d) any(A_w & A_np)
        for e in 0..self.len() as u64 {
            if self.a_w(e) && self.a_np(e) {
                return LrpdOutcome::NotParallel(NotParallelCause::NotPrivatizable);
            }
        }
        // (e)
        LrpdOutcome::DoallPrivatized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_worked_example_fails() {
        // Paper Figure 2: do i=1,5 { z = A(K(i)); if B1(i) { A(L(i)) = z + C(i) } }
        // K = [1,2,3,4,1], L = [2,2,4,4,2], B1 = [1,0,1,0,1] (1-based).
        let k = [1u64, 2, 3, 4, 1];
        let l = [2u64, 2, 4, 4, 2];
        let b1 = [true, false, true, false, true];
        let mut sh = LrpdShadow::new(5); // elements 1..=4 used; index 0 spare
        for i in 0..5u64 {
            let iter = i + 1;
            sh.mark_read(k[i as usize], iter);
            if b1[i as usize] {
                sh.mark_write(l[i as usize], iter);
            }
        }
        // Shadow contents from the figure (elements 1..4):
        assert_eq!(
            (1..=4).map(|e| sh.a_w(e) as u8).collect::<Vec<_>>(),
            vec![0, 1, 0, 1],
            "A_w"
        );
        assert_eq!(
            (1..=4).map(|e| sh.a_r(e) as u8).collect::<Vec<_>>(),
            vec![1, 1, 1, 1],
            "A_r"
        );
        assert_eq!(
            (1..=4).map(|e| sh.a_np(e) as u8).collect::<Vec<_>>(),
            vec![1, 1, 1, 1],
            "A_np"
        );
        assert_eq!(sh.atw(), 3);
        assert_eq!(sh.atm(), 2);
        assert_eq!(
            sh.analyze(true),
            LrpdOutcome::NotParallel(NotParallelCause::WriteReadOverlap)
        );
    }

    #[test]
    fn disjoint_writes_pass_without_privatization() {
        let mut sh = LrpdShadow::new(8);
        for i in 0..8u64 {
            sh.mark_write(i, i + 1);
        }
        assert_eq!(sh.analyze(false), LrpdOutcome::DoallNoPriv);
        assert_eq!(sh.atw(), 8);
        assert_eq!(sh.atm(), 8);
    }

    #[test]
    fn read_only_loop_passes() {
        let mut sh = LrpdShadow::new(4);
        for iter in 1..=6u64 {
            sh.mark_read(iter % 4, iter);
        }
        assert_eq!(sh.analyze(false), LrpdOutcome::DoallNoPriv);
    }

    #[test]
    fn temp_workspace_passes_with_privatization_only() {
        // Every iteration writes then reads element 0 (a temporary).
        let mut sh = LrpdShadow::new(2);
        for iter in 1..=5u64 {
            sh.mark_write(0, iter);
            sh.mark_read(0, iter);
        }
        assert_eq!(
            sh.analyze(false),
            LrpdOutcome::NotParallel(NotParallelCause::NotPrivatizable)
        );
        assert_eq!(sh.analyze(true), LrpdOutcome::DoallPrivatized);
    }

    #[test]
    fn read_before_write_in_iteration_is_not_privatizable() {
        // Iterations read elem 0 first and then write it: flow across iters.
        let mut sh = LrpdShadow::new(1);
        for iter in 1..=3u64 {
            sh.mark_read(0, iter);
            sh.mark_write(0, iter);
        }
        // The covering write clears A_r, so test (b) passes...
        assert!(!sh.a_r(0));
        // ...but A_np stays set and test (d) fails.
        assert!(sh.a_np(0));
        assert_eq!(
            sh.analyze(true),
            LrpdOutcome::NotParallel(NotParallelCause::NotPrivatizable)
        );
    }

    #[test]
    fn flow_dependence_fails_test_b() {
        let mut sh = LrpdShadow::new(1);
        sh.mark_write(0, 1);
        sh.mark_read(0, 2);
        assert!(sh.a_w(0) && sh.a_r(0));
        assert_eq!(
            sh.analyze(true),
            LrpdOutcome::NotParallel(NotParallelCause::WriteReadOverlap)
        );
    }

    #[test]
    fn tentative_read_promoted_to_sticky_across_iterations() {
        let mut sh = LrpdShadow::new(1);
        sh.mark_read(0, 1); // tentative in iter 1, never covered
        sh.mark_read(0, 2); // promotes iter-1 read to sticky
        sh.mark_write(0, 2); // covers only the iter-2 read
        assert!(sh.a_r(0), "iter-1 uncovered read must survive");
    }

    #[test]
    fn covered_read_does_not_set_a_r() {
        let mut sh = LrpdShadow::new(1);
        sh.mark_read(0, 3);
        sh.mark_write(0, 3);
        assert!(!sh.a_r(0));
        sh.mark_read(0, 3); // read after write in same iteration: covered
        assert!(!sh.a_r(0));
    }

    #[test]
    fn atw_counts_once_per_iteration_element() {
        let mut sh = LrpdShadow::new(2);
        sh.mark_write(0, 1);
        sh.mark_write(0, 1); // same iteration: not recounted
        sh.mark_write(0, 2); // new iteration: counted
        sh.mark_write(1, 2);
        assert_eq!(sh.atw(), 3);
        assert_eq!(sh.atm(), 2);
    }

    #[test]
    fn merge_combines_processor_shadows() {
        // P0 runs iterations 1..=2 writing elem 0; P1 runs 3..=4 reading
        // elem 0 uncovered. Merged: A_w & A_r → fail (b).
        let mut p0 = LrpdShadow::new(2);
        p0.mark_write(0, 1);
        let mut p1 = LrpdShadow::new(2);
        p1.mark_read(0, 3);
        let mut global = LrpdShadow::new(2);
        global.merge(&p0);
        global.merge(&p1);
        assert!(global.a_w(0) && global.a_r(0));
        assert_eq!(
            global.analyze(true),
            LrpdOutcome::NotParallel(NotParallelCause::WriteReadOverlap)
        );
        assert_eq!(global.atw(), 1);
    }

    #[test]
    fn merge_accumulates_atw() {
        let mut p0 = LrpdShadow::new(4);
        p0.mark_write(0, 1);
        p0.mark_write(1, 2);
        let mut p1 = LrpdShadow::new(4);
        p1.mark_write(2, 3);
        let mut global = LrpdShadow::new(4);
        global.merge(&p0);
        global.merge(&p1);
        assert_eq!(global.atw(), 3);
        assert_eq!(global.atm(), 3);
        assert_eq!(global.analyze(false), LrpdOutcome::DoallNoPriv);
    }

    #[test]
    fn merge_preserves_sticky_reads() {
        let mut p0 = LrpdShadow::new(1);
        p0.mark_read(0, 1);
        let mut p1 = LrpdShadow::new(1);
        p1.mark_read(0, 5);
        let mut global = LrpdShadow::new(1);
        global.merge(&p0);
        global.merge(&p1);
        assert!(global.a_r(0));
        // Read-only overall: still a doall.
        assert_eq!(global.analyze(false), LrpdOutcome::DoallNoPriv);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_iteration_rejected() {
        LrpdShadow::new(1).mark_read(0, 0);
    }
}
