//! Ground-truth dependence analysis over access traces.
//!
//! Property tests drive the LRPD test and the hardware protocols with
//! random loops and compare their verdicts against this oracle, which
//! inspects the *actual* per-iteration access sequences:
//!
//! * [`OracleVerdict::DoallNoPriv`] — no element is accessed by two
//!   different iterations with at least one write: a doall as-is;
//! * [`OracleVerdict::DoallPriv`] — privatization suffices: every element is
//!   either never written or never read-first (all reads covered by earlier
//!   same-iteration writes);
//! * [`OracleVerdict::DoallPrivReadIn`] — the more aggressive §2.2.3
//!   condition: per element, every read-first iteration is ≤ every writing
//!   iteration (needs read-in/copy-out support);
//! * [`OracleVerdict::NotParallel`] — a genuine cross-iteration flow
//!   dependence remains.

use specrt_ir::AccessKind;

/// What parallelization the trace admits (strongest applicable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OracleVerdict {
    /// Parallel without privatization.
    DoallNoPriv,
    /// Parallel with basic privatization (no read-in needed).
    DoallPriv,
    /// Parallel with privatization plus read-in/copy-out.
    DoallPrivReadIn,
    /// Not parallel as executed.
    NotParallel,
}

impl OracleVerdict {
    /// Whether the basic (no read-in) privatization test should pass.
    pub fn priv_ok(self) -> bool {
        self <= OracleVerdict::DoallPriv
    }

    /// Whether the read-in-capable privatization test should pass.
    pub fn priv_read_in_ok(self) -> bool {
        self <= OracleVerdict::DoallPrivReadIn
    }
}

/// Analyzes per-iteration access traces for one array.
///
/// `iters[i]` is the ordered access sequence `(element, kind)` of iteration
/// `i` (0-based). Iterations are assumed to execute their own accesses in
/// the given order; the original (sequential) iteration order is the index
/// order.
pub fn analyze_iteration_traces(iters: &[Vec<(u64, AccessKind)>]) -> OracleVerdict {
    use std::collections::{HashMap, HashSet};

    // Per element: iterations that write; iterations that read-first;
    // iterations that read at all (uncovered by *earlier* write).
    let mut writers: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut read_firsts: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut touched_by: HashMap<u64, HashSet<u64>> = HashMap::new();
    let mut written: HashSet<u64> = HashSet::new();

    for (i, accesses) in iters.iter().enumerate() {
        let iter = i as u64;
        let mut wrote_this_iter: HashSet<u64> = HashSet::new();
        for &(e, kind) in accesses {
            touched_by.entry(e).or_default().insert(iter);
            match kind {
                AccessKind::Write => {
                    if wrote_this_iter.insert(e) {
                        writers.entry(e).or_default().push(iter);
                    }
                    written.insert(e);
                }
                AccessKind::Read => {
                    if !wrote_this_iter.contains(&e) {
                        let rf = read_firsts.entry(e).or_default();
                        if rf.last() != Some(&iter) {
                            rf.push(iter);
                        }
                    }
                }
            }
        }
    }

    // DoallNoPriv: no element accessed by >= 2 iterations with >= 1 write.
    let no_priv = touched_by
        .iter()
        .all(|(e, iters_touching)| iters_touching.len() <= 1 || !written.contains(e));
    if no_priv {
        return OracleVerdict::DoallNoPriv;
    }

    // DoallPriv: every element never written or never read-first.
    let basic_priv = touched_by
        .keys()
        .all(|e| !written.contains(e) || read_firsts.get(e).is_none_or(Vec::is_empty));
    if basic_priv {
        return OracleVerdict::DoallPriv;
    }

    // DoallPrivReadIn: per element, max(read-first) <= min(write).
    let read_in_priv = touched_by.keys().all(|e| {
        let max_rf = read_firsts.get(e).and_then(|v| v.iter().max().copied());
        let min_w = writers.get(e).and_then(|v| v.iter().min().copied());
        match (max_rf, min_w) {
            (Some(rf), Some(w)) => rf <= w,
            _ => true,
        }
    });
    if read_in_priv {
        return OracleVerdict::DoallPrivReadIn;
    }

    OracleVerdict::NotParallel
}

/// Processor-wise envelope check for the non-privatization hardware
/// protocol: given the iteration→processor assignment, the loop passes iff
/// every element is accessed by a single processor or is read-only.
pub fn nonpriv_envelope_holds(iters: &[Vec<(u64, AccessKind)>], assignment: &[u32]) -> bool {
    use std::collections::{HashMap, HashSet};
    assert_eq!(iters.len(), assignment.len(), "assignment length mismatch");
    let mut procs_touching: HashMap<u64, HashSet<u32>> = HashMap::new();
    let mut written: HashSet<u64> = HashSet::new();
    for (i, accesses) in iters.iter().enumerate() {
        for &(e, kind) in accesses {
            procs_touching.entry(e).or_default().insert(assignment[i]);
            if kind == AccessKind::Write {
                written.insert(e);
            }
        }
    }
    procs_touching
        .iter()
        .all(|(e, procs)| procs.len() <= 1 || !written.contains(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessKind::{Read, Write};

    #[test]
    fn disjoint_writes_are_doall() {
        let iters = vec![vec![(0, Write)], vec![(1, Write)], vec![(2, Write)]];
        assert_eq!(analyze_iteration_traces(&iters), OracleVerdict::DoallNoPriv);
    }

    #[test]
    fn read_only_sharing_is_doall() {
        let iters = vec![vec![(0, Read)], vec![(0, Read)], vec![(0, Read)]];
        assert_eq!(analyze_iteration_traces(&iters), OracleVerdict::DoallNoPriv);
    }

    #[test]
    fn temp_workspace_needs_privatization() {
        let iters = vec![vec![(0, Write), (0, Read)], vec![(0, Write), (0, Read)]];
        assert_eq!(analyze_iteration_traces(&iters), OracleVerdict::DoallPriv);
    }

    #[test]
    fn reads_then_writes_need_read_in() {
        // Figure 3 pattern: iterations 0-1 read, iterations 2-3 write.
        let iters = vec![
            vec![(0, Read)],
            vec![(0, Read)],
            vec![(0, Write)],
            vec![(0, Write), (0, Read)],
        ];
        assert_eq!(
            analyze_iteration_traces(&iters),
            OracleVerdict::DoallPrivReadIn
        );
    }

    #[test]
    fn flow_dependence_is_not_parallel() {
        let iters = vec![vec![(0, Write)], vec![(0, Read)]];
        assert_eq!(analyze_iteration_traces(&iters), OracleVerdict::NotParallel);
    }

    #[test]
    fn covered_read_after_write_is_not_read_first() {
        // Iteration 1 writes elem 0 then reads it: the read is covered, so
        // iteration 0's write only conflicts with iteration 1's *write*.
        let iters = vec![vec![(0, Write)], vec![(0, Write), (0, Read)]];
        assert_eq!(analyze_iteration_traces(&iters), OracleVerdict::DoallPriv);
    }

    #[test]
    fn verdict_ordering_and_predicates() {
        assert!(OracleVerdict::DoallNoPriv.priv_ok());
        assert!(OracleVerdict::DoallPriv.priv_ok());
        assert!(!OracleVerdict::DoallPrivReadIn.priv_ok());
        assert!(OracleVerdict::DoallPrivReadIn.priv_read_in_ok());
        assert!(!OracleVerdict::NotParallel.priv_read_in_ok());
    }

    #[test]
    fn envelope_depends_on_assignment() {
        // Iterations 0 and 1 both write element 0.
        let iters = vec![vec![(0, Write)], vec![(0, Write)]];
        // Same processor: envelope holds.
        assert!(nonpriv_envelope_holds(&iters, &[0, 0]));
        // Different processors: violated.
        assert!(!nonpriv_envelope_holds(&iters, &[0, 1]));
    }

    #[test]
    fn envelope_read_only_always_holds() {
        let iters = vec![vec![(5, Read)], vec![(5, Read)], vec![(5, Read)]];
        assert!(nonpriv_envelope_holds(&iters, &[0, 1, 2]));
    }

    #[test]
    fn empty_trace_is_doall() {
        let iters: Vec<Vec<(u64, AccessKind)>> = vec![vec![], vec![]];
        assert_eq!(analyze_iteration_traces(&iters), OracleVerdict::DoallNoPriv);
    }
}
