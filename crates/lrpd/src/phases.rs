//! IR generators for the software scheme's fixed phases.
//!
//! Besides the marking inserted into the loop body, the software LRPD
//! scheme executes (paper §6.3): "array backup, shadow array zero-out,
//! marking, merging-analysis, and data copy-out". The zero-out and the
//! fused merging-analysis are loops in their own right; generating them as
//! IR bodies lets the simulator charge their real instruction and memory
//! cost — including the property that merging-analysis work per processor
//! stays *constant* as processors are added (each processor scans its slice
//! of elements but must visit every processor's private shadow), which is
//! exactly the scalability drag §6.3 attributes to the software scheme.

use specrt_ir::{BinOp, Operand, Program, ProgramBuilder};
use specrt_mem::ProcId;

use crate::shadow::{ShadowIds, CNT_ATM, CNT_BAD_NP, CNT_BAD_WR};

/// Body of the shadow zero-out loop for one processor: iteration `e` clears
/// element `e` of the processor's four data shadows. The counters are
/// cleared by the first iteration.
pub fn zero_shadow_body(ids: &ShadowIds) -> Program {
    let mut b = ProgramBuilder::new();
    for arr in ids.data_shadows() {
        b.store(arr, Operand::Iter, Operand::ImmI(0));
    }
    // if iter == 0 { cnt[0..4] = 0 }
    let is_zero = b.binop(BinOp::CmpEq, Operand::Iter, Operand::ImmI(0));
    let skip = b.label();
    b.bz(Operand::Reg(is_zero), skip);
    for c in 0..4 {
        b.store(ids.counters(), Operand::ImmI(c), Operand::ImmI(0));
    }
    b.bind(skip);
    b.build().expect("zero-out body verifies")
}

/// Body of the fused merging + analysis loop: iteration `e` combines every
/// processor's private shadow entries for element `e` and folds the
/// per-element test conditions into the executing processor's counters:
///
/// * `cnt[ATM] += A_w[e]` — counts distinct written elements (test (c));
/// * `cnt[BAD_WR] |= A_w[e] & A_r[e]` — test (b);
/// * `cnt[BAD_NP] |= A_w[e] & A_np[e]` — test (d).
///
/// `all_procs` lists every processor's shadow bundle for the array;
/// `me` identifies whose counters accumulate the result. Elements are
/// partitioned across processors by the caller's scheduler.
pub fn merge_analysis_body(all_procs: &[ShadowIds], me: ProcId) -> Program {
    assert!(
        !all_procs.is_empty(),
        "need at least one processor's shadows"
    );
    let my = all_procs
        .iter()
        .find(|s| s.proc == me)
        .unwrap_or_else(|| panic!("{me} not among the shadow bundles"));
    let mut b = ProgramBuilder::new();
    let w_any = b.mov(Operand::ImmI(0));
    let r_any = b.mov(Operand::ImmI(0));
    let np_any = b.mov(Operand::ImmI(0));
    for ids in all_procs {
        let w = b.load(ids.w_last(), Operand::Iter);
        let wb = b.binop(BinOp::CmpNe, Operand::Reg(w), Operand::ImmI(0));
        b.binop_into(w_any, BinOp::Or, Operand::Reg(w_any), Operand::Reg(wb));
        let rc = b.load(ids.r_cur(), Operand::Iter);
        let rcb = b.binop(BinOp::CmpNe, Operand::Reg(rc), Operand::ImmI(0));
        b.binop_into(r_any, BinOp::Or, Operand::Reg(r_any), Operand::Reg(rcb));
        let rs = b.load(ids.r_sticky(), Operand::Iter);
        b.binop_into(r_any, BinOp::Or, Operand::Reg(r_any), Operand::Reg(rs));
        let np = b.load(ids.np(), Operand::Iter);
        b.binop_into(np_any, BinOp::Or, Operand::Reg(np_any), Operand::Reg(np));
    }
    let bad_wr = b.binop(BinOp::And, Operand::Reg(w_any), Operand::Reg(r_any));
    let bad_np = b.binop(BinOp::And, Operand::Reg(w_any), Operand::Reg(np_any));
    let cnt = my.counters();
    let acc = b.load(cnt, Operand::ImmI(CNT_ATM as i64));
    let acc2 = b.binop(BinOp::Add, Operand::Reg(acc), Operand::Reg(w_any));
    b.store(cnt, Operand::ImmI(CNT_ATM as i64), Operand::Reg(acc2));
    let f1 = b.load(cnt, Operand::ImmI(CNT_BAD_WR as i64));
    let f1b = b.binop(BinOp::Or, Operand::Reg(f1), Operand::Reg(bad_wr));
    b.store(cnt, Operand::ImmI(CNT_BAD_WR as i64), Operand::Reg(f1b));
    let f2 = b.load(cnt, Operand::ImmI(CNT_BAD_NP as i64));
    let f2b = b.binop(BinOp::Or, Operand::Reg(f2), Operand::Reg(bad_np));
    b.store(cnt, Operand::ImmI(CNT_BAD_NP as i64), Operand::Reg(f2b));
    b.build().expect("merge-analysis body verifies")
}

/// Bitmap variant of the zero-out: iteration `w` clears word `w` of the
/// three bitmap shadows (64 elements per store).
pub fn zero_shadow_body_bitmap(ids: &ShadowIds) -> Program {
    let mut b = ProgramBuilder::new();
    for arr in [ids.w_last(), ids.r_cur(), ids.np()] {
        b.store(arr, Operand::Iter, Operand::ImmI(0));
    }
    let is_zero = b.binop(BinOp::CmpEq, Operand::Iter, Operand::ImmI(0));
    let skip = b.label();
    b.bz(Operand::Reg(is_zero), skip);
    for c in 0..4 {
        b.store(ids.counters(), Operand::ImmI(c), Operand::ImmI(0));
    }
    b.bind(skip);
    b.build().expect("bitmap zero-out body verifies")
}

/// Bitmap variant of the fused merging + analysis: iteration `w` combines
/// word `w` (64 elements) of every processor's bitmaps:
///
/// * `conflict |= seen & aw_p` before `seen |= aw_p` — an element
///   written by two processors (replaces the `Atw == Atm` test (c));
/// * `cnt[ATM] |= conflict`, `cnt[BAD_WR] |= seen & or_r` (test (b)),
///   `cnt[BAD_NP] |= seen & or_np` (test (d)).
pub fn merge_analysis_body_bitmap(all_procs: &[ShadowIds], me: ProcId) -> Program {
    assert!(
        !all_procs.is_empty(),
        "need at least one processor's shadows"
    );
    let my = all_procs
        .iter()
        .find(|s| s.proc == me)
        .unwrap_or_else(|| panic!("{me} not among the shadow bundles"));
    let mut b = ProgramBuilder::new();
    let seen = b.mov(Operand::ImmI(0));
    let conflict = b.mov(Operand::ImmI(0));
    let or_r = b.mov(Operand::ImmI(0));
    let or_np = b.mov(Operand::ImmI(0));
    for ids in all_procs {
        let w = b.load(ids.w_last(), Operand::Iter);
        let ov = b.binop(BinOp::And, Operand::Reg(seen), Operand::Reg(w));
        b.binop_into(
            conflict,
            BinOp::Or,
            Operand::Reg(conflict),
            Operand::Reg(ov),
        );
        b.binop_into(seen, BinOp::Or, Operand::Reg(seen), Operand::Reg(w));
        let r = b.load(ids.r_cur(), Operand::Iter);
        b.binop_into(or_r, BinOp::Or, Operand::Reg(or_r), Operand::Reg(r));
        let np = b.load(ids.np(), Operand::Iter);
        b.binop_into(or_np, BinOp::Or, Operand::Reg(or_np), Operand::Reg(np));
    }
    let bad_wr = b.binop(BinOp::And, Operand::Reg(seen), Operand::Reg(or_r));
    let bad_np = b.binop(BinOp::And, Operand::Reg(seen), Operand::Reg(or_np));
    let cnt = my.counters();
    for (slot, val) in [
        (CNT_ATM, conflict),
        (CNT_BAD_WR, bad_wr),
        (CNT_BAD_NP, bad_np),
    ] {
        let acc = b.load(cnt, Operand::ImmI(slot as i64));
        let acc2 = b.binop(BinOp::Or, Operand::Reg(acc), Operand::Reg(val));
        b.store(cnt, Operand::ImmI(slot as i64), Operand::Reg(acc2));
    }
    b.build().expect("bitmap merge-analysis body verifies")
}

/// Body of the final reduction over the per-processor counters, run
/// serially on processor 0: iteration `p` fetches processor `p`'s four
/// counters (a remote line each) and folds them into the `global` flags
/// array: `global[0] += atw_p`, `global[1] (+= atm_p | |= conflict_p)`,
/// `global[2] |= bad_wr_p`, `global[3] |= bad_np_p`. `slot1_or` selects the
/// bitmap interpretation (conflict masks fold with OR) over the stamped one
/// (`Atm` counts fold with ADD).
pub fn reduction_body(
    all_procs: &[ShadowIds],
    global: specrt_ir::ArrayId,
    slot1_or: bool,
) -> Program {
    assert!(
        !all_procs.is_empty(),
        "need at least one processor's counters"
    );
    let mut b = ProgramBuilder::new();
    // Dispatch on the iteration number to the right counters array
    // (unrolled: one arm per processor).
    let mut arms = Vec::new();
    let end = b.label();
    for (i, ids) in all_procs.iter().enumerate() {
        let is_me = b.binop(BinOp::CmpEq, Operand::Iter, Operand::ImmI(i as i64));
        let lbl = b.label();
        b.bnz(Operand::Reg(is_me), lbl);
        arms.push((lbl, ids.counters()));
    }
    b.jmp(end);
    for (lbl, cnt) in arms {
        b.bind(lbl);
        for (slot, fold_or) in [(0i64, false), (1, slot1_or), (2, true), (3, true)] {
            let v = b.load(cnt, Operand::ImmI(slot));
            let g = b.load(global, Operand::ImmI(slot));
            let f = if fold_or {
                b.binop(BinOp::Or, Operand::Reg(g), Operand::Reg(v))
            } else {
                b.binop(BinOp::Add, Operand::Reg(g), Operand::Reg(v))
            };
            b.store(global, Operand::ImmI(slot), Operand::Reg(f));
        }
        b.jmp(end);
    }
    b.bind(end);
    b.build().expect("reduction body verifies")
}

/// Body of the backup loop for one array: iteration `e` copies `src[e]`
/// into `dst[e]`. Used for the pre-loop array backup and the post-failure
/// restore (with the roles swapped), and for copy-out.
pub fn copy_body(src: specrt_ir::ArrayId, dst: specrt_ir::ArrayId) -> Program {
    copy_body_region(src, dst, 0)
}

/// [`copy_body`] over the region starting at `offset`: iteration `e`
/// copies `src[offset+e]` into `dst[offset+e]` (used when the compiler
/// identified a smaller modified region to back up).
pub fn copy_body_region(src: specrt_ir::ArrayId, dst: specrt_ir::ArrayId, offset: u64) -> Program {
    let mut b = ProgramBuilder::new();
    if offset == 0 {
        let v = b.load(src, Operand::Iter);
        b.store(dst, Operand::Iter, Operand::Reg(v));
    } else {
        let idx = b.binop(BinOp::Add, Operand::Iter, Operand::ImmI(offset as i64));
        let v = b.load(src, Operand::Reg(idx));
        b.store(dst, Operand::Reg(idx), Operand::Reg(v));
    }
    b.build().expect("copy body verifies")
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_ir::{execute_iteration, ArrayId, MemOracle, Scalar};

    #[derive(Default)]
    struct Mem(std::collections::HashMap<(ArrayId, u64), Scalar>);

    impl MemOracle for Mem {
        fn read(&mut self, arr: ArrayId, idx: u64) -> Scalar {
            self.0.get(&(arr, idx)).copied().unwrap_or(Scalar::ZERO)
        }
        fn write(&mut self, arr: ArrayId, idx: u64, value: Scalar) {
            self.0.insert((arr, idx), value);
        }
    }

    #[test]
    fn zero_body_clears_shadows_and_counters() {
        let ids = ShadowIds::new(ArrayId(0), ProcId(0));
        let mut mem = Mem::default();
        mem.write(ids.w_last(), 1, Scalar::Int(7));
        mem.write(ids.counters(), 0, Scalar::Int(9));
        let body = zero_shadow_body(&ids);
        for e in 0..4 {
            execute_iteration(&body, e, 0, &mut mem).unwrap();
        }
        assert_eq!(mem.read(ids.w_last(), 1), Scalar::Int(0));
        assert_eq!(mem.read(ids.counters(), 0), Scalar::Int(0));
    }

    #[test]
    fn merge_analysis_detects_cross_processor_conflict() {
        let a = ArrayId(0);
        let shadows: Vec<ShadowIds> = (0..2).map(|p| ShadowIds::new(a, ProcId(p))).collect();
        let mut mem = Mem::default();
        // P0 wrote element 3 (stamp 1); P1 read it uncovered (stamp 5).
        mem.write(shadows[0].w_last(), 3, Scalar::Int(1));
        mem.write(shadows[1].r_cur(), 3, Scalar::Int(5));
        mem.write(shadows[1].np(), 3, Scalar::Int(1));
        let body = merge_analysis_body(&shadows, ProcId(0));
        for e in 0..8 {
            execute_iteration(&body, e, 0, &mut mem).unwrap();
        }
        let cnt = shadows[0].counters();
        assert_eq!(mem.read(cnt, CNT_ATM), Scalar::Int(1));
        assert_eq!(mem.read(cnt, CNT_BAD_WR), Scalar::Int(1));
        assert_eq!(mem.read(cnt, CNT_BAD_NP), Scalar::Int(1));
    }

    #[test]
    fn merge_analysis_clean_when_disjoint() {
        let a = ArrayId(0);
        let shadows: Vec<ShadowIds> = (0..2).map(|p| ShadowIds::new(a, ProcId(p))).collect();
        let mut mem = Mem::default();
        mem.write(shadows[0].w_last(), 0, Scalar::Int(1));
        mem.write(shadows[1].w_last(), 1, Scalar::Int(2));
        let body = merge_analysis_body(&shadows, ProcId(1));
        for e in 0..4 {
            execute_iteration(&body, e, 1, &mut mem).unwrap();
        }
        let cnt = shadows[1].counters();
        assert_eq!(mem.read(cnt, CNT_ATM), Scalar::Int(2));
        assert_eq!(mem.read(cnt, CNT_BAD_WR), Scalar::Int(0));
        assert_eq!(mem.read(cnt, CNT_BAD_NP), Scalar::Int(0));
    }

    #[test]
    fn merge_analysis_work_grows_with_processors() {
        let a = ArrayId(0);
        let sh4: Vec<ShadowIds> = (0..4).map(|p| ShadowIds::new(a, ProcId(p))).collect();
        let sh8: Vec<ShadowIds> = (0..8).map(|p| ShadowIds::new(a, ProcId(p))).collect();
        let b4 = merge_analysis_body(&sh4, ProcId(0));
        let b8 = merge_analysis_body(&sh8, ProcId(0));
        assert!(b8.len() > b4.len(), "per-element work must grow with P");
    }

    #[test]
    fn reduction_body_folds_counters() {
        let shadows: Vec<ShadowIds> = (0..3)
            .map(|p| ShadowIds::new(ArrayId(0), ProcId(p)))
            .collect();
        let global = ArrayId(9);
        let mut mem = Mem::default();
        for (p, ids) in shadows.iter().enumerate() {
            mem.write(ids.counters(), 0, Scalar::Int(p as i64 + 1)); // atw
            mem.write(ids.counters(), 1, Scalar::Int(1)); // atm
            mem.write(ids.counters(), 2, Scalar::Int((p == 1) as i64)); // bad_wr
        }
        let body = reduction_body(&shadows, global, false);
        for p in 0..3 {
            execute_iteration(&body, p, 0, &mut mem).unwrap();
        }
        assert_eq!(mem.read(global, 0), Scalar::Int(6)); // 1+2+3
        assert_eq!(mem.read(global, 1), Scalar::Int(3));
        assert_eq!(mem.read(global, 2), Scalar::Int(1));
        assert_eq!(mem.read(global, 3), Scalar::Int(0));
    }

    #[test]
    fn copy_body_copies() {
        let src = ArrayId(0);
        let dst = ArrayId(1);
        let mut mem = Mem::default();
        for e in 0..4 {
            mem.write(src, e, Scalar::Float(e as f64));
        }
        let body = copy_body(src, dst);
        for e in 0..4 {
            execute_iteration(&body, e, 0, &mut mem).unwrap();
        }
        assert_eq!(mem.read(dst, 3), Scalar::Float(3.0));
    }

    #[test]
    #[should_panic(expected = "not among the shadow bundles")]
    fn merge_analysis_requires_own_shadows() {
        let shadows = vec![ShadowIds::new(ArrayId(0), ProcId(0))];
        merge_analysis_body(&shadows, ProcId(5));
    }
}
