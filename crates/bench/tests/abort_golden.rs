//! Golden JSONL traces of one minimized abort per protocol.
//!
//! Two fixtures, both shrunk to a handful of accesses by the conformance
//! harness's shrinker and pinned here as observable surfaces:
//!
//! * **non-privatization, Fig. 7-f**: a `First_update` sent from a remote
//!   reader races with a local write that reaches the home directory first
//!   (`dir.NoShr` already set when the update lands) — the directory
//!   resolves the race by FAILing the speculation;
//! * **privatization, Fig. 8-e**: an earlier iteration's first-write stamps
//!   `MinW`, then a later iteration read-firsts the same element
//!   (`MaxR1st > MinW` would be required) — a flow dependence, FAIL.
//!
//! Like `trace_golden.rs`, timestamps and event order are fully
//! deterministic; regenerate deliberately with
//! `REGEN_GOLDEN=1 cargo test -p specrt-bench --test abort_golden`.

use specrt_engine::Cycles;
use specrt_ir::ArrayId;
use specrt_mem::{ElemSize, PlacementPolicy, ProcId};
use specrt_proto::{MemSystem, MemSystemConfig};
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};
use specrt_trace::export::jsonl;

const A: ArrayId = ArrayId(0);
const P0: ProcId = ProcId(0);
const P1: ProcId = ProcId(1);

fn system(protocol: ProtocolKind) -> MemSystem {
    let mut ms = MemSystem::new(MemSystemConfig {
        procs: 2,
        ..MemSystemConfig::default()
    });
    ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
    let mut plan = TestPlan::new();
    plan.set(A, protocol);
    ms.configure_loop(plan, IterationNumbering::iteration_wise());
    ms.enable_event_trace(256);
    ms
}

/// The Fig. 7-f race, minimized: cpu1 (remote to the home of line 0) reads
/// element 0 (miss: the directory learns `First` synchronously), then reads
/// element 1 — a *hit* whose tag still says `First = NONE`, so a
/// `First_update` starts its slow trip home. Before it lands, cpu0 (local
/// to the home) writes element 1: the write request wins the race at the
/// directory and sets `NoShr`. The late update then arrives at a
/// write-marked element — algorithm (f) FAILs the speculation.
fn nonpriv_first_update_race() -> Vec<specrt_trace::TraceEvent> {
    let mut ms = system(ProtocolKind::NonPriv);
    let mut now = Cycles(0);
    let out = ms.read(P1, A, 0, now);
    now = out.complete_at + Cycles(1);
    let out = ms.read(P1, A, 1, now);
    now = out.complete_at + Cycles(1);
    ms.write(P0, A, 1, now);
    ms.drain_all_messages();
    ms.take_event_trace()
}

/// The Fig. 8-e flow dependence, minimized: iteration 1 (cpu0) first-writes
/// element 3 (`MinW = 1`), then iteration 3 (cpu1) read-firsts it — a later
/// iteration consuming an earlier iteration's value. The shared directory's
/// read-first test (`iter > MinW`) FAILs the speculation.
fn priv_read_first_after_write() -> Vec<specrt_trace::TraceEvent> {
    let mut ms = system(ProtocolKind::Priv {
        read_in: true,
        copy_out: true,
    });
    let mut now = Cycles(0);
    ms.begin_iteration(P0, 0);
    let out = ms.write(P0, A, 3, now);
    now = out.complete_at + Cycles(40);
    ms.begin_iteration(P1, 2);
    ms.read(P1, A, 3, now);
    ms.drain_all_messages();
    ms.take_event_trace()
}

fn first_abort_reason(events: &[specrt_trace::TraceEvent]) -> Option<String> {
    events.iter().find_map(|e| match e {
        specrt_trace::TraceEvent::Abort { reason, .. } => Some(reason.clone()),
        _ => None,
    })
}

fn check_golden(name: &str, got: &str) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests");
    let path = format!("{dir}/{name}.jsonl");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(&path, format!("{got}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect("golden file exists");
    assert_eq!(
        got,
        golden.trim_end(),
        "{name}: JSONL abort trace diverged from the golden file; if the \
         timing or schema change is intentional, regenerate with \
         REGEN_GOLDEN=1 cargo test -p specrt-bench --test abort_golden"
    );
}

#[test]
fn nonpriv_fig7f_abort_matches_golden() {
    let events = nonpriv_first_update_race();
    let reason = first_abort_reason(&events).expect("the update race must abort");
    assert!(
        reason.contains("Fig. 7-f"),
        "expected the Fig. 7-f First_update race, got: {reason}"
    );
    check_golden("abort_golden_nonpriv", &jsonl(&events));
}

#[test]
fn priv_fig8e_abort_matches_golden() {
    let events = priv_read_first_after_write();
    let reason = first_abort_reason(&events).expect("the flow dependence must abort");
    assert!(
        reason.contains("Fig. 8-e"),
        "expected the Fig. 8-e read-first-after-write failure, got: {reason}"
    );
    check_golden("abort_golden_priv", &jsonl(&events));
}
