//! Golden test: the JSONL export of a tiny deterministic protocol replay.
//!
//! The scenario is the paper's Figure 2 loop on two processors (the same
//! replay as `examples/protocol_trace.rs`, shortened): every latency in
//! the model is deterministic, so the emitted event stream — timestamps,
//! hit levels, race cases, the FAIL — is bit-stable. If this test breaks,
//! either the protocol timing or the trace schema changed; both are
//! observable surfaces that downstream tooling (Perfetto imports, log
//! scrapers) depends on, so the change must be deliberate.

use specrt_engine::Cycles;
use specrt_ir::ArrayId;
use specrt_mem::{ElemSize, PlacementPolicy, ProcId};
use specrt_proto::{MemSystem, MemSystemConfig};
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};
use specrt_trace::export::jsonl;

const A: ArrayId = ArrayId(0);

/// Replays the first four iterations of Figure 2 (K = [1,2,3,4],
/// L = [2,2,4,4], B1 = [T,F,T,F]) with iterations 1..=3 on cpu0 and 4 on
/// cpu1; iteration 4 reads element 4, which iteration 3 wrote — a true
/// cross-processor flow dependence the protocol must FAIL on.
fn replay() -> Vec<specrt_trace::TraceEvent> {
    let mut ms = MemSystem::new(MemSystemConfig {
        procs: 2,
        ..MemSystemConfig::default()
    });
    ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
    let mut plan = TestPlan::new();
    plan.set(A, ProtocolKind::NonPriv);
    ms.configure_loop(plan, IterationNumbering::iteration_wise());
    ms.enable_event_trace(256);

    let k = [1u64, 2, 3, 4];
    let l = [2u64, 2, 4, 4];
    let b1 = [true, false, true, false];
    let mut now = Cycles(0);
    for i in 0..4 {
        let proc = ProcId(if i < 3 { 0 } else { 1 });
        let out = ms.read(proc, A, k[i], now);
        now = out.complete_at + Cycles(40);
        if b1[i] {
            let out = ms.write(proc, A, l[i], now);
            now = out.complete_at + Cycles(40);
        }
        if ms.failure().is_some() {
            break;
        }
    }
    ms.drain_all_messages();
    ms.take_event_trace()
}

#[test]
fn figure2_replay_matches_golden_jsonl() {
    let got = jsonl(&replay());
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/trace_golden.jsonl");
        std::fs::write(path, format!("{got}\n")).expect("write golden");
        return;
    }
    let golden = include_str!("trace_golden.jsonl").trim_end();
    assert_eq!(
        got, golden,
        "JSONL trace of the Figure 2 replay diverged from the golden file; \
         if the timing or schema change is intentional, regenerate with \
         REGEN_GOLDEN=1 cargo test -p specrt-bench figure2_replay"
    );
}

#[test]
fn figure2_replay_fails_with_forensic_context() {
    let events = replay();
    let aborts: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            specrt_trace::TraceEvent::Abort {
                proc, arr, reason, ..
            } => Some((proc, arr, reason)),
            _ => None,
        })
        .collect();
    assert_eq!(aborts.len(), 1, "Figure 2's loop is not parallel");
    let (proc, arr, reason) = &aborts[0];
    assert_eq!(**arr, Some(A.0), "abort names the array under test");
    assert!(proc.is_some(), "abort names the failing processor");
    assert!(reason.contains("[Fig."), "reason cites the paper figure");
}
