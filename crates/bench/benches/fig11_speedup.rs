//! Figure 11: speedups of Ideal/SW/HW over Serial, one bench per workload
//! scenario. The bench numbers measure host simulation cost; the simulated
//! speedups are printed once at startup.

use specrt_bench::harness::bench_default;
use specrt_core::experiments::run_workload;
use specrt_machine::{run_scenario, Scenario};
use specrt_workloads::{all_workloads, Scale};

fn main() {
    // Print the figure once, at smoke scale, for quick inspection.
    for w in all_workloads(Scale::Smoke) {
        let r = run_workload(&w, w.procs);
        println!(
            "fig11[{}@{}p]: Ideal {:.2}x  SW {:.2}x  HW {:.2}x",
            w.name,
            w.procs,
            r.speedup(&r.ideal),
            r.speedup(&r.sw),
            r.speedup(&r.hw)
        );
    }
    for w in all_workloads(Scale::Smoke) {
        let spec = w.invocations[0].clone();
        let procs = w.procs;
        bench_default(&format!("fig11/{}_hw", w.name), || {
            run_scenario(&spec, Scenario::Hw, procs)
        });
        bench_default(&format!("fig11/{}_sw", w.name), || {
            run_scenario(&spec, Scenario::Sw(w.sw_variant), procs)
        });
    }
}
