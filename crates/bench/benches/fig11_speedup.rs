//! Figure 11: speedups of Ideal/SW/HW over Serial, one bench per workload
//! scenario. The criterion numbers measure host simulation cost; the
//! simulated speedups are printed once at startup.

use criterion::{criterion_group, criterion_main, Criterion};
use specrt_core::experiments::run_workload;
use specrt_machine::{run_scenario, Scenario};
use specrt_workloads::{all_workloads, Scale};

fn bench(c: &mut Criterion) {
    // Print the figure once, at smoke scale, for quick inspection.
    for w in all_workloads(Scale::Smoke) {
        let r = run_workload(&w, w.procs);
        println!(
            "fig11[{}@{}p]: Ideal {:.2}x  SW {:.2}x  HW {:.2}x",
            w.name,
            w.procs,
            r.speedup(&r.ideal),
            r.speedup(&r.sw),
            r.speedup(&r.hw)
        );
    }
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for w in all_workloads(Scale::Smoke) {
        let spec = w.invocations[0].clone();
        let procs = w.procs;
        g.bench_function(format!("{}_hw", w.name), |b| {
            b.iter(|| run_scenario(&spec, Scenario::Hw, procs))
        });
        g.bench_function(format!("{}_sw", w.name), |b| {
            b.iter(|| run_scenario(&spec, Scenario::Sw(w.sw_variant), procs))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
