//! Closed-loop load driver for the simulation service: concurrent
//! clients drive a [`ServeCore`] in-process with a duplicate-heavy
//! request mix, measuring request throughput **cold** (empty cache,
//! every distinct request simulates) versus **warm** (every request a
//! cache hit). Exports `BENCH_serve.json` — CI uploads it and asserts
//! the cache contract here directly:
//!
//! * every warm response is **byte-identical** to its cold counterpart
//!   (the payload is a pure function of the canonical key);
//! * warm throughput is at least [`WARM_FLOOR`]× cold throughput on this
//!   mix (a cache hit must never pay for a Machine).

use std::sync::Arc;
use std::time::Instant;

use specrt_check::Json;
use specrt_serve::{Outcome, ServeConfig, ServeCore};

/// Concurrent closed-loop clients.
const CLIENTS: usize = 4;
/// Warm passes over the distinct set per client (the duplicate-heavy
/// mix: every request after the cold pass is a repeat).
const WARM_PASSES: usize = 8;
/// Minimum warm/cold throughput ratio.
const WARM_FLOOR: f64 = 5.0;

fn requests() -> Vec<String> {
    let mut reqs: Vec<String> = (0..20u64)
        .map(|i| {
            format!(
                "{{\"op\":\"case\",\"seed\":{},\"protocol\":\"{}\",\"lane\":\"batch\"}}",
                100 + i,
                ["hw-nonpriv", "hw-priv", "sw-lrpd", "ideal"][(i % 4) as usize]
            )
        })
        .collect();
    for inv in 0..3 {
        reqs.push(format!(
            "{{\"op\":\"workload\",\"name\":\"ocean\",\"invocation\":{inv},\"lane\":\"batch\"}}"
        ));
    }
    reqs.push(
        "{\"op\":\"workload\",\"name\":\"track\",\"failure\":true,\"lane\":\"batch\"}".to_string(),
    );
    reqs
}

fn resolve(core: &Arc<ServeCore>, line: &str) -> String {
    match core.handle_line(line) {
        Outcome::Ready(p) => p,
        Outcome::Pending(rx) => rx.recv().expect("job answers"),
        Outcome::Shutdown(p) => p,
    }
}

/// Each client owns a slice of the request list (closed loop: next
/// request only after the previous response). Returns responses indexed
/// like `reqs`.
fn drive_pass(core: &Arc<ServeCore>, reqs: &[String], passes: usize) -> (Vec<String>, f64) {
    let started = Instant::now();
    let responses = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let core = Arc::clone(core);
                s.spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..passes {
                        for (i, req) in reqs.iter().enumerate() {
                            if i % CLIENTS == c {
                                got.push((i, resolve(&core, req)));
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<(usize, String)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        all
    });
    let secs = started.elapsed().as_secs_f64();
    // One pass's worth of responses, first answer per request index.
    let mut first = vec![String::new(); reqs.len()];
    for (i, r) in &responses {
        if first[*i].is_empty() {
            first[*i] = r.clone();
        }
    }
    (first, secs)
}

fn counter(core: &Arc<ServeCore>, name: &str) -> u64 {
    Json::parse(&core.metrics_snapshot_json())
        .expect("snapshot parses")
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn main() {
    let reqs = requests();
    let core = ServeCore::new(ServeConfig {
        workers: specrt_par::default_jobs(),
        queue_depth: 256,
        cache_capacity: 1024,
    });

    let (cold_responses, cold_s) = drive_pass(&core, &reqs, 1);
    let cold_n = reqs.len();
    let cold_rate = cold_n as f64 / cold_s;
    assert_eq!(
        counter(&core, "serve.completed"),
        cold_n as u64,
        "cold pass must simulate every distinct request exactly once"
    );

    let (warm_responses, warm_s) = drive_pass(&core, &reqs, WARM_PASSES);
    let warm_n = reqs.len() * WARM_PASSES;
    let warm_rate = warm_n as f64 / warm_s;

    assert_eq!(
        cold_responses, warm_responses,
        "warm responses must be byte-identical to cold ones"
    );
    assert_eq!(
        counter(&core, "serve.completed"),
        cold_n as u64,
        "warm requests must never touch a Machine"
    );
    assert_eq!(counter(&core, "serve.cache_hits"), warm_n as u64);

    let speedup = warm_rate / cold_rate;
    let p50 = counter(&core, "serve.latency_us.p50");
    let p99 = counter(&core, "serve.latency_us.p99");
    println!(
        "serve load: {cold_rate:.1} req/s cold ({cold_n} distinct), \
         {warm_rate:.0} req/s warm ({warm_n} duplicates), {speedup:.1}x, \
         latency p50 {p50} us / p99 {p99} us"
    );
    assert!(
        speedup >= WARM_FLOOR,
        "warm throughput is only {speedup:.2}x cold (floor {WARM_FLOOR}x) — \
         cache hits are paying for simulation"
    );

    let json = format!(
        "{{\n  \"bench\": \"serve/load\",\n  \
         \"clients\": {CLIENTS},\n  \
         \"distinct_requests\": {cold_n},\n  \
         \"warm_requests\": {warm_n},\n  \
         \"cold_requests_per_sec\": {cold_rate:.1},\n  \
         \"warm_requests_per_sec\": {warm_rate:.1},\n  \
         \"warm_over_cold\": {speedup:.3},\n  \
         \"latency_us_p50\": {p50},\n  \
         \"latency_us_p99\": {p99},\n  \
         \"cache_hits\": {}\n}}\n",
        counter(&core, "serve.cache_hits")
    );
    let path = format!("{}/BENCH_serve.json", env!("CARGO_MANIFEST_DIR"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
