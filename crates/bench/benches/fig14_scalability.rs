//! Figure 14: scalability of SW and HW at 8 vs 16 processors.

use criterion::{criterion_group, criterion_main, Criterion};
use specrt_core::experiments::run_workload;
use specrt_machine::{run_scenario, Scenario};
use specrt_workloads::{all_workloads, Scale};

fn bench(c: &mut Criterion) {
    for w in all_workloads(Scale::Smoke) {
        if w.name == "ocean" {
            continue;
        }
        for procs in [8u32, 16] {
            let r = run_workload(&w, procs);
            println!(
                "fig14[{}@{}p]: Ideal {:.2}x  SW {:.2}x  HW {:.2}x",
                w.name,
                procs,
                r.speedup(&r.ideal),
                r.speedup(&r.sw),
                r.speedup(&r.hw)
            );
        }
    }
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    for w in all_workloads(Scale::Smoke) {
        if w.name != "p3m" {
            continue;
        }
        let spec = w.invocations[0].clone();
        for procs in [8u32, 16] {
            g.bench_function(format!("p3m_hw_{procs}p"), |b| {
                b.iter(|| run_scenario(&spec, Scenario::Hw, procs))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
