//! Figure 14: scalability of SW and HW at 8 vs 16 processors.

use specrt_bench::harness::bench_default;
use specrt_core::experiments::run_workload;
use specrt_machine::{run_scenario, Scenario};
use specrt_workloads::{all_workloads, Scale};

fn main() {
    for w in all_workloads(Scale::Smoke) {
        if w.name == "ocean" {
            continue;
        }
        for procs in [8u32, 16] {
            let r = run_workload(&w, procs);
            println!(
                "fig14[{}@{}p]: Ideal {:.2}x  SW {:.2}x  HW {:.2}x",
                w.name,
                procs,
                r.speedup(&r.ideal),
                r.speedup(&r.sw),
                r.speedup(&r.hw)
            );
        }
    }
    for w in all_workloads(Scale::Smoke) {
        if w.name != "p3m" {
            continue;
        }
        let spec = w.invocations[0].clone();
        for procs in [8u32, 16] {
            bench_default(&format!("fig14/p3m_hw_{procs}p"), || {
                run_scenario(&spec, Scenario::Hw, procs)
            });
        }
    }
}
