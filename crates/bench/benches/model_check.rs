//! Throughput of the bounded model checker: states explored per second,
//! dedup hit rate and the scope covered, per protocol variant, exported as
//! `BENCH_model.json` so CI can track the perf trajectory of the explorer
//! alongside the fuzzer's.
//!
//! The scope here (1 line × 3 elems × 3 procs, 4 accesses per script) is a
//! deliberate middle ground: large enough that exploration dominates setup
//! and every race case (a)–(h) is crossed, small enough that the bench
//! finishes in seconds on one core — the full 2×3×4 acceptance scope is a
//! multi-minute CLI run, not a benchmark. As everywhere else in the
//! checker, the report must be byte-identical at any worker count; the
//! bench asserts that on the way.

use specrt_check::{run_model, ModelConfig};
use specrt_spec::{SpecScope, SpecVariant};

const SCOPE: SpecScope = SpecScope {
    lines: 1,
    elems: 3,
    procs: 3,
};
const MAX_OPS: usize = 4;

fn main() {
    let jobs = specrt_par::default_jobs();
    let mut rows = Vec::new();
    let mut total_states = 0u64;
    let mut total_s = 0.0f64;
    for variant in SpecVariant::ALL {
        let cfg = ModelConfig {
            variant,
            scope: SCOPE,
            max_ops: MAX_OPS,
            jobs,
        };
        // Warm-up pass so allocator and page-fault noise don't bias the
        // first variant, and the determinism cross-check in one go.
        let warm = run_model(&ModelConfig { jobs: 1, ..cfg });
        let start = std::time::Instant::now();
        let report = run_model(&cfg);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            warm.render(),
            report.render(),
            "model report must not depend on the worker count"
        );
        assert!(report.ok(), "clean protocol must pass: {}", report.render());
        assert!(report.coverage.complete(), "bench scope must cover (a)-(h)");
        let rate = report.states as f64 / secs;
        println!(
            "model {}: {} scripts, {} states in {secs:.2}s ({rate:.0} states/s), \
             dedup {:.1}%",
            variant.name(),
            report.scripts,
            report.states,
            report.dedup_rate() * 100.0
        );
        rows.push(format!(
            "    \"{}\": {{\n      \
             \"scripts\": {},\n      \
             \"states\": {},\n      \
             \"states_per_sec\": {rate:.0},\n      \
             \"dedup_rate\": {:.3}\n    }}",
            variant.name(),
            report.scripts,
            report.states,
            report.dedup_rate()
        ));
        total_states += report.states;
        total_s += secs;
    }
    let json = format!(
        "{{\n  \"bench\": \"check/model\",\n  \
         \"scope\": \"{}x{}x{}\",\n  \
         \"max_ops\": {MAX_OPS},\n  \
         \"jobs\": {jobs},\n  \
         \"total_states_per_sec\": {:.0},\n  \
         \"variants\": {{\n{}\n  }}\n}}\n",
        SCOPE.lines,
        SCOPE.elems,
        SCOPE.procs,
        total_states as f64 / total_s,
        rows.join(",\n")
    );
    let path = format!("{}/BENCH_model.json", env!("CARGO_MANIFEST_DIR"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "model throughput: {:.0} states/s overall (BENCH_model.json)",
            total_states as f64 / total_s
        ),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
