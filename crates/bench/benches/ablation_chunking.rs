//! §4.1 ablation: superiteration chunking on the privatization protocol.

use specrt_bench::harness::bench_default;
use specrt_core::experiments::{ablation_chunking, ablation_track_block};
use specrt_machine::{run_scenario, Scenario, ScheduleKind};
use specrt_spec::IterationNumbering;
use specrt_workloads::Scale;

fn main() {
    for r in ablation_chunking(Scale::Smoke) {
        println!(
            "chunking[chunk={}]: {} cycles, {} read-first signals, {} stamp bits",
            r.chunk, r.hw_cycles, r.read_first_signals, r.stamp_bits
        );
    }
    for r in ablation_track_block(Scale::Smoke) {
        println!(
            "track-block[block={}]: passed={} {} cycles",
            r.block, r.passed, r.hw_cycles
        );
    }
    for chunk in [1u64, 16, 64] {
        let mut spec = specrt_workloads::p3m::instance(200, false);
        if chunk > 1 {
            spec.numbering = IterationNumbering::chunked(chunk);
            spec.schedule = ScheduleKind::BlockCyclic { block: chunk };
        }
        bench_default(&format!("ablation/p3m_chunk{chunk}"), || {
            run_scenario(&spec, Scenario::Hw, 16)
        });
    }
}
