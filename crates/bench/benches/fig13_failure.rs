//! Figure 13: cost of a failed speculation (forced-failure instances).

use specrt_bench::harness::bench_default;
use specrt_machine::{run_scenario, Scenario, SwVariant};
use specrt_workloads::{all_workloads, Scale};

fn main() {
    for w in all_workloads(Scale::Smoke) {
        let spec = w.failure_instance.clone();
        let procs = w.procs;
        let serial = run_scenario(&spec, Scenario::Serial, procs);
        let hw = run_scenario(&spec, Scenario::Hw, procs);
        let sw_variant = if w.name == "track" {
            SwVariant::IterationWise
        } else {
            w.sw_variant
        };
        let sw = run_scenario(&spec, Scenario::Sw(sw_variant), procs);
        println!(
            "fig13[{}]: Serial 1.00  SW {:.2}  HW {:.2}",
            w.name,
            sw.total_cycles.raw() as f64 / serial.total_cycles.raw() as f64,
            hw.total_cycles.raw() as f64 / serial.total_cycles.raw() as f64,
        );
        bench_default(&format!("fig13/{}_hw_fail", w.name), || {
            run_scenario(&spec, Scenario::Hw, procs)
        });
    }
}
