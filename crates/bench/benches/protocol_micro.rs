//! Microbenchmarks of the simulator's protocol paths: host-side cost of
//! cache hits, misses, invalidations and speculation updates — plus the
//! tracing-overhead check: with tracing disabled the hot path must cost
//! the same as before the observability layer existed.

use specrt_bench::harness::bench_default;
use specrt_engine::Cycles;
use specrt_ir::ArrayId;
use specrt_mem::{ElemSize, PlacementPolicy, ProcId};
use specrt_proto::{MemSystem, MemSystemConfig, NetConfig, NullSink, Tracer};
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

const A: ArrayId = ArrayId(0);

fn fresh_with_net(plan: TestPlan, net: NetConfig) -> MemSystem {
    let cfg = MemSystemConfig {
        net,
        ..Default::default()
    };
    let mut ms = MemSystem::new(cfg);
    ms.alloc_array(A, 4096, ElemSize::W8, PlacementPolicy::RoundRobin);
    ms.configure_loop(plan, IterationNumbering::iteration_wise());
    ms
}

fn fresh(plan: TestPlan) -> MemSystem {
    fresh_with_net(plan, NetConfig::flat())
}

fn main() {
    {
        let mut ms = fresh(TestPlan::new());
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        bench_default("protocol/plain_hit", || {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        });
    }

    // Interconnect overhead: the same coherence ping-pong routed through
    // the constant-latency flat crossbar vs. the contended 2D mesh. The
    // ratio is the host-side price of per-link occupancy simulation.
    let net_flat = {
        let mut ms = fresh(TestPlan::new());
        let mut t = 0u64;
        bench_default("protocol/plain_pingpong", || {
            t += 1000;
            ms.write(ProcId(0), A, 0, Cycles(t));
            ms.write(ProcId(1), A, 0, Cycles(t + 500))
        })
    };
    let net_mesh = {
        let mut ms = fresh_with_net(TestPlan::new(), NetConfig::mesh(16));
        let mut t = 0u64;
        bench_default("protocol/plain_pingpong_mesh", || {
            t += 1000;
            ms.write(ProcId(0), A, 0, Cycles(t));
            ms.write(ProcId(1), A, 0, Cycles(t + 500))
        })
    };
    write_bench_net(&net_flat, &net_mesh);

    let baseline = {
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let mut ms = fresh(plan);
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        bench_default("protocol/nonpriv_read_hit", || {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        })
    };

    {
        let mut plan = TestPlan::new();
        plan.set(
            A,
            ProtocolKind::Priv {
                read_in: false,
                copy_out: false,
            },
        );
        let mut ms = fresh(plan);
        ms.begin_iteration(ProcId(0), 0);
        ms.write(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        let mut iter = 0u64;
        bench_default("protocol/priv_write_hit", || {
            t += 2;
            iter += 1;
            ms.begin_iteration(ProcId(0), iter);
            ms.write(ProcId(0), A, 0, Cycles(t))
        });
    }

    // Tracing overhead: the same nonpriv read-hit loop with the tracer
    // off (default) vs. installed with a no-op sink. The two numbers
    // should be indistinguishable — the hot path only checks a flag.
    let traced_off = {
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let mut ms = fresh(plan);
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        bench_default("protocol/nonpriv_hit_trace_off", || {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        })
    };
    let traced_null = {
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let mut ms = fresh(plan);
        ms.set_tracer(Tracer::new(Box::new(NullSink)));
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        bench_default("protocol/nonpriv_hit_trace_null", || {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        })
    };
    println!(
        "tracing disabled: {:.1} ns/iter vs {:.1} ns/iter baseline ({:+.1}%; must be noise)",
        traced_off.ns_per_iter(),
        baseline.ns_per_iter(),
        (traced_off.ns_per_iter() / baseline.ns_per_iter() - 1.0) * 100.0
    );
    println!(
        "tracing enabled (no-op sink): {:.1} ns/iter ({:+.1}% — the price of \
         snapshotting spec state per access)",
        traced_null.ns_per_iter(),
        (traced_null.ns_per_iter() / traced_off.ns_per_iter() - 1.0) * 100.0
    );

    bench_fuzz_throughput();
}

/// Differential-fuzz cases checked per benchmark run. Large enough that
/// worker startup is amortized, small enough to keep the bench quick.
const FUZZ_CASES: u64 = 300;

/// End-to-end fuzz throughput of the `specrt-par` worker pool: the same
/// `(cases, seed)` run single-threaded and with one worker per core. The
/// reports must match byte-for-byte (determinism is part of the contract);
/// the speedup is the payoff.
fn bench_fuzz_throughput() {
    let jobs = specrt_par::default_jobs();
    let time = |j: usize| {
        let start = std::time::Instant::now();
        let report = specrt_check::fuzz_jobs(FUZZ_CASES, 0x5eed, j);
        (report, start.elapsed().as_secs_f64())
    };
    // Warm-up run so lazy init and page faults don't bias the j=1 leg.
    let _ = time(1);
    let (serial_report, serial_s) = time(1);
    let (par_report, par_s) = time(jobs);
    assert_eq!(
        serial_report.render(),
        par_report.render(),
        "fuzz output must not depend on the worker count"
    );
    assert!(serial_report.ok(), "fuzz smoke must be clean");
    let serial_rate = FUZZ_CASES as f64 / serial_s;
    let par_rate = FUZZ_CASES as f64 / par_s;
    let speedup = par_rate / serial_rate;
    println!(
        "fuzz throughput: {serial_rate:.0} cases/s at j=1, {par_rate:.0} cases/s at j={jobs} \
         ({speedup:.2}x)"
    );
    let json = format!(
        "{{\n  \"bench\": \"check/fuzz_throughput\",\n  \
         \"cases\": {FUZZ_CASES},\n  \
         \"jobs\": {jobs},\n  \
         \"serial_cases_per_sec\": {serial_rate:.1},\n  \
         \"parallel_cases_per_sec\": {par_rate:.1},\n  \
         \"speedup\": {speedup:.3}\n}}\n"
    );
    if let Err(e) = std::fs::write("BENCH_par.json", &json) {
        eprintln!("cannot write BENCH_par.json: {e}");
    }
}

/// Records the flat-vs-mesh ping-pong datapoint so the perf trajectory
/// tracks interconnect simulation cost across commits.
fn write_bench_net(
    flat: &specrt_bench::harness::Measurement,
    mesh: &specrt_bench::harness::Measurement,
) {
    let ratio = mesh.ns_per_iter() / flat.ns_per_iter();
    let json = format!(
        "{{\n  \"bench\": \"protocol/plain_pingpong\",\n  \
         \"flat_ns_per_iter\": {:.1},\n  \
         \"mesh_ns_per_iter\": {:.1},\n  \
         \"mesh_over_flat\": {:.3}\n}}\n",
        flat.ns_per_iter(),
        mesh.ns_per_iter(),
        ratio
    );
    match std::fs::write("BENCH_net.json", &json) {
        Ok(()) => println!(
            "mesh interconnect overhead: {:.2}x flat on the ping-pong path (BENCH_net.json)",
            ratio
        ),
        Err(e) => eprintln!("cannot write BENCH_net.json: {e}"),
    }
}
