//! Microbenchmarks of the simulator's protocol paths: host-side cost of
//! cache hits, misses, invalidations and speculation updates.

use criterion::{criterion_group, criterion_main, Criterion};
use specrt_engine::Cycles;
use specrt_ir::ArrayId;
use specrt_mem::{ElemSize, PlacementPolicy, ProcId};
use specrt_proto::{MemSystem, MemSystemConfig};
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

const A: ArrayId = ArrayId(0);

fn fresh(plan: TestPlan) -> MemSystem {
    let mut ms = MemSystem::new(MemSystemConfig::default());
    ms.alloc_array(A, 4096, ElemSize::W8, PlacementPolicy::RoundRobin);
    ms.configure_loop(plan, IterationNumbering::iteration_wise());
    ms
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");

    g.bench_function("plain_hit", |b| {
        let mut ms = fresh(TestPlan::new());
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        b.iter(|| {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        })
    });

    g.bench_function("plain_pingpong", |b| {
        let mut ms = fresh(TestPlan::new());
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            ms.write(ProcId(0), A, 0, Cycles(t));
            ms.write(ProcId(1), A, 0, Cycles(t + 500))
        })
    });

    g.bench_function("nonpriv_read_hit", |b| {
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let mut ms = fresh(plan);
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        b.iter(|| {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        })
    });

    g.bench_function("priv_write_hit", |b| {
        let mut plan = TestPlan::new();
        plan.set(
            A,
            ProtocolKind::Priv {
                read_in: false,
                copy_out: false,
            },
        );
        let mut ms = fresh(plan);
        ms.begin_iteration(ProcId(0), 0);
        ms.write(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        let mut iter = 0u64;
        b.iter(|| {
            t += 2;
            iter += 1;
            ms.begin_iteration(ProcId(0), iter);
            ms.write(ProcId(0), A, 0, Cycles(t))
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
