//! Microbenchmarks of the simulator's protocol paths: host-side cost of
//! cache hits, misses, invalidations and speculation updates — plus two
//! observability-overhead checks: with tracing (or host profiling)
//! disabled the hot path must cost the same as before the observability
//! layer existed, and a `--profile`-style run must leave the deterministic
//! fuzz output byte-identical.

use specrt_bench::harness::bench_default;
use specrt_engine::Cycles;
use specrt_ir::ArrayId;
use specrt_mem::{ElemSize, PlacementPolicy, ProcId};
use specrt_proto::{MemSystem, MemSystemConfig, NetConfig, NullSink, Tracer};
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

const A: ArrayId = ArrayId(0);

fn fresh_with_net(plan: TestPlan, net: NetConfig) -> MemSystem {
    let cfg = MemSystemConfig {
        net,
        ..Default::default()
    };
    let mut ms = MemSystem::new(cfg);
    ms.alloc_array(A, 4096, ElemSize::W8, PlacementPolicy::RoundRobin);
    ms.configure_loop(plan, IterationNumbering::iteration_wise());
    ms
}

fn fresh(plan: TestPlan) -> MemSystem {
    fresh_with_net(plan, NetConfig::flat())
}

fn main() {
    {
        let mut ms = fresh(TestPlan::new());
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        bench_default("protocol/plain_hit", || {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        });
    }

    // Interconnect overhead: the same coherence ping-pong routed through
    // the constant-latency flat crossbar vs. the contended 2D mesh. The
    // ratio is the host-side price of per-link occupancy simulation.
    let net_flat = {
        let mut ms = fresh(TestPlan::new());
        let mut t = 0u64;
        bench_default("protocol/plain_pingpong", || {
            t += 1000;
            ms.write(ProcId(0), A, 0, Cycles(t));
            ms.write(ProcId(1), A, 0, Cycles(t + 500))
        })
    };
    let net_mesh = {
        let mut ms = fresh_with_net(TestPlan::new(), NetConfig::mesh(16));
        let mut t = 0u64;
        bench_default("protocol/plain_pingpong_mesh", || {
            t += 1000;
            ms.write(ProcId(0), A, 0, Cycles(t));
            ms.write(ProcId(1), A, 0, Cycles(t + 500))
        })
    };
    write_bench_net(&net_flat, &net_mesh);

    let baseline = {
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let mut ms = fresh(plan);
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        bench_default("protocol/nonpriv_read_hit", || {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        })
    };

    {
        let mut plan = TestPlan::new();
        plan.set(
            A,
            ProtocolKind::Priv {
                read_in: false,
                copy_out: false,
            },
        );
        let mut ms = fresh(plan);
        ms.begin_iteration(ProcId(0), 0);
        ms.write(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        let mut iter = 0u64;
        bench_default("protocol/priv_write_hit", || {
            t += 2;
            iter += 1;
            ms.begin_iteration(ProcId(0), iter);
            ms.write(ProcId(0), A, 0, Cycles(t))
        });
    }

    // Tracing overhead: the same nonpriv read-hit loop with the tracer
    // off (default) vs. installed with a no-op sink. The two numbers
    // should be indistinguishable — the hot path only checks a flag.
    let traced_off = {
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let mut ms = fresh(plan);
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        bench_default("protocol/nonpriv_hit_trace_off", || {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        })
    };
    let traced_null = {
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let mut ms = fresh(plan);
        ms.set_tracer(Tracer::new(Box::new(NullSink)));
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        bench_default("protocol/nonpriv_hit_trace_null", || {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        })
    };
    println!(
        "tracing disabled: {:.1} ns/iter vs {:.1} ns/iter baseline ({:+.1}%; must be noise)",
        traced_off.ns_per_iter(),
        baseline.ns_per_iter(),
        (traced_off.ns_per_iter() / baseline.ns_per_iter() - 1.0) * 100.0
    );
    println!(
        "tracing enabled (no-op sink): {:.1} ns/iter ({:+.1}% — the price of \
         snapshotting spec state per access)",
        traced_null.ns_per_iter(),
        (traced_null.ns_per_iter() / traced_off.ns_per_iter() - 1.0) * 100.0
    );

    bench_prof_overhead(&baseline);
    bench_fuzz_throughput();
}

/// Host-profiler overhead guard: the instrumented read-hit path with
/// profiling *disabled* (the default — one relaxed atomic load per span
/// site) must cost the same as the baseline run of the identical loop; the
/// budget is 3%, and anything past 10% fails the bench outright (the
/// margin tolerates wall-clock noise on busy CI runners). The enabled cost
/// is measured and printed but unguarded — it is the opt-in price.
fn bench_prof_overhead(baseline: &specrt_bench::harness::Measurement) {
    assert!(
        !specrt_prof::enabled(),
        "profiling must be off by default in benches"
    );
    let prof_off = {
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let mut ms = fresh(plan);
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        bench_default("protocol/nonpriv_hit_prof_off", || {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        })
    };
    let off_pct = (prof_off.ns_per_iter() / baseline.ns_per_iter() - 1.0) * 100.0;
    println!(
        "profiling disabled: {:.1} ns/iter vs {:.1} ns/iter baseline \
         ({off_pct:+.1}%; budget 3%)",
        prof_off.ns_per_iter(),
        baseline.ns_per_iter(),
    );
    assert!(
        off_pct < 10.0,
        "disabled profiling costs {off_pct:+.1}% on the read-hit path \
         (budget 3%, hard stop 10%) — a span site is doing work while off"
    );

    specrt_prof::set_enabled(true);
    let prof_on = {
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let mut ms = fresh(plan);
        ms.read(ProcId(0), A, 0, Cycles(0));
        let mut t = 1u64;
        bench_default("protocol/nonpriv_hit_prof_on", || {
            t += 2;
            ms.read(ProcId(0), A, 0, Cycles(t))
        })
    };
    specrt_prof::set_enabled(false);
    let _ = specrt_prof::take_report();
    println!(
        "profiling enabled: {:.1} ns/iter ({:+.1}% — the opt-in price of \
         timestamping every span)",
        prof_on.ns_per_iter(),
        (prof_on.ns_per_iter() / prof_off.ns_per_iter() - 1.0) * 100.0
    );
}

/// Differential-fuzz cases checked per benchmark run. Large enough that
/// worker startup is amortized, small enough to keep the bench quick.
const FUZZ_CASES: u64 = 300;

/// Artifacts land in the bench crate's directory regardless of the cwd
/// `cargo bench` ran from — that is where CI picks them up and where the
/// committed copies live.
fn artifact_path(name: &str) -> String {
    format!("{}/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// End-to-end fuzz throughput of the `specrt-par` worker pool: the same
/// `(cases, seed)` run single-threaded and with one worker per core. The
/// reports must match byte-for-byte (determinism is part of the contract);
/// the speedup is the payoff. A third, *profiled* parallel leg checks that
/// turning the host profiler on perturbs neither the output nor (much)
/// the throughput, and exports the j=1 vs j=N rates plus per-worker
/// utilization as `BENCH_prof.json` — the input of CI's speedup gate.
fn bench_fuzz_throughput() {
    let jobs = specrt_par::default_jobs();
    let time = |j: usize| {
        let start = std::time::Instant::now();
        let report = specrt_check::fuzz_jobs(FUZZ_CASES, 0x5eed, j);
        (report, start.elapsed().as_secs_f64())
    };
    // Warm-up run so lazy init and page faults don't bias the j=1 leg.
    let _ = time(1);
    let (serial_report, serial_s) = time(1);
    let (par_report, par_s) = time(jobs);
    assert_eq!(
        serial_report.render(),
        par_report.render(),
        "fuzz output must not depend on the worker count"
    );
    assert!(serial_report.ok(), "fuzz smoke must be clean");
    let serial_rate = FUZZ_CASES as f64 / serial_s;
    let par_rate = FUZZ_CASES as f64 / par_s;
    let speedup = par_rate / serial_rate;
    println!(
        "fuzz throughput: {serial_rate:.0} cases/s at j=1, {par_rate:.0} cases/s at j={jobs} \
         ({speedup:.2}x)"
    );
    let json = format!(
        "{{\n  \"bench\": \"check/fuzz_throughput\",\n  \
         \"cases\": {FUZZ_CASES},\n  \
         \"jobs\": {jobs},\n  \
         \"serial_cases_per_sec\": {serial_rate:.1},\n  \
         \"parallel_cases_per_sec\": {par_rate:.1},\n  \
         \"speedup\": {speedup:.3}\n}}\n"
    );
    let par_path = artifact_path("BENCH_par.json");
    if let Err(e) = std::fs::write(&par_path, &json) {
        eprintln!("cannot write {par_path}: {e}");
    }

    // Profiled leg: same (cases, seed, jobs) with the host profiler live.
    specrt_prof::set_enabled(true);
    let _ = specrt_prof::take_report();
    let (profiled_report, profiled_s) = time(jobs);
    specrt_prof::set_enabled(false);
    let prof = specrt_prof::take_report();
    assert_eq!(
        serial_report.render(),
        profiled_report.render(),
        "profiling must not perturb the deterministic fuzz output"
    );
    let profiled_rate = FUZZ_CASES as f64 / profiled_s;
    let util = prof.worker_utilization();
    let mean_util = if util.is_empty() {
        0.0
    } else {
        util.iter().map(|(_, u)| u).sum::<f64>() / util.len() as f64
    };
    println!(
        "fuzz throughput profiled: {profiled_rate:.0} cases/s at j={jobs} \
         ({:+.1}% vs unprofiled), mean worker utilization {:.0}%",
        (profiled_rate / par_rate - 1.0) * 100.0,
        mean_util * 100.0
    );
    let mut prof_json = format!(
        "{{\n  \"bench\": \"check/fuzz_profile\",\n  \
         \"cases\": {FUZZ_CASES},\n  \
         \"jobs\": {jobs},\n  \
         \"serial_cases_per_sec\": {serial_rate:.1},\n  \
         \"parallel_cases_per_sec\": {par_rate:.1},\n  \
         \"profiled_cases_per_sec\": {profiled_rate:.1},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"mean_worker_utilization\": {mean_util:.3},\n  \
         \"worker_utilization\": {{"
    );
    for (i, (label, u)) in util.iter().enumerate() {
        if i > 0 {
            prof_json.push(',');
        }
        prof_json.push_str(&format!("\n    \"{label}\": {u:.3}"));
    }
    prof_json.push_str("\n  }\n}\n");
    let prof_path = artifact_path("BENCH_prof.json");
    if let Err(e) = std::fs::write(&prof_path, &prof_json) {
        eprintln!("cannot write {prof_path}: {e}");
    }
}

/// Records the flat-vs-mesh ping-pong datapoint so the perf trajectory
/// tracks interconnect simulation cost across commits.
fn write_bench_net(
    flat: &specrt_bench::harness::Measurement,
    mesh: &specrt_bench::harness::Measurement,
) {
    let ratio = mesh.ns_per_iter() / flat.ns_per_iter();
    let json = format!(
        "{{\n  \"bench\": \"protocol/plain_pingpong\",\n  \
         \"flat_ns_per_iter\": {:.1},\n  \
         \"mesh_ns_per_iter\": {:.1},\n  \
         \"mesh_over_flat\": {:.3}\n}}\n",
        flat.ns_per_iter(),
        mesh.ns_per_iter(),
        ratio
    );
    let path = artifact_path("BENCH_net.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "mesh interconnect overhead: {:.2}x flat on the ping-pong path (BENCH_net.json)",
            ratio
        ),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
