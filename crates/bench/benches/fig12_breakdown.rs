//! Figure 12: Busy/Sync/Mem breakdown of each scenario, normalized to
//! Serial; benches each scenario of each workload's first invocation.

use specrt_bench::harness::bench_default;
use specrt_machine::{run_scenario, Scenario, SwVariant};
use specrt_workloads::{all_workloads, Scale};

fn main() {
    for w in all_workloads(Scale::Smoke) {
        let spec = w.invocations[0].clone();
        let procs = w.procs;
        let serial = run_scenario(&spec, Scenario::Serial, procs);
        for (label, scenario) in [
            ("serial", Scenario::Serial),
            ("ideal", Scenario::Ideal),
            ("sw", Scenario::Sw(SwVariant::ProcessorWise)),
            ("hw", Scenario::Hw),
        ] {
            let r = run_scenario(&spec, scenario, procs);
            let n = serial.total_cycles.raw() as f64;
            println!(
                "fig12[{}/{}]: busy {:.2} sync {:.2} mem {:.2}",
                w.name,
                label,
                r.breakdown.busy.raw() as f64 / n,
                r.breakdown.sync.raw() as f64 / n,
                r.breakdown.mem.raw() as f64 / n
            );
            bench_default(&format!("fig12/{}_{label}", w.name), || {
                run_scenario(&spec, scenario, procs)
            });
        }
    }
}
