//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! experiments [all|claims|fig11|fig12|fig13|fig14|state|ablation] [smoke|bench|full]
//!             [--jobs N]
//! experiments --trace <path> [--metrics] [--workload <name>] [smoke|bench|full]
//!             [--net <flat|mesh>] [--link-bw <cycles>] [--net-report]
//! ```
//!
//! Defaults to `all bench`. Output is the plain-text analogue of the
//! paper's Figures 11–14 plus the §3.4 state-cost table and the §4.1
//! ablations; `EXPERIMENTS.md` records the paper-vs-measured comparison.
//!
//! `--jobs N` fans the independent scenario simulations of each figure out
//! over `N` worker threads (`0` = all available cores, the default). Every
//! row is reassembled in its serial position, so the output is
//! byte-identical for every job count.
//!
//! With `--trace <path>` the binary instead runs one traced HW execution
//! of a paper workload (a passing invocation followed by its §6.2
//! forced-failure instance), writes the structured event stream to
//! `<path>` — JSONL if the path ends in `.jsonl`, a Chrome `trace_events`
//! JSON document (loadable in Perfetto / `chrome://tracing`) otherwise —
//! and prints an abort-forensics table. `--metrics` prints the unified
//! metrics registry (protocol counters, latency histograms, Busy/Sync/Mem
//! breakdowns, network counters) of the same runs as one JSON object on
//! stdout.
//!
//! `--net mesh` swaps the constant-latency crossbar for a 2D mesh with
//! finite link bandwidth (`--link-bw` cycles of link occupancy per
//! message), and `--net-report` prints per-link utilization plus the
//! worst hotspot alongside the abort forensics.
//!
//! `--profile[=FILE]` enables the host-side span profiler for whatever the
//! invocation runs and prints the ranked self-time table to **stderr**
//! when it finishes; `=FILE` additionally writes a Chrome `trace_events`
//! timeline of the host spans (one track per worker). stdout — the figure
//! tables themselves — is byte-identical with or without it.

use specrt_core::experiments::{
    ablation_chunking_jobs, ablation_machine_jobs, ablation_policy_jobs, ablation_track_block_jobs,
    evaluate_all_jobs, extension_density_jobs, fig11_from, fig12_from, fig13_jobs, fig14_jobs,
    state_cost_table, LoopResults,
};
use specrt_core::report::{bar_chart, bsm, f2, stacked_bar, Table};
use specrt_engine::Cycles;
use specrt_machine::{run_scenario_configured, MachineConfig, RunResult, Scenario};
use specrt_proto::NetConfig;
use specrt_trace::export::{chrome_trace, jsonl, metrics_json};
use specrt_trace::{MetricsRegistry, TraceEvent};
use specrt_workloads::{all_workloads, Scale};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    let mut metrics = false;
    let mut net_arg: Option<String> = None;
    let mut link_bw: Option<u64> = None;
    let mut net_report = false;
    let mut workload = String::from("adm");
    let mut jobs = specrt_par::default_jobs();
    let mut profile = false;
    let mut profile_out: Option<String> = None;
    let mut pos: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--profile" => profile = true,
            flag if flag.starts_with("--profile=") => {
                profile = true;
                let p = &flag["--profile=".len()..];
                if p.is_empty() {
                    eprintln!("--profile= requires a file name");
                    std::process::exit(2);
                }
                profile_out = Some(p.to_string());
            }
            "--jobs" | "-j" => match it.next().as_deref().and_then(specrt_par::parse_jobs) {
                Some(j) => jobs = j,
                None => {
                    eprintln!("--jobs requires a worker count (0 = all cores)");
                    std::process::exit(2);
                }
            },
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p),
                None => {
                    eprintln!("--trace requires an output path");
                    std::process::exit(2);
                }
            },
            "--metrics" => metrics = true,
            "--net" => match it.next() {
                Some(n) if n == "flat" || n == "mesh" => net_arg = Some(n),
                Some(other) => {
                    eprintln!("unknown topology {other:?}; use flat|mesh");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--net requires a topology (flat|mesh)");
                    std::process::exit(2);
                }
            },
            "--link-bw" => match it.next().as_deref().map(str::parse) {
                Some(Ok(v)) => link_bw = Some(v),
                _ => {
                    eprintln!("--link-bw requires a cycle count");
                    std::process::exit(2);
                }
            },
            "--net-report" => net_report = true,
            "--workload" => match it.next() {
                Some(w) => workload = w,
                None => {
                    eprintln!("--workload requires a workload name");
                    std::process::exit(2);
                }
            },
            _ => pos.push(a),
        }
    }
    if profile {
        specrt_prof::set_enabled(true);
    }
    let report_mode = trace_path.is_some() || metrics || net_report;
    let what = pos.first().map(String::as_str).unwrap_or("all");
    let scale_arg = if report_mode { pos.first() } else { pos.get(1) };
    let scale = match scale_arg.map(String::as_str) {
        Some("smoke") => Scale::Smoke,
        Some("full") => Scale::Full,
        None | Some("bench") => Scale::Bench,
        Some(other) => {
            eprintln!("unknown scale {other:?}; use smoke|bench|full");
            std::process::exit(2);
        }
    };

    if report_mode {
        let opts = ReportOptions {
            trace_path: trace_path.as_deref(),
            metrics,
            net: net_arg.as_deref(),
            link_bw,
            net_report,
        };
        trace_report(&workload, scale, &opts);
        if profile {
            finish_profile(profile_out.as_deref());
        }
        return;
    }
    if net_arg.is_some() || link_bw.is_some() {
        eprintln!("--net/--link-bw only apply to --trace/--metrics/--net-report runs");
        std::process::exit(2);
    }

    let needs_eval = matches!(what, "all" | "claims" | "fig11" | "fig12");
    let results: Vec<LoopResults> = if needs_eval {
        eprintln!("running all scenarios on all workloads ({scale:?} scale, {jobs} worker(s))...");
        evaluate_all_jobs(scale, jobs)
    } else {
        Vec::new()
    };

    match what {
        "all" => {
            print_fig11(&results);
            print_fig12(&results);
            print_fig13(scale, jobs);
            print_fig14(scale, jobs);
            print_state();
            print_ablation(scale, jobs);
        }
        "claims" => print_claims(&results, scale, jobs),
        "fig11" => print_fig11(&results),
        "fig12" => print_fig12(&results),
        "fig13" => print_fig13(scale, jobs),
        "fig14" => print_fig14(scale, jobs),
        "state" => print_state(),
        "ablation" => print_ablation(scale, jobs),
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }
    if profile {
        finish_profile(profile_out.as_deref());
    }
}

/// Prints the ranked host self-time table to stderr and, when asked,
/// writes the host-span Chrome timeline — after all deterministic stdout
/// output is complete.
fn finish_profile(out: Option<&str>) {
    let report = specrt_prof::take_report();
    specrt_prof::set_enabled(false);
    eprint!("{}", report.render_table(20));
    if let Some(path) = out {
        let doc = specrt_trace::export::chrome_host_trace(&report);
        match std::fs::write(path, doc) {
            Ok(()) => eprintln!("host timeline written to {path} (Chrome trace_events)"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}

/// Checks the four quantitative claims of the paper's abstract against the
/// measured results and prints a pass/fail report.
fn print_claims(results: &[LoopResults], scale: Scale, jobs: usize) {
    println!("== Reproduction report: the abstract's claims ==\n");
    let rows = fig11_from(results);
    let hw_mean: f64 = rows.iter().map(|r| r.hw).sum::<f64>() / rows.len() as f64;
    let ratio_geo: f64 = rows
        .iter()
        .map(|r| r.hw / r.sw)
        .product::<f64>()
        .powf(1.0 / rows.len() as f64);
    let all_hw_beat_sw = rows.iter().all(|r| r.hw > r.sw);
    let f13 = fig13_jobs(scale, jobs);
    let hw_fail: f64 = f13.iter().map(|r| r.hw.total()).sum::<f64>() / f13.len() as f64;
    let sw_fail: f64 = f13.iter().map(|r| r.sw.total()).sum::<f64>() / f13.len() as f64;
    let early = f13
        .iter()
        .all(|r| r.hw_iterations_before_abort * 4 < r.iterations.max(4));

    let check = |ok: bool| if ok { "PASS" } else { "FAIL" };
    println!(
        "[{}] \"delivers a speedup of 7 for 16 processors\": HW mean {:.2}x (> 4 expected at reproduction scale)",
        check(hw_mean > 4.0),
        hw_mean
    );
    println!(
        "[{}] \"twice faster than the software scheme\": geometric-mean HW/SW {:.2}x on {} loops (all HW > SW: {})",
        check(ratio_geo > 1.5 && all_hw_beat_sw),
        ratio_geo,
        rows.len(),
        all_hw_beat_sw
    );
    println!(
        "[{}] \"detects serial loops very quickly\": HW aborts in the first quarter of every forced-failure loop: {}",
        check(early),
        early
    );
    println!(
        "[{}] failure is cheap: HW {:.2}x vs SW {:.2}x serial on forced failures (paper: 1.22 vs 1.58)",
        check(hw_fail < sw_fail && hw_fail < 1.6),
        hw_fail,
        sw_fail
    );
}

fn print_fig11(results: &[LoopResults]) {
    println!("== Figure 11: speedups of the parallel executions ==");
    println!(
        "(paper: HW averages 6.7 at 16 procs, SW 2.9; HW roughly half-way between SW and Ideal)\n"
    );
    let mut t = Table::new(vec!["loop", "procs", "Ideal", "SW", "HW", "HW/SW"]);
    for r in fig11_from(results) {
        t.row(vec![
            r.workload.clone(),
            r.procs.to_string(),
            f2(r.ideal),
            f2(r.sw),
            f2(r.hw),
            f2(r.hw / r.sw),
        ]);
    }
    println!("{}", t.render());
    let mut bars = Vec::new();
    for r in fig11_from(results) {
        bars.push((format!("{} Ideal", r.workload), r.ideal));
        bars.push((format!("{} SW", r.workload), r.sw));
        bars.push((format!("{} HW", r.workload), r.hw));
    }
    println!("{}", bar_chart(&bars, 50));
}

fn print_fig12(results: &[LoopResults]) {
    println!("== Figure 12: execution time breakdown (normalized to Serial) ==");
    println!("(bars are Busy+Sync+Mem; paper: HW has lower Busy and Mem than SW everywhere)\n");
    let mut t = Table::new(vec!["loop", "scenario", "busy+sync+mem", "total"]);
    let rows = fig12_from(results);
    let scale_max = rows
        .iter()
        .flat_map(|r| r.bars.iter().map(|b| b.total()))
        .fold(1.0_f64, f64::max);
    for row in &rows {
        for bar in &row.bars {
            t.row(vec![
                row.workload.clone(),
                bar.scenario.clone(),
                bsm(bar.busy, bar.sync, bar.mem),
                f2(bar.total()),
            ]);
        }
    }
    println!("{}", t.render());
    println!("(stacked: # busy, ~ sync, . mem)");
    for row in &rows {
        for bar in &row.bars {
            println!(
                "{:<5} {:<8} |{}",
                row.workload,
                bar.scenario,
                stacked_bar(bar.busy, bar.sync, bar.mem, scale_max, 60)
            );
        }
    }
    println!();
}

fn print_fig13(scale: Scale, jobs: usize) {
    println!("== Figure 13: execution time when the test fails (normalized to Serial) ==");
    println!("(paper: HW averages 1.22x Serial, SW 1.58x; HW aborts almost immediately)\n");
    let mut t = Table::new(vec![
        "loop",
        "Serial",
        "SW (fail)",
        "HW (fail)",
        "HW iters before abort",
    ]);
    for r in fig13_jobs(scale, jobs) {
        t.row(vec![
            r.workload.clone(),
            f2(r.serial.total()),
            f2(r.sw.total()),
            f2(r.hw.total()),
            format!("{}/{}", r.hw_iterations_before_abort, r.iterations),
        ]);
    }
    println!("{}", t.render());
}

fn print_fig14(scale: Scale, jobs: usize) {
    println!("== Figure 14: scalability (speedups at 8 and 16 processors) ==");
    println!("(paper: SW saturates earlier; P3m's SW is slower at 16 than at 8)\n");
    let mut t = Table::new(vec!["loop", "procs", "Ideal", "SW", "HW"]);
    for r in fig14_jobs(scale, jobs) {
        t.row(vec![
            r.workload.clone(),
            r.procs.to_string(),
            f2(r.ideal),
            f2(r.sw),
            f2(r.hw),
        ]);
    }
    println!("{}", t.render());
}

fn print_state() {
    println!("== Figure 5 / section 3.4: per-element overhead state ==\n");
    let mut t = Table::new(vec![
        "configuration",
        "HW dir bits",
        "HW tag bits",
        "SW bits",
        "HW/SW",
    ]);
    for r in state_cost_table() {
        t.row(vec![
            r.config.clone(),
            r.hw_dir_bits.to_string(),
            r.hw_tag_bits.to_string(),
            r.sw_bits.to_string(),
            f2(r.ratio),
        ]);
    }
    println!("{}", t.render());
}

fn print_ablation(scale: Scale, jobs: usize) {
    println!(
        "== Ablation (section 4.1): superiteration chunking on the privatization protocol ==\n"
    );
    let mut t = Table::new(vec![
        "chunk",
        "HW cycles",
        "read-first signals",
        "stamp bits",
    ]);
    for r in ablation_chunking_jobs(scale, jobs) {
        t.row(vec![
            r.chunk.to_string(),
            r.hw_cycles.to_string(),
            r.read_first_signals.to_string(),
            r.stamp_bits.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("== Ablation: machine-model sensitivity (Ocean, HW vs SW) ==\n");
    let mut t = Table::new(vec!["machine", "HW speedup", "SW speedup"]);
    for r in ablation_machine_jobs(scale, jobs) {
        t.row(vec![r.config.clone(), f2(r.hw_speedup), f2(r.sw_speedup)]);
    }
    println!("{}", t.render());

    println!("== Extension (section 2.2.4): profitability vs conflict density ==\n");
    let mut t = Table::new(vec!["density", "pass rate", "HW/serial", "SW/serial"]);
    for r in extension_density_jobs(scale, jobs) {
        t.row(vec![
            format!("{:.2}", r.density),
            f2(r.pass_rate),
            f2(r.hw_over_serial),
            f2(r.sw_over_serial),
        ]);
    }
    println!("{}", t.render());

    println!("== Ablation: abort latency and dirty-read coherence policy (Ocean) ==\n");
    let mut t = Table::new(vec!["configuration", "HW cycles"]);
    for r in ablation_policy_jobs(scale, jobs) {
        t.row(vec![r.config.clone(), r.hw_cycles.to_string()]);
    }
    println!("{}", t.render());

    println!("== Ablation (section 5.2): Track's dynamic block size under HW ==\n");
    let mut t = Table::new(vec!["block", "passed", "HW cycles"]);
    for r in ablation_track_block_jobs(scale, jobs) {
        t.row(vec![
            r.block.to_string(),
            r.passed.to_string(),
            r.hw_cycles.to_string(),
        ]);
    }
    println!("{}", t.render());
}

// ----------------------------------------------------------------------
// Structured tracing / metrics (`--trace` / `--metrics`)
// ----------------------------------------------------------------------

/// Events a run can collect before the ring buffer starts evicting.
const TRACE_CAPACITY: usize = 1 << 18;

/// Shifts every timestamp in `events` forward by `by` cycles, so that two
/// runs can share one trace file without overlapping on the timeline.
fn shift_events(events: &mut [TraceEvent], by: Cycles) {
    for e in events {
        match e {
            TraceEvent::Transaction { at, complete, .. } => {
                *at += by;
                *complete += by;
            }
            TraceEvent::SpecTransition { at, .. }
            | TraceEvent::Message { at, .. }
            | TraceEvent::Net { at, .. }
            | TraceEvent::Sched { at, .. }
            | TraceEvent::Fault { at, .. }
            | TraceEvent::NodeFault { at, .. }
            | TraceEvent::Recovery { at, .. }
            | TraceEvent::Abort { at, .. } => *at += by,
        }
    }
}

/// Flags governing a `--trace`/`--metrics`/`--net-report` run.
struct ReportOptions<'a> {
    trace_path: Option<&'a str>,
    metrics: bool,
    /// `--net flat|mesh`; `None` keeps the default (flat) interconnect.
    net: Option<&'a str>,
    /// `--link-bw`: cycles each message occupies a link (0 = infinite bw).
    link_bw: Option<u64>,
    net_report: bool,
}

/// Runs HW executions of `name` with tracing on (one passing invocation,
/// then the §6.2 forced-failure instance), exports the combined event
/// stream and prints forensics / metrics / the network report.
fn trace_report(name: &str, scale: Scale, opts: &ReportOptions) {
    let workloads = all_workloads(scale);
    let Some(w) = workloads.iter().find(|w| w.name == name) else {
        let names: Vec<&str> = workloads.iter().map(|w| w.name).collect();
        eprintln!("unknown workload {name:?}; available: {}", names.join(", "));
        std::process::exit(2);
    };
    let mut net = match opts.net {
        Some("mesh") => NetConfig::mesh(w.procs),
        _ => NetConfig::flat(),
    };
    if let Some(bw) = opts.link_bw {
        net = net.with_link_service(bw);
    }
    let mut cfg = MachineConfig::with_procs(w.procs).with_net(net);
    cfg.trace_capacity = TRACE_CAPACITY;
    cfg.trace_net = opts.net_report;

    eprintln!(
        "tracing HW run of {name} ({} procs, {} interconnect, {scale:?} scale)...",
        w.procs,
        cfg.mem.net.topology.label(),
    );
    let mut pass = run_scenario_configured(&w.invocations[0], Scenario::Hw, cfg);
    eprintln!("tracing HW run of the forced-failure instance...");
    let mut fail = run_scenario_configured(&w.failure_instance, Scenario::Hw, cfg);

    // Place the failure run after the passing run on the shared timeline.
    shift_events(&mut fail.trace, pass.total_cycles + Cycles(1000));
    let mut events = std::mem::take(&mut pass.trace);
    events.append(&mut fail.trace);

    print_trace_summary(&events, &pass, &fail);
    print_abort_forensics(&events);
    if opts.net_report {
        print_net_report(&[("pass", &pass), ("fail", &fail)]);
    }

    if let Some(path) = opts.trace_path {
        let doc = if path.ends_with(".jsonl") {
            jsonl(&events)
        } else {
            chrome_trace(&events)
        };
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote {} events to {path} ({})",
            events.len(),
            if path.ends_with(".jsonl") {
                "JSONL"
            } else {
                "Chrome trace_events; load in Perfetto or chrome://tracing"
            }
        );
    }

    if opts.metrics {
        let mut m = MetricsRegistry::new();
        for (tag, run) in [("pass", &pass), ("fail", &fail)] {
            m.absorb_stats(&format!("proto.{tag}"), &run.stats);
            m.record_breakdown(&format!("machine.{tag}"), run.breakdown);
            m.incr(
                &format!("machine.{tag}.total_cycles"),
                run.total_cycles.raw(),
            );
            m.incr(&format!("machine.{tag}.iterations"), run.iterations);
            let n = &run.net;
            m.incr(&format!("net.{tag}.messages"), n.messages);
            m.incr(&format!("net.{tag}.local_messages"), n.local_messages);
            m.incr(&format!("net.{tag}.total_hops"), n.total_hops);
            m.incr(&format!("net.{tag}.queue_cycles"), n.total_queue);
            m.incr(&format!("net.{tag}.contended_links"), n.links.len() as u64);
            for l in &n.links {
                m.observe(&format!("net.{tag}.link_queued"), l.queued);
            }
        }
        for e in &events {
            m.incr(&format!("trace.events.{}", e.kind()), 1);
            if let TraceEvent::Transaction {
                at,
                complete,
                queue,
                ..
            } = e
            {
                m.observe("mem.access_latency", complete.raw() - at.raw());
                m.observe("mem.queue_delay", queue.raw());
            }
        }
        println!("{}", metrics_json(&m));
    }
}

fn print_trace_summary(events: &[TraceEvent], pass: &RunResult, fail: &RunResult) {
    let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
    let mut protocols: Vec<&'static str> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::SpecTransition { protocol, .. } => Some(*protocol),
            _ => None,
        })
        .collect();
    protocols.sort_unstable();
    protocols.dedup();
    println!("== Traced HW runs ==\n");
    let mut t = Table::new(vec!["run", "passed", "cycles", "iterations"]);
    for r in [pass, fail] {
        t.row(vec![
            r.name.clone(),
            r.passed.map(|p| p.to_string()).unwrap_or_default(),
            r.total_cycles.raw().to_string(),
            r.iterations.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "events: {} transactions, {} spec transitions ({}), {} messages, {} sched, {} aborts\n",
        count("txn"),
        count("spec"),
        if protocols.is_empty() {
            "none".to_string()
        } else {
            protocols.join(", ")
        },
        count("msg"),
        count("sched"),
        count("abort"),
    );
}

/// The abort-forensics table: one row per FAIL with full context.
fn print_abort_forensics(events: &[TraceEvent]) {
    let aborts: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Abort { .. }))
        .collect();
    if aborts.is_empty() {
        println!("no speculation failures detected in the traced runs\n");
        return;
    }
    println!("== Abort forensics ==\n");
    let mut t = Table::new(vec!["cycle", "proc", "array", "elem", "iter", "reason"]);
    let opt = |v: Option<String>| v.unwrap_or_else(|| "-".into());
    for e in &aborts {
        if let TraceEvent::Abort {
            at,
            proc,
            arr,
            idx,
            iter,
            reason,
            ..
        } = e
        {
            t.row(vec![
                at.raw().to_string(),
                opt(proc.map(|p| format!("cpu{p}"))),
                opt(arr.map(|a| format!("arr{a}"))),
                opt(idx.map(|i| i.to_string())),
                opt(iter.map(|i| i.to_string())),
                reason.clone(),
            ]);
        }
    }
    println!("{}", t.render());
}

/// How many of the busiest links the `--net-report` table shows per run.
const NET_REPORT_LINKS: usize = 8;

/// The `--net-report` tables: per-run traffic totals, then per-link
/// utilization for the most congested links, with the worst hotspot called
/// out (the link aborts and retries pile onto first).
fn print_net_report(runs: &[(&str, &RunResult)]) {
    println!("== Network report ==\n");
    let mut t = Table::new(vec![
        "run",
        "topology",
        "messages",
        "local",
        "mean hops",
        "queue cycles",
        "contended links",
    ]);
    for (tag, r) in runs {
        let n = &r.net;
        t.row(vec![
            tag.to_string(),
            n.topology.clone(),
            n.messages.to_string(),
            n.local_messages.to_string(),
            f2(n.mean_hops()),
            n.total_queue.to_string(),
            n.links.len().to_string(),
        ]);
    }
    println!("{}", t.render());

    for (tag, r) in runs {
        let n = &r.net;
        if n.links.is_empty() {
            println!("{tag}: no link saw traffic (flat interconnect with infinite bandwidth)\n");
            continue;
        }
        let mut links = n.links.clone();
        links.sort_by_key(|l| std::cmp::Reverse((l.queued, l.busy, l.msgs)));
        println!(
            "-- {tag}: busiest {} of {} links --",
            links.len().min(NET_REPORT_LINKS),
            links.len()
        );
        let cycles = r.total_cycles.raw().max(1) as f64;
        let mut t = Table::new(vec!["link", "messages", "busy", "queued", "util %"]);
        for l in links.iter().take(NET_REPORT_LINKS) {
            t.row(vec![
                l.link.to_string(),
                l.msgs.to_string(),
                l.busy.to_string(),
                l.queued.to_string(),
                f2(100.0 * l.busy as f64 / cycles),
            ]);
        }
        println!("{}", t.render());
        if let Some(h) = n.hotspot() {
            println!(
                "{tag}: worst hotspot {} ({} messages, {} queued cycles)\n",
                h.link, h.msgs, h.queued
            );
        }
    }
}
