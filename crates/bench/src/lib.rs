//! # specrt-bench
//!
//! Benchmark harness for the `specrt` reproduction: criterion benches (one
//! per figure of the paper plus protocol microbenchmarks and ablations)
//! and the `experiments` binary that regenerates every table and figure of
//! the evaluation section.
//!
//! Run `cargo run -p specrt-bench --bin experiments -- all` for the full
//! set at benchmark scale, or `cargo bench` for the criterion benches.
