//! # specrt-bench
//!
//! Benchmark harness for the `specrt` reproduction: self-contained micro
//! benches (one per figure of the paper plus protocol microbenchmarks and
//! ablations, under `benches/`) and the `experiments` binary that
//! regenerates every table and figure of the evaluation section.
//!
//! Run `cargo run -p specrt-bench --bin experiments -- all` for the full
//! set at benchmark scale, or `cargo bench` for the micro benches. The
//! benches use the in-repo [`harness`] (plain `std::time`) so the
//! workspace builds and benches with no network access and no external
//! crates.

pub mod harness {
    //! A small wall-clock micro-benchmark harness.
    //!
    //! Not a statistics package: it warms up, calibrates an iteration
    //! count to a time budget, and reports mean ns/iter. That is enough
    //! to compare two in-process variants (e.g. tracing off vs. on) and
    //! to watch for order-of-magnitude regressions.

    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// One benchmark's measurement.
    #[derive(Debug, Clone)]
    pub struct Measurement {
        /// Benchmark name.
        pub name: String,
        /// Iterations timed (after warm-up).
        pub iters: u64,
        /// Total wall-clock time across `iters`.
        pub total: Duration,
    }

    impl Measurement {
        /// Mean nanoseconds per iteration.
        pub fn ns_per_iter(&self) -> f64 {
            self.total.as_nanos() as f64 / self.iters.max(1) as f64
        }
    }

    impl std::fmt::Display for Measurement {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "{:<44} {:>12.1} ns/iter  ({} iters)",
                self.name,
                self.ns_per_iter(),
                self.iters
            )
        }
    }

    /// Times `f` for roughly `budget` of wall-clock time (after a short
    /// calibration), prints the measurement, and returns it. The closure's
    /// result goes through [`black_box`] so the work is not optimized away.
    pub fn bench<T, F: FnMut() -> T>(name: &str, budget: Duration, mut f: F) -> Measurement {
        // Calibrate: double the batch until one batch lasts ~1/20 of the
        // budget, then scale the batch up to fill the budget and measure.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= budget / 20 || batch >= 1 << 30 {
                let per = (dt.as_nanos().max(1) as u64).div_ceil(batch);
                let iters = (budget.as_nanos() as u64 / per.max(1)).clamp(batch, 1 << 32);
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                let m = Measurement {
                    name: name.to_string(),
                    iters,
                    total: t0.elapsed(),
                };
                println!("{m}");
                return m;
            }
            batch *= 2;
        }
    }

    /// [`bench()`] with the default 200 ms budget.
    pub fn bench_default<T, F: FnMut() -> T>(name: &str, f: F) -> Measurement {
        bench(name, Duration::from_millis(200), f)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn measures_something() {
            let m = bench("noop", Duration::from_millis(5), || 1 + 1);
            assert!(m.iters >= 1);
            assert!(m.ns_per_iter() >= 0.0);
        }
    }
}
