//! Bounded model checker over the pure [`ProtocolSpec`] transition
//! function.
//!
//! Where [`crate::interleave`] hand-rolls a one-line/two-element model of
//! the non-privatization protocol, this module enumerates the **system
//! layer of `specrt_spec::protospec`** — the same element-level transition
//! code the simulator executes — over a configurable
//! [`SpecScope`] (`lines × elems × procs`, up to 2×3×4) and all three
//! protocol variants (`nonpriv`, `priv`, `priv3`).
//!
//! ## Search structure
//!
//! A *script* assigns each processor an ordered access sequence (at most
//! [`MAX_OPS_PER_PROC`] accesses each, [`ModelConfig::max_ops`] in total).
//! For each script an explicit-frontier BFS explores every interleaving of
//! processor accesses, in-flight message deliveries and cache evictions,
//! deduplicating states by their canonical
//! [`crate::canon::spec_state_key`] hash. BFS order makes the first bad
//! state found the shallowest one, so counterexample event paths are
//! minimal for their script; scripts are enumerated smallest-first, so the
//! reported counterexample *script* is minimal too.
//!
//! ## Symmetry reduction
//!
//! Processor identities are interchangeable under `nonpriv` and `priv3`
//! (the protocols compare ids only for equality), so scripts are
//! enumerated as multisets — one canonical representative (sorted
//! per-processor sequences) per permutation orbit. The stamped `priv`
//! variant orders processors by their iteration stamp, which breaks full
//! symmetry but keeps invariance under order-preserving compaction: idle
//! processors are canonically trailing, and every ordered tuple of
//! non-empty sequences is enumerated once.
//!
//! ## Checked properties
//!
//! * **Soundness at quiescence** (all scripts finished, no messages in
//!   flight, all cache copies written back): the run has FAILed or the
//!   script's access pattern is inside the paper's envelope for the
//!   variant. A quiescent PASS of a non-envelope script is a *violation*.
//!   The write-back condition mirrors the machine, which flushes caches
//!   after every loop and only then reads the verdict: dirty lines carry
//!   locally accumulated tag bits whose conflicts surface at the
//!   write-back merge (race case (e)), so a pre-flush state is not a
//!   verdict.
//! * **Dirty exclusivity** (`nonpriv`): at most one dirty copy per line at
//!   every explored state.
//! * **Directory consistency** (`nonpriv`): no non-FAILed directory
//!   element is simultaneously `NoShr` (write-exclusive) and `ROnly`
//!   (read-shared) — the clean protocol FAILs instead of entering that
//!   contradiction, and the `drop-ronly` mutation is caught exactly here.
//! * **Dir ↔ cache-tag agreement** (`nonpriv`, at quiescence, clean
//!   copies): `First = OWN` implies the directory names that processor,
//!   and `NoShr`/`ROnly` tag bits imply the directory bits. (Dirty copies
//!   reconcile at write-back and are exempt by design.)
//! * **Stamp monotonicity** (`priv`): `MaxR1st` never decreases, `MinW`
//!   never increases across any transition, and `MaxR1st ≤ MinW` in every
//!   non-FAILed state. These are counted separately as *invariant
//!   violations* — the `swap-ts-compare` mutation breaks them without
//!   necessarily producing a quiescent pass.
//! * **Tag ↔ private-directory agreement** (`priv`/`priv3`): a set
//!   `Read1st`/`Write` tag bit implies the matching private-directory
//!   stamp/bit at every state.
//!
//! Race-case coverage counts each of the paper's sites (a)–(h) as labelled
//! by [`SpecEmission::Race`]; letter meaning is per variant (access sites
//! (a)–(g) plus delivered updates/signals — see `protospec`).
//!
//! ## Determinism and parallelism
//!
//! Exploration is partitioned by script over `specrt_par::par_map`, whose
//! results come back in input order; per-script exploration is
//! deterministic, counters are sums, and the counterexample is re-derived
//! from the first bad script — so reports are **byte-identical at any
//! `--jobs`**. An active [`fault`] injection is re-installed in every
//! worker thread (the injection is part of the transition function under
//! test).

use std::collections::{HashMap, HashSet, VecDeque};

use specrt_cache::FirstTag;
use specrt_engine::Cycles;
use specrt_mem::ProcId;
use specrt_spec::{
    fault, DirElem, FlightMsg, PrivateDirElem, ProtocolSpec, SpecEmission, SpecMessage, SpecScope,
    SpecState, SpecVariant,
};
use specrt_trace::{HitKind, TraceEvent};

use crate::canon::spec_state_key;
use crate::generate::Op;
use crate::interleave::Coverage;

/// Per-processor access-sequence cap (sequences of 0, 1 or 2 accesses).
pub const MAX_OPS_PER_PROC: usize = 2;

/// Default total-accesses cap per script.
pub const DEFAULT_MAX_OPS: usize = 5;

/// One script: each processor's ordered access sequence.
pub type Script = Vec<Vec<Op>>;

/// Configuration of one model-checking run.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Protocol variant under test.
    pub variant: SpecVariant,
    /// Bounded scope (validate before use).
    pub scope: SpecScope,
    /// Total accesses allowed per script.
    pub max_ops: usize,
    /// Worker threads (0 = all cores); the report is identical for any
    /// value.
    pub jobs: usize,
}

impl ModelConfig {
    /// The acceptance-target configuration: 2 lines × 3 elems × 4 procs.
    pub fn full(variant: SpecVariant) -> ModelConfig {
        ModelConfig {
            variant,
            scope: SpecScope {
                lines: 2,
                elems: 3,
                procs: 4,
            },
            max_ops: DEFAULT_MAX_OPS,
            jobs: 1,
        }
    }

    /// A reduced smoke-test configuration: 1 line × 2 elems × 2 procs.
    pub fn smoke(variant: SpecVariant) -> ModelConfig {
        ModelConfig {
            variant,
            scope: SpecScope {
                lines: 1,
                elems: 2,
                procs: 2,
            },
            max_ops: 4,
            jobs: 1,
        }
    }
}

/// A minimal witness of a property violation: the smallest offending
/// script and a shortest event path to the first bad state.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Variant it was found under.
    pub variant: SpecVariant,
    /// Scope it was found at.
    pub scope: SpecScope,
    /// The offending script.
    pub script: Script,
    /// Shortest message sequence from the initial state to the bad state.
    pub path: Vec<SpecMessage>,
}

impl Counterexample {
    /// Replays the event path through the spec and renders it as trace
    /// events (one `Transaction` per access with its race-case letter, one
    /// `Message` per delivery/eviction), ready for the trace exporters.
    pub fn trace(&self) -> Vec<TraceEvent> {
        let spec = ProtocolSpec::new(self.variant, self.scope);
        let mut s = spec.init();
        let mut pcs = vec![0usize; self.scope.procs as usize];
        let mut events = Vec::new();
        for (at, m) in self.path.iter().enumerate() {
            let at = Cycles(at as u64);
            match *m {
                SpecMessage::Access { proc, write, elem } => {
                    let line = self.scope.line_of(elem);
                    let resident = s.copies[self.scope.copy_index(proc, line)].is_some();
                    let (ns, em) = spec.step(&s, m);
                    events.push(TraceEvent::Transaction {
                        at,
                        proc: proc as u32,
                        arr: 0,
                        idx: elem as u64,
                        write,
                        hit: if resident { HitKind::L1 } else { HitKind::Miss },
                        home: 0,
                        queue: Cycles(0),
                        complete: Cycles(at.0 + 1),
                        case: em.iter().find_map(|e| match e {
                            SpecEmission::Race(i) => Some(RACE_LETTERS[*i as usize]),
                            SpecEmission::Fail(_) => None,
                        }),
                    });
                    pcs[proc as usize] += 1;
                    s = ns;
                }
                SpecMessage::Deliver { index } => {
                    let f = s.inflight[index];
                    let kind = match f.msg {
                        FlightMsg::FirstUpdate { .. } => "First_update",
                        FlightMsg::ROnlyUpdate { .. } => "ROnly_update",
                        FlightMsg::FirstUpdateFail { .. } => "First_update_fail",
                        FlightMsg::ReadFirst { .. } => "Read1st_signal",
                        FlightMsg::FirstWrite { .. } => "First_write_signal",
                    };
                    events.push(TraceEvent::Message {
                        at,
                        kind,
                        arr: 0,
                        idx: f.msg.elem() as u64,
                    });
                    let (ns, _) = spec.step(&s, m);
                    s = ns;
                }
                SpecMessage::Evict { proc, line } => {
                    events.push(TraceEvent::Message {
                        at,
                        kind: "evict",
                        arr: proc as u32,
                        idx: line as u64,
                    });
                    let (ns, _) = spec.step(&s, m);
                    s = ns;
                }
            }
        }
        events
    }

    /// Deterministic human-readable rendering: the script, then the
    /// replayed event path as trace lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let ops: usize = self.script.iter().map(Vec::len).sum();
        out.push_str(&format!(
            "minimal counterexample ({}, {} op(s)):\n",
            self.variant.name(),
            ops
        ));
        for (p, seq) in self.script.iter().enumerate() {
            let ops: Vec<String> = seq
                .iter()
                .map(|op| match op {
                    Op::Read(e) => format!("R{e}"),
                    Op::Write(e) => format!("W{e}"),
                })
                .collect();
            out.push_str(&format!(
                "  p{p}: {}\n",
                if ops.is_empty() {
                    "(idle)".to_string()
                } else {
                    ops.join(" ")
                }
            ));
        }
        out.push_str(&format!("event path ({} step(s)):\n", self.path.len()));
        for e in self.trace() {
            out.push_str(&format!("  {e}\n"));
        }
        out
    }
}

/// Race-case letters, indexed as [`SpecEmission::Race`] indexes them.
const RACE_LETTERS: [&str; 8] = ["a", "b", "c", "d", "e", "f", "g", "h"];

/// The merged result of one model-checking run.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Variant checked.
    pub variant: SpecVariant,
    /// Scope checked.
    pub scope: SpecScope,
    /// Total-accesses cap used.
    pub max_ops: usize,
    /// Scripts enumerated (after symmetry reduction).
    pub scripts: u64,
    /// Unique states discovered across all scripts.
    pub states: u64,
    /// Successor encounters that hit an already-explored state.
    pub dedup_hits: u64,
    /// Scripts with a quiescent PASS outside the envelope (soundness
    /// violations).
    pub violations: u64,
    /// Per-state/per-transition invariant failures (monotonicity, dirty
    /// exclusivity, dir↔tag agreement).
    pub invariant_violations: u64,
    /// Envelope scripts that no interleaving lets PASS.
    pub conservative: u64,
    /// Race-case site coverage over the whole run.
    pub coverage: Coverage,
    /// Witness for the first bad script, if any.
    pub counterexample: Option<Counterexample>,
}

impl ModelReport {
    /// Whether the run found no violation of any checked property.
    pub fn ok(&self) -> bool {
        self.violations == 0 && self.invariant_violations == 0
    }

    /// Fraction of successor encounters answered by the memo table.
    pub fn dedup_rate(&self) -> f64 {
        let total = self.states + self.dedup_hits;
        if total == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / total as f64
        }
    }

    /// Deterministic report text (identical at any `--jobs`).
    pub fn render(&self) -> String {
        let mut out = format!(
            "model {} {}x{}x{} max-ops {}: {} scripts, {} states, dedup {:.1}% ({} hits), \
             {} violation(s), {} invariant violation(s), {} conservative script(s)\n",
            self.variant.name(),
            self.scope.lines,
            self.scope.elems,
            self.scope.procs,
            self.max_ops,
            self.scripts,
            self.states,
            100.0 * self.dedup_rate(),
            self.dedup_hits,
            self.violations,
            self.invariant_violations,
            self.conservative,
        );
        out.push_str("race-case coverage:");
        for (i, n) in self.coverage.counts.iter().enumerate() {
            out.push_str(&format!(" {}={}", (b'a' + i as u8) as char, n));
        }
        out.push('\n');
        if let Some(cex) = &self.counterexample {
            out.push_str(&cex.render());
        }
        out
    }
}

/// Enumerates the symmetry-reduced script universe for one variant,
/// smallest total-op-count first.
pub fn enumerate_scripts(variant: SpecVariant, scope: SpecScope, max_ops: usize) -> Vec<Script> {
    let seqs = atom_seqs(scope.elems);
    let procs = scope.procs as usize;
    let mut out = Vec::new();
    let mut picked = Vec::new();
    match variant {
        // Fully processor-symmetric: one sorted (non-decreasing
        // sequence-index) representative per permutation orbit.
        SpecVariant::NonPriv | SpecVariant::Priv3 => {
            multiset_scripts(&seqs, procs, max_ops, 0, 0, &mut picked, &mut out);
        }
        // Stamps order processors; only compaction symmetry applies:
        // ordered tuples of non-empty sequences, idle processors trailing.
        SpecVariant::Priv => {
            for active in 0..=procs {
                ordered_scripts(&seqs, procs, active, max_ops, 0, &mut picked, &mut out);
            }
        }
    }
    out.sort_by_key(|s| s.iter().map(Vec::len).sum::<usize>());
    out
}

/// All per-processor sequences of at most [`MAX_OPS_PER_PROC`] accesses
/// over `elems` elements, the empty sequence first.
fn atom_seqs(elems: u16) -> Vec<Vec<Op>> {
    let mut atoms = Vec::new();
    for e in 0..elems as u64 {
        atoms.push(Op::Read(e));
        atoms.push(Op::Write(e));
    }
    let mut seqs = vec![Vec::new()];
    for &a in &atoms {
        seqs.push(vec![a]);
    }
    for &a in &atoms {
        for &b in &atoms {
            seqs.push(vec![a, b]);
        }
    }
    seqs
}

fn multiset_scripts(
    seqs: &[Vec<Op>],
    procs: usize,
    max_ops: usize,
    start: usize,
    used: usize,
    picked: &mut Vec<usize>,
    out: &mut Vec<Script>,
) {
    if picked.len() == procs {
        out.push(picked.iter().map(|&i| seqs[i].clone()).collect());
        return;
    }
    for i in start..seqs.len() {
        if used + seqs[i].len() > max_ops {
            continue;
        }
        picked.push(i);
        multiset_scripts(seqs, procs, max_ops, i, used + seqs[i].len(), picked, out);
        picked.pop();
    }
}

fn ordered_scripts(
    seqs: &[Vec<Op>],
    procs: usize,
    active: usize,
    max_ops: usize,
    used: usize,
    picked: &mut Vec<usize>,
    out: &mut Vec<Script>,
) {
    if picked.len() == active {
        let mut script: Script = picked.iter().map(|&i| seqs[i].clone()).collect();
        script.resize(procs, Vec::new());
        out.push(script);
        return;
    }
    // Index 0 is the empty sequence: active processors pick from 1...
    for i in 1..seqs.len() {
        if used + seqs[i].len() > max_ops {
            continue;
        }
        picked.push(i);
        ordered_scripts(
            seqs,
            procs,
            active,
            max_ops,
            used + seqs[i].len(),
            picked,
            out,
        );
        picked.pop();
    }
}

/// Whether `script` is inside the paper's soundness envelope for
/// `variant` — the access patterns the dependence test must let PASS.
pub fn envelope_holds(variant: SpecVariant, script: &Script) -> bool {
    let elems: Vec<u64> = {
        let mut all: Vec<u64> = script
            .iter()
            .flatten()
            .map(|op| match op {
                Op::Read(e) | Op::Write(e) => *e,
            })
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    };
    elems.into_iter().all(|e| match variant {
        // Every element read-only or touched by a single processor.
        SpecVariant::NonPriv => {
            let written = script
                .iter()
                .flatten()
                .any(|op| matches!(op, Op::Write(x) if *x == e));
            let touchers = script
                .iter()
                .filter(|seq| {
                    seq.iter()
                        .any(|op| matches!(op, Op::Read(x) | Op::Write(x) if *x == e))
                })
                .count();
            !written || touchers <= 1
        }
        // No read-first iteration later than some writing iteration
        // (stamp(p) = p + 1).
        SpecVariant::Priv => {
            let readers_first: Vec<u64> = (0..script.len())
                .filter(|&p| reads_first(&script[p], e))
                .map(|p| p as u64 + 1)
                .collect();
            let writers: Vec<u64> = (0..script.len())
                .filter(|&p| {
                    script[p]
                        .iter()
                        .any(|op| matches!(op, Op::Write(x) if *x == e))
                })
                .map(|p| p as u64 + 1)
                .collect();
            !readers_first.iter().any(|r| writers.iter().any(|w| r > w))
        }
        // Without read-in, any read-first plus any write (even by the same
        // processor) FAILs.
        SpecVariant::Priv3 => {
            let any_r1st = script.iter().any(|seq| reads_first(seq, e));
            let any_w = script
                .iter()
                .flatten()
                .any(|op| matches!(op, Op::Write(x) if *x == e));
            !(any_r1st && any_w)
        }
    })
}

/// Whether `seq`'s first access to element `e` is a read.
fn reads_first(seq: &[Op], e: u64) -> bool {
    seq.iter()
        .find_map(|op| match op {
            Op::Read(x) if *x == e => Some(true),
            Op::Write(x) if *x == e => Some(false),
            _ => None,
        })
        .unwrap_or(false)
}

/// Per-script exploration result (merged in script order, so totals are
/// independent of worker count).
#[derive(Debug, Clone, Default)]
struct ScriptOutcome {
    states: u64,
    dedup_hits: u64,
    violation: bool,
    invariant_violations: u64,
    any_pass: bool,
    coverage: Coverage,
}

/// Location of the first bad state found, for path reconstruction:
/// an explored ancestor key plus an optional extra edge.
type BadState = (u64, Option<SpecMessage>);

/// Explores every interleaving of one script; if `want_path`, also returns
/// a shortest event path to the first bad state (BFS depth order).
fn explore(
    spec: &ProtocolSpec,
    script: &Script,
    want_path: bool,
) -> (ScriptOutcome, Option<Vec<SpecMessage>>) {
    let envelope = envelope_holds(spec.variant, script);
    let mut outcome = ScriptOutcome::default();
    let init = spec.init();
    let init_pcs = vec![0u16; spec.scope.procs as usize];
    let init_key = spec_state_key(&init, &init_pcs);
    let mut memo: HashSet<u64> = HashSet::new();
    memo.insert(init_key);
    outcome.states = 1;
    let mut parents: HashMap<u64, (u64, SpecMessage)> = HashMap::new();
    let mut frontier: VecDeque<(SpecState, Vec<u16>, u64)> = VecDeque::new();
    frontier.push_back((init, init_pcs, init_key));
    let mut bad: Option<BadState> = None;

    while let Some((s, pcs, key)) = frontier.pop_front() {
        let done = pcs
            .iter()
            .enumerate()
            .all(|(p, &pc)| pc as usize == script[p].len());
        // The verdict is only final once every cache copy has been written
        // back: the machine flushes all caches after a loop (dirty victims
        // merge their access bits at the directory — race case (e), where
        // deferred dirty-line conflicts surface), and only then reads
        // PASS/FAIL. Eviction messages stay enabled while copies remain, so
        // every done state reaches its flushed form within the exploration.
        let flushed = s.copies.iter().all(Option::is_none);
        if !s.failed && done && s.inflight.is_empty() && flushed {
            outcome.any_pass = true;
            if !envelope {
                outcome.violation = true;
                if bad.is_none() {
                    bad = Some((key, None));
                }
            }
        }
        if s.failed {
            // FAIL is absorbing: the speculation aborts, nothing further
            // is protocol-relevant.
            continue;
        }
        if want_path && bad.is_some() {
            break;
        }
        for m in enabled_messages(spec, &s, &pcs, script) {
            let (ns, em) = spec.step(&s, &m);
            let mut npcs = pcs.clone();
            if let SpecMessage::Access { proc, .. } = m {
                npcs[proc as usize] += 1;
            }
            for e in &em {
                if let SpecEmission::Race(i) = e {
                    outcome.coverage.counts[*i as usize] += 1;
                }
            }
            // Transition invariant: privatization stamps move one way.
            if spec.variant == SpecVariant::Priv && !stamps_monotonic(&s, &ns) {
                outcome.invariant_violations += 1;
                if bad.is_none() {
                    bad = Some((key, Some(m)));
                }
            }
            let nkey = spec_state_key(&ns, &npcs);
            if memo.insert(nkey) {
                outcome.states += 1;
                // State invariants, checked once per unique state.
                if !state_invariants_hold(spec, &ns, &npcs, script) {
                    outcome.invariant_violations += 1;
                    if bad.is_none() {
                        bad = Some((key, Some(m)));
                    }
                }
                if want_path {
                    parents.insert(nkey, (key, m));
                }
                frontier.push_back((ns, npcs, nkey));
            } else {
                outcome.dedup_hits += 1;
            }
        }
    }

    let path = if want_path {
        bad.map(|(ancestor, extra)| {
            let mut path = Vec::new();
            let mut k = ancestor;
            while k != init_key {
                let (pk, m) = parents[&k];
                path.push(m);
                k = pk;
            }
            path.reverse();
            path.extend(extra);
            path
        })
    } else {
        None
    };
    (outcome, path)
}

/// Deterministically ordered enabled messages: accesses by processor,
/// deliveries by queue index, evictions by (processor, line).
fn enabled_messages(
    spec: &ProtocolSpec,
    s: &SpecState,
    pcs: &[u16],
    script: &Script,
) -> Vec<SpecMessage> {
    let mut out = Vec::new();
    for (p, &pc) in pcs.iter().enumerate() {
        if let Some(op) = script[p].get(pc as usize) {
            let (write, elem) = match op {
                Op::Read(e) => (false, *e as u16),
                Op::Write(e) => (true, *e as u16),
            };
            out.push(SpecMessage::Access {
                proc: p as u16,
                write,
                elem,
            });
        }
    }
    for index in 0..s.inflight.len() {
        out.push(SpecMessage::Deliver { index });
    }
    for proc in 0..spec.scope.procs {
        for line in 0..spec.scope.lines {
            if s.copies[spec.scope.copy_index(proc, line)].is_some() {
                out.push(SpecMessage::Evict { proc, line });
            }
        }
    }
    out
}

/// `MaxR1st` non-decreasing, `MinW` non-increasing across one transition.
fn stamps_monotonic(prev: &SpecState, next: &SpecState) -> bool {
    prev.dir.iter().zip(&next.dir).all(|(a, b)| match (a, b) {
        (DirElem::Priv(a), DirElem::Priv(b)) => b.max_r1st >= a.max_r1st && b.min_w <= a.min_w,
        _ => true,
    })
}

/// Per-state invariants for one freshly discovered state.
fn state_invariants_hold(spec: &ProtocolSpec, s: &SpecState, pcs: &[u16], script: &Script) -> bool {
    match spec.variant {
        SpecVariant::NonPriv => {
            nonpriv_dirty_exclusive(spec, s)
                && nonpriv_dir_consistent(s)
                && nonpriv_quiescent_agreement(spec, s, pcs, script)
        }
        SpecVariant::Priv => priv_stamps_consistent(s) && priv_tag_agreement(spec, s),
        SpecVariant::Priv3 => priv3_tag_agreement(spec, s),
    }
}

/// At most one dirty copy of each line (non-privatization: dirty means
/// exclusive; private-copy variants legitimately hold many dirty copies).
fn nonpriv_dirty_exclusive(spec: &ProtocolSpec, s: &SpecState) -> bool {
    (0..spec.scope.lines).all(|line| {
        (0..spec.scope.procs)
            .filter(|&p| {
                s.copies[spec.scope.copy_index(p, line)]
                    .as_ref()
                    .is_some_and(|c| c.dirty)
            })
            .count()
            <= 1
    })
}

/// No non-FAILed directory element is simultaneously write-exclusive and
/// read-shared: `NoShr ∧ ROnly` asserts "written by one processor only"
/// and "read by more than the writer" at once, which the clean protocol
/// always resolves to FAIL instead (the write-request `ROnly` test, the
/// update-vs-`NoShr` races (g)/(h), and the write-back merge all refuse
/// it). The `drop-ronly` mutation grants the conflicting write request
/// and manufactures exactly this state.
fn nonpriv_dir_consistent(s: &SpecState) -> bool {
    s.failed
        || s.dir.iter().all(|d| {
            let DirElem::NonPriv(e) = d else {
                return false;
            };
            !(e.no_shr && e.r_only)
        })
}

/// At a quiescent non-FAILed state, clean-copy tag bits agree with the
/// directory: every update they imply has been delivered. Dirty copies
/// accumulate local state and reconcile at write-back, so they are exempt.
fn nonpriv_quiescent_agreement(
    spec: &ProtocolSpec,
    s: &SpecState,
    pcs: &[u16],
    script: &Script,
) -> bool {
    let done = pcs
        .iter()
        .enumerate()
        .all(|(p, &pc)| pc as usize == script[p].len());
    if s.failed || !done || !s.inflight.is_empty() {
        return true;
    }
    (0..spec.scope.procs).all(|p| {
        (0..spec.scope.lines).all(|line| {
            let Some(copy) = &s.copies[spec.scope.copy_index(p, line)] else {
                return true;
            };
            if copy.dirty {
                return true;
            }
            spec.scope.line_range(line).enumerate().all(|(off, e)| {
                let DirElem::NonPriv(d) = s.dir[e as usize] else {
                    return false;
                };
                let t = copy.tags[off];
                (t.first() != FirstTag::Own || d.first == Some(ProcId(p as u32)))
                    && (!t.no_shr() || d.no_shr)
                    && (!t.r_only() || d.r_only)
            })
        })
    })
}

/// `MaxR1st ≤ MinW` in every non-FAILed state.
fn priv_stamps_consistent(s: &SpecState) -> bool {
    s.failed
        || s.dir.iter().all(|d| match d {
            DirElem::Priv(e) => e.max_r1st <= e.min_w,
            _ => true,
        })
}

/// A set `Read1st`/`Write` tag bit implies the private directory recorded
/// the same stamp (the tag is a cache of the private-directory state).
fn priv_tag_agreement(spec: &ProtocolSpec, s: &SpecState) -> bool {
    (0..spec.scope.procs).all(|p| {
        let eff = ProtocolSpec::stamp(p);
        (0..spec.scope.lines).all(|line| {
            let Some(copy) = &s.copies[spec.scope.copy_index(p, line)] else {
                return true;
            };
            spec.scope.line_range(line).enumerate().all(|(off, e)| {
                let PrivateDirElem::Priv { elem, .. } = s.pdir[spec.scope.pdir_index(p, e)] else {
                    return false;
                };
                let t = copy.tags[off];
                (!t.read1st() || elem.pmax_r1st == eff) && (!t.write() || elem.pmax_w == eff)
            })
        })
    })
}

/// Same agreement for the reduced no-read-in bits.
fn priv3_tag_agreement(spec: &ProtocolSpec, s: &SpecState) -> bool {
    (0..spec.scope.procs).all(|p| {
        (0..spec.scope.lines).all(|line| {
            let Some(copy) = &s.copies[spec.scope.copy_index(p, line)] else {
                return true;
            };
            spec.scope.line_range(line).enumerate().all(|(off, e)| {
                let PrivateDirElem::Priv3(pd) = s.pdir[spec.scope.pdir_index(p, e)] else {
                    return false;
                };
                let t = copy.tags[off];
                (!t.read1st() || pd.read1st) && (!t.write() || pd.write)
            })
        })
    })
}

/// Runs the bounded model checker.
///
/// # Panics
///
/// Panics if the scope does not validate — callers should surface
/// [`SpecScope::validate`]'s message first.
pub fn run_model(cfg: &ModelConfig) -> ModelReport {
    let scope = cfg.scope.validate().expect("validated scope");
    let spec = ProtocolSpec::new(cfg.variant, scope);
    let scripts = enumerate_scripts(cfg.variant, scope, cfg.max_ops);
    // Exploration runs the protocol code, which consults the thread-local
    // fault plane: re-install the caller's injection in every worker.
    let injected = fault::current();
    let outcomes = specrt_par::par_map(cfg.jobs, &scripts, |_, script| {
        let _guard = injected.map(fault::Injected::new);
        explore(&spec, script, false).0
    });

    let mut report = ModelReport {
        variant: cfg.variant,
        scope,
        max_ops: cfg.max_ops,
        scripts: scripts.len() as u64,
        states: 0,
        dedup_hits: 0,
        violations: 0,
        invariant_violations: 0,
        conservative: 0,
        coverage: Coverage::new(),
        counterexample: None,
    };
    let mut first_bad = None;
    for (i, (script, o)) in scripts.iter().zip(&outcomes).enumerate() {
        report.states += o.states;
        report.dedup_hits += o.dedup_hits;
        report.violations += u64::from(o.violation);
        report.invariant_violations += o.invariant_violations;
        if envelope_holds(cfg.variant, script) && !o.any_pass {
            report.conservative += 1;
        }
        report.coverage.merge(&o.coverage);
        if first_bad.is_none() && (o.violation || o.invariant_violations > 0) {
            first_bad = Some(i);
        }
    }
    if let Some(i) = first_bad {
        // Scripts are size-sorted, so the first bad script is minimal;
        // re-explore it with parent tracking for a shortest event path.
        let (_, path) = explore(&spec, &scripts[i], true);
        report.counterexample = Some(Counterexample {
            variant: cfg.variant,
            scope,
            script: scripts[i].clone(),
            path: path.expect("bad script must re-derive a path"),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_universe_is_symmetry_reduced_and_size_sorted() {
        let scope = SpecScope {
            lines: 1,
            elems: 2,
            procs: 2,
        };
        let scripts = enumerate_scripts(SpecVariant::NonPriv, scope, 4);
        // Non-decreasing sizes.
        let sizes: Vec<usize> = scripts
            .iter()
            .map(|s| s.iter().map(Vec::len).sum())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        // No permutation duplicates: sorting the two sequences of any
        // script reproduces the script itself (canonical form).
        for s in &scripts {
            let mut sorted = s.clone();
            sorted.sort_by_key(|seq| format!("{seq:?}"));
            let mut canon = s.clone();
            canon.sort_by_key(|seq| format!("{seq:?}"));
            assert_eq!(sorted, canon);
        }
        // The stamped variant enumerates strictly more scripts (ordering
        // matters) but still compacts idle processors to the tail.
        let privs = enumerate_scripts(SpecVariant::Priv, scope, 4);
        assert!(privs.len() > scripts.len());
        for s in &privs {
            let first_idle = s.iter().position(Vec::is_empty).unwrap_or(s.len());
            assert!(s[first_idle..].iter().all(Vec::is_empty), "{s:?}");
        }
    }

    #[test]
    fn envelope_oracles() {
        let r0 = Op::Read(0);
        let w0 = Op::Write(0);
        // Cross-processor write sharing breaks the nonpriv envelope.
        assert!(envelope_holds(
            SpecVariant::NonPriv,
            &vec![vec![r0], vec![r0]]
        ));
        assert!(!envelope_holds(
            SpecVariant::NonPriv,
            &vec![vec![r0], vec![w0]]
        ));
        // priv: read-first at a later stamp than a write fails; the
        // reverse order of stamps is fine.
        assert!(!envelope_holds(
            SpecVariant::Priv,
            &vec![vec![w0], vec![r0]]
        ));
        assert!(envelope_holds(SpecVariant::Priv, &vec![vec![r0], vec![w0]]));
        // Same-processor read-then-write is allowed with stamps...
        assert!(envelope_holds(SpecVariant::Priv, &vec![vec![r0, w0]]));
        // ...but not without read-in.
        assert!(!envelope_holds(SpecVariant::Priv3, &vec![vec![r0, w0]]));
        assert!(envelope_holds(SpecVariant::Priv3, &vec![vec![w0, r0]]));
    }

    #[test]
    fn smoke_scopes_are_sound_and_cover_all_races() {
        for variant in SpecVariant::ALL {
            let report = run_model(&ModelConfig::smoke(variant));
            assert!(report.ok(), "{}:\n{}", variant.name(), report.render());
            assert!(
                report.coverage.complete(),
                "{} missed {:?}",
                variant.name(),
                report.coverage.unvisited()
            );
        }
    }
}
