//! The fuzzing loop: generate → differentially check → shrink failures.

use specrt_engine::{SplitMix64, StatSet};

use crate::diff::{run_case, Mismatch};
use crate::generate::{CaseSpec, TEMPLATE_SEEDS};
use crate::shrink::shrink;

/// One oracle disagreement found by the fuzzer, with its shrunk witness.
#[derive(Debug)]
pub struct FuzzFailure {
    /// Seed that generated the failing case (replay with
    /// `specrt-check replay <seed>`).
    pub seed: u64,
    /// The disagreements of the *original* case.
    pub mismatches: Vec<Mismatch>,
    /// 1-minimal shrunk counterexample (still disagreeing).
    pub shrunk: CaseSpec,
}

/// Outcome of a fuzzing run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Merged hardware-protocol statistics (race-case coverage).
    pub stats: StatSet,
    /// Failures found (empty = machine agrees with the oracle everywhere).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Whether no disagreement was found.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Race-case letters of (a)–(h) visited by the hardware runs.
    pub fn visited_race_cases(&self) -> Vec<char> {
        (b'a'..=b'h')
            .filter(|c| {
                let key = format!("race_case_{}", *c as char);
                self.stats.iter().any(|(k, v)| k == key && v > 0)
            })
            .map(char::from)
            .collect()
    }
}

/// Whether `case` disagrees with the oracle (the shrinking predicate).
pub fn case_fails(case: &CaseSpec) -> bool {
    !run_case(case).ok()
}

/// Runs `cases` differential checks. The first [`TEMPLATE_SEEDS`] cases are
/// the deterministic templates (degenerate shapes); the rest draw their
/// case seeds from a [`SplitMix64`] stream seeded with `seed`, so the whole
/// run is reproducible from `(cases, seed)` and any single failure from its
/// case seed alone.
pub fn fuzz(cases: u64, seed: u64) -> FuzzReport {
    let mut rng = SplitMix64::new(seed);
    let mut stats = StatSet::new();
    let mut failures = Vec::new();
    for i in 0..cases {
        let case_seed = if i < TEMPLATE_SEEDS {
            i
        } else {
            rng.next_u64()
        };
        let case = CaseSpec::generate(case_seed);
        let r = run_case(&case);
        stats.merge(&r.stats);
        if !r.ok() {
            let shrunk = shrink(&case, case_fails);
            failures.push(FuzzFailure {
                seed: case_seed,
                mismatches: r.mismatches,
                shrunk,
            });
            if failures.len() >= 3 {
                break; // enough witnesses; don't shrink forever
            }
        }
    }
    FuzzReport {
        cases,
        stats,
        failures,
    }
}

/// Replays one case seed; returns the shrunk failure if it disagrees.
pub fn replay(seed: u64) -> Option<FuzzFailure> {
    let case = CaseSpec::generate(seed);
    let r = run_case(&case);
    if r.ok() {
        return None;
    }
    let shrunk = shrink(&case, case_fails);
    Some(FuzzFailure {
        seed,
        mismatches: r.mismatches,
        shrunk,
    })
}

/// Parses one `corpus/*.seed` file: `#` comment lines, then one seed in
/// decimal or `0x` hex.
pub fn parse_seed(text: &str) -> Option<u64> {
    let line = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))?;
    if let Some(hex) = line.strip_prefix("0x").or_else(|| line.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        line.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("42\n"), Some(42));
        assert_eq!(parse_seed("# comment\n0x5eed\n"), Some(0x5eed));
        assert_eq!(parse_seed("# only comments\n"), None);
    }

    #[test]
    fn small_fuzz_run_is_clean_and_reproducible() {
        let a = fuzz(12, 0x5eed);
        assert!(a.ok(), "fuzz found disagreements: {:?}", a.failures);
        let b = fuzz(12, 0x5eed);
        assert_eq!(
            a.stats.iter().collect::<Vec<_>>(),
            b.stats.iter().collect::<Vec<_>>(),
            "same (cases, seed) must reproduce identical statistics"
        );
    }
}
