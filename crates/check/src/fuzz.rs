//! The fuzzing loop: generate → differentially check → shrink failures.
//!
//! Every case is checked twice over: once against the protocol oracles on
//! a healthy interconnect ([`run_case`]), and once with each node-level
//! fault kind fired mid-loop under checkpoint-restart recovery
//! ([`node_fault_legs`]) — the recovered image must still be the serial
//! one. Both legs feed the same failure list and the same shrinker.
//!
//! Case execution fans out over a [`specrt_par`] worker pool: every case is
//! an independent, deterministic simulation, so the only ordering that
//! matters is the *merge* order of the results — which [`fuzz_jobs`] keeps
//! fixed at seed order regardless of the worker count. `fuzz(c, s)` and
//! `fuzz_jobs(c, s, j)` therefore produce byte-identical reports for every
//! `j ≥ 1`; a regression test and a CI cross-check pin that.

use specrt_engine::{SplitMix64, StatSet};
use specrt_spec::fault;

use crate::diff::{node_fault_legs, run_case, CaseResult, Mismatch};
use crate::generate::{CaseSpec, TEMPLATE_SEEDS};
use crate::shrink::shrink;

/// The race-case counter keys bumped by `specrt-proto` at the eight
/// protocol sites of the paper's Figs. 6–7, in letter order.
pub const RACE_CASE_KEYS: [&str; 8] = [
    "race_case_a",
    "race_case_b",
    "race_case_c",
    "race_case_d",
    "race_case_e",
    "race_case_f",
    "race_case_g",
    "race_case_h",
];

/// Witnesses the fuzzer keeps (and shrinks) before it stops collecting.
const MAX_FAILURES: usize = 3;

/// One oracle disagreement found by the fuzzer, with its shrunk witness.
#[derive(Debug)]
pub struct FuzzFailure {
    /// Seed that generated the failing case (replay with
    /// `specrt-check replay <seed>`).
    pub seed: u64,
    /// The disagreements of the *original* case.
    pub mismatches: Vec<Mismatch>,
    /// 1-minimal shrunk counterexample (still disagreeing).
    pub shrunk: CaseSpec,
}

/// Outcome of a fuzzing run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Stream seed the run was started with.
    pub seed: u64,
    /// Merged hardware-protocol statistics (race-case coverage).
    pub stats: StatSet,
    /// Failures found (empty = machine agrees with the oracle everywhere).
    /// At most the first `MAX_FAILURES` (3) in seed order are kept and
    /// shrunk.
    pub failures: Vec<FuzzFailure>,
    /// Worker-pool counters of the run. Per-worker claims depend on thread
    /// scheduling, so this never feeds [`render`](Self::render) — it is for
    /// the opt-in profile / metrics channel only.
    pub pool: specrt_par::PoolTelemetry,
}

impl FuzzReport {
    /// Whether no disagreement was found.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Race-case letters of (a)–(h) visited by the hardware runs, via
    /// direct lookups of the eight static keys — no per-letter rescan, and
    /// no silent miss if a counter is ever renamed (debug builds assert
    /// every `race_case_*` counter in the set is one of the known keys).
    pub fn visited_race_cases(&self) -> Vec<char> {
        #[cfg(debug_assertions)]
        for (key, _) in self.stats.iter() {
            assert!(
                !key.starts_with("race_case_") || RACE_CASE_KEYS.contains(&key),
                "unknown race-case counter {key:?}; update RACE_CASE_KEYS"
            );
        }
        RACE_CASE_KEYS
            .iter()
            .enumerate()
            .filter(|(_, key)| self.stats.get(key) > 0)
            .map(|(i, _)| (b'a' + i as u8) as char)
            .collect()
    }

    /// Deterministic plain-text rendering: the summary line followed by one
    /// block per failure. This is exactly what `specrt-check fuzz` prints,
    /// and what the `-j1` vs `-jN` byte-identity gate compares.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "fuzz: {} cases, seed {:#x}, {} failure(s), race cases visited: {:?}\n",
            self.cases,
            self.seed,
            self.failures.len(),
            self.visited_race_cases()
        );
        for f in &self.failures {
            let _ = writeln!(out, "seed {:#x} disagrees with the oracle:", f.seed);
            for m in &f.mismatches {
                let _ = writeln!(out, "  {m}");
            }
            let _ = writeln!(out, "shrunk to {} accesses:", f.shrunk.accesses());
            let _ = write!(out, "{}", render_case(&f.shrunk));
        }
        out
    }
}

/// Deterministic rendering of one case (shared by `render` and the CLI).
pub fn render_case(case: &CaseSpec) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "  procs={} elems={} schedule={:?} iters={} accesses={}\n",
        case.procs,
        case.elems,
        case.schedule,
        case.iters(),
        case.accesses()
    );
    for (i, ops) in case.ops.iter().enumerate() {
        let _ = writeln!(out, "    iter {i}: {ops:?}");
    }
    out
}

/// Runs the full differential check of one case: every protocol against
/// the oracle ([`run_case`]), then the node-fault legs — each node-level
/// fault kind fired mid-loop under checkpoint-restart recovery, image-
/// checked against serial ([`node_fault_legs`]).
pub fn run_case_full(case: &CaseSpec) -> CaseResult {
    let mut r = run_case(case);
    r.mismatches.extend(node_fault_legs(case));
    r
}

/// Whether `case` disagrees with the oracle on any leg (the shrinking
/// predicate).
pub fn case_fails(case: &CaseSpec) -> bool {
    !run_case_full(case).ok()
}

/// The case seeds of a `(cases, seed)` run: the first [`TEMPLATE_SEEDS`]
/// are the deterministic templates (degenerate shapes); the rest draw from
/// a [`SplitMix64`] stream seeded with `seed`.
fn case_seeds(cases: u64, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..cases)
        .map(|i| {
            if i < TEMPLATE_SEEDS {
                i
            } else {
                rng.next_u64()
            }
        })
        .collect()
}

/// Runs `cases` differential checks single-threaded. The whole run is
/// reproducible from `(cases, seed)` and any single failure from its case
/// seed alone. Equivalent to [`fuzz_jobs`] with `jobs = 1`.
pub fn fuzz(cases: u64, seed: u64) -> FuzzReport {
    fuzz_jobs(cases, seed, 1)
}

/// [`fuzz`] with the cases distributed over `jobs` worker threads.
///
/// Per-worker [`StatSet`]s are merged in seed order (the merge is
/// order-independent anyway — all counters are sums), failures are
/// collected in seed order, and only then are the first `MAX_FAILURES`
/// shrunk, on the calling thread. An active [`fault`] injection is
/// replicated onto every worker. The report is byte-identical for every
/// `jobs ≥ 1`.
pub fn fuzz_jobs(cases: u64, seed: u64, jobs: usize) -> FuzzReport {
    let seeds = case_seeds(cases, seed);
    let injected = fault::current();
    let (results, pool) = specrt_par::par_map_telemetry(jobs, 1, &seeds, |_, &case_seed| {
        let _guard = injected.map(fault::Injected::new);
        let case = {
            let _prof = specrt_prof::scope("fuzz.gen");
            CaseSpec::generate(case_seed)
        };
        let _prof = specrt_prof::scope("fuzz.case");
        run_case_full(&case)
    });

    let mut stats = StatSet::new();
    let mut failing: Vec<(u64, Vec<Mismatch>)> = Vec::new();
    for (&case_seed, r) in seeds.iter().zip(results) {
        stats.merge(&r.stats);
        if !r.ok() && failing.len() < MAX_FAILURES {
            failing.push((case_seed, r.mismatches));
        }
    }
    let failures = failing
        .into_iter()
        .map(|(case_seed, mismatches)| {
            let _prof = specrt_prof::scope("fuzz.shrink");
            FuzzFailure {
                seed: case_seed,
                mismatches,
                shrunk: shrink(&CaseSpec::generate(case_seed), case_fails),
            }
        })
        .collect();
    FuzzReport {
        cases,
        seed,
        stats,
        failures,
        pool,
    }
}

/// Replays one case seed; returns the shrunk failure if it disagrees.
pub fn replay(seed: u64) -> Option<FuzzFailure> {
    let case = CaseSpec::generate(seed);
    let r = run_case_full(&case);
    if r.ok() {
        return None;
    }
    let shrunk = shrink(&case, case_fails);
    Some(FuzzFailure {
        seed,
        mismatches: r.mismatches,
        shrunk,
    })
}

/// Parses one `corpus/*.seed` file: `#` comment lines, then one seed in
/// decimal or `0x` hex.
pub fn parse_seed(text: &str) -> Option<u64> {
    let line = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))?;
    if let Some(hex) = line.strip_prefix("0x").or_else(|| line.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        line.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("42\n"), Some(42));
        assert_eq!(parse_seed("# comment\n0x5eed\n"), Some(0x5eed));
        assert_eq!(parse_seed("# only comments\n"), None);
    }

    #[test]
    fn small_fuzz_run_is_clean_and_reproducible() {
        let a = fuzz(12, 0x5eed);
        assert!(a.ok(), "fuzz found disagreements: {:?}", a.failures);
        let b = fuzz(12, 0x5eed);
        assert_eq!(
            a.stats.iter().collect::<Vec<_>>(),
            b.stats.iter().collect::<Vec<_>>(),
            "same (cases, seed) must reproduce identical statistics"
        );
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn parallel_fuzz_matches_single_threaded() {
        let serial = fuzz(16, 0xfeed);
        for jobs in [2, 4] {
            let par = fuzz_jobs(16, 0xfeed, jobs);
            assert_eq!(par.render(), serial.render(), "jobs={jobs}");
            assert_eq!(
                par.stats.iter().collect::<Vec<_>>(),
                serial.stats.iter().collect::<Vec<_>>(),
                "jobs={jobs}: merged stats must be identical"
            );
        }
    }

    #[test]
    fn race_case_keys_match_visited_letters() {
        // A run big enough to visit every race case: the letters must come
        // from the static keys, in order.
        let r = fuzz(64, 0x5eed);
        let visited = r.visited_race_cases();
        assert!(visited.windows(2).all(|w| w[0] < w[1]), "sorted letters");
        for c in &visited {
            let key = RACE_CASE_KEYS[(*c as u8 - b'a') as usize];
            assert!(r.stats.get(key) > 0, "letter {c} without counter {key}");
        }
    }
}
