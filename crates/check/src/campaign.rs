//! Deterministic fault-injection campaign: sweep the interconnect fault
//! plane over generated loops and prove the resilience story end to end.
//!
//! A campaign is a grid of *cells* — fault kind (`drop` / `duplicate` /
//! `delay`) × injection rate (ppm) × fault seed. Every cell runs the same
//! set of generated [`CaseSpec`] loops on the hardware scenario under a
//! lossy interconnect and checks the one property faults must never break:
//! **the final memory image equals the serial oracle's in every run** —
//! whether the loop completed speculatively, recovered through the
//! watchdog's retransmissions, re-ran under
//! [`RecoveryPolicy::RetrySpeculative`], or fell back to the paper's serial
//! safety net.
//!
//! Alongside the safety check the campaign produces a *degradation report*
//! per cell: completion rate (runs that still passed speculatively), mean
//! retransmissions per run, and added latency relative to the fault-free
//! baseline of the same loops. [`CampaignReport::render_json`] is a
//! deterministic JSON document; cells fan out over a [`specrt_par`] worker
//! pool and merge in grid order, so the rendering is byte-identical for
//! every `--jobs` value (a CI cross-check pins this).

use specrt_machine::{
    run_scenario_configured, CheckpointConfig, MachineConfig, RecoveryPolicy, RunResult, Scenario,
};
use specrt_mem::MemoryImage;
use specrt_proto::{FaultConfig, NetConfig, NodeFaultConfig, NodeFaultKind};
use specrt_spec::{fault, ProtocolKind};

use crate::generate::{CaseSpec, ARR_A, ARR_OUT};

/// The network fault kinds a campaign sweeps, in report order.
pub const FAULT_KINDS: [&str; 3] = ["drop", "duplicate", "delay"];

/// Extra in-flight cycles the `delay` kind adds to an affected message.
pub const DELAY_CYCLES: u64 = 2_000;

/// The node-fault kinds the node grid sweeps, in report order.
pub const NODE_FAULT_KINDS: [&str; 3] = ["crash", "pause", "partition"];

/// Outage length of `pause` and `partition` node-grid cells.
pub const NODE_OUTAGE_CYCLES: u64 = 60_000;

/// An `at_cycle` far beyond any run's length: the configured fault never
/// strikes, and the cell doubles as the inertness gate — it must be
/// cycle-exact against the fault-free baseline of the same recovery policy.
pub const NODE_FAULT_NEVER: u64 = u64::MAX / 2;

/// Campaign grid parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Generated case seeds `0..cases` (the hand-written templates first).
    pub cases: u64,
    /// Fault-plane seeds per (kind, rate) cell.
    pub fault_seeds: u64,
    /// Injection rates swept, in parts per million of messages affected.
    /// Rate `0` cells double as the regression gate: they must behave
    /// byte-identically to the fault-free baseline.
    pub rates_ppm: Vec<u32>,
    /// Failure-recovery policy of every hardware run (and of the fault-free
    /// baseline, so latency ratios compare like with like).
    pub recovery: RecoveryPolicy,
    /// Optional node-level fault grid (crash / pause / partition), run in
    /// addition to the message-level grid and reported as `node_cells`.
    pub node_grid: Option<NodeGridConfig>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            cases: 6,
            fault_seeds: 2,
            rates_ppm: vec![0, 50_000, 200_000],
            recovery: RecoveryPolicy::RetrySpeculative { max_attempts: 1 },
            node_grid: None,
        }
    }
}

/// The node-fault grid: `kind × node × at_cycle` cells, each running every
/// case seed under both protocols with a single node crashed, paused, or
/// partitioned off at `at_cycle`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeGridConfig {
    /// Node ids struck by the fault (clamped per case to `procs - 1` so a
    /// grid spanning large machines stays meaningful on small ones).
    pub nodes: Vec<u32>,
    /// Cycle offsets the fault activates at. Include [`NODE_FAULT_NEVER`]
    /// to pin the inertness gate.
    pub at_cycles: Vec<u64>,
    /// Recovery policy of the node runs (and of their fault-free baseline).
    pub recovery: RecoveryPolicy,
}

impl Default for NodeGridConfig {
    fn default() -> Self {
        NodeGridConfig {
            nodes: vec![1],
            at_cycles: vec![0, 2_000, NODE_FAULT_NEVER],
            recovery: RecoveryPolicy::CheckpointRestart {
                checkpoint: CheckpointConfig { every_iters: 4 },
            },
        }
    }
}

/// Stable single-token rendering of a recovery policy for the JSON report.
fn recovery_label(r: RecoveryPolicy) -> String {
    match r {
        RecoveryPolicy::SerialReexec => "serial-reexec".to_string(),
        RecoveryPolicy::RetrySpeculative { max_attempts } => {
            format!("retry-speculative({max_attempts})")
        }
        RecoveryPolicy::CheckpointRestart { checkpoint } => {
            format!("checkpoint-restart({})", checkpoint.every_iters)
        }
    }
}

/// The two hardware protocols every case runs under.
const PROTOCOLS: [(&str, ProtocolKind); 2] = [
    ("nonpriv", ProtocolKind::NonPriv),
    (
        "priv",
        ProtocolKind::Priv {
            read_in: true,
            copy_out: true,
        },
    ),
];

/// Aggregate outcome of one campaign cell (kind × rate × fault seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellReport {
    /// Fault kind (one of [`FAULT_KINDS`]).
    pub kind: &'static str,
    /// Injection rate in ppm.
    pub rate_ppm: u32,
    /// Fault-plane seed of the cell.
    pub fault_seed: u64,
    /// Hardware runs executed (cases × protocols).
    pub runs: u64,
    /// Runs whose speculation passed (no serial fallback).
    pub speculative_passes: u64,
    /// Runs that aborted and took the serial safety net.
    pub serial_fallbacks: u64,
    /// Runs whose final image differed from the serial oracle. Any nonzero
    /// value is a correctness bug — faults may cost time, never answers.
    pub image_mismatches: u64,
    /// Messages the fault plane dropped / duplicated / extra-delayed.
    pub faults_injected: u64,
    /// Watchdog retransmissions across all runs.
    pub resends: u64,
    /// Speculative loop re-runs taken by the recovery policy.
    pub reruns: u64,
    /// Watchdog escalations (every transmission of a message lost).
    pub exhausted: u64,
    /// Summed machine cycles of the cell's runs.
    pub total_cycles: u64,
    /// Summed cycles of the same runs on the fault-free interconnect.
    pub baseline_cycles: u64,
}

/// Aggregate outcome of one node-fault cell (kind × node × at_cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeCellReport {
    /// Node-fault kind (one of [`NODE_FAULT_KINDS`]).
    pub kind: &'static str,
    /// Node struck (before per-case clamping).
    pub node: u32,
    /// Cycle the fault activates at.
    pub at_cycle: u64,
    /// Hardware runs executed (cases × protocols).
    pub runs: u64,
    /// Runs whose speculation passed without any recovery.
    pub speculative_passes: u64,
    /// Runs that recovered through a checkpoint restart.
    pub checkpoint_restores: u64,
    /// Runs that ended in a serial re-execution (whole loop or suffix).
    pub serial_fallbacks: u64,
    /// Runs whose final image differed from the serial oracle (must be 0).
    pub image_mismatches: u64,
    /// Messages the node fault swallowed across all runs.
    pub swallowed: u64,
    /// Watchdog escalations to `NodeUnreachable`.
    pub unreachable: u64,
    /// Checkpoint snapshots taken.
    pub snapshots: u64,
    /// Watchdog retransmissions across all runs.
    pub resends: u64,
    /// Summed machine cycles of the cell's runs.
    pub total_cycles: u64,
    /// Summed cycles of the same runs on the fault-free interconnect
    /// (under the node grid's recovery policy).
    pub baseline_cycles: u64,
}

/// Outcome of a whole campaign.
#[derive(Debug)]
pub struct CampaignReport {
    /// The grid that was run.
    pub cfg: CampaignConfig,
    /// Per-cell outcomes in grid order (kind, then rate, then fault seed).
    pub cells: Vec<CellReport>,
    /// Node-fault cells in grid order (kind, then node, then at_cycle);
    /// empty when the campaign ran without a node grid.
    pub node_cells: Vec<NodeCellReport>,
    /// Speculative passes of the fault-free baseline (same cases,
    /// protocols and recovery policy — the completion rate faults are
    /// judged against).
    pub baseline_passes: u64,
    /// Runs per cell (cases × protocols).
    pub runs_per_cell: u64,
}

impl CampaignReport {
    /// Whether every run of every cell reproduced the serial oracle image.
    pub fn ok(&self) -> bool {
        self.cells.iter().all(|c| c.image_mismatches == 0)
            && self.node_cells.iter().all(|c| c.image_mismatches == 0)
    }

    /// Total image mismatches (must be zero).
    pub fn image_mismatches(&self) -> u64 {
        self.cells.iter().map(|c| c.image_mismatches).sum::<u64>()
            + self
                .node_cells
                .iter()
                .map(|c| c.image_mismatches)
                .sum::<u64>()
    }

    /// Deterministic JSON rendering — the `BENCH_faults.json` artifact.
    /// Stable key order, integers except the two fixed-precision ratios,
    /// byte-identical across worker counts.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n  \"campaign\": {");
        let _ = write!(
            out,
            "\"cases\": {}, \"fault_seeds\": {}, \"rates_ppm\": {:?}, \
             \"kinds\": [\"drop\", \"duplicate\", \"delay\"], \
             \"protocols\": [\"nonpriv\", \"priv\"], \
             \"recovery\": \"{}\", \"runs_per_cell\": {}, \
             \"baseline_passes\": {}",
            self.cfg.cases,
            self.cfg.fault_seeds,
            self.cfg.rates_ppm,
            recovery_label(self.cfg.recovery),
            self.runs_per_cell,
            self.baseline_passes,
        );
        if let Some(ng) = &self.cfg.node_grid {
            let _ = write!(
                out,
                ", \"node_grid\": {{\"kinds\": [\"crash\", \"pause\", \"partition\"], \
                 \"nodes\": {:?}, \"at_cycles\": {:?}, \"recovery\": \"{}\"}}",
                ng.nodes,
                ng.at_cycles,
                recovery_label(ng.recovery),
            );
        }
        out.push_str("},\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let added_pct = if c.baseline_cycles > 0 {
                (c.total_cycles as f64 - c.baseline_cycles as f64) * 100.0
                    / c.baseline_cycles as f64
            } else {
                0.0
            };
            let _ = write!(
                out,
                "    {{\"kind\": \"{}\", \"rate_ppm\": {}, \"fault_seed\": {}, \
                 \"runs\": {}, \"speculative_passes\": {}, \"serial_fallbacks\": {}, \
                 \"image_mismatches\": {}, \"faults_injected\": {}, \"resends\": {}, \
                 \"reruns\": {}, \"exhausted\": {}, \"total_cycles\": {}, \
                 \"baseline_cycles\": {}, \"added_latency_pct\": {:.2}}}",
                c.kind,
                c.rate_ppm,
                c.fault_seed,
                c.runs,
                c.speculative_passes,
                c.serial_fallbacks,
                c.image_mismatches,
                c.faults_injected,
                c.resends,
                c.reruns,
                c.exhausted,
                c.total_cycles,
                c.baseline_cycles,
                added_pct,
            );
            out.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"node_cells\": [\n");
        for (i, c) in self.node_cells.iter().enumerate() {
            let added_pct = if c.baseline_cycles > 0 {
                (c.total_cycles as f64 - c.baseline_cycles as f64) * 100.0
                    / c.baseline_cycles as f64
            } else {
                0.0
            };
            let _ = write!(
                out,
                "    {{\"kind\": \"{}\", \"node\": {}, \"at_cycle\": {}, \"runs\": {}, \
                 \"speculative_passes\": {}, \"checkpoint_restores\": {}, \
                 \"serial_fallbacks\": {}, \"image_mismatches\": {}, \"swallowed\": {}, \
                 \"unreachable\": {}, \"snapshots\": {}, \"resends\": {}, \
                 \"total_cycles\": {}, \"baseline_cycles\": {}, \
                 \"added_latency_pct\": {:.2}}}",
                c.kind,
                c.node,
                c.at_cycle,
                c.runs,
                c.speculative_passes,
                c.checkpoint_restores,
                c.serial_fallbacks,
                c.image_mismatches,
                c.swallowed,
                c.unreachable,
                c.snapshots,
                c.resends,
                c.total_cycles,
                c.baseline_cycles,
                added_pct,
            );
            out.push_str(if i + 1 < self.node_cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"summary\": {");
        let runs: u64 = self.cells.iter().map(|c| c.runs).sum();
        let passes: u64 = self.cells.iter().map(|c| c.speculative_passes).sum();
        let resends: u64 = self.cells.iter().map(|c| c.resends).sum();
        let completion = if runs > 0 {
            passes as f64 * 100.0 / runs as f64
        } else {
            100.0
        };
        let mean_resends = if runs > 0 {
            resends as f64 / runs as f64
        } else {
            0.0
        };
        let node_runs: u64 = self.node_cells.iter().map(|c| c.runs).sum();
        let node_restores: u64 = self.node_cells.iter().map(|c| c.checkpoint_restores).sum();
        let node_unreachable: u64 = self.node_cells.iter().map(|c| c.unreachable).sum();
        let _ = write!(
            out,
            "\"runs\": {}, \"image_mismatches\": {}, \"completion_rate_pct\": {:.2}, \
             \"mean_resends_per_run\": {:.4}, \"node_runs\": {}, \
             \"node_checkpoint_restores\": {}, \"node_unreachable\": {}",
            runs,
            self.image_mismatches(),
            completion,
            mean_resends,
            node_runs,
            node_restores,
            node_unreachable,
        );
        out.push_str("}\n}\n");
        out
    }
}

/// The fault plane of one cell. Rates are mutually exclusive per kind so a
/// cell isolates one failure mode; the seed is mixed with the case seed so
/// every run draws an independent — but reproducible — decision stream.
fn cell_faults(kind: &'static str, rate_ppm: u32, fault_seed: u64, case_seed: u64) -> FaultConfig {
    let seed = fault_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(case_seed.rotate_left(17))
        .wrapping_add(1);
    match kind {
        "drop" => FaultConfig {
            seed,
            drop_ppm: rate_ppm,
            ..FaultConfig::none()
        },
        "duplicate" => FaultConfig {
            seed,
            dup_ppm: rate_ppm,
            ..FaultConfig::none()
        },
        "delay" => FaultConfig {
            seed,
            delay_ppm: rate_ppm,
            delay_cycles: DELAY_CYCLES,
            ..FaultConfig::none()
        },
        other => unreachable!("unknown fault kind {other}"),
    }
}

/// The fault plane of one node-grid cell: a single node-level fault, no
/// message-level rates (node faults are pure functions of the topology and
/// the clock, so these cells draw no randomness at all).
fn node_cell_faults(kind: &'static str, node: u32, at_cycle: u64) -> FaultConfig {
    let kind = match kind {
        "crash" => NodeFaultKind::Crash,
        "pause" => NodeFaultKind::Pause {
            for_cycles: NODE_OUTAGE_CYCLES,
        },
        "partition" => NodeFaultKind::Partition {
            for_cycles: NODE_OUTAGE_CYCLES,
        },
        other => unreachable!("unknown node fault kind {other}"),
    };
    FaultConfig {
        node_fault: Some(NodeFaultConfig {
            kind,
            node,
            at_cycle,
        }),
        ..FaultConfig::none()
    }
}

fn machine_cfg(procs: u32, recovery: RecoveryPolicy, faults: FaultConfig) -> MachineConfig {
    MachineConfig::with_procs(procs)
        .with_net(NetConfig::flat().with_faults(faults))
        .with_recovery(recovery)
}

fn hw_run(case: &CaseSpec, protocol: ProtocolKind, cfg: MachineConfig) -> RunResult {
    run_scenario_configured(&case.loop_spec(protocol, true), Scenario::Hw, cfg)
}

/// One case's precomputed ground truth: the serial image plus the fault-free
/// hardware runs it is compared against.
struct Baseline {
    case: CaseSpec,
    serial: MemoryImage,
    /// Per protocol (in [`PROTOCOLS`] order): (passed speculatively, cycles).
    fault_free: Vec<(bool, u64)>,
}

/// Runs the campaign grid over `jobs` worker threads. Deterministic: the
/// report (and its JSON rendering) is byte-identical for every `jobs ≥ 1`.
pub fn run_campaign(cfg: &CampaignConfig, jobs: usize) -> CampaignReport {
    // Ground truth first: serial oracle image and fault-free hardware
    // timing per case, computed once and shared by every cell.
    let case_seeds: Vec<u64> = (0..cfg.cases).collect();
    let recovery = cfg.recovery;
    // Replicate the caller's active fault injection onto every worker
    // thread (it is thread-local), as the fuzzer does.
    let injected = fault::current();
    let baselines: Vec<Baseline> = specrt_par::par_map(jobs, &case_seeds, |_, &seed| {
        let _prof = specrt_prof::scope("campaign.baseline");
        let _guard = injected.map(fault::Injected::new);
        let case = CaseSpec::generate(seed);
        let serial = run_scenario_configured(
            &case.loop_spec(ProtocolKind::NonPriv, true),
            Scenario::Serial,
            machine_cfg(case.procs, recovery, FaultConfig::none()),
        )
        .final_image;
        let fault_free = PROTOCOLS
            .iter()
            .map(|&(_, protocol)| {
                let r = hw_run(
                    &case,
                    protocol,
                    machine_cfg(case.procs, recovery, FaultConfig::none()),
                );
                (r.passed == Some(true), r.total_cycles.raw())
            })
            .collect();
        Baseline {
            case,
            serial,
            fault_free,
        }
    });
    let baseline_passes = baselines
        .iter()
        .flat_map(|b| &b.fault_free)
        .filter(|(passed, _)| *passed)
        .count() as u64;

    // The grid, in report order.
    let mut grid: Vec<(&'static str, u32, u64)> = Vec::new();
    for kind in FAULT_KINDS {
        for &rate in &cfg.rates_ppm {
            for fault_seed in 0..cfg.fault_seeds {
                grid.push((kind, rate, fault_seed));
            }
        }
    }

    let cells = specrt_par::par_map(jobs, &grid, |_, &(kind, rate_ppm, fault_seed)| {
        let _prof = specrt_prof::scope("campaign.cell");
        let _guard = injected.map(fault::Injected::new);
        let mut cell = CellReport {
            kind,
            rate_ppm,
            fault_seed,
            runs: 0,
            speculative_passes: 0,
            serial_fallbacks: 0,
            image_mismatches: 0,
            faults_injected: 0,
            resends: 0,
            reruns: 0,
            exhausted: 0,
            total_cycles: 0,
            baseline_cycles: 0,
        };
        for b in &baselines {
            let faults = cell_faults(kind, rate_ppm, fault_seed, b.case.seed);
            for (pi, &(_, protocol)) in PROTOCOLS.iter().enumerate() {
                let r = hw_run(
                    &b.case,
                    protocol,
                    machine_cfg(b.case.procs, recovery, faults),
                );
                cell.runs += 1;
                match r.passed {
                    Some(true) => cell.speculative_passes += 1,
                    _ => cell.serial_fallbacks += 1,
                }
                if !r.final_image.same_contents(&b.serial, &[ARR_A, ARR_OUT]) {
                    cell.image_mismatches += 1;
                }
                cell.faults_injected += r.stats.get("fault.dropped")
                    + r.stats.get("fault.duplicated")
                    + r.stats.get("fault.delayed");
                cell.resends += r.stats.get("retry.resends");
                cell.reruns += r.stats.get("retry.speculative_reruns");
                cell.exhausted += r.stats.get("retry.exhausted");
                cell.total_cycles += r.total_cycles.raw();
                cell.baseline_cycles += b.fault_free[pi].1;
            }
        }
        cell
    });

    // The node-fault grid, when configured. It has its own fault-free
    // baseline: the node recovery policy (checkpoint restart by default)
    // clamps stamp windows and pays snapshot barriers, so its cycles differ
    // from the message grid's baseline even with no fault in sight.
    let node_cells = match &cfg.node_grid {
        None => Vec::new(),
        Some(ng) => {
            let node_recovery = ng.recovery;
            let node_baselines: Vec<Baseline> =
                specrt_par::par_map(jobs, &case_seeds, |_, &seed| {
                    let _prof = specrt_prof::scope("campaign.node_baseline");
                    let _guard = injected.map(fault::Injected::new);
                    let case = CaseSpec::generate(seed);
                    let serial = run_scenario_configured(
                        &case.loop_spec(ProtocolKind::NonPriv, true),
                        Scenario::Serial,
                        machine_cfg(case.procs, node_recovery, FaultConfig::none()),
                    )
                    .final_image;
                    let fault_free = PROTOCOLS
                        .iter()
                        .map(|&(_, protocol)| {
                            let r = hw_run(
                                &case,
                                protocol,
                                machine_cfg(case.procs, node_recovery, FaultConfig::none()),
                            );
                            (r.passed == Some(true), r.total_cycles.raw())
                        })
                        .collect();
                    Baseline {
                        case,
                        serial,
                        fault_free,
                    }
                });

            let mut node_grid: Vec<(&'static str, u32, u64)> = Vec::new();
            for kind in NODE_FAULT_KINDS {
                for &node in &ng.nodes {
                    for &at_cycle in &ng.at_cycles {
                        node_grid.push((kind, node, at_cycle));
                    }
                }
            }

            specrt_par::par_map(jobs, &node_grid, |_, &(kind, node, at_cycle)| {
                let _prof = specrt_prof::scope("campaign.node_cell");
                let _guard = injected.map(fault::Injected::new);
                let mut cell = NodeCellReport {
                    kind,
                    node,
                    at_cycle,
                    runs: 0,
                    speculative_passes: 0,
                    checkpoint_restores: 0,
                    serial_fallbacks: 0,
                    image_mismatches: 0,
                    swallowed: 0,
                    unreachable: 0,
                    snapshots: 0,
                    resends: 0,
                    total_cycles: 0,
                    baseline_cycles: 0,
                };
                for b in &node_baselines {
                    // Keep the struck node on the machine: a grid written
                    // for 4 processors still means something on a 2-proc
                    // case.
                    let node = node.min(b.case.procs - 1);
                    let faults = node_cell_faults(kind, node, at_cycle);
                    for (pi, &(_, protocol)) in PROTOCOLS.iter().enumerate() {
                        let r = hw_run(
                            &b.case,
                            protocol,
                            machine_cfg(b.case.procs, node_recovery, faults),
                        );
                        cell.runs += 1;
                        let restores = r.stats.get("checkpoint.restores");
                        match r.passed {
                            Some(true) if restores == 0 => cell.speculative_passes += 1,
                            Some(true) => cell.checkpoint_restores += 1,
                            _ => cell.serial_fallbacks += 1,
                        }
                        if !r.final_image.same_contents(&b.serial, &[ARR_A, ARR_OUT]) {
                            cell.image_mismatches += 1;
                        }
                        cell.swallowed += r.stats.get("fault.node.dropped");
                        cell.unreachable += r.stats.get("fault.node.unreachable");
                        cell.snapshots += r.stats.get("checkpoint.snapshots");
                        cell.resends += r.stats.get("retry.resends");
                        cell.total_cycles += r.total_cycles.raw();
                        cell.baseline_cycles += b.fault_free[pi].1;
                    }
                }
                cell
            })
        }
    };

    CampaignReport {
        cfg: cfg.clone(),
        cells,
        node_cells,
        baseline_passes,
        runs_per_cell: cfg.cases * PROTOCOLS.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignConfig {
        CampaignConfig {
            cases: 4,
            fault_seeds: 1,
            rates_ppm: vec![0, 200_000],
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn every_run_reproduces_the_serial_oracle() {
        let r = run_campaign(&small(), 1);
        assert!(
            r.ok(),
            "image mismatches under faults:\n{}",
            r.render_json()
        );
        assert_eq!(r.cells.len(), 3 * 2); // kinds × rates (1 seed)
        assert!(r.cells.iter().all(|c| c.runs == r.runs_per_cell));
    }

    #[test]
    fn zero_rate_cells_match_the_fault_free_baseline_exactly() {
        let r = run_campaign(&small(), 1);
        for c in r.cells.iter().filter(|c| c.rate_ppm == 0) {
            assert_eq!(c.faults_injected, 0, "{c:?}");
            assert_eq!(c.resends, 0, "{c:?}");
            assert_eq!(
                c.total_cycles, c.baseline_cycles,
                "fault plane at rate 0 must be inert: {c:?}"
            );
        }
    }

    #[test]
    fn nonzero_rates_actually_inject_faults() {
        let r = run_campaign(&small(), 1);
        let injected: u64 = r
            .cells
            .iter()
            .filter(|c| c.rate_ppm > 0)
            .map(|c| c.faults_injected)
            .sum();
        assert!(
            injected > 0,
            "20% cells injected nothing:\n{}",
            r.render_json()
        );
    }

    #[test]
    fn report_is_byte_identical_across_worker_counts() {
        let cfg = small();
        let one = run_campaign(&cfg, 1).render_json();
        for jobs in [2, 4] {
            assert_eq!(run_campaign(&cfg, jobs).render_json(), one, "jobs={jobs}");
        }
    }

    /// A campaign with a node grid: enough cases to include template 8
    /// (whose cross-node clean-line reads generate the asynchronous update
    /// traffic node faults swallow), small message grid.
    fn small_nodes() -> CampaignConfig {
        CampaignConfig {
            cases: 9,
            fault_seeds: 1,
            rates_ppm: vec![0],
            node_grid: Some(NodeGridConfig::default()),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn node_grid_runs_reproduce_the_serial_oracle() {
        let r = run_campaign(&small_nodes(), 1);
        assert!(r.ok(), "node-fault image mismatches:\n{}", r.render_json());
        // kinds (3) × nodes (1) × at_cycles (3).
        assert_eq!(r.node_cells.len(), 9);
        assert!(r.node_cells.iter().all(|c| c.runs == r.runs_per_cell));
        // At least one cell actually swallowed traffic and escalated.
        let unreachable: u64 = r.node_cells.iter().map(|c| c.unreachable).sum();
        assert!(
            unreachable > 0,
            "no cell escalated to NodeUnreachable:\n{}",
            r.render_json()
        );
    }

    #[test]
    fn never_firing_node_cells_are_cycle_exact() {
        let r = run_campaign(&small_nodes(), 1);
        for c in r
            .node_cells
            .iter()
            .filter(|c| c.at_cycle == NODE_FAULT_NEVER)
        {
            assert_eq!(c.swallowed, 0, "{c:?}");
            assert_eq!(c.unreachable, 0, "{c:?}");
            assert_eq!(
                c.total_cycles, c.baseline_cycles,
                "an armed-but-never-firing node fault must be inert: {c:?}"
            );
        }
    }

    #[test]
    fn node_report_is_byte_identical_across_worker_counts() {
        let cfg = small_nodes();
        let one = run_campaign(&cfg, 1).render_json();
        assert_eq!(run_campaign(&cfg, 3).render_json(), one);
    }
    #[test]
    fn checkpoint_restart_alone_never_corrupts_the_image() {
        // Regression: forcing stamp windows (checkpoint snapshots) with no
        // fault armed used to let stamped-priv private copies survive the
        // window barrier, serving stale data in the next window while the
        // cleared stamps erased the conflict evidence — a silently wrong
        // image.  Every template must match the serial oracle even when
        // the run is chopped into tiny checkpoint windows.
        use specrt_spec::ProtocolKind;
        for seed in 9u64..12 {
            let case = CaseSpec::generate(seed);
            let recovery = RecoveryPolicy::CheckpointRestart {
                checkpoint: CheckpointConfig { every_iters: 4 },
            };
            let serial = run_scenario_configured(
                &case.loop_spec(ProtocolKind::NonPriv, true),
                Scenario::Serial,
                machine_cfg(case.procs, recovery, FaultConfig::none()),
            );
            for protocol in [
                ProtocolKind::NonPriv,
                ProtocolKind::Priv {
                    read_in: true,
                    copy_out: true,
                },
            ] {
                let r = hw_run(
                    &case,
                    protocol,
                    machine_cfg(case.procs, recovery, FaultConfig::none()),
                );
                assert!(
                    r.final_image.same_contents(
                        &serial.final_image,
                        &[crate::generate::ARR_A, crate::generate::ARR_OUT]
                    ),
                    "seed {seed} {protocol:?}: checkpointed run diverged from serial"
                );
            }
        }
    }
}
