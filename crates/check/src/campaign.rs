//! Deterministic fault-injection campaign: sweep the interconnect fault
//! plane over generated loops and prove the resilience story end to end.
//!
//! A campaign is a grid of *cells* — fault kind (`drop` / `duplicate` /
//! `delay`) × injection rate (ppm) × fault seed. Every cell runs the same
//! set of generated [`CaseSpec`] loops on the hardware scenario under a
//! lossy interconnect and checks the one property faults must never break:
//! **the final memory image equals the serial oracle's in every run** —
//! whether the loop completed speculatively, recovered through the
//! watchdog's retransmissions, re-ran under
//! [`RecoveryPolicy::RetrySpeculative`], or fell back to the paper's serial
//! safety net.
//!
//! Alongside the safety check the campaign produces a *degradation report*
//! per cell: completion rate (runs that still passed speculatively), mean
//! retransmissions per run, and added latency relative to the fault-free
//! baseline of the same loops. [`CampaignReport::render_json`] is a
//! deterministic JSON document; cells fan out over a [`specrt_par`] worker
//! pool and merge in grid order, so the rendering is byte-identical for
//! every `--jobs` value (a CI cross-check pins this).

use specrt_machine::{run_scenario_configured, MachineConfig, RecoveryPolicy, RunResult, Scenario};
use specrt_mem::MemoryImage;
use specrt_proto::{FaultConfig, NetConfig};
use specrt_spec::ProtocolKind;

use crate::generate::{CaseSpec, ARR_A, ARR_OUT};

/// The network fault kinds a campaign sweeps, in report order.
pub const FAULT_KINDS: [&str; 3] = ["drop", "duplicate", "delay"];

/// Extra in-flight cycles the `delay` kind adds to an affected message.
pub const DELAY_CYCLES: u64 = 2_000;

/// Campaign grid parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Generated case seeds `0..cases` (the hand-written templates first).
    pub cases: u64,
    /// Fault-plane seeds per (kind, rate) cell.
    pub fault_seeds: u64,
    /// Injection rates swept, in parts per million of messages affected.
    /// Rate `0` cells double as the regression gate: they must behave
    /// byte-identically to the fault-free baseline.
    pub rates_ppm: Vec<u32>,
    /// Failure-recovery policy of every hardware run (and of the fault-free
    /// baseline, so latency ratios compare like with like).
    pub recovery: RecoveryPolicy,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            cases: 6,
            fault_seeds: 2,
            rates_ppm: vec![0, 50_000, 200_000],
            recovery: RecoveryPolicy::RetrySpeculative { max_attempts: 1 },
        }
    }
}

/// The two hardware protocols every case runs under.
const PROTOCOLS: [(&str, ProtocolKind); 2] = [
    ("nonpriv", ProtocolKind::NonPriv),
    (
        "priv",
        ProtocolKind::Priv {
            read_in: true,
            copy_out: true,
        },
    ),
];

/// Aggregate outcome of one campaign cell (kind × rate × fault seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellReport {
    /// Fault kind (one of [`FAULT_KINDS`]).
    pub kind: &'static str,
    /// Injection rate in ppm.
    pub rate_ppm: u32,
    /// Fault-plane seed of the cell.
    pub fault_seed: u64,
    /// Hardware runs executed (cases × protocols).
    pub runs: u64,
    /// Runs whose speculation passed (no serial fallback).
    pub speculative_passes: u64,
    /// Runs that aborted and took the serial safety net.
    pub serial_fallbacks: u64,
    /// Runs whose final image differed from the serial oracle. Any nonzero
    /// value is a correctness bug — faults may cost time, never answers.
    pub image_mismatches: u64,
    /// Messages the fault plane dropped / duplicated / extra-delayed.
    pub faults_injected: u64,
    /// Watchdog retransmissions across all runs.
    pub resends: u64,
    /// Speculative loop re-runs taken by the recovery policy.
    pub reruns: u64,
    /// Watchdog escalations (every transmission of a message lost).
    pub exhausted: u64,
    /// Summed machine cycles of the cell's runs.
    pub total_cycles: u64,
    /// Summed cycles of the same runs on the fault-free interconnect.
    pub baseline_cycles: u64,
}

/// Outcome of a whole campaign.
#[derive(Debug)]
pub struct CampaignReport {
    /// The grid that was run.
    pub cfg: CampaignConfig,
    /// Per-cell outcomes in grid order (kind, then rate, then fault seed).
    pub cells: Vec<CellReport>,
    /// Speculative passes of the fault-free baseline (same cases,
    /// protocols and recovery policy — the completion rate faults are
    /// judged against).
    pub baseline_passes: u64,
    /// Runs per cell (cases × protocols).
    pub runs_per_cell: u64,
}

impl CampaignReport {
    /// Whether every run of every cell reproduced the serial oracle image.
    pub fn ok(&self) -> bool {
        self.cells.iter().all(|c| c.image_mismatches == 0)
    }

    /// Total image mismatches (must be zero).
    pub fn image_mismatches(&self) -> u64 {
        self.cells.iter().map(|c| c.image_mismatches).sum()
    }

    /// Deterministic JSON rendering — the `BENCH_faults.json` artifact.
    /// Stable key order, integers except the two fixed-precision ratios,
    /// byte-identical across worker counts.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n  \"campaign\": {");
        let _ = write!(
            out,
            "\"cases\": {}, \"fault_seeds\": {}, \"rates_ppm\": {:?}, \
             \"kinds\": [\"drop\", \"duplicate\", \"delay\"], \
             \"protocols\": [\"nonpriv\", \"priv\"], \
             \"recovery\": \"{}\", \"runs_per_cell\": {}, \
             \"baseline_passes\": {}",
            self.cfg.cases,
            self.cfg.fault_seeds,
            self.cfg.rates_ppm,
            match self.cfg.recovery {
                RecoveryPolicy::SerialReexec => "serial-reexec".to_string(),
                RecoveryPolicy::RetrySpeculative { max_attempts } =>
                    format!("retry-speculative({max_attempts})"),
            },
            self.runs_per_cell,
            self.baseline_passes,
        );
        out.push_str("},\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let added_pct = if c.baseline_cycles > 0 {
                (c.total_cycles as f64 - c.baseline_cycles as f64) * 100.0
                    / c.baseline_cycles as f64
            } else {
                0.0
            };
            let _ = write!(
                out,
                "    {{\"kind\": \"{}\", \"rate_ppm\": {}, \"fault_seed\": {}, \
                 \"runs\": {}, \"speculative_passes\": {}, \"serial_fallbacks\": {}, \
                 \"image_mismatches\": {}, \"faults_injected\": {}, \"resends\": {}, \
                 \"reruns\": {}, \"exhausted\": {}, \"total_cycles\": {}, \
                 \"baseline_cycles\": {}, \"added_latency_pct\": {:.2}}}",
                c.kind,
                c.rate_ppm,
                c.fault_seed,
                c.runs,
                c.speculative_passes,
                c.serial_fallbacks,
                c.image_mismatches,
                c.faults_injected,
                c.resends,
                c.reruns,
                c.exhausted,
                c.total_cycles,
                c.baseline_cycles,
                added_pct,
            );
            out.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"summary\": {");
        let runs: u64 = self.cells.iter().map(|c| c.runs).sum();
        let passes: u64 = self.cells.iter().map(|c| c.speculative_passes).sum();
        let resends: u64 = self.cells.iter().map(|c| c.resends).sum();
        let completion = if runs > 0 {
            passes as f64 * 100.0 / runs as f64
        } else {
            100.0
        };
        let mean_resends = if runs > 0 {
            resends as f64 / runs as f64
        } else {
            0.0
        };
        let _ = write!(
            out,
            "\"runs\": {}, \"image_mismatches\": {}, \"completion_rate_pct\": {:.2}, \
             \"mean_resends_per_run\": {:.4}",
            runs,
            self.image_mismatches(),
            completion,
            mean_resends,
        );
        out.push_str("}\n}\n");
        out
    }
}

/// The fault plane of one cell. Rates are mutually exclusive per kind so a
/// cell isolates one failure mode; the seed is mixed with the case seed so
/// every run draws an independent — but reproducible — decision stream.
fn cell_faults(kind: &'static str, rate_ppm: u32, fault_seed: u64, case_seed: u64) -> FaultConfig {
    let seed = fault_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(case_seed.rotate_left(17))
        .wrapping_add(1);
    match kind {
        "drop" => FaultConfig {
            seed,
            drop_ppm: rate_ppm,
            ..FaultConfig::none()
        },
        "duplicate" => FaultConfig {
            seed,
            dup_ppm: rate_ppm,
            ..FaultConfig::none()
        },
        "delay" => FaultConfig {
            seed,
            delay_ppm: rate_ppm,
            delay_cycles: DELAY_CYCLES,
            ..FaultConfig::none()
        },
        other => unreachable!("unknown fault kind {other}"),
    }
}

fn machine_cfg(procs: u32, recovery: RecoveryPolicy, faults: FaultConfig) -> MachineConfig {
    MachineConfig::with_procs(procs)
        .with_net(NetConfig::flat().with_faults(faults))
        .with_recovery(recovery)
}

fn hw_run(case: &CaseSpec, protocol: ProtocolKind, cfg: MachineConfig) -> RunResult {
    run_scenario_configured(&case.loop_spec(protocol, true), Scenario::Hw, cfg)
}

/// One case's precomputed ground truth: the serial image plus the fault-free
/// hardware runs it is compared against.
struct Baseline {
    case: CaseSpec,
    serial: MemoryImage,
    /// Per protocol (in [`PROTOCOLS`] order): (passed speculatively, cycles).
    fault_free: Vec<(bool, u64)>,
}

/// Runs the campaign grid over `jobs` worker threads. Deterministic: the
/// report (and its JSON rendering) is byte-identical for every `jobs ≥ 1`.
pub fn run_campaign(cfg: &CampaignConfig, jobs: usize) -> CampaignReport {
    // Ground truth first: serial oracle image and fault-free hardware
    // timing per case, computed once and shared by every cell.
    let case_seeds: Vec<u64> = (0..cfg.cases).collect();
    let recovery = cfg.recovery;
    let baselines: Vec<Baseline> = specrt_par::par_map(jobs, &case_seeds, |_, &seed| {
        let _prof = specrt_prof::scope("campaign.baseline");
        let case = CaseSpec::generate(seed);
        let serial = run_scenario_configured(
            &case.loop_spec(ProtocolKind::NonPriv, true),
            Scenario::Serial,
            machine_cfg(case.procs, recovery, FaultConfig::none()),
        )
        .final_image;
        let fault_free = PROTOCOLS
            .iter()
            .map(|&(_, protocol)| {
                let r = hw_run(
                    &case,
                    protocol,
                    machine_cfg(case.procs, recovery, FaultConfig::none()),
                );
                (r.passed == Some(true), r.total_cycles.raw())
            })
            .collect();
        Baseline {
            case,
            serial,
            fault_free,
        }
    });
    let baseline_passes = baselines
        .iter()
        .flat_map(|b| &b.fault_free)
        .filter(|(passed, _)| *passed)
        .count() as u64;

    // The grid, in report order.
    let mut grid: Vec<(&'static str, u32, u64)> = Vec::new();
    for kind in FAULT_KINDS {
        for &rate in &cfg.rates_ppm {
            for fault_seed in 0..cfg.fault_seeds {
                grid.push((kind, rate, fault_seed));
            }
        }
    }

    let cells = specrt_par::par_map(jobs, &grid, |_, &(kind, rate_ppm, fault_seed)| {
        let _prof = specrt_prof::scope("campaign.cell");
        let mut cell = CellReport {
            kind,
            rate_ppm,
            fault_seed,
            runs: 0,
            speculative_passes: 0,
            serial_fallbacks: 0,
            image_mismatches: 0,
            faults_injected: 0,
            resends: 0,
            reruns: 0,
            exhausted: 0,
            total_cycles: 0,
            baseline_cycles: 0,
        };
        for b in &baselines {
            let faults = cell_faults(kind, rate_ppm, fault_seed, b.case.seed);
            for (pi, &(_, protocol)) in PROTOCOLS.iter().enumerate() {
                let r = hw_run(
                    &b.case,
                    protocol,
                    machine_cfg(b.case.procs, recovery, faults),
                );
                cell.runs += 1;
                match r.passed {
                    Some(true) => cell.speculative_passes += 1,
                    _ => cell.serial_fallbacks += 1,
                }
                if !r.final_image.same_contents(&b.serial, &[ARR_A, ARR_OUT]) {
                    cell.image_mismatches += 1;
                }
                cell.faults_injected += r.stats.get("fault.dropped")
                    + r.stats.get("fault.duplicated")
                    + r.stats.get("fault.delayed");
                cell.resends += r.stats.get("retry.resends");
                cell.reruns += r.stats.get("retry.speculative_reruns");
                cell.exhausted += r.stats.get("retry.exhausted");
                cell.total_cycles += r.total_cycles.raw();
                cell.baseline_cycles += b.fault_free[pi].1;
            }
        }
        cell
    });

    CampaignReport {
        cfg: cfg.clone(),
        cells,
        baseline_passes,
        runs_per_cell: cfg.cases * PROTOCOLS.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignConfig {
        CampaignConfig {
            cases: 4,
            fault_seeds: 1,
            rates_ppm: vec![0, 200_000],
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn every_run_reproduces_the_serial_oracle() {
        let r = run_campaign(&small(), 1);
        assert!(
            r.ok(),
            "image mismatches under faults:\n{}",
            r.render_json()
        );
        assert_eq!(r.cells.len(), 3 * 2); // kinds × rates (1 seed)
        assert!(r.cells.iter().all(|c| c.runs == r.runs_per_cell));
    }

    #[test]
    fn zero_rate_cells_match_the_fault_free_baseline_exactly() {
        let r = run_campaign(&small(), 1);
        for c in r.cells.iter().filter(|c| c.rate_ppm == 0) {
            assert_eq!(c.faults_injected, 0, "{c:?}");
            assert_eq!(c.resends, 0, "{c:?}");
            assert_eq!(
                c.total_cycles, c.baseline_cycles,
                "fault plane at rate 0 must be inert: {c:?}"
            );
        }
    }

    #[test]
    fn nonzero_rates_actually_inject_faults() {
        let r = run_campaign(&small(), 1);
        let injected: u64 = r
            .cells
            .iter()
            .filter(|c| c.rate_ppm > 0)
            .map(|c| c.faults_injected)
            .sum();
        assert!(
            injected > 0,
            "20% cells injected nothing:\n{}",
            r.render_json()
        );
    }

    #[test]
    fn report_is_byte_identical_across_worker_counts() {
        let cfg = small();
        let one = run_campaign(&cfg, 1).render_json();
        for jobs in [2, 4] {
            assert_eq!(run_campaign(&cfg, jobs).render_json(), one, "jobs={jobs}");
        }
    }
}
