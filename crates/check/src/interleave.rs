//! Small-scope interleaving enumeration of the non-privatization protocol.
//!
//! Models the protocol state of **one cache line holding two elements** of
//! an array under the non-privatization test: the per-element directory
//! state ([`NonPrivDirElem`]), each processor's cached copy of the line
//! (per-element [`ElemTag`]s plus a dirty bit), and the set of in-flight
//! `First_update` / `ROnly_update` / `First_update_fail` messages. A
//! *script* gives each processor an ordered access sequence; the enumerator
//! DFS-explores every interleaving of processor steps, message deliveries
//! and cache evictions, memoizing states.
//!
//! Two elements per line are essential: update messages are only generated
//! by *hits* on clean lines whose element tag is still `First = NONE`, and
//! such tags only arise from the line-fetch projection of elements the
//! fetching access did not touch. A one-element line would never exercise
//! races (f)–(h).
//!
//! The model mirrors the simulator's ordering rules:
//!
//! * before any directory transaction (miss or upgrade) a processor's *own*
//!   in-flight updates are delivered in FIFO order (the simulator's
//!   `drain_before_transaction` + per-(src,dst) in-order network);
//! * a read miss on a dirty line invalidates the owner and merges its tags
//!   into the directory (the default invalidate-on-fetch configuration);
//! * other processors' messages and `First_update_fail` bounces are
//!   delivered at arbitrary points — that is the explored nondeterminism.
//!
//! The property checked at every quiescent state (all scripts finished, no
//! messages in flight): the run has FAILed, **or** the script's access
//! pattern satisfies the paper's envelope (every element is read-only or
//! touched by a single processor). In other words: no interleaving lets a
//! non-envelope pattern pass. Coverage counters prove each race case
//! (a)–(h) is actually reached.

use std::collections::HashSet;

use specrt_cache::ElemTag;
use specrt_mem::ProcId;
use specrt_spec::{
    nonpriv_cache_read, nonpriv_cache_write, nonpriv_complete_write, nonpriv_on_first_update_fail,
    FirstUpdateOutcome, NonPrivDirElem, NonPrivReadAction, NonPrivWriteAction,
};

use crate::generate::Op;

/// Number of elements on the modelled line.
pub const ELEMS: usize = 2;

/// Race-case coverage accounting over one or more explorations.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// `counts[i]` = times race case `('a' + i)` was reached.
    pub counts: [u64; 8],
}

impl Coverage {
    /// Creates empty coverage.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    fn visit(&mut self, case: char) {
        self.counts[(case as u8 - b'a') as usize] += 1;
    }

    /// Adds another coverage's counts into this one (order-independent:
    /// counts are sums, so merging per-worker coverages in any order gives
    /// the same totals as one sequential exploration).
    pub fn merge(&mut self, other: &Coverage) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
    }

    /// Race-case letters never reached.
    pub fn unvisited(&self) -> Vec<char> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| (b'a' + i as u8) as char)
            .collect()
    }

    /// Whether all of (a)–(h) were reached.
    pub fn complete(&self) -> bool {
        self.counts.iter().all(|&c| c > 0)
    }
}

/// A processor's cached copy of the line.
#[derive(Clone)]
struct CacheCopy {
    tags: [ElemTag; ELEMS],
    dirty: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FlightKind {
    First,
    ROnly,
    Fail,
}

/// One in-flight message. `proc` is the sender for updates and the bounce
/// target for `Fail`.
#[derive(Clone, Copy)]
struct Flight {
    kind: FlightKind,
    elem: usize,
    proc: u32,
}

#[derive(Clone)]
struct State {
    dir: [NonPrivDirElem; ELEMS],
    caches: Vec<Option<CacheCopy>>,
    inflight: Vec<Flight>,
    pcs: Vec<usize>,
    failed: bool,
}

impl State {
    fn initial(procs: usize) -> State {
        State {
            dir: [NonPrivDirElem::default(); ELEMS],
            caches: vec![None; procs],
            inflight: Vec::new(),
            pcs: vec![0; procs],
            failed: false,
        }
    }

    /// Canonical serialization for the memo set.
    fn key(&self) -> Vec<u8> {
        let mut k = Vec::with_capacity(64);
        for d in &self.dir {
            k.push(d.first.map_or(0xff, |p| p.0 as u8));
            k.push(u8::from(d.no_shr) | (u8::from(d.r_only) << 1));
        }
        for c in &self.caches {
            match c {
                None => k.push(0xfe),
                Some(c) => {
                    k.push(u8::from(c.dirty));
                    for t in &c.tags {
                        let first = match t.first() {
                            specrt_cache::FirstTag::None => 0u8,
                            specrt_cache::FirstTag::Own => 1,
                            specrt_cache::FirstTag::Other => 2,
                        };
                        k.push(first | (u8::from(t.no_shr()) << 2) | (u8::from(t.r_only()) << 3));
                    }
                }
            }
        }
        k.push(0xfd);
        for f in &self.inflight {
            k.push(match f.kind {
                FlightKind::First => 0,
                FlightKind::ROnly => 1,
                FlightKind::Fail => 2,
            });
            k.push(f.elem as u8);
            k.push(f.proc as u8);
        }
        k.push(0xfc);
        for pc in &self.pcs {
            k.push(*pc as u8);
        }
        k.push(u8::from(self.failed));
        k
    }

    fn dirty_owner(&self) -> Option<u32> {
        self.caches
            .iter()
            .position(|c| c.as_ref().is_some_and(|c| c.dirty))
            .map(|p| p as u32)
    }

    fn project(&self, viewer: u32) -> [ElemTag; ELEMS] {
        [
            self.dir[0].to_tag(ProcId(viewer)),
            self.dir[1].to_tag(ProcId(viewer)),
        ]
    }

    /// Delivers in-flight message `i`.
    fn deliver(&mut self, i: usize, cov: &mut Coverage) {
        let f = self.inflight.remove(i);
        match f.kind {
            FlightKind::First => {
                cov.visit('f');
                match self.dir[f.elem].on_first_update(ProcId(f.proc)) {
                    Ok(FirstUpdateOutcome::Accepted) | Ok(FirstUpdateOutcome::Redundant) => {}
                    Ok(FirstUpdateOutcome::Bounced) => self.inflight.push(Flight {
                        kind: FlightKind::Fail,
                        elem: f.elem,
                        proc: f.proc,
                    }),
                    Err(_) => self.failed = true,
                }
            }
            FlightKind::ROnly => {
                cov.visit('h');
                if self.dir[f.elem].on_r_only_update(ProcId(f.proc)).is_err() {
                    self.failed = true;
                }
            }
            FlightKind::Fail => {
                cov.visit('g');
                if let Some(copy) = &mut self.caches[f.proc as usize] {
                    if nonpriv_on_first_update_fail(&mut copy.tags[f.elem], ProcId(f.proc)).is_err()
                    {
                        self.failed = true;
                    }
                }
            }
        }
    }

    /// Delivers processor `p`'s own in-flight updates in FIFO order (the
    /// simulator drains its own path to the home before any transaction).
    fn drain_own(&mut self, p: u32, cov: &mut Coverage) {
        while !self.failed {
            let Some(i) = self.inflight.iter().position(|f| {
                f.proc == p && matches!(f.kind, FlightKind::First | FlightKind::ROnly)
            }) else {
                return;
            };
            self.deliver(i, cov);
        }
    }

    /// Merges a dirty copy's tags into the directory (write-back).
    fn merge(&mut self, copy: &CacheCopy, owner: u32, cov: &mut Coverage) {
        for e in 0..ELEMS {
            cov.visit('e');
            if self.dir[e]
                .merge_writeback(copy.tags[e], ProcId(owner))
                .is_err()
            {
                self.failed = true;
            }
        }
    }

    /// Evicts processor `p`'s copy (dirty → write-back merge; clean →
    /// silent drop).
    fn evict(&mut self, p: u32, cov: &mut Coverage) {
        let Some(copy) = self.caches[p as usize].take() else {
            return;
        };
        if copy.dirty {
            self.merge(&copy, p, cov);
        }
    }

    /// Runs processor `p`'s next script access.
    fn step(&mut self, p: u32, op: Op, cov: &mut Coverage) {
        self.pcs[p as usize] += 1;
        let (Op::Read(e) | Op::Write(e)) = op;
        let e = e as usize;
        let is_write = matches!(op, Op::Write(_));
        let resident = self.caches[p as usize].is_some();
        match (resident, is_write) {
            (true, false) => {
                // Hit read — algorithm (a).
                cov.visit('a');
                let copy = self.caches[p as usize].as_mut().expect("resident");
                match nonpriv_cache_read(&mut copy.tags[e], copy.dirty, ProcId(p)) {
                    Ok(NonPrivReadAction::NoMessage) => {}
                    Ok(NonPrivReadAction::SendFirstUpdate) => self.inflight.push(Flight {
                        kind: FlightKind::First,
                        elem: e,
                        proc: p,
                    }),
                    Ok(NonPrivReadAction::SendROnlyUpdate) => self.inflight.push(Flight {
                        kind: FlightKind::ROnly,
                        elem: e,
                        proc: p,
                    }),
                    Err(_) => self.failed = true,
                }
            }
            (false, false) => {
                // Read miss — algorithm (b).
                cov.visit('b');
                self.drain_own(p, cov);
                if self.failed {
                    return;
                }
                if let Some(q) = self.dirty_owner() {
                    let copy = self.caches[q as usize].take().expect("owner resident");
                    self.merge(&copy, q, cov);
                }
                if self.dir[e].on_read_req(ProcId(p)).is_err() {
                    self.failed = true;
                }
                self.caches[p as usize] = Some(CacheCopy {
                    tags: self.project(p),
                    dirty: false,
                });
            }
            (true, true) => {
                // Hit write — algorithm (c), upgrading via (d) if clean.
                cov.visit('c');
                let copy = self.caches[p as usize].as_mut().expect("resident");
                match nonpriv_cache_write(&mut copy.tags[e], copy.dirty, ProcId(p)) {
                    Ok(NonPrivWriteAction::WriteNow) => {}
                    Ok(NonPrivWriteAction::NeedWriteReq) => {
                        cov.visit('d');
                        self.drain_own(p, cov);
                        if self.failed {
                            return;
                        }
                        for (q, c) in self.caches.iter_mut().enumerate() {
                            if q as u32 != p {
                                *c = None; // invalidate (clean) sharers
                            }
                        }
                        if self.dir[e].on_write_req(ProcId(p)).is_err() {
                            self.failed = true;
                        }
                        let mut tags = self.project(p);
                        nonpriv_complete_write(&mut tags[e]);
                        self.caches[p as usize] = Some(CacheCopy { tags, dirty: true });
                    }
                    Err(_) => self.failed = true,
                }
            }
            (false, true) => {
                // Write miss — algorithm (d).
                cov.visit('d');
                self.drain_own(p, cov);
                if self.failed {
                    return;
                }
                if let Some(q) = self.dirty_owner() {
                    let copy = self.caches[q as usize].take().expect("owner resident");
                    self.merge(&copy, q, cov);
                }
                for (q, c) in self.caches.iter_mut().enumerate() {
                    if q as u32 != p {
                        *c = None;
                    }
                }
                if self.dir[e].on_write_req(ProcId(p)).is_err() {
                    self.failed = true;
                }
                let mut tags = self.project(p);
                nonpriv_complete_write(&mut tags[e]);
                self.caches[p as usize] = Some(CacheCopy { tags, dirty: true });
            }
        }
    }
}

/// Whether a script's access pattern satisfies the paper's envelope: every
/// element is read-only or accessed by exactly one processor.
pub fn script_envelope_holds(script: &[Vec<Op>]) -> bool {
    (0..ELEMS as u64).all(|e| {
        let touchers: Vec<usize> = script
            .iter()
            .enumerate()
            .filter(|(_, ops)| ops.iter().any(|&(Op::Read(x) | Op::Write(x))| x == e))
            .map(|(p, _)| p)
            .collect();
        let written = script
            .iter()
            .flatten()
            .any(|&o| matches!(o, Op::Write(x) if x == e));
        !written || touchers.len() <= 1
    })
}

/// Result of exploring every interleaving of one script.
#[derive(Debug)]
pub struct ExploreResult {
    /// Distinct states visited.
    pub states: usize,
    /// Whether some interleaving reached a quiescent PASS.
    pub any_pass: bool,
    /// Whether some interleaving FAILed.
    pub any_fail: bool,
    /// Quiescent PASS states of a non-envelope script (soundness
    /// violations; must stay empty).
    pub violations: usize,
}

/// DFS-explores every interleaving of `script` (`script[p]` = processor
/// `p`'s ordered accesses; elements must be `< ELEMS`).
///
/// # Panics
///
/// Panics if an element index is out of range for the modelled line.
pub fn explore_script(script: &[Vec<Op>], cov: &mut Coverage) -> ExploreResult {
    for op in script.iter().flatten() {
        let (Op::Read(e) | Op::Write(e)) = op;
        assert!(
            (*e as usize) < ELEMS,
            "element {e} not on the modelled line"
        );
    }
    let envelope = script_envelope_holds(script);
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut result = ExploreResult {
        states: 0,
        any_pass: false,
        any_fail: false,
        violations: 0,
    };
    let mut stack = vec![State::initial(script.len())];
    while let Some(state) = stack.pop() {
        if !seen.insert(state.key()) {
            continue;
        }
        result.states += 1;
        if state.failed {
            // Absorbing: the test aborts the loop; property satisfied.
            result.any_fail = true;
            continue;
        }
        let quiescent = state.inflight.is_empty()
            && state
                .pcs
                .iter()
                .enumerate()
                .all(|(p, &pc)| pc >= script[p].len());
        if quiescent {
            result.any_pass = true;
            if !envelope {
                result.violations += 1;
            }
        }
        // Processor steps.
        for (p, ops) in script.iter().enumerate() {
            if state.pcs[p] < ops.len() {
                let mut next = state.clone();
                next.step(p as u32, ops[state.pcs[p]], cov);
                stack.push(next);
            }
        }
        // Message deliveries.
        for i in 0..state.inflight.len() {
            let mut next = state.clone();
            next.deliver(i, cov);
            stack.push(next);
        }
        // Evictions.
        for p in 0..state.caches.len() {
            if state.caches[p].is_some() {
                let mut next = state.clone();
                next.evict(p as u32, cov);
                stack.push(next);
            }
        }
    }
    result
}

/// Summary of a full small-scope enumeration.
#[derive(Debug)]
pub struct EnumerationSummary {
    /// Scripts explored.
    pub scripts: usize,
    /// Total distinct states across all scripts.
    pub states: usize,
    /// Soundness violations (must be 0).
    pub violations: usize,
    /// Envelope-holding scripts with no passing interleaving (excessive
    /// conservatism; tracked for information).
    pub conservative: usize,
}

/// All per-processor access sequences of length `0..=2` over both elements.
fn all_sequences() -> Vec<Vec<Op>> {
    let atoms = [Op::Read(0), Op::Write(0), Op::Read(1), Op::Write(1)];
    let mut seqs = vec![vec![]];
    for a in atoms {
        seqs.push(vec![a]);
        for b in atoms {
            seqs.push(vec![a, b]);
        }
    }
    seqs
}

/// Explores one script, folding its result into `summary` and `cov`.
fn explore_into(script: &[Vec<Op>], summary: &mut EnumerationSummary, cov: &mut Coverage) {
    let r = explore_script(script, cov);
    summary.scripts += 1;
    summary.states += r.states;
    summary.violations += r.violations;
    if script_envelope_holds(script) && !r.any_pass {
        summary.conservative += 1;
    }
}

/// Exhaustively explores every 2-processor script with per-processor
/// sequences of length ≤ 2, plus a hand-picked set of 3-processor scripts,
/// accumulating race-case coverage into `cov`. Equivalent to
/// [`enumerate_small_scope_jobs`] with `jobs = 1`.
pub fn enumerate_small_scope(cov: &mut Coverage) -> EnumerationSummary {
    enumerate_small_scope_jobs(cov, 1)
}

/// [`enumerate_small_scope`] with the DFS partitioned across `jobs` worker
/// threads by the first processor's script prefix. Each prefix's scripts
/// share no state with any other prefix's (every [`explore_script`] call
/// owns its memo set), so workers explore disjoint script families and
/// their per-worker summaries and coverages merge — in prefix order — into
/// exactly the totals of the sequential enumeration.
pub fn enumerate_small_scope_jobs(cov: &mut Coverage, jobs: usize) -> EnumerationSummary {
    let seqs = all_sequences();
    let parts = specrt_par::par_map(jobs, &seqs, |_, a| {
        let _prof = specrt_prof::scope("interleave.script");
        let mut part_cov = Coverage::new();
        let mut part = EnumerationSummary {
            scripts: 0,
            states: 0,
            violations: 0,
            conservative: 0,
        };
        for b in &seqs {
            let script = vec![a.clone(), b.clone()];
            explore_into(&script, &mut part, &mut part_cov);
        }
        (part, part_cov)
    });
    let mut summary = EnumerationSummary {
        scripts: 0,
        states: 0,
        violations: 0,
        conservative: 0,
    };
    for (part, part_cov) in parts {
        summary.scripts += part.scripts;
        summary.states += part.states;
        summary.violations += part.violations;
        summary.conservative += part.conservative;
        cov.merge(&part_cov);
    }
    // Three processors: enough to race two foreign updates against a write
    // and against each other.
    use Op::{Read, Write};
    let three: &[[&[Op]; 3]] = &[
        [&[Read(1), Read(0)], &[Read(1), Read(0)], &[Read(0)]],
        [&[Read(1), Read(0)], &[Read(1), Write(0)], &[Read(0)]],
        [&[Read(1), Read(0)], &[Read(1), Read(0)], &[Write(0)]],
        [&[Write(0)], &[Write(1)], &[Read(0), Read(1)]],
    ];
    for script in three {
        let script: Vec<Vec<Op>> = script.iter().map(|s| s.to_vec()).collect();
        explore_into(&script, &mut summary, cov);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use Op::{Read, Write};

    #[test]
    fn envelope_predicate() {
        assert!(script_envelope_holds(&[vec![Read(0)], vec![Read(0)]]));
        assert!(script_envelope_holds(&[
            vec![Read(0), Write(0)],
            vec![Read(1)]
        ]));
        assert!(!script_envelope_holds(&[vec![Write(0)], vec![Read(0)]]));
    }

    #[test]
    fn single_proc_read_write_always_passes() {
        let mut cov = Coverage::new();
        let r = explore_script(&[vec![Read(0), Write(0)], vec![]], &mut cov);
        assert!(r.any_pass);
        assert_eq!(r.violations, 0);
        assert!(!r.any_fail, "own-element use must never abort");
    }

    #[test]
    fn cross_proc_write_read_always_fails() {
        let mut cov = Coverage::new();
        let r = explore_script(&[vec![Write(0)], vec![Read(0)]], &mut cov);
        assert_eq!(r.violations, 0, "no interleaving may pass");
        assert!(r.any_fail);
    }

    #[test]
    fn parallel_enumeration_matches_sequential() {
        let mut cov1 = Coverage::new();
        let s1 = enumerate_small_scope(&mut cov1);
        let mut cov4 = Coverage::new();
        let s4 = enumerate_small_scope_jobs(&mut cov4, 4);
        assert_eq!(cov1.counts, cov4.counts, "coverage must be identical");
        assert_eq!(s1.scripts, s4.scripts);
        assert_eq!(s1.states, s4.states);
        assert_eq!(s1.violations, s4.violations);
        assert_eq!(s1.conservative, s4.conservative);
        assert_eq!(s1.violations, 0);
        assert!(cov1.complete(), "all of (a)-(h) must be reached");
    }

    #[test]
    fn late_foreign_first_update_race_reaches_f_and_g() {
        // Both processors read element 0 via a hit (tag projected while the
        // directory still says First=NONE), so two First_updates race.
        let mut cov = Coverage::new();
        let r = explore_script(&[vec![Read(1), Read(0)], vec![Read(1), Read(0)]], &mut cov);
        assert_eq!(r.violations, 0);
        assert!(r.any_pass, "read-sharing must be able to pass");
        assert!(cov.counts[(b'f' - b'a') as usize] > 0, "case f unreached");
        assert!(cov.counts[(b'g' - b'a') as usize] > 0, "case g unreached");
    }
}
