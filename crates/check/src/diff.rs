//! The differential check: one generated case, every execution mode, one
//! ground truth.
//!
//! For a [`CaseSpec`] this module
//!
//! 1. traces every iteration functionally ([`specrt_ir::trace_iteration`])
//!    to obtain the per-iteration access sequences on the array under test,
//! 2. derives the *expected* verdict of each protocol from the trace oracle
//!    in `specrt_lrpd::oracle` (plus a direct shadow replay for the software
//!    baseline),
//! 3. runs the loop on the full machine under the non-privatization
//!    protocol, both privatization variants, and the software LRPD test,
//! 4. asserts every verdict matches its expectation and every final memory
//!    image matches the serial run.
//!
//! The serial image comparison is unconditional: a passed speculation must
//! have produced the serial result, and a failed one must have restored and
//! serially re-executed — either way the observable memory is the serial
//! one. Protocols may be *conservative* only where timing decides the
//! verdict (dynamic schedules); there the verdict assertion is skipped and
//! only the image is checked.

use specrt_engine::StatSet;
use specrt_ir::{trace_iteration, AccessKind, MapMemory};
use specrt_lrpd::oracle::nonpriv_envelope_holds;
use specrt_lrpd::{analyze_iteration_traces, LrpdShadow};
use specrt_machine::{
    run_scenario, run_scenario_configured, CheckpointConfig, MachineConfig, RecoveryPolicy,
    RunResult, Scenario, SwVariant,
};
use specrt_proto::{FaultConfig, NetConfig, NodeFaultConfig, NodeFaultKind};
use specrt_spec::ProtocolKind;

use crate::campaign::NODE_OUTAGE_CYCLES;
use crate::generate::{CaseSpec, ARR_A, ARR_OUT};

/// One disagreement between a machine run and the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mismatch {
    /// The run's pass/fail verdict differs from the oracle's expectation.
    Verdict {
        /// Scenario label (e.g. `"hw-nonpriv"`).
        scenario: &'static str,
        /// What the oracle says the verdict must be.
        expected: bool,
        /// What the machine reported (`None`: scenario reports no verdict).
        got: Option<bool>,
    },
    /// The run's final memory image differs from the serial run's.
    Image {
        /// Scenario label.
        scenario: &'static str,
    },
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mismatch::Verdict {
                scenario,
                expected,
                got,
            } => write!(f, "{scenario}: verdict {got:?}, oracle expected {expected}"),
            Mismatch::Image { scenario } => {
                write!(f, "{scenario}: final memory image differs from serial")
            }
        }
    }
}

/// Outcome of differentially checking one case.
#[derive(Debug)]
pub struct CaseResult {
    /// Every oracle disagreement found (empty = case passed).
    pub mismatches: Vec<Mismatch>,
    /// Merged protocol statistics of the hardware runs (race-case coverage
    /// accounting).
    pub stats: StatSet,
}

impl CaseResult {
    /// Whether the machine agreed with the oracle everywhere.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Per-iteration access sequences on the array under test, obtained by
/// functional (serial-order) execution.
pub fn oracle_traces(case: &CaseSpec) -> Vec<Vec<(u64, AccessKind)>> {
    let _prof = specrt_prof::scope("fuzz.oracle");
    let body = case.body();
    let mut mem = MapMemory::new();
    (0..case.iters())
        .map(|i| {
            let (trace, _busy) =
                trace_iteration(&body, i, 0, &mut mem).expect("generated body executes");
            trace
                .iter()
                .filter(|t| t.arr == ARR_A)
                .map(|t| (t.idx, t.kind))
                .collect()
        })
        .collect()
}

/// The software LRPD expectation: replay the trace into one global shadow
/// (marking in serial order is equivalent to per-processor marking plus
/// merging — the test is order-independent) and run the analysis phase.
fn sw_expected(case: &CaseSpec, traces: &[Vec<(u64, AccessKind)>]) -> bool {
    let mut shadow = LrpdShadow::new(case.elems);
    for (i, tr) in traces.iter().enumerate() {
        for &(e, kind) in tr {
            match kind {
                AccessKind::Read => shadow.mark_read(e, i as u64 + 1),
                AccessKind::Write => shadow.mark_write(e, i as u64 + 1),
            }
        }
    }
    shadow.analyze(true).passed()
}

/// The no-read-in privatization expectation (Fig. 5-b state): FAIL iff some
/// element is both written during the loop and read-first (not covered by an
/// earlier write of the *same iteration*) somewhere.
fn priv3_expected(traces: &[Vec<(u64, AccessKind)>]) -> bool {
    use std::collections::HashSet;
    let mut written: HashSet<u64> = HashSet::new();
    let mut uncovered_read: HashSet<u64> = HashSet::new();
    for tr in traces {
        let mut covered: HashSet<u64> = HashSet::new();
        for &(e, kind) in tr {
            match kind {
                AccessKind::Read => {
                    if !covered.contains(&e) {
                        uncovered_read.insert(e);
                    }
                }
                AccessKind::Write => {
                    covered.insert(e);
                    written.insert(e);
                }
            }
        }
    }
    written.is_disjoint(&uncovered_read)
}

fn check_one(
    label: &'static str,
    run: &RunResult,
    serial: &RunResult,
    expected: Option<bool>,
    image_ids: &[specrt_ir::ArrayId],
    out: &mut Vec<Mismatch>,
) {
    let _prof = specrt_prof::scope("fuzz.image_diff");
    if let Some(expected) = expected {
        if run.passed != Some(expected) {
            out.push(Mismatch::Verdict {
                scenario: label,
                expected,
                got: run.passed,
            });
        }
    }
    if !run
        .final_image
        .same_contents(&serial.final_image, image_ids)
    {
        out.push(Mismatch::Image { scenario: label });
    }
}

/// Differentially checks one case across all protocols and the software
/// baseline.
pub fn run_case(case: &CaseSpec) -> CaseResult {
    let traces = oracle_traces(case);
    let assignment = case.assignment();
    let mut mismatches = Vec::new();
    let mut stats = StatSet::new();

    let serial = run_scenario(
        &case.loop_spec(ProtocolKind::NonPriv, true),
        Scenario::Serial,
        case.procs,
    );

    // Hardware, non-privatization: pass iff the executed schedule keeps
    // every written element on a single processor (the envelope). Dynamic
    // schedules have no static assignment — image check only.
    let np = run_scenario(
        &case.loop_spec(ProtocolKind::NonPriv, true),
        Scenario::Hw,
        case.procs,
    );
    let np_expected = assignment
        .as_ref()
        .map(|a| nonpriv_envelope_holds(&traces, a));
    check_one(
        "hw-nonpriv",
        &np,
        &serial,
        np_expected,
        &[ARR_A, ARR_OUT],
        &mut mismatches,
    );
    stats.merge(&np.stats);

    // Hardware, privatization with read-in + copy-out: pass iff no
    // flow dependence (read-first after an earlier iteration's write).
    let verdict = analyze_iteration_traces(&traces);
    let pv = run_scenario(
        &case.loop_spec(
            ProtocolKind::Priv {
                read_in: true,
                copy_out: true,
            },
            true,
        ),
        Scenario::Hw,
        case.procs,
    );
    check_one(
        "hw-priv",
        &pv,
        &serial,
        Some(verdict.priv_read_in_ok()),
        &[ARR_A, ARR_OUT],
        &mut mismatches,
    );
    stats.merge(&pv.stats);

    // Hardware, reduced no-read-in privatization: the array under test is
    // dead after the loop (no copy-out), so only the plain output array is
    // compared against serial.
    let p3 = run_scenario(
        &case.loop_spec(
            ProtocolKind::Priv {
                read_in: false,
                copy_out: false,
            },
            false,
        ),
        Scenario::Hw,
        case.procs,
    );
    check_one(
        "hw-priv3",
        &p3,
        &serial,
        Some(priv3_expected(&traces)),
        &[ARR_OUT],
        &mut mismatches,
    );
    stats.merge(&p3.stats);

    // Software LRPD baseline, iteration-wise stamps.
    let sw = run_scenario(
        &case.loop_spec(
            ProtocolKind::Priv {
                read_in: true,
                copy_out: true,
            },
            true,
        ),
        Scenario::Sw(SwVariant::IterationWise),
        case.procs,
    );
    check_one(
        "sw-lrpd",
        &sw,
        &serial,
        Some(sw_expected(case, &traces)),
        &[ARR_A, ARR_OUT],
        &mut mismatches,
    );

    CaseResult { mismatches, stats }
}

/// Differentially checks the node-fault legs of one case: every node-level
/// fault kind is fired *mid-loop* — halfway through the fault-free cycle
/// count of the same configuration — against node 1, under
/// checkpoint-restart recovery. Whatever path the machine takes (checkpoint
/// restore with a partial re-run, or whole-loop serial re-execution when no
/// checkpoint precedes the failure), the final memory image must be the
/// serial one. Verdicts are not asserted: a node fault may legitimately
/// turn a would-pass run into a recovered `Some(false)`.
pub fn node_fault_legs(case: &CaseSpec) -> Vec<Mismatch> {
    let _prof = specrt_prof::scope("fuzz.node_legs");
    let recovery = RecoveryPolicy::CheckpointRestart {
        checkpoint: CheckpointConfig { every_iters: 2 },
    };
    let cfg = |faults: FaultConfig| {
        MachineConfig::with_procs(case.procs)
            .with_net(NetConfig::flat().with_faults(faults))
            .with_recovery(recovery)
    };
    let spec = case.loop_spec(ProtocolKind::NonPriv, true);
    let serial = run_scenario_configured(&spec, Scenario::Serial, cfg(FaultConfig::none()));
    let fault_free = run_scenario_configured(&spec, Scenario::Hw, cfg(FaultConfig::none()));
    let at_cycle = fault_free.total_cycles.raw() / 2;
    let node = 1u32.min(case.procs - 1);
    let mut out = Vec::new();
    for (label, kind) in [
        ("hw-node-crash", NodeFaultKind::Crash),
        (
            "hw-node-pause",
            NodeFaultKind::Pause {
                for_cycles: NODE_OUTAGE_CYCLES,
            },
        ),
        (
            "hw-node-partition",
            NodeFaultKind::Partition {
                for_cycles: NODE_OUTAGE_CYCLES,
            },
        ),
    ] {
        let faults = FaultConfig {
            node_fault: Some(NodeFaultConfig {
                kind,
                node,
                at_cycle,
            }),
            ..FaultConfig::none()
        };
        let r = run_scenario_configured(&spec, Scenario::Hw, cfg(faults));
        if !r
            .final_image
            .same_contents(&serial.final_image, &[ARR_A, ARR_OUT])
        {
            out.push(Mismatch::Image { scenario: label });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TEMPLATE_SEEDS;

    #[test]
    fn all_templates_agree_with_oracle() {
        for seed in 0..TEMPLATE_SEEDS {
            let case = CaseSpec::generate(seed);
            let r = run_case(&case);
            assert!(r.ok(), "template seed {seed} disagrees: {:?}", r.mismatches);
        }
    }

    #[test]
    fn all_templates_survive_node_faults_mid_loop() {
        for seed in 0..TEMPLATE_SEEDS {
            let case = CaseSpec::generate(seed);
            let legs = node_fault_legs(&case);
            assert!(legs.is_empty(), "template seed {seed} lost data: {legs:?}");
        }
    }

    #[test]
    fn priv3_predicate_basics() {
        use AccessKind::{Read, Write};
        // Covered read of a written element: fine.
        assert!(priv3_expected(&[vec![(0, Write), (0, Read)]]));
        // Uncovered read of an element written in another iteration: FAIL.
        assert!(!priv3_expected(&[vec![(0, Write)], vec![(0, Read)]]));
        // Uncovered read of a never-written element: fine.
        assert!(priv3_expected(&[vec![(0, Read)], vec![(1, Write)]]));
    }
}
